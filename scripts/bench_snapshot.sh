#!/usr/bin/env bash
# Snapshot the headline benchmarks (E2 compressed matrix-vector, E5 rewrite
# wins, E10 buffer pool, E13 parallel scaling, E14 out-of-core degradation,
# E16 kernel microbenchmarks, E17 multi-tenant serving)
# into BENCH_<date>.json at the repo root, so perf drift between PRs is
# visible in version control.
#
# E13 sweeps thread degrees 1/2/4/8; on single-core machines the parallel
# numbers only measure scheduling overhead. DMML_BENCH_GEMM_N shrinks the
# gemm workload on constrained boxes.
#
# Usage: scripts/bench_snapshot.sh [output-file]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_$(date +%Y%m%d).json}"

benches=(e02_cla_mv e05_rewrites e10_bufferpool e13_parallel_scaling e14_out_of_core e16_kernels e17_serving)

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "git": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    printf '  "benches": {\n'
    first=1
    for b in "${benches[@]}"; do
        [ "$first" -eq 1 ] || printf ',\n'
        first=0
        printf '    "%s": [' "$b"
        # Each shim bench line: "bench <group>/<id> min X median Y mean Z (N samples)".
        cargo bench -p dm-bench --bench "$b" 2>/dev/null |
            grep '^bench ' |
            sed -E 's/^bench ([^ ]+) +min +([0-9.]+ [a-z]+) +median +([0-9.]+ [a-z]+) +mean +([0-9.]+ [a-z]+).*/{"id":"\1","min":"\2","median":"\3","mean":"\4"}/' |
            paste -sd, -
        printf ']'
    done
    printf '\n  }\n}\n'
} > "$out"

echo "wrote $out"
