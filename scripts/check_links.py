#!/usr/bin/env python3
"""Offline link checker for the repository's markdown files.

Validates every inline markdown link in tracked *.md files:

* relative file links must point at an existing file or directory;
* `#anchor` fragments (standalone or after a .md path) must match a heading
  in the target file, using GitHub's heading-to-anchor slug rules;
* external links (http/https/mailto) are skipped — CI has no network, and
  this checker's job is keeping the *internal* docs graph sound.

Stdlib only. Exit code 0 when every link resolves, 1 otherwise.

Usage: scripts/check_links.py [root-dir]
"""

import os
import re
import sys
import unicodedata

SKIP_DIRS = {".git", "target", "node_modules"}
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

# Inline links: [text](target). Images share the syntax ( ![alt](src) ) and
# are checked the same way. Targets containing spaces or parens are rare in
# this repo and out of scope.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub's heading -> anchor transformation (close enough for ASCII docs):
    strip markdown emphasis/code/link syntax, lowercase, drop punctuation,
    spaces to hyphens."""
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # [text](url) -> text
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    text = unicodedata.normalize("NFKD", text)
    out = []
    for ch in text.strip().lower():
        if ch.isalnum():
            out.append(ch)
        elif ch in " -":
            out.append("-" if ch == " " else ch)
        # other punctuation is dropped
    return "".join(out)


def anchors_of(md_path: str) -> set:
    """All anchors a markdown file exposes (heading slugs, deduplicated with
    GitHub's -1, -2 suffixes)."""
    seen = {}
    anchors = set()
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for line in f:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = slugify(m.group(2))
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def links_of(md_path: str):
    """(line_number, target) for every inline link outside code fences."""
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            # Drop inline code spans so `[x](y)` examples aren't checked.
            stripped = re.sub(r"`[^`]*`", "", line)
            for m in LINK_RE.finditer(stripped):
                yield lineno, m.group(1)


def check(root: str) -> int:
    anchor_cache = {}
    errors = []
    for path in sorted(md_files(root)):
        rel = os.path.relpath(path, root)
        for lineno, target in links_of(path):
            if target.startswith(SKIP_SCHEMES):
                continue
            frag = None
            if "#" in target:
                target, frag = target.split("#", 1)
            dest = path if target == "" else os.path.normpath(
                os.path.join(os.path.dirname(path), target)
            )
            if target and not os.path.exists(dest):
                errors.append(f"{rel}:{lineno}: broken path: {target}")
                continue
            if frag is not None and frag != "":
                if not dest.lower().endswith(".md"):
                    continue  # anchors into non-markdown files: not ours to judge
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_of(dest)
                if frag.lower() not in anchor_cache[dest]:
                    errors.append(f"{rel}:{lineno}: missing anchor: #{frag}")
    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_links: {'FAIL' if errors else 'ok'} "
          f"({len(errors)} broken link{'s' if len(errors) != 1 else ''})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
