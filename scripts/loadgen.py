#!/usr/bin/env python3
"""Multi-tenant load generator for the scoring server (`dm-serve`).

Speaks the server's length-prefixed JSON protocol (4-byte big-endian
frame length, then a UTF-8 JSON request — see
`crates/serve/src/protocol.rs`) with N concurrent tenants, each on its own
connection. Every tenant scores the same program family with
tenant-specific data, alternating two input size classes so the run
exercises plan-cache hits AND misses, and optionally marks requests
batchable so concurrent vector scorings coalesce.

Two ways to point it at a server, both stdlib-only:

* `--spawn CMD...` — run CMD (typically
  `cargo run --release --example scoring_server`) with
  `DMML_SERVE_ADDR=127.0.0.1:0`, parse the `scoring listening on ADDR`
  banner, run the load, then terminate it.
* `--addr HOST:PORT` — load an already-running server.

Exit code 0 iff every request got a well-formed, successful response
(`protocol errors: 0`). Prints a one-line summary plus per-tenant p50/p99
latency, suitable for the warn-only CI smoke job and for eyeballing E17.

Error lines include the server-assigned request id (`rid`) so a failed
request can be looked up in the server's flight recorder
(`/debug/requests`, `/debug/trace?id=<rid>`). With `--slow MS` (plus
`--metrics HOST:PORT` pointing at the server's metrics endpoint), any
request slower than MS milliseconds gets its server-side per-phase
breakdown printed after the run, fetched from `/debug/requests`.

Usage:
  scripts/loadgen.py --tenants 4 --requests 25 --spawn \\
      cargo run --release --example scoring_server
  scripts/loadgen.py --addr 127.0.0.1:7878 --tenants 8 --requests 50 --batch
  scripts/loadgen.py --addr 127.0.0.1:7878 --metrics 127.0.0.1:9100 --slow 50
"""

import argparse
import json
import os
import socket
import struct
import subprocess
import sys
import threading
import time
import urllib.request

BANNER = "scoring listening on "


def send_frame(sock: socket.socket, payload: str) -> None:
    raw = payload.encode("utf-8")
    sock.sendall(struct.pack(">I", len(raw)) + raw)


def recv_frame(sock: socket.socket) -> str:
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        if not chunk:
            raise ConnectionError("server closed mid-header")
        header += chunk
    (n,) = struct.unpack(">I", header)
    body = b""
    while len(body) < n:
        chunk = sock.recv(min(65536, n - len(body)))
        if not chunk:
            raise ConnectionError("server closed mid-frame")
        body += chunk
    return body.decode("utf-8")


def score_request(tenant: str, seq: int, batch: bool) -> dict:
    """Alternate two size classes of the same program: even sequence
    numbers share one plan-cache entry, odd ones another. In batch mode
    the program is `X %*% v` — root matmul against the vector, which is
    what the server's micro-batcher coalesces — and the model matrix X
    depends only on the sequence number, so concurrent tenants at the
    same sequence share bit-identical context and may land in one gemm.
    """
    n = 64 if seq % 2 == 0 else 192
    d = 8
    x = [((i * 13 + seq * 7) % 23) * 0.31 - 2.0 for i in range(n * d)]
    v = [((i * 5 + seq) % 11) * 0.17 - 0.6 for i in range(d)]
    req = {
        "tenant": tenant,
        "cmd": "score",
        "program": "X %*% v" if batch else "t(X) %*% (X %*% v)",
        "inputs": {
            "X": {"rows": n, "cols": d, "data": x},
            "v": {"rows": d, "cols": 1, "data": v},
        },
    }
    if batch:
        req["batch"] = True
    return req


class TenantStats:
    def __init__(self):
        self.latencies_ms = []
        self.cache_hits = 0
        self.batched = 0
        self.errors = []
        # (rid, seq, latency_ms) for requests over the --slow threshold.
        self.slow = []


def run_tenant(addr, tenant: str, requests: int, batch: bool, stats: TenantStats,
               slow_ms=None) -> None:
    try:
        with socket.create_connection(addr, timeout=30) as sock:
            send_frame(sock, json.dumps({"tenant": tenant, "cmd": "ping"}))
            pong = json.loads(recv_frame(sock))
            if pong.get("kind") != "pong":
                stats.errors.append(f"bad pong: {pong}")
                return
            for seq in range(requests):
                t0 = time.monotonic()
                send_frame(sock, json.dumps(score_request(tenant, seq, batch)))
                resp = json.loads(recv_frame(sock))
                lat_ms = (time.monotonic() - t0) * 1e3
                stats.latencies_ms.append(lat_ms)
                rid = resp.get("rid")  # server-assigned flight-recorder id
                if slow_ms is not None and lat_ms > slow_ms:
                    stats.slow.append((rid, seq, lat_ms))
                if not resp.get("ok"):
                    stats.errors.append(f"seq {seq} rid {rid}: {resp.get('error')}")
                    continue
                if resp.get("kind") != "matrix" or "data" not in resp:
                    stats.errors.append(f"seq {seq} rid {rid}: malformed response {resp}")
                    continue
                stats.cache_hits += resp.get("cache") == "hit"
                stats.batched += bool(resp.get("batched"))
    except (OSError, ConnectionError, json.JSONDecodeError) as e:
        stats.errors.append(f"{type(e).__name__}: {e}")


def quantile(sorted_vals, q):
    if not sorted_vals:
        return float("nan")
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def fetch_debug_requests(metrics_addr: str, n: int):
    """Fetch recent flight-recorder records and index them by request id."""
    url = f"http://{metrics_addr}/debug/requests?n={n}"
    with urllib.request.urlopen(url, timeout=10) as resp:
        body = json.loads(resp.read().decode("utf-8"))
    return {rec["id"]: rec for rec in body.get("requests", [])}


def print_slow_breakdown(metrics_addr: str, slow, total_requests: int) -> None:
    """For each client-side slow request, print the server's per-phase
    latency attribution from /debug/requests so queue-, compile- and
    batch-wait-dominated requests are distinguishable at a glance."""
    try:
        # Over-fetch: pings and other tenants' traffic consume rids too.
        records = fetch_debug_requests(metrics_addr, total_requests * 2 + 32)
    except (OSError, ValueError) as e:
        print(f"slow: could not fetch /debug/requests from {metrics_addr}: {e}",
              file=sys.stderr)
        return
    for tenant, rid, seq, lat_ms in slow:
        rec = records.get(rid)
        if rec is None:
            print(f"slow: {tenant} seq {seq} rid {rid} {lat_ms:.2f} ms "
                  f"(not in flight recorder — evicted or rid missing)")
            continue
        phases = rec.get("phases", {})
        parts = ", ".join(
            f"{name} {ns / 1e6:.2f}ms"
            for name, ns in sorted(phases.items(), key=lambda kv: -kv[1])
            if ns
        )
        cache = "hit" if rec.get("cache_hit") else "miss"
        print(f"slow: {tenant} seq {seq} rid {rid} {lat_ms:.2f} ms client / "
              f"{rec.get('total_ns', 0) / 1e6:.2f} ms server (cache {cache}): {parts}")


def run_load(addr, tenants: int, requests: int, batch: bool,
             slow_ms=None, metrics_addr=None) -> int:
    per_tenant = {f"tenant-{i}": TenantStats() for i in range(tenants)}
    threads = [
        threading.Thread(target=run_tenant, args=(addr, name, requests, batch, st, slow_ms))
        for name, st in per_tenant.items()
    ]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.monotonic() - t0

    all_lat, errors, hits, batched, done = [], [], 0, 0, 0
    for name, st in sorted(per_tenant.items()):
        lat = sorted(st.latencies_ms)
        all_lat.extend(lat)
        done += len(lat)
        hits += st.cache_hits
        batched += st.batched
        errors.extend(f"{name}: {e}" for e in st.errors)
        print(
            f"{name}: {len(lat)} requests, p50 {quantile(lat, 0.50):.2f} ms, "
            f"p99 {quantile(lat, 0.99):.2f} ms, {st.cache_hits} cache hits, "
            f"{st.batched} batched"
        )
    all_lat.sort()
    expected = tenants * requests
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    print(
        f"loadgen: {done}/{expected} responses in {wall_s:.2f}s "
        f"({done / wall_s:.0f} req/s), p50 {quantile(all_lat, 0.50):.2f} ms, "
        f"p99 {quantile(all_lat, 0.99):.2f} ms, "
        f"cache hits {hits}, batched {batched}, protocol errors: {len(errors)}"
    )
    if slow_ms is not None:
        slow = [(name, rid, seq, lat)
                for name, st in sorted(per_tenant.items())
                for rid, seq, lat in st.slow]
        print(f"slow: {len(slow)} request(s) over {slow_ms} ms")
        if slow and metrics_addr:
            print_slow_breakdown(metrics_addr, slow, expected)
        elif slow:
            print("slow: pass --metrics HOST:PORT to fetch per-phase breakdowns "
                  "from /debug/requests", file=sys.stderr)
    return 0 if not errors and done == expected else 1


def spawn_server(cmd):
    env = dict(os.environ, DMML_SERVE_ADDR="127.0.0.1:0")
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE, text=True)
    assert proc.stdout is not None
    addr = None
    for line in proc.stdout:
        sys.stdout.write(line)
        if line.startswith(BANNER):
            host, _, port = line[len(BANNER):].strip().rpartition(":")
            addr = (host, int(port))
            break
    if addr is None:
        proc.terminate()
        raise SystemExit(f"{cmd[0]} exited without printing the scoring banner")
    return proc, addr


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--tenants", type=int, default=4)
    ap.add_argument("--requests", type=int, default=25, help="requests per tenant")
    ap.add_argument("--batch", action="store_true", help="mark requests batchable")
    ap.add_argument("--addr", help="host:port of a running server")
    ap.add_argument("--slow", type=float, metavar="MS",
                    help="report requests slower than MS milliseconds; with "
                         "--metrics, print their per-phase breakdown from "
                         "/debug/requests")
    ap.add_argument("--metrics", metavar="HOST:PORT",
                    help="the server's metrics/debug endpoint address")
    ap.add_argument("--spawn", nargs=argparse.REMAINDER,
                    help="command to start a server (everything after --spawn)")
    args = ap.parse_args()

    if args.spawn:
        proc, addr = spawn_server(args.spawn)
        try:
            return run_load(addr, args.tenants, args.requests, args.batch,
                            args.slow, args.metrics)
        finally:
            proc.terminate()
            try:
                proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()
    elif args.addr:
        host, _, port = args.addr.rpartition(":")
        return run_load((host, int(port)), args.tenants, args.requests, args.batch,
                        args.slow, args.metrics)
    else:
        ap.error("one of --addr or --spawn is required")
    return 2


if __name__ == "__main__":
    sys.exit(main())
