#!/usr/bin/env python3
"""Multi-tenant load generator for the scoring server (`dm-serve`).

Speaks the server's length-prefixed JSON protocol (4-byte big-endian
frame length, then a UTF-8 JSON request — see
`crates/serve/src/protocol.rs`) with N concurrent tenants, each on its own
connection. Every tenant scores the same program family with
tenant-specific data, alternating two input size classes so the run
exercises plan-cache hits AND misses, and optionally marks requests
batchable so concurrent vector scorings coalesce.

Two ways to point it at a server, both stdlib-only:

* `--spawn CMD...` — run CMD (typically
  `cargo run --release --example scoring_server`) with
  `DMML_SERVE_ADDR=127.0.0.1:0`, parse the `scoring listening on ADDR`
  banner, run the load, then terminate it.
* `--addr HOST:PORT` — load an already-running server.

Exit code 0 iff every request got a well-formed, successful response
(`protocol errors: 0`). Prints a one-line summary plus per-tenant p50/p99
latency, suitable for the warn-only CI smoke job and for eyeballing E17.

Usage:
  scripts/loadgen.py --tenants 4 --requests 25 --spawn \\
      cargo run --release --example scoring_server
  scripts/loadgen.py --addr 127.0.0.1:7878 --tenants 8 --requests 50 --batch
"""

import argparse
import json
import os
import socket
import struct
import subprocess
import sys
import threading
import time

BANNER = "scoring listening on "


def send_frame(sock: socket.socket, payload: str) -> None:
    raw = payload.encode("utf-8")
    sock.sendall(struct.pack(">I", len(raw)) + raw)


def recv_frame(sock: socket.socket) -> str:
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        if not chunk:
            raise ConnectionError("server closed mid-header")
        header += chunk
    (n,) = struct.unpack(">I", header)
    body = b""
    while len(body) < n:
        chunk = sock.recv(min(65536, n - len(body)))
        if not chunk:
            raise ConnectionError("server closed mid-frame")
        body += chunk
    return body.decode("utf-8")


def score_request(tenant: str, seq: int, batch: bool) -> dict:
    """Alternate two size classes of the same program: even sequence
    numbers share one plan-cache entry, odd ones another. In batch mode
    the program is `X %*% v` — root matmul against the vector, which is
    what the server's micro-batcher coalesces — and the model matrix X
    depends only on the sequence number, so concurrent tenants at the
    same sequence share bit-identical context and may land in one gemm.
    """
    n = 64 if seq % 2 == 0 else 192
    d = 8
    x = [((i * 13 + seq * 7) % 23) * 0.31 - 2.0 for i in range(n * d)]
    v = [((i * 5 + seq) % 11) * 0.17 - 0.6 for i in range(d)]
    req = {
        "tenant": tenant,
        "cmd": "score",
        "program": "X %*% v" if batch else "t(X) %*% (X %*% v)",
        "inputs": {
            "X": {"rows": n, "cols": d, "data": x},
            "v": {"rows": d, "cols": 1, "data": v},
        },
    }
    if batch:
        req["batch"] = True
    return req


class TenantStats:
    def __init__(self):
        self.latencies_ms = []
        self.cache_hits = 0
        self.batched = 0
        self.errors = []


def run_tenant(addr, tenant: str, requests: int, batch: bool, stats: TenantStats) -> None:
    try:
        with socket.create_connection(addr, timeout=30) as sock:
            send_frame(sock, json.dumps({"tenant": tenant, "cmd": "ping"}))
            pong = json.loads(recv_frame(sock))
            if pong.get("kind") != "pong":
                stats.errors.append(f"bad pong: {pong}")
                return
            for seq in range(requests):
                t0 = time.monotonic()
                send_frame(sock, json.dumps(score_request(tenant, seq, batch)))
                resp = json.loads(recv_frame(sock))
                stats.latencies_ms.append((time.monotonic() - t0) * 1e3)
                if not resp.get("ok"):
                    stats.errors.append(f"seq {seq}: {resp.get('error')}")
                    continue
                if resp.get("kind") != "matrix" or "data" not in resp:
                    stats.errors.append(f"seq {seq}: malformed response {resp}")
                    continue
                stats.cache_hits += resp.get("cache") == "hit"
                stats.batched += bool(resp.get("batched"))
    except (OSError, ConnectionError, json.JSONDecodeError) as e:
        stats.errors.append(f"{type(e).__name__}: {e}")


def quantile(sorted_vals, q):
    if not sorted_vals:
        return float("nan")
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def run_load(addr, tenants: int, requests: int, batch: bool) -> int:
    per_tenant = {f"tenant-{i}": TenantStats() for i in range(tenants)}
    threads = [
        threading.Thread(target=run_tenant, args=(addr, name, requests, batch, st))
        for name, st in per_tenant.items()
    ]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.monotonic() - t0

    all_lat, errors, hits, batched, done = [], [], 0, 0, 0
    for name, st in sorted(per_tenant.items()):
        lat = sorted(st.latencies_ms)
        all_lat.extend(lat)
        done += len(lat)
        hits += st.cache_hits
        batched += st.batched
        errors.extend(f"{name}: {e}" for e in st.errors)
        print(
            f"{name}: {len(lat)} requests, p50 {quantile(lat, 0.50):.2f} ms, "
            f"p99 {quantile(lat, 0.99):.2f} ms, {st.cache_hits} cache hits, "
            f"{st.batched} batched"
        )
    all_lat.sort()
    expected = tenants * requests
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    print(
        f"loadgen: {done}/{expected} responses in {wall_s:.2f}s "
        f"({done / wall_s:.0f} req/s), p50 {quantile(all_lat, 0.50):.2f} ms, "
        f"p99 {quantile(all_lat, 0.99):.2f} ms, "
        f"cache hits {hits}, batched {batched}, protocol errors: {len(errors)}"
    )
    return 0 if not errors and done == expected else 1


def spawn_server(cmd):
    env = dict(os.environ, DMML_SERVE_ADDR="127.0.0.1:0")
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE, text=True)
    assert proc.stdout is not None
    addr = None
    for line in proc.stdout:
        sys.stdout.write(line)
        if line.startswith(BANNER):
            host, _, port = line[len(BANNER):].strip().rpartition(":")
            addr = (host, int(port))
            break
    if addr is None:
        proc.terminate()
        raise SystemExit(f"{cmd[0]} exited without printing the scoring banner")
    return proc, addr


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--tenants", type=int, default=4)
    ap.add_argument("--requests", type=int, default=25, help="requests per tenant")
    ap.add_argument("--batch", action="store_true", help="mark requests batchable")
    ap.add_argument("--addr", help="host:port of a running server")
    ap.add_argument("--spawn", nargs=argparse.REMAINDER,
                    help="command to start a server (everything after --spawn)")
    args = ap.parse_args()

    if args.spawn:
        proc, addr = spawn_server(args.spawn)
        try:
            return run_load(addr, args.tenants, args.requests, args.batch)
        finally:
            proc.terminate()
            try:
                proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()
    elif args.addr:
        host, _, port = args.addr.rpartition(":")
        return run_load((host, int(port)), args.tenants, args.requests, args.batch)
    else:
        ap.error("one of --addr or --spawn is required")
    return 2


if __name__ == "__main__":
    sys.exit(main())
