#!/usr/bin/env python3
"""Smoke-test the live `/metrics` scrape endpoint.

Two modes, both stdlib-only (CI has no network beyond localhost):

* `--spawn CMD...` — run CMD with `DMML_METRICS_ADDR=127.0.0.1:0` and
  `DMML_METRICS_HOLD_MS` set so the process stays scrapeable, parse the
  `metrics listening on http://ADDR/metrics` line it prints, then fetch
  and validate both endpoints while it is alive.
* `ADDR` — validate an already-running endpoint at `host:port`.

Validation: `/metrics` must return HTTP 200 with a Prometheus text
exposition (`# TYPE` comments and `name[{labels}] value` samples, every
value a parseable float, every name matching `[a-zA-Z_:][a-zA-Z0-9_:]*`);
`/stats.json` must return HTTP 200 with a JSON object. Exit 0 on success.

With `--debug` the flight-recorder endpoints are validated too:
`/debug/requests` and `/debug/slow` must be HTTP 200 `application/json`
with their required fields, and `/debug/trace?id=` must serve a Chrome
trace for a recorded id (404 for an unknown one). Only meaningful
against a server that mounts a flight recorder (the scoring server);
plain `trace_run` invocations must not pass `--debug`.

Usage:
  scripts/check_metrics.py --spawn cargo run --release --example trace_run
  scripts/check_metrics.py 127.0.0.1:9184
  scripts/check_metrics.py --debug 127.0.0.1:9184
"""

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

HOLD_MS = "20000"
NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LISTEN_RE = re.compile(r"metrics listening on http://([^/\s]+)/metrics")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")


def fetch(addr: str, path: str) -> str:
    with urllib.request.urlopen(f"http://{addr}{path}", timeout=10) as resp:
        if resp.status != 200:
            raise SystemExit(f"GET {path}: HTTP {resp.status}")
        return resp.read().decode("utf-8")


def fetch_json(addr: str, path: str):
    """Fetch a /debug endpoint: require 200, application/json, parseable."""
    with urllib.request.urlopen(f"http://{addr}{path}", timeout=10) as resp:
        if resp.status != 200:
            raise SystemExit(f"GET {path}: HTTP {resp.status}")
        ctype = resp.headers.get("Content-Type", "")
        if "application/json" not in ctype:
            raise SystemExit(f"GET {path}: content type {ctype!r}, want application/json")
        body = resp.read().decode("utf-8")
    try:
        return json.loads(body)
    except json.JSONDecodeError as e:
        raise SystemExit(f"GET {path}: body is not valid JSON: {e}")


def require_fields(path: str, obj: dict, fields) -> None:
    missing = [f for f in fields if f not in obj]
    if missing:
        raise SystemExit(f"GET {path}: missing required fields {missing}")


def check_debug(addr: str) -> None:
    """Validate the three flight-recorder endpoints."""
    reqs = fetch_json(addr, "/debug/requests?n=16")
    require_fields("/debug/requests", reqs, ["requests", "capacity"])
    if not isinstance(reqs["requests"], list):
        raise SystemExit("/debug/requests: 'requests' is not a list")
    for rec in reqs["requests"]:
        require_fields("/debug/requests", rec,
                       ["id", "tenant", "total_ns", "phases", "cache_hit"])
        if not isinstance(rec["phases"], dict):
            raise SystemExit("/debug/requests: record 'phases' is not an object")

    slow = fetch_json(addr, "/debug/slow")
    require_fields("/debug/slow", slow,
                   ["threshold_ns", "self_tuned", "samples", "slow"])
    if not isinstance(slow["slow"], list):
        raise SystemExit("/debug/slow: 'slow' is not a list")

    traced = 0
    if reqs["requests"]:
        trace = fetch_json(addr, f"/debug/trace?id={reqs['requests'][0]['id']}")
        require_fields("/debug/trace", trace, ["traceEvents"])
        traced = len(trace["traceEvents"])
    # An id the recorder cannot know must 404, not 200-with-garbage.
    try:
        urllib.request.urlopen(f"http://{addr}/debug/trace?id=999999999999", timeout=10)
        raise SystemExit("/debug/trace with unknown id did not return 404")
    except urllib.error.HTTPError as e:
        if e.code != 404:
            raise SystemExit(f"/debug/trace with unknown id: HTTP {e.code}, want 404")
    print(f"ok: /debug/requests ({len(reqs['requests'])} records), "
          f"/debug/slow ({len(slow['slow'])} slow), "
          f"/debug/trace ({traced} events)")


def check_prometheus(body: str) -> int:
    """Validate exposition-format conformance; return the sample count."""
    samples = 0
    for line in body.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if parts[:2] == ["#", "TYPE"]:
                if len(parts) != 4 or not NAME_RE.match(parts[2]):
                    raise SystemExit(f"malformed TYPE comment: {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            raise SystemExit(f"malformed sample line: {line!r}")
        try:
            float(m.group(3))
        except ValueError:
            raise SystemExit(f"unparseable sample value: {line!r}")
        samples += 1
    return samples


def validate(addr: str, wait_s: float = 0.0, debug: bool = False) -> None:
    # Stats are recorded as the run progresses, so right after startup the
    # registry may be empty; poll until samples appear (or wait_s elapses).
    deadline = time.monotonic() + wait_s
    while True:
        n = check_prometheus(fetch(addr, "/metrics"))
        if n > 0 or time.monotonic() >= deadline:
            break
        time.sleep(0.5)
    if n == 0:
        raise SystemExit("no samples in /metrics body")
    stats = json.loads(fetch(addr, "/stats.json"))
    if not isinstance(stats, dict):
        raise SystemExit("/stats.json did not return a JSON object")
    print(f"ok: {n} samples on /metrics, {len(stats)} top-level keys on /stats.json")
    if debug:
        check_debug(addr)


def spawn_and_validate(cmd: list) -> None:
    env = dict(os.environ, DMML_METRICS_ADDR="127.0.0.1:0", DMML_METRICS_HOLD_MS=HOLD_MS)
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE, text=True)
    addr = None
    try:
        assert proc.stdout is not None
        for line in proc.stdout:
            sys.stdout.write(line)
            m = LISTEN_RE.search(line)
            if m:
                addr = m.group(1)
                break
        if addr is None:
            raise SystemExit(f"{cmd[0]} exited without printing the metrics address")
        validate(addr, wait_s=15.0)
    finally:
        proc.terminate()
        # Drain remaining output so the child never blocks on a full pipe.
        try:
            proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()


def main() -> None:
    args = sys.argv[1:]
    debug = "--debug" in args
    if debug:
        args.remove("--debug")
    if not args:
        raise SystemExit(__doc__)
    if args[0] == "--spawn":
        if len(args) < 2:
            raise SystemExit("--spawn needs a command to run")
        if debug:
            raise SystemExit("--debug requires a running server (ADDR mode)")
        spawn_and_validate(args[1:])
    else:
        validate(args[0], debug=debug)


if __name__ == "__main__":
    main()
