#!/usr/bin/env python3
"""Compare two BENCH_*.json snapshots and flag median-time regressions.

Usage:
    scripts/bench_regress.py BASELINE.json CANDIDATE.json
        [--threshold 0.25] [--format text|markdown]
        [--gate ID_PREFIX[,ID_PREFIX...]] ...

Each snapshot is the output of scripts/bench_snapshot.sh:

    {"date": ..., "git": ..., "benches": {
        "<bench>": [{"id": "group/case", "min": "1.2 ms",
                     "median": "1.3 ms", "mean": "1.4 ms"}, ...]}}

Benchmarks present in both snapshots are matched by id. A benchmark whose
candidate median exceeds the baseline median by more than the threshold
(default 25%) is a regression; the script prints a summary and exits 1 if
any regression was found, 0 otherwise. Ids present in only one snapshot are
reported but never fail the run (benchmarks come and go between PRs).

With --gate, only benchmarks whose id starts with one of the given prefixes
can fail the run; regressions elsewhere are reported as warnings. This lets
CI hard-fail on a curated set of stable benchmarks while the noisier ones
stay informational. --gate is repeatable and accepts comma-separated lists.

Stdlib only — runs anywhere CI has a python3.
"""

from __future__ import annotations

import argparse
import json
import sys

# Duration strings are "<value> <unit>", as emitted by the criterion shim.
UNIT_NS = {
    "ns": 1.0,
    "us": 1e3,
    "ms": 1e6,
    "s": 1e9,
}


def parse_duration_ns(text: str) -> float:
    """Parse "604.239 us" / "2.757 s" into nanoseconds."""
    parts = text.strip().split()
    if len(parts) != 2 or parts[1] not in UNIT_NS:
        raise ValueError(f"unparseable duration: {text!r}")
    return float(parts[0]) * UNIT_NS[parts[1]]


def fmt_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3f} {unit}"
    return f"{ns:.0f} ns"


def load_medians(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as f:
        snap = json.load(f)
    medians: dict[str, float] = {}
    for entries in snap.get("benches", {}).values():
        for entry in entries:
            medians[entry["id"]] = parse_duration_ns(entry["median"])
    return medians


def compare(
    base: dict[str, float], cand: dict[str, float], threshold: float
) -> tuple[list[tuple[str, float, float, float]], list[str], list[str]]:
    """Return (rows, only_base, only_cand); rows are (id, base, cand, delta)."""
    rows = []
    for bench_id in sorted(base.keys() & cand.keys()):
        b, c = base[bench_id], cand[bench_id]
        delta = (c - b) / b if b > 0 else 0.0
        rows.append((bench_id, b, c, delta))
    only_base = sorted(base.keys() - cand.keys())
    only_cand = sorted(cand.keys() - base.keys())
    return rows, only_base, only_cand


def render_text(rows, only_base, only_cand, threshold) -> str:
    lines = []
    for bench_id, b, c, delta in rows:
        flag = " REGRESSION" if delta > threshold else ""
        lines.append(
            f"{bench_id:<40} {fmt_ns(b):>12} -> {fmt_ns(c):>12} "
            f"({delta:+7.1%}){flag}"
        )
    for bench_id in only_base:
        lines.append(f"{bench_id:<40} removed (baseline only)")
    for bench_id in only_cand:
        lines.append(f"{bench_id:<40} new (candidate only)")
    return "\n".join(lines)


def render_markdown(rows, only_base, only_cand, threshold) -> str:
    lines = [
        "| benchmark | baseline median | candidate median | delta | status |",
        "|---|---:|---:|---:|---|",
    ]
    for bench_id, b, c, delta in rows:
        status = "**regression**" if delta > threshold else "ok"
        lines.append(
            f"| `{bench_id}` | {fmt_ns(b)} | {fmt_ns(c)} | {delta:+.1%} | {status} |"
        )
    for bench_id in only_base:
        lines.append(f"| `{bench_id}` | {''} | removed | | ignored |")
    for bench_id in only_cand:
        lines.append(f"| `{bench_id}` | new | | | ignored |")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline BENCH_*.json")
    ap.add_argument("candidate", help="candidate BENCH_*.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional median slowdown that counts as a regression "
        "(default 0.25 = 25%%)",
    )
    ap.add_argument(
        "--format",
        choices=("text", "markdown"),
        default="text",
        help="summary format (default text)",
    )
    ap.add_argument(
        "--gate",
        action="append",
        default=[],
        metavar="ID_PREFIX[,ID_PREFIX...]",
        help="only benchmarks whose id starts with one of these prefixes "
        "fail the run; others warn (repeatable, comma-separated)",
    )
    args = ap.parse_args(argv)
    gates = [g.strip() for spec in args.gate for g in spec.split(",") if g.strip()]

    try:
        base = load_medians(args.baseline)
        cand = load_medians(args.candidate)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"bench_regress: {e}", file=sys.stderr)
        return 2

    rows, only_base, only_cand = compare(base, cand, args.threshold)
    render = render_markdown if args.format == "markdown" else render_text
    print(render(rows, only_base, only_cand, args.threshold))

    regressions = [r for r in rows if r[3] > args.threshold]
    if gates:
        gated = [r for r in regressions if any(r[0].startswith(g) for g in gates)]
        warned = [r for r in regressions if r not in gated]
        for bench_id, _, _, delta in warned:
            print(
                f"warning: ungated regression {bench_id} ({delta:+.1%})",
                file=sys.stderr,
            )
        if gated:
            print(
                f"\n{len(gated)} gated regression(s) beyond "
                f"{args.threshold:.0%} median slowdown",
                file=sys.stderr,
            )
            return 1
        print(
            f"\nno gated regressions beyond {args.threshold:.0%} "
            f"({len(rows)} benchmarks compared, {len(gates)} gate prefixes)",
            file=sys.stderr,
        )
        return 0
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.threshold:.0%} median slowdown",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nno regressions beyond {args.threshold:.0%} "
        f"({len(rows)} benchmarks compared)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
