//! Property-based tests: compression must be lossless and kernels must agree
//! with their dense counterparts for arbitrary matrices and plans.

use dm_compress::{planner::CompressionConfig, CompressedMatrix, Encoding};
use dm_matrix::{ops, Dense};
use proptest::prelude::*;

/// Matrices biased toward compressible structure (few distinct values, zeros)
/// but also containing incompressible noise columns.
fn matrix() -> impl Strategy<Value = Dense> {
    (2usize..60, 1usize..5).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            prop_oneof![
                3 => (0i64..4).prop_map(|v| v as f64),
                1 => Just(0.0),
                1 => -50.0..50.0f64,
            ],
            rows * cols,
        )
        .prop_map(move |data| Dense::from_vec(rows, cols, data).unwrap())
    })
}

fn small_config() -> CompressionConfig {
    CompressionConfig { sample_fraction: 0.5, min_sample_rows: 8, ..CompressionConfig::default() }
}

proptest! {
    #[test]
    fn compression_is_lossless(m in matrix()) {
        let cm = CompressedMatrix::compress(&m, &small_config());
        prop_assert!(cm.validate().is_ok(), "planner output violates invariants: {:?}", cm.validate());
        prop_assert!(cm.decompress().approx_eq(&m, 0.0));
    }

    #[test]
    fn uniform_encodings_lossless(m in matrix()) {
        for enc in [Encoding::Ddc, Encoding::Ole, Encoding::Rle, Encoding::Uncompressed] {
            let cm = CompressedMatrix::compress_uniform(&m, enc);
            prop_assert!(cm.validate().is_ok(), "{enc:?} output violates invariants: {:?}", cm.validate());
            prop_assert!(cm.decompress().approx_eq(&m, 0.0));
        }
    }

    #[test]
    fn gemv_agrees_with_dense(m in matrix()) {
        let v: Vec<f64> = (0..m.cols()).map(|i| i as f64 - 1.0).collect();
        let cm = CompressedMatrix::compress(&m, &small_config());
        let expect = ops::gemv(&m, &v);
        for (a, b) in cm.gemv(&v).iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn vecmat_agrees_with_dense(m in matrix()) {
        let v: Vec<f64> = (0..m.rows()).map(|i| (i % 5) as f64 - 2.0).collect();
        let cm = CompressedMatrix::compress(&m, &small_config());
        let expect = ops::gevm(&v, &m);
        for (a, b) in cm.vecmat(&v).iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn col_sums_agree_with_dense(m in matrix()) {
        let cm = CompressedMatrix::compress(&m, &small_config());
        let expect = ops::col_sums(&m);
        for (a, b) in cm.col_sums().iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn scalar_map_square_agrees(m in matrix()) {
        // x^2 is zero-preserving: dictionary-only rewrite path.
        let cm = CompressedMatrix::compress(&m, &small_config());
        let sq = cm.scalar_map(|v| v * v);
        prop_assert!(sq.decompress().approx_eq(&m.map(|v| v * v), 1e-12));
    }

    #[test]
    fn scalar_map_shift_agrees(m in matrix()) {
        // x+3 is not zero-preserving: forces the re-encode path on OLE/RLE.
        let cm = CompressedMatrix::compress(&m, &small_config());
        let sh = cm.scalar_map(|v| v + 3.0);
        prop_assert!(sh.validate().is_ok(), "re-encoded output violates invariants: {:?}", sh.validate());
        prop_assert!(sh.decompress().approx_eq(&m.map(|v| v + 3.0), 1e-12));
    }

    #[test]
    fn size_reporting_consistent(m in matrix()) {
        let cm = CompressedMatrix::compress(&m, &small_config());
        let total: usize = cm.groups().iter().map(|g| g.size_bytes()).sum();
        prop_assert_eq!(cm.size_bytes(), total);
        prop_assert_eq!(cm.uncompressed_bytes(), m.rows() * m.cols() * 8);
    }

    #[test]
    fn groups_partition_columns(m in matrix()) {
        let cm = CompressedMatrix::compress(&m, &small_config());
        let mut cols: Vec<usize> = cm.groups().iter().flat_map(|g| g.cols().to_vec()).collect();
        cols.sort_unstable();
        let expect: Vec<usize> = (0..m.cols()).collect();
        prop_assert_eq!(cols, expect);
    }
}

/// Degrees every parallel compressed kernel is exercised at: serial, the
/// smallest real split, and the machine's core count.
fn sweep_degrees() -> [usize; 3] {
    [1, 2, std::thread::available_parallelism().map_or(4, |n| n.get()).max(3)]
}

proptest! {
    // Parallel compressed kernels promise bit-identical results to the serial
    // paths: gemv partitions rows into segments each worker fills in serial
    // group order, vecmat/col_sums compute per-group local vectors in the
    // serial per-tuple order and scatter them to disjoint columns. So the
    // contract is exact `assert_eq!`, not a tolerance.
    #[test]
    fn par_compressed_gemv_bit_identical(m in matrix()) {
        let cm = CompressedMatrix::compress(&m, &small_config());
        let v: Vec<f64> = (0..m.cols()).map(|i| i as f64 * 0.4 - 1.1).collect();
        let serial = cm.gemv(&v);
        for deg in sweep_degrees() {
            prop_assert_eq!(&cm.gemv_with(&v, deg), &serial, "degree {}", deg);
        }
    }

    #[test]
    fn par_compressed_vecmat_bit_identical(m in matrix()) {
        let cm = CompressedMatrix::compress(&m, &small_config());
        let u: Vec<f64> = (0..m.rows()).map(|i| ((i % 13) as f64) * 0.2 - 0.9).collect();
        let serial = cm.vecmat(&u);
        for deg in sweep_degrees() {
            prop_assert_eq!(&cm.vecmat_with(&u, deg), &serial, "degree {}", deg);
        }
    }

    #[test]
    fn par_compressed_col_sums_bit_identical(m in matrix()) {
        let cm = CompressedMatrix::compress(&m, &small_config());
        let serial = cm.col_sums();
        for deg in sweep_degrees() {
            prop_assert_eq!(&cm.col_sums_with(deg), &serial, "degree {}", deg);
        }
    }

    #[test]
    fn par_uniform_encoding_kernels_bit_identical(m in matrix()) {
        // Force each encoding in turn so DDC/OLE/RLE/UC range kernels are all
        // hit regardless of what the planner would pick.
        for enc in [Encoding::Ddc, Encoding::Ole, Encoding::Rle, Encoding::Uncompressed] {
            let cm = CompressedMatrix::compress_uniform(&m, enc);
            let v: Vec<f64> = (0..m.cols()).map(|i| i as f64 - 1.5).collect();
            let serial = cm.gemv(&v);
            for deg in sweep_degrees() {
                prop_assert_eq!(&cm.gemv_with(&v, deg), &serial, "{:?} degree {}", enc, deg);
            }
        }
    }
}
