//! Binary serialization of compressed matrices, so compressed blocks can be
//! spilled/shipped without decompressing (the storage half of the compressed
//! linear algebra story).
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "DMCM" | rows u64 | cols u64 | num_groups u32
//! per group: tag u8 | num_cols u32 | cols u64* | payload
//!   DDC (0):  dict | width u8 | codes (at width)
//!   OLE (1):  dict | num_rows u64 | per-tuple: len u64, offsets u32*
//!   RLE (2):  dict | num_rows u64 | per-tuple: len u64, (start u32, run u32)*
//!   UC  (3):  rows u64 | cols u64 | values f64*
//! dict: width u32 | num_values u64 | values f64*
//! ```

use crate::codes::CodeArray;
use crate::dict::Dict;
use crate::group::ColGroup;
use crate::matrix::CompressedMatrix;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"DMCM";

fn put_dict(buf: &mut BytesMut, d: &Dict) {
    buf.put_u32_le(d.width() as u32);
    buf.put_u64_le(d.values().len() as u64);
    for &v in d.values() {
        buf.put_f64_le(v);
    }
}

fn get_dict(buf: &mut Bytes) -> Option<Dict> {
    if buf.remaining() < 12 {
        return None;
    }
    let width = buf.get_u32_le() as usize;
    let n = buf.get_u64_le() as usize;
    if width == 0 || !n.is_multiple_of(width) || buf.remaining() < n * 8 {
        // Zero-width only valid when there are no values at all.
        if width == 0 && n == 0 {
            return None; // encoded groups always have positive width
        }
        if !n.is_multiple_of(width) || buf.remaining() < n * 8 {
            return None;
        }
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(buf.get_f64_le());
    }
    Some(Dict::new(values, width))
}

/// Serialize a compressed matrix.
pub fn encode(cm: &CompressedMatrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + cm.size_bytes());
    buf.put_slice(MAGIC);
    buf.put_u64_le(cm.rows() as u64);
    buf.put_u64_le(cm.cols() as u64);
    buf.put_u32_le(cm.groups().len() as u32);
    for g in cm.groups() {
        let tag: u8 = match g {
            ColGroup::Ddc { .. } => 0,
            ColGroup::Ole { .. } => 1,
            ColGroup::Rle { .. } => 2,
            ColGroup::Uncompressed { .. } => 3,
        };
        buf.put_u8(tag);
        buf.put_u32_le(g.cols().len() as u32);
        for &c in g.cols() {
            buf.put_u64_le(c as u64);
        }
        match g {
            ColGroup::Ddc { dict, codes, .. } => {
                put_dict(&mut buf, dict);
                buf.put_u8(codes.width_bytes() as u8);
                buf.put_u64_le(codes.len() as u64);
                for c in codes.iter() {
                    match codes.width_bytes() {
                        1 => buf.put_u8(c as u8),
                        2 => buf.put_u16_le(c as u16),
                        _ => buf.put_u32_le(c),
                    }
                }
            }
            ColGroup::Ole { dict, offsets, num_rows, .. } => {
                put_dict(&mut buf, dict);
                buf.put_u64_le(*num_rows as u64);
                for offs in offsets {
                    buf.put_u64_le(offs.len() as u64);
                    for &o in offs {
                        buf.put_u32_le(o);
                    }
                }
            }
            ColGroup::Rle { dict, runs, num_rows, .. } => {
                put_dict(&mut buf, dict);
                buf.put_u64_le(*num_rows as u64);
                for rs in runs {
                    buf.put_u64_le(rs.len() as u64);
                    for &(s, l) in rs {
                        buf.put_u32_le(s);
                        buf.put_u32_le(l);
                    }
                }
            }
            ColGroup::Uncompressed { data, .. } => {
                buf.put_u64_le(data.rows() as u64);
                buf.put_u64_le(data.cols() as u64);
                for &v in data.data() {
                    buf.put_f64_le(v);
                }
            }
        }
    }
    buf.freeze()
}

/// Deserialize; `None` on malformed input.
pub fn decode(mut buf: Bytes) -> Option<CompressedMatrix> {
    if buf.remaining() < 4 + 16 + 4 || &buf.copy_to_bytes(4)[..] != MAGIC {
        return None;
    }
    let rows = buf.get_u64_le() as usize;
    let cols = buf.get_u64_le() as usize;
    let num_groups = buf.get_u32_le() as usize;
    let mut groups = Vec::with_capacity(num_groups);
    for _ in 0..num_groups {
        if buf.remaining() < 5 {
            return None;
        }
        let tag = buf.get_u8();
        let nc = buf.get_u32_le() as usize;
        if buf.remaining() < nc * 8 {
            return None;
        }
        let gcols: Vec<usize> = (0..nc).map(|_| buf.get_u64_le() as usize).collect();
        if gcols.iter().any(|&c| c >= cols) {
            return None;
        }
        let g = match tag {
            0 => {
                let dict = get_dict(&mut buf)?;
                if dict.width() != nc || buf.remaining() < 9 {
                    return None;
                }
                let width = buf.get_u8() as usize;
                let n = buf.get_u64_le() as usize;
                if n != rows || buf.remaining() < n * width {
                    return None;
                }
                let mut codes = Vec::with_capacity(n);
                for _ in 0..n {
                    let c = match width {
                        1 => u32::from(buf.get_u8()),
                        2 => u32::from(buf.get_u16_le()),
                        4 => buf.get_u32_le(),
                        _ => return None,
                    };
                    if c as usize >= dict.num_tuples() {
                        return None;
                    }
                    codes.push(c);
                }
                let codes = CodeArray::pack(&codes, dict.num_tuples());
                ColGroup::Ddc { cols: gcols, dict, codes }
            }
            1 => {
                let dict = get_dict(&mut buf)?;
                if dict.width() != nc || buf.remaining() < 8 {
                    return None;
                }
                let num_rows = buf.get_u64_le() as usize;
                if num_rows != rows {
                    return None;
                }
                let mut offsets = Vec::with_capacity(dict.num_tuples());
                for _ in 0..dict.num_tuples() {
                    if buf.remaining() < 8 {
                        return None;
                    }
                    let len = buf.get_u64_le() as usize;
                    if buf.remaining() < len * 4 {
                        return None;
                    }
                    let offs: Vec<u32> = (0..len).map(|_| buf.get_u32_le()).collect();
                    if offs.iter().any(|&o| o as usize >= rows) {
                        return None;
                    }
                    offsets.push(offs);
                }
                ColGroup::Ole { cols: gcols, dict, offsets, num_rows }
            }
            2 => {
                let dict = get_dict(&mut buf)?;
                if dict.width() != nc || buf.remaining() < 8 {
                    return None;
                }
                let num_rows = buf.get_u64_le() as usize;
                if num_rows != rows {
                    return None;
                }
                let mut runs = Vec::with_capacity(dict.num_tuples());
                for _ in 0..dict.num_tuples() {
                    if buf.remaining() < 8 {
                        return None;
                    }
                    let len = buf.get_u64_le() as usize;
                    if buf.remaining() < len * 8 {
                        return None;
                    }
                    let rs: Vec<(u32, u32)> =
                        (0..len).map(|_| (buf.get_u32_le(), buf.get_u32_le())).collect();
                    if rs.iter().any(|&(s, l)| (s as usize) + (l as usize) > rows) {
                        return None;
                    }
                    runs.push(rs);
                }
                ColGroup::Rle { cols: gcols, dict, runs, num_rows }
            }
            3 => {
                if buf.remaining() < 16 {
                    return None;
                }
                let r = buf.get_u64_le() as usize;
                let c = buf.get_u64_le() as usize;
                if r != rows || c != nc || buf.remaining() < r * c * 8 {
                    return None;
                }
                let mut data = Vec::with_capacity(r * c);
                for _ in 0..r * c {
                    data.push(buf.get_f64_le());
                }
                let block = dm_matrix::Dense::from_vec(r, c, data).ok()?;
                ColGroup::Uncompressed { cols: gcols, data: block }
            }
            _ => return None,
        };
        groups.push(g);
    }
    if buf.has_remaining() {
        return None; // trailing garbage
    }
    CompressedMatrix::from_parts(rows, cols, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::CompressionConfig;
    use dm_matrix::Dense;

    fn mixed() -> CompressedMatrix {
        let m = Dense::from_fn(500, 4, |r, c| match c {
            0 => (r / 64) as f64,
            1 => {
                if r % 29 == 0 {
                    2.5
                } else {
                    0.0
                }
            }
            2 => ((r * 31) % 5) as f64,
            _ => r as f64 * 0.77,
        });
        CompressedMatrix::compress(&m, &CompressionConfig::default())
    }

    #[test]
    fn round_trip_preserves_everything() {
        let cm = mixed();
        let bytes = encode(&cm);
        let back = decode(bytes).expect("valid encoding");
        assert_eq!(back, cm);
        assert_eq!(back.decompress(), cm.decompress());
    }

    #[test]
    fn serialized_size_tracks_compressed_size() {
        let cm = mixed();
        let bytes = encode(&cm);
        // The wire size should be within ~2x of the in-memory estimate
        // (framing overhead only).
        assert!(bytes.len() < 2 * cm.size_bytes() + 1024, "{} vs {}", bytes.len(), cm.size_bytes());
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(Bytes::from_static(b"")).is_none());
        assert!(decode(Bytes::from_static(b"NOPE")).is_none());
        assert!(decode(Bytes::from_static(b"DMCMxxxxxxxx")).is_none());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let full = encode(&mixed());
        // Chop the encoding at many boundaries; every prefix must fail
        // cleanly rather than panic.
        for cut in (0..full.len()).step_by(97) {
            let trunc = full.slice(0..cut);
            assert!(decode(trunc).is_none(), "prefix of {cut} bytes must be rejected");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut raw = BytesMut::from(&encode(&mixed())[..]);
        raw.put_u8(0);
        assert!(decode(raw.freeze()).is_none());
    }

    #[test]
    fn rejects_out_of_range_codes() {
        // Corrupt a DDC code beyond the dictionary by hand-flipping a byte is
        // fragile; instead, build a matrix with a tiny dictionary and verify
        // the validation path by corrupting the column index instead.
        let cm = mixed();
        let mut raw = BytesMut::from(&encode(&cm)[..]);
        // Column indices start right after magic+rows+cols+num_groups+tag+nc:
        // 4+8+8+4+1+4 = 29. Overwrite with an absurd column id.
        raw[29..37].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode(raw.freeze()).is_none());
    }
}
