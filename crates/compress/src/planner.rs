//! Sampling-based compression planning: per-column encoding choice and
//! greedy column co-coding.

use crate::estimate::{estimate_group, estimate_sizes, sample_rows, GroupStats};
use crate::matrix::CompressedMatrix;
use crate::Encoding;
use dm_matrix::Dense;
use dm_obs::{elapsed_ns, Recorder};
use std::fmt::Write as _;
use std::time::Instant;

/// Tuning knobs for the compression planner.
#[derive(Debug, Clone, Copy)]
pub struct CompressionConfig {
    /// Fraction of rows sampled for estimation.
    pub sample_fraction: f64,
    /// Lower bound on the sample size.
    pub min_sample_rows: usize,
    /// Enable greedy co-coding of correlated columns.
    pub cocode: bool,
    /// A column group is kept compressed only if its estimated compressed
    /// size is below `max_ratio_to_keep * uncompressed_size`.
    pub max_ratio_to_keep: f64,
    /// RNG seed for the row sample (deterministic plans for reproducibility).
    pub seed: u64,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        CompressionConfig {
            sample_fraction: 0.05,
            min_sample_rows: 256,
            cocode: true,
            max_ratio_to_keep: 1.0,
            seed: 0xD77,
        }
    }
}

/// The planned treatment of one column group.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedGroup {
    /// Columns of the group (co-coded together when more than one).
    pub cols: Vec<usize>,
    /// Chosen encoding.
    pub encoding: Encoding,
    /// Estimated compressed size in bytes.
    pub est_size: usize,
}

/// A complete compression plan for a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionPlan {
    /// Per-group decisions; groups partition the column set.
    pub groups: Vec<PlannedGroup>,
    /// Number of rows sampled while planning.
    pub sample_size: usize,
}

fn plan_one(m: &Dense, cols: &[usize], sample: &[usize]) -> (Encoding, usize, GroupStats) {
    let stats = estimate_group(m, cols, sample);
    let sizes = estimate_sizes(&stats, cols.len());
    let (enc, sz) = sizes.best();
    (enc, sz, stats)
}

/// One accepted co-coding merge, as recorded by [`plan_traced`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeDecision {
    /// Columns of the left group before the merge.
    pub left: Vec<usize>,
    /// Columns of the right group before the merge.
    pub right: Vec<usize>,
    /// Sum of the two groups' separate estimated sizes.
    pub est_separate: usize,
    /// Estimated size of the merged group.
    pub est_merged: usize,
}

/// What the planner did: every accepted co-coding merge, every group demoted
/// to the UC fallback, and the planner's own wall time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanTrace {
    /// Accepted merges, in the order applied.
    pub merges: Vec<MergeDecision>,
    /// Column groups demoted to UC by the `max_ratio_to_keep` guard.
    pub demoted: Vec<Vec<usize>>,
    /// Wall time spent planning.
    pub wall_ns: u64,
}

impl PlanTrace {
    /// Push the trace into a [`Recorder`] under the `compress.plan.*` sites.
    pub fn record(&self, rec: &dyn Recorder) {
        if !rec.is_enabled() {
            return;
        }
        rec.add("compress.plan.merges", self.merges.len() as u64);
        rec.add("compress.plan.demotions", self.demoted.len() as u64);
        rec.record_duration_ns("compress.plan.wall", self.wall_ns);
    }
}

/// Produce a compression plan for `m`.
///
/// 1. Sample rows once.
/// 2. Estimate per-column stats and pick the best single-column encoding.
/// 3. If co-coding is enabled, greedily merge the pair of groups whose merged
///    estimated size is smallest relative to the sum of their separate sizes,
///    repeating until no merge helps.
/// 4. Demote groups whose best compressed size exceeds
///    [`CompressionConfig::max_ratio_to_keep`] of uncompressed to the UC fallback.
pub fn plan(m: &Dense, cfg: &CompressionConfig) -> CompressionPlan {
    plan_traced(m, cfg).0
}

/// [`plan`], plus a [`PlanTrace`] of the co-coding and demotion decisions the
/// planner took along the way.
pub fn plan_traced(m: &Dense, cfg: &CompressionConfig) -> (CompressionPlan, PlanTrace) {
    let t0 = Instant::now();
    let mut span = dm_obs::trace::Span::enter("compress.plan", "compress");
    span.arg("dims", format!("{}x{}", m.rows(), m.cols()));
    let mut trace = PlanTrace::default();
    let sample = sample_rows(m.rows(), cfg.sample_fraction, cfg.min_sample_rows, cfg.seed);
    span.arg("sample_rows", sample.len().to_string());

    // Step 1: singleton groups.
    let estimate = dm_obs::trace::Span::enter("compress.estimate", "compress");
    let mut groups: Vec<(Vec<usize>, Encoding, usize)> = (0..m.cols())
        .map(|c| {
            let cols = vec![c];
            let (enc, sz, _) = plan_one(m, &cols, &sample);
            (cols, enc, sz)
        })
        .collect();
    drop(estimate);

    // Step 2: greedy pairwise co-coding. Only dictionary encodings benefit
    // from co-coding; skip pairs whose best encoding is UC.
    if cfg.cocode {
        let cocode = dm_obs::trace::Span::enter("compress.cocode", "compress");
        loop {
            let mut best: Option<(usize, usize, Encoding, usize, f64)> = None;
            for i in 0..groups.len() {
                for j in (i + 1)..groups.len() {
                    if groups[i].1 == Encoding::Uncompressed
                        || groups[j].1 == Encoding::Uncompressed
                    {
                        continue;
                    }
                    let mut merged: Vec<usize> = groups[i].0.clone();
                    merged.extend_from_slice(&groups[j].0);
                    merged.sort_unstable();
                    let (enc, sz, _) = plan_one(m, &merged, &sample);
                    let separate = groups[i].2 + groups[j].2;
                    let gain = separate as f64 - sz as f64;
                    if gain > 0.0 {
                        let better = match best {
                            None => true,
                            Some((.., g)) => gain > g,
                        };
                        if better {
                            best = Some((i, j, enc, sz, gain));
                        }
                    }
                }
            }
            match best {
                Some((i, j, enc, sz, _)) => {
                    let (right, _, right_sz) = groups.remove(j);
                    let (left, _, left_sz) = groups.remove(i);
                    trace.merges.push(MergeDecision {
                        left: left.clone(),
                        right: right.clone(),
                        est_separate: left_sz + right_sz,
                        est_merged: sz,
                    });
                    let mut merged = left;
                    merged.extend(right);
                    merged.sort_unstable();
                    groups.push((merged, enc, sz));
                }
                None => break,
            }
        }
        drop(cocode);
    }

    // Step 3: fallback demotion.
    let demote = dm_obs::trace::Span::enter("compress.demote", "compress");
    let planned = groups
        .into_iter()
        .map(|(cols, enc, sz)| {
            let uncompressed = m.rows() * cols.len() * 8;
            if enc == Encoding::Uncompressed
                || sz as f64 > cfg.max_ratio_to_keep * uncompressed as f64
            {
                // Only a compressible encoding rejected by the ratio guard is
                // a *demotion* decision worth tracing.
                if enc != Encoding::Uncompressed {
                    trace.demoted.push(cols.clone());
                }
                PlannedGroup { cols, encoding: Encoding::Uncompressed, est_size: uncompressed }
            } else {
                PlannedGroup { cols, encoding: enc, est_size: sz }
            }
        })
        .collect();
    drop(demote);

    trace.wall_ns = elapsed_ns(t0);
    drop(span);
    (CompressionPlan { groups: planned, sample_size: sample.len() }, trace)
}

/// Per-group estimated-vs-achieved report for a matrix compressed with
/// `plan` (the groups of [`CompressedMatrix::compress_with_plan`] align 1:1
/// with the plan's groups). Ratios are `uncompressed / compressed`, so bigger
/// is better; an `est/ach` pair far apart flags a sampling estimate that
/// misjudged the full column.
pub fn compression_report(plan: &CompressionPlan, cm: &CompressedMatrix) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "compression report: {} groups, sampled {} rows",
        plan.groups.len(),
        plan.sample_size
    );
    for (g, actual) in plan.groups.iter().zip(cm.groups()) {
        let uncompressed = (cm.rows() * g.cols.len() * 8) as f64;
        let est_ratio = uncompressed / g.est_size.max(1) as f64;
        let ach_ratio = uncompressed / actual.size_bytes().max(1) as f64;
        let _ = writeln!(
            out,
            "  cols {:?} {}: est {:.2}x achieved {:.2}x ({} B -> {} B)",
            g.cols,
            g.encoding,
            est_ratio,
            ach_ratio,
            uncompressed as usize,
            actual.size_bytes(),
        );
    }
    let total_ratio = cm.uncompressed_bytes() as f64 / cm.size_bytes().max(1) as f64;
    let _ = writeln!(out, "  overall: {total_ratio:.2}x");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_partitions_all_columns() {
        let m = Dense::from_fn(500, 4, |r, c| ((r + c) % 5) as f64);
        let p = plan(&m, &CompressionConfig::default());
        let mut cols: Vec<usize> = p.groups.iter().flat_map(|g| g.cols.clone()).collect();
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unique_column_falls_back_to_uncompressed() {
        let m = Dense::from_fn(2000, 1, |r, _| r as f64 * 1.37);
        let p = plan(&m, &CompressionConfig::default());
        assert_eq!(p.groups.len(), 1);
        assert_eq!(p.groups[0].encoding, Encoding::Uncompressed);
    }

    #[test]
    fn clustered_column_gets_rle() {
        let m = Dense::from_fn(4000, 1, |r, _| (r / 500) as f64);
        let p = plan(&m, &CompressionConfig::default());
        assert_eq!(p.groups[0].encoding, Encoding::Rle);
    }

    #[test]
    fn sparse_column_gets_offset_encoding() {
        let m = Dense::from_fn(4000, 1, |r, _| if r % 97 == 0 { 3.0 } else { 0.0 });
        let p = plan(&m, &CompressionConfig::default());
        assert!(matches!(p.groups[0].encoding, Encoding::Ole | Encoding::Rle));
        assert!(p.groups[0].est_size < 4000 * 8 / 10);
    }

    #[test]
    fn perfectly_correlated_columns_cocoded() {
        // Column 1 is a function of column 0: co-coding stores one dictionary
        // and one code stream instead of two.
        let m = Dense::from_fn(3000, 2, |r, c| {
            let base = (r % 6) as f64;
            if c == 0 {
                base
            } else {
                base * 10.0
            }
        });
        let p = plan(&m, &CompressionConfig::default());
        assert_eq!(p.groups.len(), 1, "correlated columns should merge: {:?}", p.groups);
        assert_eq!(p.groups[0].cols, vec![0, 1]);
    }

    #[test]
    fn independent_random_columns_not_cocoded() {
        // Two independent 50-value columns whose *pair* takes ~2500 distinct
        // combinations: merging squares the dictionary, so the planner must
        // keep them separate.
        let m =
            Dense::from_fn(
                3000,
                2,
                |r, c| {
                    if c == 0 {
                        (r % 50) as f64
                    } else {
                        ((r / 50) % 50) as f64
                    }
                },
            );
        let p = plan(&m, &CompressionConfig::default());
        assert_eq!(p.groups.len(), 2, "independent columns must stay separate: {:?}", p.groups);
    }

    #[test]
    fn cocode_flag_disables_merging() {
        let m = Dense::from_fn(1000, 2, |r, _| (r % 3) as f64);
        let cfg = CompressionConfig { cocode: false, ..CompressionConfig::default() };
        let p = plan(&m, &cfg);
        assert_eq!(p.groups.len(), 2);
    }

    #[test]
    fn traced_plan_records_merge_decisions() {
        let m = Dense::from_fn(3000, 2, |r, c| {
            let base = (r % 6) as f64;
            if c == 0 {
                base
            } else {
                base * 10.0
            }
        });
        let (p, trace) = plan_traced(&m, &CompressionConfig::default());
        assert_eq!(p.groups.len(), 1);
        assert_eq!(trace.merges.len(), 1);
        let merge = &trace.merges[0];
        assert_eq!((merge.left.as_slice(), merge.right.as_slice()), (&[0][..], &[1][..]));
        assert!(merge.est_merged < merge.est_separate);
        assert!(trace.wall_ns > 0);
    }

    #[test]
    fn traced_plan_records_demotions() {
        // Clustered column compresses, but a ratio guard of ~0 rejects it.
        let m = Dense::from_fn(4000, 1, |r, _| (r / 500) as f64);
        let cfg = CompressionConfig { max_ratio_to_keep: 1e-9, ..CompressionConfig::default() };
        let (p, trace) = plan_traced(&m, &cfg);
        assert_eq!(p.groups[0].encoding, Encoding::Uncompressed);
        assert_eq!(trace.demoted, vec![vec![0]]);
    }

    #[test]
    fn trace_records_into_registry() {
        use dm_obs::StatsRegistry;
        let m = Dense::from_fn(1000, 2, |r, _| (r % 3) as f64);
        let (_, trace) = plan_traced(&m, &CompressionConfig::default());
        let reg = StatsRegistry::new();
        trace.record(&reg);
        let rep = reg.report();
        assert!(rep.counter("compress.plan.merges").is_some());
        assert!(rep.duration("compress.plan.wall").is_some());
    }

    #[test]
    fn report_compares_estimated_and_achieved_sizes() {
        let m = Dense::from_fn(2000, 2, |r, c| ((r / 100 + c) % 4) as f64);
        let (p, _) = plan_traced(&m, &CompressionConfig::default());
        let cm = CompressedMatrix::compress_with_plan(&m, &p);
        let txt = compression_report(&p, &cm);
        assert!(txt.contains("compression report"), "{txt}");
        assert!(txt.contains("est "), "{txt}");
        assert!(txt.contains("achieved "), "{txt}");
        assert!(txt.contains("overall:"), "{txt}");
        assert_eq!(txt.lines().count(), 2 + p.groups.len(), "{txt}");
    }

    #[test]
    fn plan_is_deterministic() {
        let m = Dense::from_fn(1500, 3, |r, c| ((r * (c + 2)) % 11) as f64);
        let cfg = CompressionConfig::default();
        assert_eq!(plan(&m, &cfg), plan(&m, &cfg));
    }
}
