//! Sampling-based compression planning: per-column encoding choice and
//! greedy column co-coding.

use crate::estimate::{estimate_group, estimate_sizes, sample_rows, GroupStats};
use crate::Encoding;
use dm_matrix::Dense;

/// Tuning knobs for the compression planner.
#[derive(Debug, Clone, Copy)]
pub struct CompressionConfig {
    /// Fraction of rows sampled for estimation.
    pub sample_fraction: f64,
    /// Lower bound on the sample size.
    pub min_sample_rows: usize,
    /// Enable greedy co-coding of correlated columns.
    pub cocode: bool,
    /// A column group is kept compressed only if its estimated compressed
    /// size is below `max_ratio_to_keep * uncompressed_size`.
    pub max_ratio_to_keep: f64,
    /// RNG seed for the row sample (deterministic plans for reproducibility).
    pub seed: u64,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        CompressionConfig {
            sample_fraction: 0.05,
            min_sample_rows: 256,
            cocode: true,
            max_ratio_to_keep: 1.0,
            seed: 0xD77,
        }
    }
}

/// The planned treatment of one column group.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedGroup {
    /// Columns of the group (co-coded together when more than one).
    pub cols: Vec<usize>,
    /// Chosen encoding.
    pub encoding: Encoding,
    /// Estimated compressed size in bytes.
    pub est_size: usize,
}

/// A complete compression plan for a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionPlan {
    /// Per-group decisions; groups partition the column set.
    pub groups: Vec<PlannedGroup>,
    /// Number of rows sampled while planning.
    pub sample_size: usize,
}

fn plan_one(m: &Dense, cols: &[usize], sample: &[usize]) -> (Encoding, usize, GroupStats) {
    let stats = estimate_group(m, cols, sample);
    let sizes = estimate_sizes(&stats, cols.len());
    let (enc, sz) = sizes.best();
    (enc, sz, stats)
}

/// Produce a compression plan for `m`.
///
/// 1. Sample rows once.
/// 2. Estimate per-column stats and pick the best single-column encoding.
/// 3. If co-coding is enabled, greedily merge the pair of groups whose merged
///    estimated size is smallest relative to the sum of their separate sizes,
///    repeating until no merge helps.
/// 4. Demote groups whose best compressed size exceeds
///    [`CompressionConfig::max_ratio_to_keep`] of uncompressed to the UC fallback.
pub fn plan(m: &Dense, cfg: &CompressionConfig) -> CompressionPlan {
    let sample = sample_rows(m.rows(), cfg.sample_fraction, cfg.min_sample_rows, cfg.seed);

    // Step 1: singleton groups.
    let mut groups: Vec<(Vec<usize>, Encoding, usize)> = (0..m.cols())
        .map(|c| {
            let cols = vec![c];
            let (enc, sz, _) = plan_one(m, &cols, &sample);
            (cols, enc, sz)
        })
        .collect();

    // Step 2: greedy pairwise co-coding. Only dictionary encodings benefit
    // from co-coding; skip pairs whose best encoding is UC.
    if cfg.cocode {
        loop {
            let mut best: Option<(usize, usize, Encoding, usize, f64)> = None;
            for i in 0..groups.len() {
                for j in (i + 1)..groups.len() {
                    if groups[i].1 == Encoding::Uncompressed
                        || groups[j].1 == Encoding::Uncompressed
                    {
                        continue;
                    }
                    let mut merged: Vec<usize> = groups[i].0.clone();
                    merged.extend_from_slice(&groups[j].0);
                    merged.sort_unstable();
                    let (enc, sz, _) = plan_one(m, &merged, &sample);
                    let separate = groups[i].2 + groups[j].2;
                    let gain = separate as f64 - sz as f64;
                    if gain > 0.0 {
                        let better = match best {
                            None => true,
                            Some((.., g)) => gain > g,
                        };
                        if better {
                            best = Some((i, j, enc, sz, gain));
                        }
                    }
                }
            }
            match best {
                Some((i, j, enc, sz, _)) => {
                    let (right, _, _) = groups.remove(j);
                    let (left, _, _) = groups.remove(i);
                    let mut merged = left;
                    merged.extend(right);
                    merged.sort_unstable();
                    groups.push((merged, enc, sz));
                }
                None => break,
            }
        }
    }

    // Step 3: fallback demotion.
    let planned = groups
        .into_iter()
        .map(|(cols, enc, sz)| {
            let uncompressed = m.rows() * cols.len() * 8;
            if enc == Encoding::Uncompressed
                || sz as f64 > cfg.max_ratio_to_keep * uncompressed as f64
            {
                PlannedGroup { cols, encoding: Encoding::Uncompressed, est_size: uncompressed }
            } else {
                PlannedGroup { cols, encoding: enc, est_size: sz }
            }
        })
        .collect();

    CompressionPlan { groups: planned, sample_size: sample.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_partitions_all_columns() {
        let m = Dense::from_fn(500, 4, |r, c| ((r + c) % 5) as f64);
        let p = plan(&m, &CompressionConfig::default());
        let mut cols: Vec<usize> = p.groups.iter().flat_map(|g| g.cols.clone()).collect();
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unique_column_falls_back_to_uncompressed() {
        let m = Dense::from_fn(2000, 1, |r, _| r as f64 * 1.37);
        let p = plan(&m, &CompressionConfig::default());
        assert_eq!(p.groups.len(), 1);
        assert_eq!(p.groups[0].encoding, Encoding::Uncompressed);
    }

    #[test]
    fn clustered_column_gets_rle() {
        let m = Dense::from_fn(4000, 1, |r, _| (r / 500) as f64);
        let p = plan(&m, &CompressionConfig::default());
        assert_eq!(p.groups[0].encoding, Encoding::Rle);
    }

    #[test]
    fn sparse_column_gets_offset_encoding() {
        let m = Dense::from_fn(4000, 1, |r, _| if r % 97 == 0 { 3.0 } else { 0.0 });
        let p = plan(&m, &CompressionConfig::default());
        assert!(matches!(p.groups[0].encoding, Encoding::Ole | Encoding::Rle));
        assert!(p.groups[0].est_size < 4000 * 8 / 10);
    }

    #[test]
    fn perfectly_correlated_columns_cocoded() {
        // Column 1 is a function of column 0: co-coding stores one dictionary
        // and one code stream instead of two.
        let m = Dense::from_fn(3000, 2, |r, c| {
            let base = (r % 6) as f64;
            if c == 0 {
                base
            } else {
                base * 10.0
            }
        });
        let p = plan(&m, &CompressionConfig::default());
        assert_eq!(p.groups.len(), 1, "correlated columns should merge: {:?}", p.groups);
        assert_eq!(p.groups[0].cols, vec![0, 1]);
    }

    #[test]
    fn independent_random_columns_not_cocoded() {
        // Two independent 50-value columns whose *pair* takes ~2500 distinct
        // combinations: merging squares the dictionary, so the planner must
        // keep them separate.
        let m =
            Dense::from_fn(
                3000,
                2,
                |r, c| {
                    if c == 0 {
                        (r % 50) as f64
                    } else {
                        ((r / 50) % 50) as f64
                    }
                },
            );
        let p = plan(&m, &CompressionConfig::default());
        assert_eq!(p.groups.len(), 2, "independent columns must stay separate: {:?}", p.groups);
    }

    #[test]
    fn cocode_flag_disables_merging() {
        let m = Dense::from_fn(1000, 2, |r, _| (r % 3) as f64);
        let cfg = CompressionConfig { cocode: false, ..CompressionConfig::default() };
        let p = plan(&m, &cfg);
        assert_eq!(p.groups.len(), 2);
    }

    #[test]
    fn plan_is_deterministic() {
        let m = Dense::from_fn(1500, 3, |r, c| ((r * (c + 2)) % 11) as f64);
        let cfg = CompressionConfig::default();
        assert_eq!(plan(&m, &cfg), plan(&m, &cfg));
    }
}
