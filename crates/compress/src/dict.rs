//! Dictionaries of distinct value-tuples for co-coded column groups.

/// A dictionary of distinct value-tuples.
///
/// Each tuple holds one value per column of the owning group, stored flat:
/// tuple `t` occupies `values[t*width .. (t+1)*width]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dict {
    values: Vec<f64>,
    width: usize,
}

impl Dict {
    /// Build from flat tuple values.
    ///
    /// # Panics
    /// Panics if `width == 0` or `values.len()` is not a multiple of `width`.
    pub fn new(values: Vec<f64>, width: usize) -> Self {
        assert!(width > 0, "dictionary width must be positive");
        assert_eq!(values.len() % width, 0, "dictionary values not a multiple of width");
        Dict { values, width }
    }

    /// Number of columns per tuple.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of distinct tuples.
    #[inline]
    pub fn num_tuples(&self) -> usize {
        self.values.len() / self.width
    }

    /// Borrow tuple `t` as a slice of length [`Dict::width`].
    #[inline]
    pub fn tuple(&self, t: usize) -> &[f64] {
        &self.values[t * self.width..(t + 1) * self.width]
    }

    /// Flat values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Precompute, for each tuple, the dot product of the tuple against the
    /// sub-vector `v_cols` (the gemv pre-aggregation step of CLA kernels).
    ///
    /// # Panics
    /// Panics if `v_cols.len() != self.width()`.
    pub fn preaggregate(&self, v_cols: &[f64]) -> Vec<f64> {
        assert_eq!(v_cols.len(), self.width, "preaggregate width mismatch");
        let mut out = Vec::with_capacity(self.num_tuples());
        for t in 0..self.num_tuples() {
            let mut acc = 0.0;
            for (x, y) in self.tuple(t).iter().zip(v_cols) {
                acc += x * y;
            }
            out.push(acc);
        }
        out
    }

    /// Apply a scalar function to every dictionary value, returning a new
    /// dictionary — the CLA trick that makes scalar ops O(#distinct) instead
    /// of O(n).
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Dict {
        Dict { values: self.values.iter().map(|&v| f(v)).collect(), width: self.width }
    }

    /// Serialized size in bytes (8 bytes per value).
    pub fn size_bytes(&self) -> usize {
        self.values.len() * 8
    }
}

/// Interning builder: maps value-tuples to dense codes in first-seen order.
#[derive(Debug, Default)]
pub struct DictBuilder {
    width: usize,
    map: std::collections::HashMap<Vec<u64>, u32>,
    values: Vec<f64>,
}

impl DictBuilder {
    /// Create a builder for tuples of the given width.
    pub fn new(width: usize) -> Self {
        DictBuilder { width, map: std::collections::HashMap::new(), values: Vec::new() }
    }

    /// Intern a tuple, returning its code. Tuples are compared by exact bit
    /// pattern (`-0.0 != 0.0` is acceptable for compression purposes since it
    /// only costs an extra dictionary slot, never correctness).
    ///
    /// # Panics
    /// Panics if the tuple width disagrees with the builder.
    pub fn intern(&mut self, tuple: &[f64]) -> u32 {
        assert_eq!(tuple.len(), self.width, "tuple width mismatch");
        let key: Vec<u64> = tuple.iter().map(|v| v.to_bits()).collect();
        if let Some(&code) = self.map.get(&key) {
            return code;
        }
        let code = (self.values.len() / self.width) as u32;
        self.values.extend_from_slice(tuple);
        self.map.insert(key, code);
        code
    }

    /// Number of tuples interned so far.
    pub fn len(&self) -> usize {
        self.values.len() / self.width
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Finish into an immutable [`Dict`].
    pub fn build(self) -> Dict {
        Dict::new(self.values, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_in_first_seen_order() {
        let mut b = DictBuilder::new(2);
        assert_eq!(b.intern(&[1.0, 2.0]), 0);
        assert_eq!(b.intern(&[3.0, 4.0]), 1);
        assert_eq!(b.intern(&[1.0, 2.0]), 0);
        assert_eq!(b.len(), 2);
        let d = b.build();
        assert_eq!(d.num_tuples(), 2);
        assert_eq!(d.tuple(1), &[3.0, 4.0]);
    }

    #[test]
    fn preaggregate_dots_tuples() {
        let d = Dict::new(vec![1.0, 0.0, 2.0, 3.0], 2);
        let pre = d.preaggregate(&[10.0, 1.0]);
        assert_eq!(pre, vec![10.0, 23.0]);
    }

    #[test]
    fn map_transforms_dictionary_only() {
        let d = Dict::new(vec![1.0, 2.0, 3.0], 1);
        let sq = d.map(|v| v * v);
        assert_eq!(sq.values(), &[1.0, 4.0, 9.0]);
        assert_eq!(sq.width(), 1);
    }

    #[test]
    fn size_accounting() {
        let d = Dict::new(vec![0.0; 6], 3);
        assert_eq!(d.size_bytes(), 48);
        assert_eq!(d.num_tuples(), 2);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        Dict::new(vec![], 0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_values_panic() {
        Dict::new(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn negative_zero_costs_a_slot_but_stays_correct() {
        let mut b = DictBuilder::new(1);
        let c0 = b.intern(&[0.0]);
        let c1 = b.intern(&[-0.0]);
        assert_ne!(c0, c1);
        let d = b.build();
        assert_eq!(d.tuple(c0 as usize)[0], 0.0);
        assert_eq!(d.tuple(c1 as usize)[0], -0.0);
    }
}
