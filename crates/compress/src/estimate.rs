//! Sampling-based estimators used by the compression planner.
//!
//! The planner must decide, *before* compressing, which encoding each column
//! group should use and which columns to co-code. Doing that exactly would
//! cost as much as compressing, so — following the CLA planning pipeline — it
//! draws a row sample and extrapolates distinct-tuple counts, non-zero counts,
//! and run counts from the sample.

use dm_matrix::Dense;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

/// Sample-derived statistics for one candidate column group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupStats {
    /// Estimated number of distinct value-tuples in the full column group.
    pub est_distinct: usize,
    /// Estimated number of rows whose tuple is not all-zero.
    pub est_nnz_rows: usize,
    /// Estimated number of RLE runs over non-zero tuples.
    pub est_runs: usize,
    /// Number of logical rows.
    pub num_rows: usize,
}

/// Draw a deterministic row sample of the given fraction (at least
/// `min_rows`, at most all rows).
pub fn sample_rows(num_rows: usize, fraction: f64, min_rows: usize, seed: u64) -> Vec<usize> {
    let target =
        ((num_rows as f64 * fraction).ceil() as usize).clamp(min_rows.min(num_rows), num_rows);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..num_rows).collect();
    idx.shuffle(&mut rng);
    idx.truncate(target);
    idx.sort_unstable();
    idx
}

/// Estimate group statistics from a row sample.
///
/// Distinct tuples are scaled up with a coupon-collector style correction
/// bounded by the sampled-distinct count and the row count: if the sample of
/// size `s` out of `n` saw `d` distinct values and `f1` of them occurred once,
/// we use the unsmoothed Chao estimator `d + f1^2 / (2 * (d - f1) + 1)`
/// clamped to `[d, n]` — singletons in the sample signal unseen values.
pub fn estimate_group(m: &Dense, cols: &[usize], sample: &[usize]) -> GroupStats {
    let n = m.rows();
    let s = sample.len();
    if s == 0 || cols.is_empty() {
        return GroupStats { est_distinct: 0, est_nnz_rows: 0, est_runs: 0, num_rows: n };
    }

    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    let mut counts: std::collections::HashMap<Vec<u64>, usize> = std::collections::HashMap::new();
    let mut nnz_rows = 0usize;
    let mut runs = 0usize;
    let mut prev: Option<Vec<u64>> = None;

    for &r in sample {
        let key: Vec<u64> = cols.iter().map(|&c| m.get(r, c).to_bits()).collect();
        let is_zero = cols.iter().all(|&c| m.get(r, c) == 0.0);
        if !is_zero {
            nnz_rows += 1;
            if prev.as_ref() != Some(&key) {
                runs += 1;
            }
        }
        *counts.entry(key.clone()).or_insert(0) += 1;
        seen.insert(key.clone());
        prev = Some(key);
    }

    let d = seen.len();
    let est_distinct = if s >= n {
        // Complete sample: the count is exact, no extrapolation.
        d
    } else {
        let f1 = counts.values().filter(|&&c| c == 1).count();
        let chao = d as f64 + (f1 * f1) as f64 / (2.0 * (d - f1) as f64 + 1.0);
        (chao.round() as usize).clamp(d, n)
    };

    let scale = n as f64 / s as f64;
    GroupStats {
        est_distinct,
        est_nnz_rows: ((nnz_rows as f64 * scale).round() as usize).min(n),
        est_runs: ((runs as f64 * scale).round() as usize).min(n),
        num_rows: n,
    }
}

/// Estimated compressed sizes in bytes for each encoding, given group stats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeEstimates {
    /// Dense dictionary coding.
    pub ddc: usize,
    /// Offset-list encoding.
    pub ole: usize,
    /// Run-length encoding.
    pub rle: usize,
    /// Uncompressed fallback.
    pub uncompressed: usize,
}

impl SizeEstimates {
    /// The cheapest encoding and its size.
    pub fn best(&self) -> (crate::Encoding, usize) {
        let mut best = (crate::Encoding::Uncompressed, self.uncompressed);
        for (enc, sz) in [
            (crate::Encoding::Ddc, self.ddc),
            (crate::Encoding::Ole, self.ole),
            (crate::Encoding::Rle, self.rle),
        ] {
            if sz < best.1 {
                best = (enc, sz);
            }
        }
        best
    }
}

/// Predict compressed sizes from stats (same cost model the physical groups
/// report via `ColGroup::size_bytes`).
pub fn estimate_sizes(stats: &GroupStats, width: usize) -> SizeEstimates {
    let dict = stats.est_distinct * width * 8;
    let ddc = dict + stats.num_rows * crate::group::code_width(stats.est_distinct);
    // OLE/RLE dictionaries store only *non-zero* tuples, so their size is
    // additionally bounded by the number of non-zero rows — without this cap,
    // a unique-valued sparse column looks as expensive as a unique-valued
    // dense one and the planner wrongly falls back to uncompressed.
    let nz_distinct = stats.est_distinct.min(stats.est_nnz_rows);
    let nz_dict = nz_distinct * width * 8;
    let ole = nz_dict + stats.est_nnz_rows * 4 + nz_distinct * 8;
    let rle = nz_dict + stats.est_runs * 8 + nz_distinct * 8;
    let uncompressed = stats.num_rows * width * 8;
    SizeEstimates { ddc, ole, rle, uncompressed }
}

/// Static compressed-size estimate for a matrix known only by shape and
/// sparsity — no data to sample. Each column is modeled as an independent
/// group whose distinct count is unknown (assumed high: `nnz` rows) and
/// whose runs equal its non-zeros; [`estimate_sizes`] then picks the best
/// encoding per column. Because the uncompressed layout is always a
/// candidate, the result never exceeds the dense `rows * cols * 8` bytes —
/// plan-time memory analyses can use it as the resident footprint of a
/// compressed value without data in hand.
pub fn static_matrix_bytes(rows: usize, cols: usize, sparsity: f64) -> usize {
    if rows == 0 || cols == 0 {
        return 0;
    }
    let nnz_rows = ((rows as f64) * sparsity.clamp(0.0, 1.0)).ceil() as usize;
    let stats = GroupStats {
        est_distinct: nnz_rows.max(1).min(rows),
        est_nnz_rows: nnz_rows,
        est_runs: nnz_rows,
        num_rows: rows,
    };
    let per_col = estimate_sizes(&stats, 1).best().1;
    per_col.saturating_mul(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_rows_bounds() {
        let s = sample_rows(1000, 0.05, 10, 42);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
        assert!(s.iter().all(|&i| i < 1000));
        // Deterministic for equal seeds.
        assert_eq!(s, sample_rows(1000, 0.05, 10, 42));
        // min_rows floor.
        assert_eq!(sample_rows(1000, 0.001, 20, 1).len(), 20);
        // Never exceeds the population.
        assert_eq!(sample_rows(5, 0.5, 10, 1).len(), 5);
    }

    #[test]
    fn low_cardinality_estimated_exactly() {
        let m = Dense::from_fn(1000, 1, |r, _| (r % 4) as f64);
        let sample = sample_rows(1000, 0.2, 50, 7);
        let st = estimate_group(&m, &[0], &sample);
        assert_eq!(st.est_distinct, 4, "all 4 values appear many times in any decent sample");
        // Scaled-up nnz estimate carries sampling variance; true value is 750.
        assert!((st.est_nnz_rows as i64 - 750).abs() < 100, "est {}", st.est_nnz_rows);
    }

    #[test]
    fn unique_column_estimates_high_cardinality() {
        let m = Dense::from_fn(1000, 1, |r, _| r as f64);
        let sample = sample_rows(1000, 0.1, 50, 7);
        let st = estimate_group(&m, &[0], &sample);
        // Every sampled value is a singleton: Chao blows up and is clamped to n.
        assert!(st.est_distinct > 500, "got {}", st.est_distinct);
    }

    #[test]
    fn sparse_column_nnz_estimate() {
        let m = Dense::from_fn(2000, 1, |r, _| if r % 10 == 0 { 1.0 } else { 0.0 });
        let sample = sample_rows(2000, 0.25, 100, 3);
        let st = estimate_group(&m, &[0], &sample);
        let true_nnz = 200;
        assert!((st.est_nnz_rows as i64 - true_nnz).abs() < 80, "est {}", st.est_nnz_rows);
    }

    #[test]
    fn size_model_prefers_right_encoding() {
        // Clustered low cardinality: few runs -> RLE wins.
        let clustered =
            GroupStats { est_distinct: 5, est_nnz_rows: 10_000, est_runs: 10, num_rows: 10_000 };
        assert_eq!(estimate_sizes(&clustered, 1).best().0, crate::Encoding::Rle);
        // Very sparse: OLE wins.
        let sparse =
            GroupStats { est_distinct: 2, est_nnz_rows: 50, est_runs: 50, num_rows: 10_000 };
        let best = estimate_sizes(&sparse, 1).best().0;
        assert!(matches!(best, crate::Encoding::Ole | crate::Encoding::Rle));
        // All-unique: nothing beats uncompressed.
        let unique = GroupStats {
            est_distinct: 10_000,
            est_nnz_rows: 10_000,
            est_runs: 10_000,
            num_rows: 10_000,
        };
        assert_eq!(estimate_sizes(&unique, 1).best().0, crate::Encoding::Uncompressed);
    }

    #[test]
    fn empty_sample_degenerates() {
        let m = Dense::zeros(10, 2);
        let st = estimate_group(&m, &[0], &[]);
        assert_eq!(st.est_distinct, 0);
    }

    #[test]
    fn static_estimate_never_exceeds_dense() {
        for (rows, cols, sp) in
            [(1000, 20, 1.0), (1000, 20, 0.05), (10_000, 4, 0.5), (7, 3, 0.0), (0, 5, 1.0)]
        {
            let est = static_matrix_bytes(rows, cols, sp);
            assert!(est <= rows * cols * 8, "{rows}x{cols} sp {sp}: {est}");
        }
        // A very sparse matrix should estimate well below dense (OLE wins).
        assert!(static_matrix_bytes(10_000, 10, 0.01) < 10_000 * 10 * 8 / 10);
    }
}
