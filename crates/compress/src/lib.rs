//! # dm-compress
//!
//! Compressed Linear Algebra (CLA) in the style surveyed by the tutorial's
//! "data management inside ML systems" pillar: a matrix is stored as a set of
//! **column groups**, each of which co-codes one or more columns against a
//! dictionary of distinct value-tuples, and linear-algebra kernels execute
//! **directly on the compressed representation** — no decompression on the
//! hot path.
//!
//! Supported encodings (one per column group):
//!
//! * **DDC** — dense dictionary coding: one code per row.
//! * **OLE** — offset-list encoding: per-tuple sorted row-offset lists
//!   (zero tuples need no storage, so OLE excels on sparse data).
//! * **RLE** — run-length encoding: per-tuple `(start, length)` runs
//!   (excels on sorted/clustered data).
//! * **UC** — uncompressed fallback for incompressible columns.
//!
//! A sampling-based [`planner`] estimates per-format sizes from a row sample,
//! greedily co-codes correlated columns, and picks the cheapest encoding per
//! group — the CLA compression planning pipeline.
//!
//! ```
//! use dm_matrix::Dense;
//! use dm_compress::{CompressedMatrix, planner::CompressionConfig};
//!
//! // A low-cardinality matrix compresses well and multiplies correctly.
//! let m = Dense::from_fn(1000, 2, |r, c| ((r / 100 + c) % 3) as f64);
//! let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
//! let v = vec![1.0, 2.0];
//! assert_eq!(cm.gemv(&v), dm_matrix::ops::gemv(&m, &v));
//! assert!(cm.compression_ratio() > 2.0);
//! ```

#![warn(missing_docs)]

pub mod codes;
pub mod dict;
pub mod estimate;
pub mod group;
pub mod kernels;
pub mod matrix;
pub mod planner;
pub mod serial;
pub mod validate;

pub use dict::Dict;
pub use estimate::{static_matrix_bytes, GroupStats, SizeEstimates};
pub use group::{ColGroup, Encoding};
pub use matrix::CompressedMatrix;
pub use validate::{validate, ValidationError};
