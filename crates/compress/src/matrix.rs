//! The compressed matrix: a set of column groups plus whole-matrix kernels.

use crate::group::{self, ColGroup, Encoding};
use crate::kernels;
use crate::planner::{plan, CompressionConfig, CompressionPlan};
use dm_matrix::Dense;

/// A matrix stored as compressed column groups.
///
/// Construct with [`CompressedMatrix::compress`] (planner-driven) or
/// [`CompressedMatrix::compress_with_plan`] (explicit plan, used by the
/// ablation benchmarks). All kernels run directly on the compressed form.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedMatrix {
    rows: usize,
    cols: usize,
    groups: Vec<ColGroup>,
}

impl CompressedMatrix {
    /// Compress with a planner-chosen per-group encoding.
    pub fn compress(m: &Dense, cfg: &CompressionConfig) -> Self {
        let plan = plan(m, cfg);
        Self::compress_with_plan(m, &plan)
    }

    /// Compress following an explicit plan.
    pub fn compress_with_plan(m: &Dense, plan: &CompressionPlan) -> Self {
        let groups = plan.groups.iter().map(|g| group::encode(m, &g.cols, g.encoding)).collect();
        CompressedMatrix { rows: m.rows(), cols: m.cols(), groups }
    }

    /// Compress every column as its own group with a fixed encoding
    /// (ablation helper).
    pub fn compress_uniform(m: &Dense, enc: Encoding) -> Self {
        let groups = (0..m.cols()).map(|c| group::encode(m, &[c], enc)).collect();
        CompressedMatrix { rows: m.rows(), cols: m.cols(), groups }
    }

    /// Reassemble from raw parts (the deserialization path). Returns `None`
    /// unless the groups exactly partition `0..cols` and agree on `rows`.
    pub fn from_parts(rows: usize, cols: usize, groups: Vec<ColGroup>) -> Option<Self> {
        let mut covered = vec![false; cols];
        for g in &groups {
            if g.num_rows() != rows && g.encoding() != Encoding::Uncompressed {
                return None;
            }
            if let ColGroup::Uncompressed { data, .. } = g {
                if data.rows() != rows {
                    return None;
                }
            }
            for &c in g.cols() {
                if c >= cols || covered[c] {
                    return None;
                }
                covered[c] = true;
            }
        }
        if covered.iter().all(|&b| b) {
            Some(CompressedMatrix { rows, cols, groups })
        } else {
            None
        }
    }

    /// Reassemble from raw parts with **no** invariant checking — the caller
    /// is asserting the parts are consistent, or intends to run
    /// [`validate`](crate::validate::validate) on the result (corrupted-input
    /// tests build their fixtures through here).
    pub fn from_parts_unchecked(rows: usize, cols: usize, groups: Vec<ColGroup>) -> Self {
        CompressedMatrix { rows, cols, groups }
    }

    /// Check every structural invariant; see [`crate::validate`](mod@crate::validate).
    pub fn validate(&self) -> Result<(), crate::validate::ValidationError> {
        crate::validate::validate(self)
    }

    /// Number of logical rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of logical columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The column groups.
    pub fn groups(&self) -> &[ColGroup] {
        &self.groups
    }

    /// Total compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.groups.iter().map(|g| g.size_bytes()).sum()
    }

    /// Size of the equivalent uncompressed dense matrix in bytes.
    pub fn uncompressed_bytes(&self) -> usize {
        self.rows * self.cols * 8
    }

    /// Compression ratio (`uncompressed / compressed`); higher is better.
    pub fn compression_ratio(&self) -> f64 {
        let c = self.size_bytes();
        if c == 0 {
            f64::INFINITY
        } else {
            self.uncompressed_bytes() as f64 / c as f64
        }
    }

    /// Matrix-vector product on compressed data.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn gemv(&self, v: &[f64]) -> Vec<f64> {
        self.gemv_with(v, 1)
    }

    /// [`gemv`](Self::gemv) at an explicit degree of parallelism: workers own
    /// disjoint row segments and every segment applies the column groups in
    /// serial order, so results are bit-identical to `gemv` at any degree.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn gemv_with(&self, v: &[f64], degree: usize) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "compressed gemv dimension mismatch");
        let mut out = vec![0.0; self.rows];
        dm_par::for_each_slice_mut(&mut out, 1, degree, |rows, chunk| {
            for g in &self.groups {
                kernels::gemv_range_into(g, v, chunk, rows.clone());
            }
        });
        out
    }

    /// Vector-matrix product `v^T * M` on compressed data.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        let mut scratch = Vec::new();
        self.vecmat_into(v, &mut out, &mut scratch);
        out
    }

    /// Zero-extra-allocation vecmat: writes `v^T * M` into `out` (zeroed by
    /// the caller) reusing `scratch` for the per-tuple sums across all
    /// groups. Hot loops (iterative ML algorithms, benchmarks) keep both
    /// buffers alive across calls so steady-state iterations allocate
    /// nothing.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()` or `out.len() != self.cols()`.
    pub fn vecmat_into(&self, v: &[f64], out: &mut [f64], scratch: &mut Vec<f64>) {
        assert_eq!(v.len(), self.rows, "compressed vecmat dimension mismatch");
        assert_eq!(out.len(), self.cols, "compressed vecmat output length mismatch");
        for g in &self.groups {
            kernels::vecmat_into_scratch(g, v, out, scratch);
        }
    }

    /// [`vecmat`](Self::vecmat) at an explicit degree of parallelism: column
    /// groups own disjoint output columns, so group-local results computed
    /// concurrently and scattered afterwards are bit-identical to the serial
    /// kernel.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn vecmat_with(&self, v: &[f64], degree: usize) -> Vec<f64> {
        if degree <= 1 {
            return self.vecmat(v);
        }
        assert_eq!(v.len(), self.rows, "compressed vecmat dimension mismatch");
        let locals = dm_par::map_collect(self.groups.len(), degree, |i| {
            let mut scratch = Vec::new();
            kernels::vecmat_local(&self.groups[i], v, &mut scratch)
        });
        self.scatter_locals(locals)
    }

    /// Column sums on compressed data (O(#distinct) per dictionary group).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for g in &self.groups {
            kernels::col_sums_into(g, &mut out);
        }
        out
    }

    /// [`col_sums`](Self::col_sums) at an explicit degree of parallelism
    /// (group-parallel, like [`vecmat_with`](Self::vecmat_with)).
    pub fn col_sums_with(&self, degree: usize) -> Vec<f64> {
        if degree <= 1 {
            return self.col_sums();
        }
        let locals = dm_par::map_collect(self.groups.len(), degree, |i| {
            kernels::col_sums_local(&self.groups[i])
        });
        self.scatter_locals(locals)
    }

    /// Scatter per-group local vectors (group-column order) into a full
    /// `cols`-length output. Groups partition the columns, so each output
    /// element is written exactly once.
    fn scatter_locals(&self, locals: Vec<Vec<f64>>) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for (g, local) in self.groups.iter().zip(locals) {
            for (&c, val) in g.cols().iter().zip(local) {
                out[c] = val;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.col_sums().iter().sum()
    }

    /// Apply a scalar function to every element *without decompressing*.
    ///
    /// Dictionary encodings rewrite only their dictionaries. For OLE/RLE
    /// groups (which elide all-zero tuples) this is only valid when
    /// `f(0) == 0`; otherwise the affected groups are transparently
    /// re-encoded via decompression so the result stays correct.
    pub fn scalar_map(&self, f: impl Fn(f64) -> f64 + Copy) -> CompressedMatrix {
        let zero_preserving = f(0.0) == 0.0;
        let groups = self
            .groups
            .iter()
            .map(|g| {
                let elides_zero = matches!(g, ColGroup::Ole { .. } | ColGroup::Rle { .. });
                if elides_zero && !zero_preserving {
                    // Correctness over speed: materialize, map, re-encode as DDC.
                    let mut tmp = Dense::zeros(self.rows, self.cols);
                    g.decompress_into(&mut tmp);
                    let mapped = tmp.map(f);
                    group::encode_ddc(&mapped, g.cols())
                } else {
                    kernels::scalar_map(g, f)
                }
            })
            .collect();
        CompressedMatrix { rows: self.rows, cols: self.cols, groups }
    }

    /// Compressed-matrix × dense-matrix product `M * B`, executed as one
    /// compressed gemv per column of `B` (the CLA strategy of composing
    /// higher-order ops from the MV primitive so the dictionary
    /// pre-aggregation is reused per output column).
    ///
    /// # Panics
    /// Panics if `b.rows() != self.cols()`.
    pub fn matmul_dense(&self, b: &Dense) -> Dense {
        assert_eq!(b.rows(), self.cols, "compressed matmul dimension mismatch");
        let mut out = Dense::zeros(self.rows, b.cols());
        let mut col = vec![0.0; self.cols];
        for j in 0..b.cols() {
            for (r, c) in col.iter_mut().enumerate() {
                *c = b.get(r, j);
            }
            let prod = self.gemv(&col);
            for (r, v) in prod.into_iter().enumerate() {
                out.set(r, j, v);
            }
        }
        out
    }

    /// Materialize the full dense matrix.
    pub fn decompress(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, self.cols);
        for g in &self.groups {
            g.decompress_into(&mut out);
        }
        out
    }

    /// `M^T M` (Gram matrix) computed column-block-wise on compressed data by
    /// running one [`CompressedMatrix::vecmat`] per decompressed column.
    ///
    /// This mirrors the CLA strategy of expressing higher-level ops through
    /// the MV/VM primitives rather than a bespoke kernel.
    pub fn crossprod(&self) -> Dense {
        let mut out = Dense::zeros(self.cols, self.cols);
        // Decompress one column at a time to bound memory.
        let mut colbuf = Dense::zeros(self.rows, self.cols);
        // A single full decompress would also work, but per-group column
        // extraction keeps peak memory at one dense column.
        for g in &self.groups {
            g.decompress_into(&mut colbuf);
        }
        for c in 0..self.cols {
            let col = colbuf.col_vec(c);
            let row = self.vecmat(&col);
            out.row_mut(c).copy_from_slice(&row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_matrix::ops;

    /// Mixed-structure matrix exercising every encoding in one plan.
    fn mixed(n: usize) -> Dense {
        Dense::from_fn(n, 4, |r, c| match c {
            0 => (r / (n / 8).max(1)) as f64, // clustered -> RLE
            1 => {
                if r % 37 == 0 {
                    4.5
                } else {
                    0.0
                }
            } // sparse -> OLE
            2 => ((r * 31) % 7) as f64,       // low-card unordered -> DDC
            _ => (r as f64) * 0.77,           // unique -> UC
        })
    }

    #[test]
    fn compress_round_trip() {
        let m = mixed(2000);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        assert!(cm.decompress().approx_eq(&m, 0.0), "lossless compression");
    }

    #[test]
    fn plan_uses_multiple_encodings() {
        let m = mixed(4000);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        let encs: std::collections::HashSet<_> = cm.groups().iter().map(|g| g.encoding()).collect();
        assert!(encs.len() >= 3, "expected diverse encodings, got {encs:?}");
    }

    #[test]
    fn gemv_vecmat_colsums_match_dense() {
        let m = mixed(1000);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        let v = [1.0, -2.0, 0.5, 3.0];
        let dv = ops::gemv(&m, &v);
        for (a, b) in cm.gemv(&v).iter().zip(&dv) {
            assert!((a - b).abs() < 1e-9);
        }
        let u: Vec<f64> = (0..1000).map(|i| ((i % 13) as f64) - 6.0).collect();
        let du = ops::gevm(&u, &m);
        for (a, b) in cm.vecmat(&u).iter().zip(&du) {
            assert!((a - b).abs() < 1e-6);
        }
        let dc = ops::col_sums(&m);
        for (a, b) in cm.col_sums().iter().zip(&dc) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!((cm.sum() - ops::sum(&m)).abs() < 1e-6);
    }

    #[test]
    fn compression_ratio_on_compressible_data() {
        let m = Dense::from_fn(10_000, 3, |r, c| ((r / 100 + c) % 4) as f64);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        assert!(cm.compression_ratio() > 5.0, "ratio {}", cm.compression_ratio());
    }

    #[test]
    fn incompressible_data_falls_back() {
        let m = Dense::from_fn(2000, 2, |r, c| (r * 2 + c) as f64 * 1.0001);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        assert!(
            cm.groups().iter().all(|g| g.encoding() == Encoding::Uncompressed),
            "unique columns must fall back"
        );
        assert!(cm.compression_ratio() <= 1.01);
        // And kernels still work.
        let v = [1.0, 1.0];
        assert_eq!(cm.gemv(&v), ops::gemv(&m, &v));
    }

    #[test]
    fn scalar_map_zero_preserving_stays_compressed() {
        let m = mixed(1000);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        let doubled = cm.scalar_map(|v| v * 2.0);
        assert!(doubled.decompress().approx_eq(&ops::scale(&m, 2.0), 1e-12));
        // Group encodings unchanged for zero-preserving f.
        let before: Vec<_> = cm.groups().iter().map(|g| g.encoding()).collect();
        let after: Vec<_> = doubled.groups().iter().map(|g| g.encoding()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn scalar_map_non_zero_preserving_is_correct() {
        let m = mixed(500);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        let shifted = cm.scalar_map(|v| v + 1.0);
        assert!(shifted.decompress().approx_eq(&ops::shift(&m, 1.0), 1e-12));
    }

    #[test]
    fn crossprod_matches_dense() {
        let m = mixed(300);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        let expect = ops::crossprod(&m);
        assert!(cm.crossprod().approx_eq(&expect, 1e-6));
    }

    #[test]
    fn matmul_dense_matches_gemm() {
        let m = mixed(400);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        let b = Dense::from_fn(4, 3, |r, c| (r * 3 + c) as f64 - 4.0);
        let expect = ops::gemm(&m, &b);
        assert!(cm.matmul_dense(&b).approx_eq(&expect, 1e-9));
    }

    #[test]
    #[should_panic(expected = "compressed matmul dimension mismatch")]
    fn matmul_dense_shape_panics() {
        let m = mixed(50);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        cm.matmul_dense(&Dense::zeros(3, 2));
    }

    #[test]
    fn parallel_kernels_bit_identical_to_serial() {
        let m = mixed(3000);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        let v = [1.0, -2.0, 0.5, 3.0];
        let u: Vec<f64> = (0..3000).map(|i| ((i % 13) as f64) - 6.0).collect();
        let (sg, sv, sc) = (cm.gemv(&v), cm.vecmat(&u), cm.col_sums());
        for deg in [1, 2, 3, 8] {
            assert_eq!(cm.gemv_with(&v, deg), sg, "gemv degree {deg}");
            assert_eq!(cm.vecmat_with(&u, deg), sv, "vecmat degree {deg}");
            assert_eq!(cm.col_sums_with(deg), sc, "col_sums degree {deg}");
        }
    }

    #[test]
    fn parallel_kernels_bit_identical_per_uniform_encoding() {
        let m = mixed(1024);
        let v = [0.3, 1.7, -0.9, 2.2];
        let u: Vec<f64> = (0..1024).map(|i| ((i % 7) as f64) * 0.4 - 1.0).collect();
        for enc in [Encoding::Ddc, Encoding::Ole, Encoding::Rle, Encoding::Uncompressed] {
            let cm = CompressedMatrix::compress_uniform(&m, enc);
            for deg in [2, 5] {
                assert_eq!(cm.gemv_with(&v, deg), cm.gemv(&v), "{enc:?} gemv deg {deg}");
                assert_eq!(cm.vecmat_with(&u, deg), cm.vecmat(&u), "{enc:?} vecmat deg {deg}");
                assert_eq!(cm.col_sums_with(deg), cm.col_sums(), "{enc:?} col_sums deg {deg}");
            }
        }
    }

    #[test]
    fn vecmat_into_reuses_scratch_across_calls() {
        let m = mixed(500);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        let u: Vec<f64> = (0..500).map(|i| (i as f64) * 0.01).collect();
        let expect = cm.vecmat(&u);
        let mut out = vec![0.0; cm.cols()];
        let mut scratch = Vec::new();
        for _ in 0..3 {
            out.iter_mut().for_each(|o| *o = 0.0);
            cm.vecmat_into(&u, &mut out, &mut scratch);
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn uniform_encodings_all_round_trip() {
        let m = mixed(400);
        for enc in [Encoding::Ddc, Encoding::Ole, Encoding::Rle, Encoding::Uncompressed] {
            let cm = CompressedMatrix::compress_uniform(&m, enc);
            assert!(cm.decompress().approx_eq(&m, 0.0), "{enc:?}");
        }
    }
}
