//! Structural invariant checking for compressed matrices.
//!
//! A [`CompressedMatrix`] deserialized from bytes —
//! or produced by a buggy planner — can violate invariants that the kernels
//! assume without checking (they index dictionaries and output buffers
//! directly on the hot path). [`validate`] makes those assumptions explicit
//! and checkable:
//!
//! * the column groups **partition** the logical columns: every column
//!   covered exactly once, none out of bounds;
//! * every group agrees with the matrix on the **row count**;
//! * every dictionary's tuple width matches its group's **column count**;
//! * **DDC** codes index inside the dictionary;
//! * **OLE** offset lists are strictly increasing and in `0..num_rows`, with
//!   exactly one list per dictionary tuple, and no row claimed by two tuples;
//! * **RLE** runs are non-empty, sorted, non-overlapping (within and across
//!   tuples), and end inside `0..num_rows`;
//! * **UC** blocks have exactly the group's shape.
//!
//! Encoders uphold all of this by construction — the round-trip property
//! tests assert it — so a failure pinpoints either corruption or an encoder
//! bug, with group/tuple/row provenance in the error.

use crate::group::ColGroup;
use crate::matrix::CompressedMatrix;
use std::fmt;

/// A structural invariant violation, with provenance into the group layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A group references a column outside the logical matrix.
    ColumnOutOfBounds {
        /// Index of the offending group.
        group: usize,
        /// The out-of-range column.
        col: usize,
        /// Logical column count.
        num_cols: usize,
    },
    /// Two groups (or one group twice) claim the same column.
    ColumnCoveredTwice {
        /// Index of the second group claiming the column.
        group: usize,
        /// The doubly-covered column.
        col: usize,
    },
    /// No group covers this column.
    ColumnUncovered {
        /// The uncovered column.
        col: usize,
    },
    /// A group's row count disagrees with the matrix.
    RowCountMismatch {
        /// Index of the offending group.
        group: usize,
        /// The matrix's logical row count.
        expected: usize,
        /// The group's row count.
        actual: usize,
    },
    /// A dictionary's tuple width disagrees with the group's column count.
    DictWidthMismatch {
        /// Index of the offending group.
        group: usize,
        /// The group's column count.
        expected: usize,
        /// The dictionary's tuple width.
        actual: usize,
    },
    /// A DDC code indexes past the dictionary.
    CodeOutOfBounds {
        /// Index of the offending group.
        group: usize,
        /// Row holding the bad code.
        row: usize,
        /// The out-of-range code.
        code: u32,
        /// Dictionary size.
        num_tuples: usize,
    },
    /// An OLE/RLE group's per-tuple list count disagrees with its dictionary.
    TupleCountMismatch {
        /// Index of the offending group.
        group: usize,
        /// Dictionary size.
        num_tuples: usize,
        /// Number of offset/run lists.
        lists: usize,
    },
    /// An OLE offset is out of bounds or breaks the strictly-increasing order.
    BadOffset {
        /// Index of the offending group.
        group: usize,
        /// Tuple whose list is invalid.
        tuple: usize,
        /// The offending offset value.
        offset: u32,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// An RLE run is empty, out of bounds, or overlaps its predecessor.
    BadRun {
        /// Index of the offending group.
        group: usize,
        /// Tuple whose run list is invalid.
        tuple: usize,
        /// The offending run as `(start, length)`.
        run: (u32, u32),
        /// What is wrong with it.
        reason: &'static str,
    },
    /// Two tuples of the same group claim the same row.
    RowClaimedTwice {
        /// Index of the offending group.
        group: usize,
        /// The doubly-assigned row.
        row: usize,
    },
    /// An uncompressed block's shape disagrees with its group.
    BlockShapeMismatch {
        /// Index of the offending group.
        group: usize,
        /// Expected `(rows, cols)`.
        expected: (usize, usize),
        /// The block's `(rows, cols)`.
        actual: (usize, usize),
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::ColumnOutOfBounds { group, col, num_cols } => write!(
                f,
                "group {group} references column {col}, but the matrix has {num_cols} columns"
            ),
            ValidationError::ColumnCoveredTwice { group, col } => {
                write!(f, "column {col} is covered twice (second claim by group {group})")
            }
            ValidationError::ColumnUncovered { col } => {
                write!(f, "column {col} is covered by no group")
            }
            ValidationError::RowCountMismatch { group, expected, actual } => write!(
                f,
                "group {group} has {actual} rows but the matrix has {expected}"
            ),
            ValidationError::DictWidthMismatch { group, expected, actual } => write!(
                f,
                "group {group} covers {expected} columns but its dictionary tuples have width {actual}"
            ),
            ValidationError::CodeOutOfBounds { group, row, code, num_tuples } => write!(
                f,
                "group {group} row {row}: DDC code {code} exceeds dictionary size {num_tuples}"
            ),
            ValidationError::TupleCountMismatch { group, num_tuples, lists } => write!(
                f,
                "group {group} has {lists} offset/run lists for {num_tuples} dictionary tuples"
            ),
            ValidationError::BadOffset { group, tuple, offset, reason } => write!(
                f,
                "group {group} tuple {tuple}: offset {offset} {reason}"
            ),
            ValidationError::BadRun { group, tuple, run, reason } => write!(
                f,
                "group {group} tuple {tuple}: run ({}, {}) {reason}",
                run.0, run.1
            ),
            ValidationError::RowClaimedTwice { group, row } => {
                write!(f, "group {group}: row {row} is assigned to two different tuples")
            }
            ValidationError::BlockShapeMismatch { group, expected, actual } => write!(
                f,
                "group {group}: uncompressed block is {}x{}, expected {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check every structural invariant of a compressed matrix; `Ok(())` means
/// the kernels' indexing assumptions all hold.
pub fn validate(cm: &CompressedMatrix) -> Result<(), ValidationError> {
    let (rows, cols) = (cm.rows(), cm.cols());
    let mut covered = vec![false; cols];
    for (gi, g) in cm.groups().iter().enumerate() {
        for &c in g.cols() {
            if c >= cols {
                return Err(ValidationError::ColumnOutOfBounds {
                    group: gi,
                    col: c,
                    num_cols: cols,
                });
            }
            if covered[c] {
                return Err(ValidationError::ColumnCoveredTwice { group: gi, col: c });
            }
            covered[c] = true;
        }
        if g.num_rows() != rows {
            return Err(ValidationError::RowCountMismatch {
                group: gi,
                expected: rows,
                actual: g.num_rows(),
            });
        }
        validate_group(g, gi)?;
    }
    if let Some(col) = covered.iter().position(|&b| !b) {
        return Err(ValidationError::ColumnUncovered { col });
    }
    Ok(())
}

/// Check the internal invariants of one column group. `group` is the group's
/// index, used only for error provenance.
pub fn validate_group(g: &ColGroup, group: usize) -> Result<(), ValidationError> {
    match g {
        ColGroup::Ddc { cols, dict, codes } => {
            if dict.width() != cols.len() {
                return Err(ValidationError::DictWidthMismatch {
                    group,
                    expected: cols.len(),
                    actual: dict.width(),
                });
            }
            let n = dict.num_tuples();
            for (row, code) in codes.iter().enumerate() {
                if code as usize >= n {
                    return Err(ValidationError::CodeOutOfBounds {
                        group,
                        row,
                        code,
                        num_tuples: n,
                    });
                }
            }
        }
        ColGroup::Ole { cols, dict, offsets, num_rows } => {
            if dict.width() != cols.len() {
                return Err(ValidationError::DictWidthMismatch {
                    group,
                    expected: cols.len(),
                    actual: dict.width(),
                });
            }
            if offsets.len() != dict.num_tuples() {
                return Err(ValidationError::TupleCountMismatch {
                    group,
                    num_tuples: dict.num_tuples(),
                    lists: offsets.len(),
                });
            }
            let mut claimed = vec![false; *num_rows];
            for (tuple, list) in offsets.iter().enumerate() {
                let mut prev: Option<u32> = None;
                for &off in list {
                    if off as usize >= *num_rows {
                        return Err(ValidationError::BadOffset {
                            group,
                            tuple,
                            offset: off,
                            reason: "is out of row bounds",
                        });
                    }
                    if prev.is_some_and(|p| off <= p) {
                        return Err(ValidationError::BadOffset {
                            group,
                            tuple,
                            offset: off,
                            reason: "breaks the strictly-increasing order",
                        });
                    }
                    if claimed[off as usize] {
                        return Err(ValidationError::RowClaimedTwice { group, row: off as usize });
                    }
                    claimed[off as usize] = true;
                    prev = Some(off);
                }
            }
        }
        ColGroup::Rle { cols, dict, runs, num_rows } => {
            if dict.width() != cols.len() {
                return Err(ValidationError::DictWidthMismatch {
                    group,
                    expected: cols.len(),
                    actual: dict.width(),
                });
            }
            if runs.len() != dict.num_tuples() {
                return Err(ValidationError::TupleCountMismatch {
                    group,
                    num_tuples: dict.num_tuples(),
                    lists: runs.len(),
                });
            }
            let mut claimed = vec![false; *num_rows];
            for (tuple, list) in runs.iter().enumerate() {
                let mut prev_end: Option<u32> = None;
                for &(start, len) in list {
                    if len == 0 {
                        return Err(ValidationError::BadRun {
                            group,
                            tuple,
                            run: (start, len),
                            reason: "is empty",
                        });
                    }
                    let end = (start as u64) + (len as u64);
                    if end > *num_rows as u64 {
                        return Err(ValidationError::BadRun {
                            group,
                            tuple,
                            run: (start, len),
                            reason: "extends past the row count",
                        });
                    }
                    if prev_end.is_some_and(|p| start < p) {
                        return Err(ValidationError::BadRun {
                            group,
                            tuple,
                            run: (start, len),
                            reason: "overlaps or precedes the previous run",
                        });
                    }
                    for r in start..start + len {
                        if claimed[r as usize] {
                            return Err(ValidationError::RowClaimedTwice {
                                group,
                                row: r as usize,
                            });
                        }
                        claimed[r as usize] = true;
                    }
                    prev_end = Some(start + len);
                }
            }
        }
        ColGroup::Uncompressed { cols, data } => {
            if data.cols() != cols.len() {
                return Err(ValidationError::BlockShapeMismatch {
                    group,
                    expected: (data.rows(), cols.len()),
                    actual: (data.rows(), data.cols()),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::CodeArray;
    use crate::dict::DictBuilder;
    use crate::group::{encode, Encoding};
    use crate::planner::CompressionConfig;
    use dm_matrix::Dense;

    fn mixed(n: usize) -> Dense {
        Dense::from_fn(n, 4, |r, c| match c {
            0 => (r / (n / 8).max(1)) as f64,
            1 => {
                if r % 37 == 0 {
                    4.5
                } else {
                    0.0
                }
            }
            2 => ((r * 31) % 7) as f64,
            _ => (r as f64) * 0.77,
        })
    }

    fn dict(width: usize, tuples: &[&[f64]]) -> crate::Dict {
        let mut b = DictBuilder::new(width);
        for t in tuples {
            b.intern(t);
        }
        b.build()
    }

    #[test]
    fn planner_output_validates() {
        let m = mixed(2000);
        let cm = CompressedMatrix::compress(&m, &CompressionConfig::default());
        validate(&cm).unwrap();
    }

    #[test]
    fn every_uniform_encoding_validates() {
        let m = mixed(500);
        for enc in [Encoding::Ddc, Encoding::Ole, Encoding::Rle, Encoding::Uncompressed] {
            let cm = CompressedMatrix::compress_uniform(&m, enc);
            validate(&cm).unwrap();
        }
    }

    #[test]
    fn every_encoder_group_validates_cocoded() {
        let m = mixed(300);
        for enc in [Encoding::Ddc, Encoding::Ole, Encoding::Rle, Encoding::Uncompressed] {
            let g = encode(&m, &[0, 1], enc);
            validate_group(&g, 0).unwrap();
        }
    }

    #[test]
    fn rejects_uncovered_and_doubly_covered_columns() {
        let m = mixed(100);
        let g0 = encode(&m, &[0, 1], Encoding::Ddc);
        let g3 = encode(&m, &[3], Encoding::Uncompressed);
        // Column 2 uncovered.
        let cm = CompressedMatrix::from_parts_unchecked(100, 4, vec![g0.clone(), g3.clone()]);
        assert_eq!(validate(&cm), Err(ValidationError::ColumnUncovered { col: 2 }));
        // Column 0 covered twice.
        let dup = encode(&m, &[0, 2], Encoding::Ddc);
        let cm = CompressedMatrix::from_parts_unchecked(100, 4, vec![g0, dup, g3]);
        assert_eq!(validate(&cm), Err(ValidationError::ColumnCoveredTwice { group: 1, col: 0 }));
    }

    #[test]
    fn rejects_ddc_code_out_of_bounds() {
        // Dictionary of 2 tuples, but a code of 7 smuggled in.
        let d = dict(1, &[&[1.0], &[2.0]]);
        let codes = CodeArray::pack(&[0, 1, 7, 0], 8);
        let g = ColGroup::Ddc { cols: vec![0], dict: d, codes };
        assert_eq!(
            validate_group(&g, 0),
            Err(ValidationError::CodeOutOfBounds { group: 0, row: 2, code: 7, num_tuples: 2 })
        );
    }

    #[test]
    fn rejects_ole_offset_out_of_bounds_and_unsorted() {
        let d = dict(1, &[&[1.0]]);
        let g = ColGroup::Ole {
            cols: vec![0],
            dict: d.clone(),
            offsets: vec![vec![1, 99]],
            num_rows: 10,
        };
        assert!(matches!(
            validate_group(&g, 0),
            Err(ValidationError::BadOffset { offset: 99, .. })
        ));
        let g = ColGroup::Ole { cols: vec![0], dict: d, offsets: vec![vec![5, 3]], num_rows: 10 };
        assert!(matches!(validate_group(&g, 0), Err(ValidationError::BadOffset { offset: 3, .. })));
    }

    #[test]
    fn rejects_ole_row_claimed_by_two_tuples() {
        let d = dict(1, &[&[1.0], &[2.0]]);
        let g = ColGroup::Ole {
            cols: vec![0],
            dict: d,
            offsets: vec![vec![0, 4], vec![4]],
            num_rows: 10,
        };
        assert_eq!(
            validate_group(&g, 0),
            Err(ValidationError::RowClaimedTwice { group: 0, row: 4 })
        );
    }

    #[test]
    fn rejects_rle_overlapping_and_oversized_runs() {
        let d = dict(1, &[&[1.0]]);
        let overlap = ColGroup::Rle {
            cols: vec![0],
            dict: d.clone(),
            runs: vec![vec![(0, 3), (2, 2)]],
            num_rows: 10,
        };
        assert!(matches!(
            validate_group(&overlap, 0),
            Err(ValidationError::BadRun { run: (2, 2), .. })
        ));
        let past_end = ColGroup::Rle {
            cols: vec![0],
            dict: d.clone(),
            runs: vec![vec![(8, 5)]],
            num_rows: 10,
        };
        assert!(matches!(
            validate_group(&past_end, 0),
            Err(ValidationError::BadRun { run: (8, 5), .. })
        ));
        let empty =
            ColGroup::Rle { cols: vec![0], dict: d, runs: vec![vec![(3, 0)]], num_rows: 10 };
        assert!(matches!(
            validate_group(&empty, 0),
            Err(ValidationError::BadRun { run: (3, 0), reason: "is empty", .. })
        ));
    }

    #[test]
    fn rejects_tuple_count_and_width_mismatches() {
        let d = dict(2, &[&[1.0, 2.0]]);
        // Width 2 dictionary over a single-column group.
        let g =
            ColGroup::Ole { cols: vec![0], dict: d.clone(), offsets: vec![vec![0]], num_rows: 4 };
        assert_eq!(
            validate_group(&g, 0),
            Err(ValidationError::DictWidthMismatch { group: 0, expected: 1, actual: 2 })
        );
        // One dictionary tuple but two run lists.
        let g = ColGroup::Rle {
            cols: vec![0, 1],
            dict: d,
            runs: vec![vec![(0, 1)], vec![(1, 1)]],
            num_rows: 4,
        };
        assert_eq!(
            validate_group(&g, 0),
            Err(ValidationError::TupleCountMismatch { group: 0, num_tuples: 1, lists: 2 })
        );
    }

    #[test]
    fn rejects_row_count_mismatch() {
        let m = mixed(50);
        let groups: Vec<ColGroup> = (0..4).map(|c| encode(&m, &[c], Encoding::Ddc)).collect();
        // Claim 60 rows while every DDC group carries 50 codes.
        let cm = CompressedMatrix::from_parts_unchecked(60, 4, groups);
        assert_eq!(
            validate(&cm),
            Err(ValidationError::RowCountMismatch { group: 0, expected: 60, actual: 50 })
        );
    }

    #[test]
    fn errors_render_with_provenance() {
        let e = ValidationError::CodeOutOfBounds { group: 3, row: 17, code: 9, num_tuples: 4 };
        let s = e.to_string();
        assert!(s.contains("group 3") && s.contains("row 17"), "{s}");
    }
}
