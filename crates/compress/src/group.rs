//! Column groups: the unit of compression.

use crate::codes::CodeArray;
use crate::dict::{Dict, DictBuilder};
use dm_matrix::Dense;
use std::fmt;

/// Which physical encoding a column group uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Dense dictionary coding: one code per row.
    Ddc,
    /// Offset-list encoding: per-tuple sorted row offsets (zero tuple elided).
    Ole,
    /// Run-length encoding: per-tuple `(start, length)` runs (zero tuple elided).
    Rle,
    /// Uncompressed fallback.
    Uncompressed,
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Encoding::Ddc => "DDC",
            Encoding::Ole => "OLE",
            Encoding::Rle => "RLE",
            Encoding::Uncompressed => "UC",
        })
    }
}

/// A compressed (or fallback-uncompressed) group of one or more co-coded columns.
///
/// `cols` are the column indices of the *logical* matrix this group covers;
/// together the groups of a [`crate::CompressedMatrix`] partition the columns.
#[derive(Debug, Clone, PartialEq)]
pub enum ColGroup {
    /// Dense dictionary coding.
    Ddc {
        /// Logical column indices covered by this group.
        cols: Vec<usize>,
        /// Distinct value-tuples.
        dict: Dict,
        /// One dictionary code per row, stored at minimal width.
        codes: CodeArray,
    },
    /// Offset-list encoding. Rows not present in any list hold the all-zero tuple.
    Ole {
        /// Logical column indices covered by this group.
        cols: Vec<usize>,
        /// Distinct *non-zero* value-tuples.
        dict: Dict,
        /// For each tuple, the sorted list of row offsets holding it.
        offsets: Vec<Vec<u32>>,
        /// Number of logical rows.
        num_rows: usize,
    },
    /// Run-length encoding. Rows not covered by any run hold the all-zero tuple.
    Rle {
        /// Logical column indices covered by this group.
        cols: Vec<usize>,
        /// Distinct *non-zero* value-tuples.
        dict: Dict,
        /// For each tuple, its `(start_row, run_length)` runs sorted by start.
        runs: Vec<Vec<(u32, u32)>>,
        /// Number of logical rows.
        num_rows: usize,
    },
    /// Uncompressed fallback: a dense block of the group's columns.
    Uncompressed {
        /// Logical column indices covered by this group.
        cols: Vec<usize>,
        /// `num_rows x cols.len()` dense block.
        data: Dense,
    },
}

impl ColGroup {
    /// Logical column indices covered by this group.
    pub fn cols(&self) -> &[usize] {
        match self {
            ColGroup::Ddc { cols, .. }
            | ColGroup::Ole { cols, .. }
            | ColGroup::Rle { cols, .. }
            | ColGroup::Uncompressed { cols, .. } => cols,
        }
    }

    /// The encoding used by this group.
    pub fn encoding(&self) -> Encoding {
        match self {
            ColGroup::Ddc { .. } => Encoding::Ddc,
            ColGroup::Ole { .. } => Encoding::Ole,
            ColGroup::Rle { .. } => Encoding::Rle,
            ColGroup::Uncompressed { .. } => Encoding::Uncompressed,
        }
    }

    /// Number of logical rows.
    pub fn num_rows(&self) -> usize {
        match self {
            ColGroup::Ddc { codes, .. } => codes.len(),
            ColGroup::Ole { num_rows, .. } | ColGroup::Rle { num_rows, .. } => *num_rows,
            ColGroup::Uncompressed { data, .. } => data.rows(),
        }
    }

    /// Estimated in-memory size in bytes (values at 8 bytes, DDC codes at
    /// offsets at 4, runs at 8). Used for compression-ratio reporting.
    pub fn size_bytes(&self) -> usize {
        match self {
            ColGroup::Ddc { dict, codes, .. } => dict.size_bytes() + codes.size_bytes(),
            ColGroup::Ole { dict, offsets, .. } => {
                dict.size_bytes() + offsets.iter().map(|o| o.len() * 4 + 8).sum::<usize>()
            }
            ColGroup::Rle { dict, runs, .. } => {
                dict.size_bytes() + runs.iter().map(|r| r.len() * 8 + 8).sum::<usize>()
            }
            ColGroup::Uncompressed { data, .. } => data.rows() * data.cols() * 8,
        }
    }

    /// Decompress this group into the destination matrix (which must have the
    /// logical shape of the original matrix).
    ///
    /// # Panics
    /// Panics if `dst` is too small for the group's rows/columns.
    pub fn decompress_into(&self, dst: &mut Dense) {
        match self {
            ColGroup::Ddc { cols, dict, codes } => {
                for (r, code) in codes.iter().enumerate() {
                    let tuple = dict.tuple(code as usize);
                    for (&c, &v) in cols.iter().zip(tuple) {
                        dst.set(r, c, v);
                    }
                }
            }
            ColGroup::Ole { cols, dict, offsets, .. } => {
                for (t, offs) in offsets.iter().enumerate() {
                    let tuple = dict.tuple(t);
                    for &r in offs {
                        for (&c, &v) in cols.iter().zip(tuple) {
                            dst.set(r as usize, c, v);
                        }
                    }
                }
            }
            ColGroup::Rle { cols, dict, runs, .. } => {
                for (t, rs) in runs.iter().enumerate() {
                    let tuple = dict.tuple(t);
                    for &(start, len) in rs {
                        for r in start..start + len {
                            for (&c, &v) in cols.iter().zip(tuple) {
                                dst.set(r as usize, c, v);
                            }
                        }
                    }
                }
            }
            ColGroup::Uncompressed { cols, data } => {
                for r in 0..data.rows() {
                    let row = data.row(r);
                    for (&c, &v) in cols.iter().zip(row) {
                        dst.set(r, c, v);
                    }
                }
            }
        }
    }
}

/// Bytes needed per DDC code for a dictionary of `n` tuples.
pub(crate) fn code_width(n: usize) -> usize {
    if n <= u8::MAX as usize + 1 {
        1
    } else if n <= u16::MAX as usize + 1 {
        2
    } else {
        4
    }
}

/// Extract, for each row, the value-tuple of the given columns.
fn row_tuple(m: &Dense, r: usize, cols: &[usize], buf: &mut Vec<f64>) {
    buf.clear();
    let row = m.row(r);
    for &c in cols {
        buf.push(row[c]);
    }
}

/// Encode the given columns of `m` as DDC.
pub fn encode_ddc(m: &Dense, cols: &[usize]) -> ColGroup {
    let mut b = DictBuilder::new(cols.len());
    let mut codes = Vec::with_capacity(m.rows());
    let mut buf = Vec::with_capacity(cols.len());
    for r in 0..m.rows() {
        row_tuple(m, r, cols, &mut buf);
        codes.push(b.intern(&buf));
    }
    let dict = b.build();
    let codes = CodeArray::pack(&codes, dict.num_tuples());
    ColGroup::Ddc { cols: cols.to_vec(), dict, codes }
}

/// Encode the given columns of `m` as OLE (all-zero tuples are elided).
pub fn encode_ole(m: &Dense, cols: &[usize]) -> ColGroup {
    let mut b = DictBuilder::new(cols.len());
    let mut offsets: Vec<Vec<u32>> = Vec::new();
    let mut buf = Vec::with_capacity(cols.len());
    for r in 0..m.rows() {
        row_tuple(m, r, cols, &mut buf);
        if buf.iter().all(|&v| v == 0.0) {
            continue;
        }
        let code = b.intern(&buf) as usize;
        if code == offsets.len() {
            offsets.push(Vec::new());
        }
        offsets[code].push(r as u32);
    }
    ColGroup::Ole { cols: cols.to_vec(), dict: b.build(), offsets, num_rows: m.rows() }
}

/// Encode the given columns of `m` as RLE (all-zero tuples are elided).
pub fn encode_rle(m: &Dense, cols: &[usize]) -> ColGroup {
    let mut b = DictBuilder::new(cols.len());
    let mut runs: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut buf = Vec::with_capacity(cols.len());
    for r in 0..m.rows() {
        row_tuple(m, r, cols, &mut buf);
        if buf.iter().all(|&v| v == 0.0) {
            continue;
        }
        let code = b.intern(&buf) as usize;
        if code == runs.len() {
            runs.push(Vec::new());
        }
        let list = &mut runs[code];
        match list.last_mut() {
            Some((start, len)) if *start + *len == r as u32 => *len += 1,
            _ => list.push((r as u32, 1)),
        }
    }
    ColGroup::Rle { cols: cols.to_vec(), dict: b.build(), runs, num_rows: m.rows() }
}

/// Wrap the given columns of `m` as an uncompressed fallback group.
pub fn encode_uncompressed(m: &Dense, cols: &[usize]) -> ColGroup {
    ColGroup::Uncompressed { cols: cols.to_vec(), data: m.select_cols(cols) }
}

/// Encode with an explicitly chosen format.
pub fn encode(m: &Dense, cols: &[usize], enc: Encoding) -> ColGroup {
    match enc {
        Encoding::Ddc => encode_ddc(m, cols),
        Encoding::Ole => encode_ole(m, cols),
        Encoding::Rle => encode_rle(m, cols),
        Encoding::Uncompressed => encode_uncompressed(m, cols),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dense {
        // Column 0: low cardinality clustered; column 1: sparse; column 2: unique.
        Dense::from_fn(12, 3, |r, c| match c {
            0 => (r / 4) as f64,
            1 => {
                if r % 5 == 0 {
                    7.0
                } else {
                    0.0
                }
            }
            _ => r as f64 + 0.5,
        })
    }

    fn check_round_trip(g: &ColGroup, m: &Dense) {
        let mut dst = Dense::zeros(m.rows(), m.cols());
        g.decompress_into(&mut dst);
        for r in 0..m.rows() {
            for &c in g.cols() {
                assert_eq!(
                    dst.get(r, c),
                    m.get(r, c),
                    "mismatch at ({r},{c}) for {:?}",
                    g.encoding()
                );
            }
        }
    }

    #[test]
    fn ddc_round_trip() {
        let m = sample();
        let g = encode_ddc(&m, &[0]);
        assert_eq!(g.encoding(), Encoding::Ddc);
        assert_eq!(g.num_rows(), 12);
        check_round_trip(&g, &m);
        if let ColGroup::Ddc { dict, .. } = &g {
            assert_eq!(dict.num_tuples(), 3);
        }
    }

    #[test]
    fn ole_round_trip_elides_zero() {
        let m = sample();
        let g = encode_ole(&m, &[1]);
        check_round_trip(&g, &m);
        if let ColGroup::Ole { dict, offsets, .. } = &g {
            assert_eq!(dict.num_tuples(), 1, "only the non-zero tuple is stored");
            assert_eq!(offsets[0], vec![0, 5, 10]);
        }
    }

    #[test]
    fn rle_round_trip_merges_runs() {
        let m = sample();
        let g = encode_rle(&m, &[0]);
        check_round_trip(&g, &m);
        if let ColGroup::Rle { dict, runs, .. } = &g {
            // Value 0.0 elided; values 1.0 and 2.0 each one run of length 4.
            assert_eq!(dict.num_tuples(), 2);
            assert_eq!(runs[0], vec![(4, 4)]);
            assert_eq!(runs[1], vec![(8, 4)]);
        }
    }

    #[test]
    fn uncompressed_round_trip() {
        let m = sample();
        let g = encode_uncompressed(&m, &[2, 0]);
        check_round_trip(&g, &m);
        assert_eq!(g.encoding(), Encoding::Uncompressed);
    }

    #[test]
    fn cocoded_group_round_trip() {
        let m = sample();
        for enc in [Encoding::Ddc, Encoding::Ole, Encoding::Rle] {
            let g = encode(&m, &[0, 1], enc);
            check_round_trip(&g, &m);
        }
    }

    #[test]
    fn size_orders_match_data_shape() {
        let n = 10_000;
        // Clustered low-cardinality column: RLE should beat DDC and UC.
        let clustered = Dense::from_fn(n, 1, |r, _| (r / 1000) as f64);
        let rle = encode_rle(&clustered, &[0]).size_bytes();
        let ddc = encode_ddc(&clustered, &[0]).size_bytes();
        let uc = encode_uncompressed(&clustered, &[0]).size_bytes();
        assert!(rle < ddc, "rle {rle} < ddc {ddc}");
        assert!(ddc < uc, "ddc {ddc} < uc {uc}");

        // Sparse column: OLE should beat UC dramatically.
        let sparse = Dense::from_fn(n, 1, |r, _| if r % 100 == 0 { 1.0 } else { 0.0 });
        let ole = encode_ole(&sparse, &[0]).size_bytes();
        assert!(ole * 10 < n * 8, "ole {ole} should be far below dense {}", n * 8);
    }

    #[test]
    fn code_width_tiers() {
        assert_eq!(code_width(10), 1);
        assert_eq!(code_width(256), 1);
        assert_eq!(code_width(257), 2);
        assert_eq!(code_width(65536), 2);
        assert_eq!(code_width(65537), 4);
    }

    #[test]
    fn all_zero_column_compresses_to_nothing() {
        let m = Dense::zeros(100, 1);
        let g = encode_ole(&m, &[0]);
        if let ColGroup::Ole { dict, offsets, .. } = &g {
            assert_eq!(dict.num_tuples(), 0);
            assert!(offsets.is_empty());
        }
        check_round_trip(&g, &m);
    }
}
