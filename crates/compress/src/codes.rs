//! Width-adaptive code arrays for DDC groups.
//!
//! Dictionary codes are stored in the narrowest unsigned width that fits the
//! dictionary (u8 / u16 / u32), so the "one code per row" cost of DDC is one
//! byte per row for dictionaries up to 256 tuples — matching the size model
//! the planner uses.

/// A sequence of dictionary codes stored at minimal width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeArray {
    /// Up to 256 distinct tuples.
    U8(Vec<u8>),
    /// Up to 65536 distinct tuples.
    U16(Vec<u16>),
    /// Larger dictionaries.
    U32(Vec<u32>),
}

impl CodeArray {
    /// Pack plain `u32` codes into the narrowest width that holds
    /// `num_tuples` distinct values.
    ///
    /// # Panics
    /// Panics if any code is `>= num_tuples` (codes must be dense).
    pub fn pack(codes: &[u32], num_tuples: usize) -> CodeArray {
        debug_assert!(
            codes.iter().all(|&c| (c as usize) < num_tuples.max(1)),
            "codes must index the dictionary"
        );
        if num_tuples <= u8::MAX as usize + 1 {
            CodeArray::U8(codes.iter().map(|&c| c as u8).collect())
        } else if num_tuples <= u16::MAX as usize + 1 {
            CodeArray::U16(codes.iter().map(|&c| c as u16).collect())
        } else {
            CodeArray::U32(codes.to_vec())
        }
    }

    /// Number of codes.
    pub fn len(&self) -> usize {
        match self {
            CodeArray::U8(v) => v.len(),
            CodeArray::U16(v) => v.len(),
            CodeArray::U32(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Code at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            CodeArray::U8(v) => u32::from(v[i]),
            CodeArray::U16(v) => u32::from(v[i]),
            CodeArray::U32(v) => v[i],
        }
    }

    /// Bytes per stored code.
    pub fn width_bytes(&self) -> usize {
        match self {
            CodeArray::U8(_) => 1,
            CodeArray::U16(_) => 2,
            CodeArray::U32(_) => 4,
        }
    }

    /// Total storage in bytes.
    pub fn size_bytes(&self) -> usize {
        self.len() * self.width_bytes()
    }

    /// Iterate codes as `u32`.
    pub fn iter(&self) -> CodeIter<'_> {
        CodeIter { arr: self, pos: 0 }
    }

    /// Dictionary-indexed gather-add: `out[i] += table[codes[rows.start + i]]`
    /// for each `i` in `0..rows.len()`.
    ///
    /// This is the DDC gemv inner loop. Matching on the code width **once**
    /// and walking a contiguous code slice (instead of calling [`get`] per
    /// row, which re-matches on the enum every element) gives LLVM a
    /// branch-free unit-stride gather it can unroll. Each output element
    /// receives exactly one add, so accumulation order is untouched.
    ///
    /// [`get`]: CodeArray::get
    #[inline]
    pub fn gather_add(&self, table: &[f64], rows: std::ops::Range<usize>, out: &mut [f64]) {
        debug_assert_eq!(out.len(), rows.len());
        match self {
            CodeArray::U8(v) => {
                for (o, &c) in out.iter_mut().zip(&v[rows]) {
                    *o += table[c as usize];
                }
            }
            CodeArray::U16(v) => {
                for (o, &c) in out.iter_mut().zip(&v[rows]) {
                    *o += table[c as usize];
                }
            }
            CodeArray::U32(v) => {
                for (o, &c) in out.iter_mut().zip(&v[rows]) {
                    *o += table[c as usize];
                }
            }
        }
    }
}

/// Iterator over a [`CodeArray`].
pub struct CodeIter<'a> {
    arr: &'a CodeArray,
    pos: usize,
}

impl Iterator for CodeIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.pos >= self.arr.len() {
            return None;
        }
        let c = self.arr.get(self.pos);
        self.pos += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.arr.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for CodeIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_to_narrowest_width() {
        let codes: Vec<u32> = (0..100).map(|i| i % 5).collect();
        assert_eq!(CodeArray::pack(&codes, 5).width_bytes(), 1);
        assert_eq!(CodeArray::pack(&codes, 256).width_bytes(), 1);
        assert_eq!(CodeArray::pack(&codes, 257).width_bytes(), 2);
        assert_eq!(CodeArray::pack(&codes, 65_536).width_bytes(), 2);
        assert_eq!(CodeArray::pack(&codes, 65_537).width_bytes(), 4);
    }

    #[test]
    fn round_trips_values() {
        let codes: Vec<u32> = vec![0, 255, 3, 17];
        for tuples in [256usize, 300, 100_000] {
            let packed = CodeArray::pack(&codes, tuples);
            assert_eq!(packed.len(), 4);
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(packed.get(i), c);
            }
            let collected: Vec<u32> = packed.iter().collect();
            assert_eq!(collected, codes);
        }
    }

    #[test]
    fn size_accounting() {
        let codes: Vec<u32> = vec![0; 1000];
        assert_eq!(CodeArray::pack(&codes, 10).size_bytes(), 1000);
        assert_eq!(CodeArray::pack(&codes, 1000).size_bytes(), 2000);
        assert_eq!(CodeArray::pack(&codes, 100_000).size_bytes(), 4000);
    }

    #[test]
    fn iterator_exact_size() {
        let packed = CodeArray::pack(&[1, 2, 3], 10);
        let it = packed.iter();
        assert_eq!(it.len(), 3);
        assert!(!packed.is_empty());
    }
}
