//! Linear-algebra kernels that execute directly on compressed column groups.
//!
//! The central trick (from the CLA line of work) is **pre-aggregation over the
//! dictionary**: for a matrix-vector product, each distinct value-tuple's dot
//! product against the relevant vector slice is computed once, then scattered
//! to the rows holding that tuple — O(#distinct * width + n) instead of
//! O(n * width).

use crate::group::ColGroup;
use dm_matrix::ops;
use std::ops::Range;

/// Accumulate this group's contribution to `out += M[:, cols] * v[cols]`.
pub fn gemv_into(g: &ColGroup, v: &[f64], out: &mut [f64]) {
    gemv_range_into(g, v, out, 0..out.len());
}

/// Accumulate this group's contribution for the row segment `rows` into
/// `out` (a buffer of exactly `rows.len()` elements, indexed relative to
/// `rows.start`).
///
/// This is the unit of row-segment parallelism for compressed gemv: workers
/// own disjoint row segments, every segment applies the groups in the same
/// order as the serial kernel, and each row receives exactly the adds the
/// serial kernel would perform — so parallel results are bit-identical.
/// OLE offset lists are entered by binary search; RLE runs (sorted by start)
/// are clipped to the segment.
pub fn gemv_range_into(g: &ColGroup, v: &[f64], out: &mut [f64], rows: Range<usize>) {
    debug_assert_eq!(out.len(), rows.len());
    match g {
        ColGroup::Ddc { cols, dict, codes } => {
            let vc: Vec<f64> = cols.iter().map(|&c| v[c]).collect();
            let pre = dict.preaggregate(&vc);
            // Width-specialized gather: one enum match per call, unit-stride
            // walk over the code slice (see CodeArray::gather_add).
            codes.gather_add(&pre, rows, out);
        }
        ColGroup::Ole { cols, dict, offsets, .. } => {
            let vc: Vec<f64> = cols.iter().map(|&c| v[c]).collect();
            let pre = dict.preaggregate(&vc);
            let (start, end) = (rows.start as u32, rows.end as u32);
            for (t, offs) in offsets.iter().enumerate() {
                let p = pre[t];
                if p == 0.0 {
                    continue;
                }
                // Both segment bounds found up front: the scatter loop body
                // is branch-free, so it unrolls instead of testing `r < end`
                // per element. Offsets within a tuple are distinct rows, so
                // each output element still receives exactly one add.
                let lo = offs.partition_point(|&r| r < start);
                let hi = lo + offs[lo..].partition_point(|&r| r < end);
                for &r in &offs[lo..hi] {
                    out[(r - start) as usize] += p;
                }
            }
        }
        ColGroup::Rle { cols, dict, runs, .. } => {
            let vc: Vec<f64> = cols.iter().map(|&c| v[c]).collect();
            let pre = dict.preaggregate(&vc);
            for (t, rs) in runs.iter().enumerate() {
                let p = pre[t];
                if p == 0.0 {
                    continue;
                }
                for &(start, len) in rs {
                    let run = start as usize..(start + len) as usize;
                    if run.start >= rows.end {
                        // Runs are sorted by start; nothing later overlaps.
                        break;
                    }
                    if run.end <= rows.start {
                        continue;
                    }
                    let a = run.start.max(rows.start) - rows.start;
                    let b = run.end.min(rows.end) - rows.start;
                    // Run splat: a contiguous slice-add (`slice::fill`
                    // flavor) — unit stride, no per-element bounds test.
                    for o in &mut out[a..b] {
                        *o += p;
                    }
                }
            }
        }
        ColGroup::Uncompressed { cols, data } => {
            let vc: Vec<f64> = cols.iter().map(|&c| v[c]).collect();
            for (o, r) in out.iter_mut().zip(rows) {
                *o += ops::dot(data.row(r), &vc);
            }
        }
    }
}

/// Accumulate this group's contribution to `out[cols] += (v^T * M)[cols]`.
///
/// The dual trick: first sum `v` over the rows of each tuple (per-tuple
/// scalar), then multiply by the tuple values once.
pub fn vecmat_into(g: &ColGroup, v: &[f64], out: &mut [f64]) {
    let mut scratch = Vec::new();
    vecmat_into_scratch(g, v, out, &mut scratch);
}

/// [`vecmat_into`] with a caller-provided per-tuple scratch buffer, so a
/// multi-group matrix pays one allocation per *call* instead of one per
/// group (the scratch grows to the largest dictionary it has seen and is
/// reused across groups).
pub fn vecmat_into_scratch(g: &ColGroup, v: &[f64], out: &mut [f64], scratch: &mut Vec<f64>) {
    match g {
        ColGroup::Uncompressed { cols, data } => {
            let part = ops::gevm(v, data);
            for (&c, p) in cols.iter().zip(part) {
                out[c] += p;
            }
        }
        _ => {
            tuple_sums(g, v, scratch);
            let (cols, dict) = dictionary(g);
            scatter_tuple_sums(cols, dict, scratch, out);
        }
    }
}

/// This group's slice of `v^T * M`, as a dense vector of `g.cols().len()`
/// entries in group-column order (entry `j` belongs to global column
/// `g.cols()[j]`).
///
/// Because column groups own disjoint output columns, parallel vecmat /
/// column-sum kernels compute these local vectors concurrently and scatter
/// them afterwards; each output element sees the exact per-tuple
/// accumulation order of the serial kernel, so results are bit-identical.
pub fn vecmat_local(g: &ColGroup, v: &[f64], scratch: &mut Vec<f64>) -> Vec<f64> {
    match g {
        ColGroup::Uncompressed { cols: _, data } => ops::gevm(v, data),
        _ => {
            tuple_sums(g, v, scratch);
            let (cols, dict) = dictionary(g);
            let mut local = vec![0.0; cols.len()];
            for (t, &s) in scratch.iter().enumerate() {
                if s == 0.0 {
                    continue;
                }
                for (o, &tv) in local.iter_mut().zip(dict.tuple(t)) {
                    *o += s * tv;
                }
            }
            local
        }
    }
}

/// Sum `v` over the rows of each distinct tuple into `scratch` (cleared and
/// resized to the group's dictionary size). Dictionary encodings only; the
/// uncompressed fallback has no tuples.
fn tuple_sums(g: &ColGroup, v: &[f64], scratch: &mut Vec<f64>) {
    match g {
        ColGroup::Ddc { dict, codes, .. } => {
            scratch.clear();
            scratch.resize(dict.num_tuples(), 0.0);
            for (r, code) in codes.iter().enumerate() {
                scratch[code as usize] += v[r];
            }
        }
        ColGroup::Ole { dict, offsets, .. } => {
            scratch.clear();
            scratch.resize(dict.num_tuples(), 0.0);
            for (t, offs) in offsets.iter().enumerate() {
                let mut acc = 0.0;
                for &r in offs {
                    acc += v[r as usize];
                }
                scratch[t] = acc;
            }
        }
        ColGroup::Rle { dict, runs, .. } => {
            scratch.clear();
            scratch.resize(dict.num_tuples(), 0.0);
            for (t, rs) in runs.iter().enumerate() {
                let mut acc = 0.0;
                for &(start, len) in rs {
                    for &x in &v[start as usize..(start + len) as usize] {
                        acc += x;
                    }
                }
                scratch[t] = acc;
            }
        }
        ColGroup::Uncompressed { .. } => unreachable!("uncompressed groups have no tuples"),
    }
}

fn dictionary(g: &ColGroup) -> (&[usize], &crate::Dict) {
    match g {
        ColGroup::Ddc { cols, dict, .. }
        | ColGroup::Ole { cols, dict, .. }
        | ColGroup::Rle { cols, dict, .. } => (cols, dict),
        ColGroup::Uncompressed { .. } => unreachable!("uncompressed groups have no dictionary"),
    }
}

fn scatter_tuple_sums(cols: &[usize], dict: &crate::Dict, per_tuple: &[f64], out: &mut [f64]) {
    for (t, &s) in per_tuple.iter().enumerate() {
        if s == 0.0 {
            continue;
        }
        for (&c, &tv) in cols.iter().zip(dict.tuple(t)) {
            out[c] += s * tv;
        }
    }
}

/// Accumulate this group's column sums into `out[cols]`.
///
/// Runs in O(#distinct * width) for DDC/OLE/RLE: each tuple contributes its
/// value times its row count.
pub fn col_sums_into(g: &ColGroup, out: &mut [f64]) {
    match g {
        ColGroup::Uncompressed { cols, data } => {
            let part = ops::col_sums(data);
            for (&c, p) in cols.iter().zip(part) {
                out[c] += p;
            }
        }
        _ => col_sums_into_indexed(g, out, false),
    }
}

/// This group's column sums as a local vector in group-column order
/// (see [`vecmat_local`] for the scatter convention).
pub fn col_sums_local(g: &ColGroup) -> Vec<f64> {
    match g {
        ColGroup::Uncompressed { cols: _, data } => ops::col_sums(data),
        _ => {
            let mut local = vec![0.0; g.cols().len()];
            col_sums_into_indexed(g, &mut local, true);
            local
        }
    }
}

/// Shared body of [`col_sums_into`] and [`col_sums_local`]: scatter per-tuple
/// counts either to global column indices or to local group positions.
fn col_sums_into_indexed(g: &ColGroup, out: &mut [f64], local: bool) {
    let counts: Vec<usize> = match g {
        ColGroup::Ddc { dict, codes, .. } => {
            let mut counts = vec![0usize; dict.num_tuples()];
            for code in codes.iter() {
                counts[code as usize] += 1;
            }
            counts
        }
        ColGroup::Ole { offsets, .. } => offsets.iter().map(|o| o.len()).collect(),
        ColGroup::Rle { runs, .. } => {
            runs.iter().map(|rs| rs.iter().map(|&(_, l)| l as usize).sum()).collect()
        }
        ColGroup::Uncompressed { .. } => unreachable!("handled by callers"),
    };
    let (cols, dict) = dictionary(g);
    for (t, &n) in counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        for (j, (&c, &tv)) in cols.iter().zip(dict.tuple(t)).enumerate() {
            let idx = if local { j } else { c };
            out[idx] += n as f64 * tv;
        }
    }
}

/// Apply a scalar function to the group's *values* without touching row
/// structure — O(#distinct) for dictionary encodings, O(n) only for the
/// uncompressed fallback.
pub fn scalar_map(g: &ColGroup, f: impl Fn(f64) -> f64 + Copy) -> ColGroup {
    match g {
        ColGroup::Ddc { cols, dict, codes } => {
            ColGroup::Ddc { cols: cols.clone(), dict: dict.map(f), codes: codes.clone() }
        }
        ColGroup::Ole { cols, dict, offsets, num_rows } => ColGroup::Ole {
            cols: cols.clone(),
            dict: dict.map(f),
            offsets: offsets.clone(),
            num_rows: *num_rows,
        },
        ColGroup::Rle { cols, dict, runs, num_rows } => ColGroup::Rle {
            cols: cols.clone(),
            dict: dict.map(f),
            runs: runs.clone(),
            num_rows: *num_rows,
        },
        ColGroup::Uncompressed { cols, data } => {
            ColGroup::Uncompressed { cols: cols.clone(), data: data.map(f) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{encode, Encoding};
    use dm_matrix::Dense;

    fn sample() -> Dense {
        Dense::from_fn(50, 3, |r, c| match c {
            0 => (r % 4) as f64,
            1 => {
                if r % 7 == 0 {
                    2.5
                } else {
                    0.0
                }
            }
            _ => ((r / 10) as f64) - 2.0,
        })
    }

    const ALL: [Encoding; 4] =
        [Encoding::Ddc, Encoding::Ole, Encoding::Rle, Encoding::Uncompressed];

    #[test]
    fn gemv_matches_dense_for_all_encodings() {
        let m = sample();
        let v = [0.5, -1.0, 2.0];
        let expect = ops::gemv(&m, &v);
        for enc in ALL {
            let g = encode(&m, &[0, 1, 2], enc);
            let mut out = vec![0.0; m.rows()];
            gemv_into(&g, &v, &mut out);
            for (a, b) in out.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-9, "{enc:?}");
            }
        }
    }

    #[test]
    fn gemv_accumulates_across_groups() {
        let m = sample();
        let v = [0.5, -1.0, 2.0];
        let expect = ops::gemv(&m, &v);
        let g0 = encode(&m, &[0], Encoding::Rle);
        let g1 = encode(&m, &[1], Encoding::Ole);
        let g2 = encode(&m, &[2], Encoding::Ddc);
        let mut out = vec![0.0; m.rows()];
        for g in [&g0, &g1, &g2] {
            gemv_into(g, &v, &mut out);
        }
        for (a, b) in out.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn gemv_range_segments_bit_identical_to_full() {
        // The restructured DDC gather / OLE two-bound scatter / RLE run
        // splat must hand every row segment exactly the adds of the
        // full-range kernel, in the same order.
        let m = sample();
        let v = [0.5, -1.0, 2.0];
        for enc in ALL {
            let g = encode(&m, &[0, 1, 2], enc);
            let mut full = vec![0.0; m.rows()];
            gemv_into(&g, &v, &mut full);
            for seg in [1usize, 7, 13, 50] {
                let mut out = vec![0.0; m.rows()];
                let mut r = 0;
                while r < m.rows() {
                    let e = (r + seg).min(m.rows());
                    gemv_range_into(&g, &v, &mut out[r..e], r..e);
                    r = e;
                }
                for (i, (a, b)) in out.iter().zip(&full).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{enc:?} seg {seg} row {i}");
                }
            }
        }
    }

    #[test]
    fn ddc_wide_dictionary_gather_matches_dense() {
        // >256 distinct tuples forces u16 codes: exercises the non-u8 arm
        // of the width-specialized gather.
        let m = Dense::from_fn(700, 2, |r, c| ((r * 7 + c) % 300) as f64 * 0.25 - 10.0);
        let g = encode(&m, &[0, 1], Encoding::Ddc);
        let v = [1.5, -0.5];
        let expect = ops::gemv(&m, &v);
        let mut out = vec![0.0; m.rows()];
        gemv_into(&g, &v, &mut out);
        for (i, (a, b)) in out.iter().zip(&expect).enumerate() {
            assert!((a - b).abs() < 1e-9, "row {i}: {a} vs {b}");
        }
    }

    #[test]
    fn vecmat_matches_dense_for_all_encodings() {
        let m = sample();
        let v: Vec<f64> = (0..m.rows()).map(|i| (i as f64 * 0.1) - 2.0).collect();
        let expect = ops::gevm(&v, &m);
        for enc in ALL {
            let g = encode(&m, &[0, 1, 2], enc);
            let mut out = vec![0.0; m.cols()];
            vecmat_into(&g, &v, &mut out);
            for (a, b) in out.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-9, "{enc:?}");
            }
        }
    }

    #[test]
    fn col_sums_match_dense_for_all_encodings() {
        let m = sample();
        let expect = ops::col_sums(&m);
        for enc in ALL {
            let g = encode(&m, &[0, 1, 2], enc);
            let mut out = vec![0.0; m.cols()];
            col_sums_into(&g, &mut out);
            for (a, b) in out.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-9, "{enc:?}");
            }
        }
    }

    #[test]
    fn scalar_map_on_dictionary_only() {
        let m = sample();
        for enc in ALL {
            let g = encode(&m, &[0, 2], enc);
            let doubled = scalar_map(&g, |v| v * 2.0);
            let mut dst = Dense::zeros(m.rows(), m.cols());
            doubled.decompress_into(&mut dst);
            for r in 0..m.rows() {
                for &c in [0usize, 2].iter() {
                    assert!((dst.get(r, c) - 2.0 * m.get(r, c)).abs() < 1e-12, "{enc:?}");
                }
            }
        }
    }

    #[test]
    fn scalar_map_breaking_zero_elision_note() {
        // OLE/RLE elide zero tuples, so scalar functions that map 0 to non-zero
        // (like +1) would be incorrect on those encodings. The compressed-matrix
        // layer guards this; here we document the dictionary-level behavior:
        // mapped dictionaries still round-trip the *stored* tuples correctly.
        let m = Dense::from_fn(10, 1, |r, _| if r < 5 { 0.0 } else { 3.0 });
        let g = encode(&m, &[0], Encoding::Ole);
        let shifted = scalar_map(&g, |v| v + 1.0);
        let mut dst = Dense::zeros(10, 1);
        shifted.decompress_into(&mut dst);
        assert_eq!(dst.get(9, 0), 4.0);
        // Elided zero rows remain zero: this is why the matrix layer must
        // reject non-zero-preserving scalar ops for OLE/RLE groups.
        assert_eq!(dst.get(0, 0), 0.0);
    }
}
