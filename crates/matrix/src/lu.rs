//! LU decomposition with partial pivoting: the general (non-SPD) direct
//! solver, determinants, and matrix inversion.

use crate::dense::Dense;
use crate::MatrixError;

/// An LU factorization with partial pivoting: `P·A = L·U` where `L` is unit
/// lower triangular and `U` upper triangular, stored packed in one matrix.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed factors: `U` on and above the diagonal, `L` (sans unit
    /// diagonal) below.
    packed: Dense,
    /// Row permutation: output row `i` came from input row `perm[i]`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), for determinants.
    sign: f64,
}

/// Factor a square matrix.
///
/// # Errors
/// [`MatrixError::Singular`] when no usable pivot exists in some column.
///
/// # Panics
/// Panics if `a` is not square.
pub fn lu(a: &Dense) -> Result<Lu, MatrixError> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "lu requires a square matrix, got {}x{}", a.rows(), a.cols());
    let mut m = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;
    for k in 0..n {
        // Partial pivoting: largest magnitude in column k at or below row k.
        let (pivot_row, pivot_val) = (k..n)
            .map(|r| (r, m.get(r, k).abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("magnitudes are not NaN"))
            .expect("non-empty column range");
        if pivot_val < 1e-300 {
            return Err(MatrixError::Singular { column: k });
        }
        if pivot_row != k {
            // Swap rows k and pivot_row.
            for c in 0..n {
                let tmp = m.get(k, c);
                m.set(k, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            perm.swap(k, pivot_row);
            sign = -sign;
        }
        let pivot = m.get(k, k);
        for r in (k + 1)..n {
            let factor = m.get(r, k) / pivot;
            m.set(r, k, factor);
            for c in (k + 1)..n {
                let v = m.get(r, c) - factor * m.get(k, c);
                m.set(r, c, v);
            }
        }
    }
    Ok(Lu { packed: m, perm, sign })
}

impl Lu {
    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.packed.rows()
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.n() {
            d *= self.packed.get(i, i);
        }
        d
    }

    /// Solve `A x = b`.
    ///
    /// # Panics
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(b.len(), n, "lu solve length mismatch");
        // Apply permutation, then forward substitution with unit-L.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.packed.get(i, k) * y[k];
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.packed.get(i, k) * y[k];
            }
            y[i] /= self.packed.get(i, i);
        }
        y
    }

    /// Invert the original matrix (solving against each unit vector).
    pub fn inverse(&self) -> Dense {
        let n = self.n();
        let mut out = Dense::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e);
            for (r, v) in col.into_iter().enumerate() {
                out.set(r, c, v);
            }
            e[c] = 0.0;
        }
        out
    }
}

/// Solve the general square system `A x = b` via LU.
///
/// # Errors
/// [`MatrixError::Singular`] when `a` is singular.
pub fn solve_general(a: &Dense, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
    Ok(lu(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn nonsymmetric() -> Dense {
        Dense::from_rows(&[&[0.0, 2.0, 1.0], &[3.0, -1.0, 4.0], &[1.0, 5.0, -2.0]])
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let a = nonsymmetric();
        let x_true = [1.0, -2.0, 3.0];
        let b = ops::gemv(&a, &x_true);
        let x = solve_general(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn zero_leading_pivot_handled_by_pivoting() {
        // a[0][0] = 0 requires a row swap; naive LU would divide by zero.
        let a = nonsymmetric();
        assert_eq!(a.get(0, 0), 0.0);
        assert!(lu(&a).is_ok());
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((lu(&a).unwrap().det() - (-2.0)).abs() < 1e-12);
        let i = Dense::identity(4);
        assert!((lu(&i).unwrap().det() - 1.0).abs() < 1e-12);
        // Row swap flips the sign: permutation matrix det = -1.
        let p = Dense::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((lu(&p).unwrap().det() + 1.0).abs() < 1e-12);
        // det of the 3x3 above, computed by hand: 0*(2-20) - 2*(-6-4) + 1*(15+1) = 36.
        assert!((lu(&nonsymmetric()).unwrap().det() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_reconstructs_identity() {
        let a = nonsymmetric();
        let inv = lu(&a).unwrap().inverse();
        let prod = ops::gemm(&a, &inv);
        assert!(prod.approx_eq(&Dense::identity(3), 1e-10));
        let prod2 = ops::gemm(&inv, &a);
        assert!(prod2.approx_eq(&Dense::identity(3), 1e-10));
    }

    #[test]
    fn singular_detected() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(lu(&a), Err(MatrixError::Singular { .. })));
        let z = Dense::zeros(3, 3);
        assert!(matches!(lu(&z), Err(MatrixError::Singular { column: 0 })));
    }

    #[test]
    fn agrees_with_cholesky_on_spd() {
        let b = Dense::from_rows(&[&[2.0, 1.0], &[0.5, 3.0], &[1.0, -1.0]]);
        let mut a = ops::crossprod(&b);
        for i in 0..2 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let rhs = [1.0, -2.0];
        let via_lu = solve_general(&a, &rhs).unwrap();
        let via_chol = crate::solve::solve_spd(&a, &rhs).unwrap();
        for (p, q) in via_lu.iter().zip(&via_chol) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "square matrix")]
    fn rectangular_panics() {
        let _ = lu(&Dense::zeros(2, 3));
    }
}
