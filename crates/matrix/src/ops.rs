//! Dense linear-algebra kernels: products, elementwise ops, and aggregations.
//!
//! All kernels operate on [`Dense`] matrices and plain `&[f64]` vectors and
//! panic on shape mismatch (documented per function).

use crate::dense::Dense;

/// Matrix-vector product `m * v`, as the degree-1 instance of the
/// paired-row kernel in [`crate::par::gemv`] (each element is exactly a
/// [`dot`] of its row against `v`).
///
/// # Panics
/// Panics if `v.len() != m.cols()`.
pub fn gemv(m: &Dense, v: &[f64]) -> Vec<f64> {
    crate::par::gemv(m, v, 1)
}

/// Vector-matrix product `v^T * m` (result length `m.cols()`).
///
/// # Panics
/// Panics if `v.len() != m.rows()`.
pub fn gevm(v: &[f64], m: &Dense) -> Vec<f64> {
    crate::par::gevm(v, m, 1)
}

/// Matrix-matrix product `a * b` via the packed register-tiled kernel
/// ([`crate::pack`]) shared with the row-partitioned parallel kernel
/// ([`crate::par::gemm`]); the serial product is the degree-1 instance of
/// the same computation.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn gemm(a: &Dense, b: &Dense) -> Dense {
    crate::par::gemm(a, b, 1)
}

/// Self-transpose product `m^T * m` exploiting symmetry (SystemML `t(X)%*%X`
/// fused op). Executes the fixed-block reduction of [`crate::par::crossprod`]
/// at degree 1, so parallel runs reproduce these exact bits.
pub fn crossprod(m: &Dense) -> Dense {
    crate::par::crossprod(m, 1)
}

/// Transpose-matrix-vector `m^T * v` without materializing the transpose
/// (SystemML fused `t(X)%*%v`).
///
/// # Panics
/// Panics if `v.len() != m.rows()`.
pub fn tmv(m: &Dense, v: &[f64]) -> Vec<f64> {
    gevm(v, m)
}

/// Dot product.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch: {} vs {}", a.len(), b.len());
    // 4-way unrolled accumulation: lets LLVM vectorize and reduces dependency chains.
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let k = i * 4;
        acc[0] += a[k] * b[k];
        acc[1] += a[k + 1] * b[k + 1];
        acc[2] += a[k + 2] * b[k + 2];
        acc[3] += a[k + 3] * b[k + 3];
    }
    let mut tail = 0.0;
    for k in chunks * 4..a.len() {
        tail += a[k] * b[k];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Two dot products against a shared right-hand side, streaming `b` once.
///
/// Each result is produced by exactly the fold of [`dot`] (the same 4-way
/// unrolled accumulation and final sum), so
/// `dot2(a0, a1, b) == (dot(a0, b), dot(a1, b))` bit-for-bit — paired-row
/// gemv reuses `b` from registers/L1 without changing a single result bit.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot2(a0: &[f64], a1: &[f64], b: &[f64]) -> (f64, f64) {
    assert!(
        a0.len() == b.len() && a1.len() == b.len(),
        "dot2 length mismatch: {} / {} vs {}",
        a0.len(),
        a1.len(),
        b.len()
    );
    let mut x = [0.0f64; 4];
    let mut y = [0.0f64; 4];
    let chunks = b.len() / 4;
    for i in 0..chunks {
        let k = i * 4;
        x[0] += a0[k] * b[k];
        x[1] += a0[k + 1] * b[k + 1];
        x[2] += a0[k + 2] * b[k + 2];
        x[3] += a0[k + 3] * b[k + 3];
        y[0] += a1[k] * b[k];
        y[1] += a1[k + 1] * b[k + 1];
        y[2] += a1[k + 2] * b[k + 2];
        y[3] += a1[k + 3] * b[k + 3];
    }
    let mut tx = 0.0;
    let mut ty = 0.0;
    for k in chunks * 4..b.len() {
        tx += a0[k] * b[k];
        ty += a1[k] * b[k];
    }
    (x[0] + x[1] + x[2] + x[3] + tx, y[0] + y[1] + y[2] + y[3] + ty)
}

/// Elementwise binary operation helper.
///
/// # Panics
/// Panics on shape mismatch.
fn zip_with(a: &Dense, b: &Dense, f: impl Fn(f64, f64) -> f64) -> Dense {
    assert_eq!(
        a.shape(),
        b.shape(),
        "elementwise shape mismatch: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let data = a.data().iter().zip(b.data()).map(|(&x, &y)| f(x, y)).collect();
    Dense::from_vec(a.rows(), a.cols(), data).expect("shape preserved by zip")
}

/// Elementwise addition.
pub fn add(a: &Dense, b: &Dense) -> Dense {
    zip_with(a, b, |x, y| x + y)
}

/// Elementwise subtraction.
pub fn sub(a: &Dense, b: &Dense) -> Dense {
    zip_with(a, b, |x, y| x - y)
}

/// Elementwise (Hadamard) multiplication.
pub fn mul(a: &Dense, b: &Dense) -> Dense {
    zip_with(a, b, |x, y| x * y)
}

/// Elementwise division.
pub fn div(a: &Dense, b: &Dense) -> Dense {
    zip_with(a, b, |x, y| x / y)
}

/// Multiply every element by a scalar.
pub fn scale(a: &Dense, s: f64) -> Dense {
    a.map(|v| v * s)
}

/// Add a scalar to every element.
pub fn shift(a: &Dense, s: f64) -> Dense {
    a.map(|v| v + s)
}

/// Sum of all elements.
pub fn sum(a: &Dense) -> f64 {
    a.data().iter().sum()
}

/// Sum of squares of all elements (SystemML fused `sum(X^2)`), as the
/// degree-1 instance of the fixed-block reduction in [`crate::par::sum_sq`].
pub fn sum_sq(a: &Dense) -> f64 {
    crate::par::sum_sq(a, 1)
}

/// Column sums (length `cols`), as the degree-1 instance of the fixed-block
/// reduction in [`crate::par::col_sums`].
pub fn col_sums(a: &Dense) -> Vec<f64> {
    crate::par::col_sums(a, 1)
}

/// Row sums (length `rows`).
pub fn row_sums(a: &Dense) -> Vec<f64> {
    a.iter_rows().map(|r| r.iter().sum()).collect()
}

/// Column means; zero-row matrices yield zeros.
pub fn col_means(a: &Dense) -> Vec<f64> {
    let n = a.rows();
    let mut s = col_sums(a);
    if n > 0 {
        for v in &mut s {
            *v /= n as f64;
        }
    }
    out_or_zero(s)
}

fn out_or_zero(v: Vec<f64>) -> Vec<f64> {
    v
}

/// Column variances (population, divide by n); zero-row matrices yield zeros.
pub fn col_vars(a: &Dense) -> Vec<f64> {
    let n = a.rows();
    if n == 0 {
        return vec![0.0; a.cols()];
    }
    let means = col_means(a);
    let mut out = vec![0.0; a.cols()];
    for r in 0..n {
        for ((o, &v), &m) in out.iter_mut().zip(a.row(r)).zip(&means) {
            let d = v - m;
            *o += d * d;
        }
    }
    for v in &mut out {
        *v /= n as f64;
    }
    out
}

/// Minimum element; `NaN` for empty matrices.
pub fn min(a: &Dense) -> f64 {
    a.data().iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum element; `NaN` for empty matrices.
pub fn max(a: &Dense) -> f64 {
    a.data().iter().copied().fold(f64::NAN, f64::max)
}

/// Vector axpy: `y += alpha * x`.
///
/// # Panics
/// Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch: {} vs {}", x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a vector.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Dense {
        Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])
    }

    #[test]
    fn gemv_basic() {
        assert_eq!(gemv(&a(), &[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "gemv dimension mismatch")]
    fn gemv_shape_panics() {
        gemv(&a(), &[1.0]);
    }

    #[test]
    fn gevm_basic() {
        assert_eq!(gevm(&[1.0, 0.0, 1.0], &a()), vec![6.0, 8.0]);
    }

    #[test]
    fn gemm_matches_manual() {
        let b = Dense::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0]]);
        let c = gemm(&a(), &b);
        assert_eq!(c.shape(), (3, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 4.0]);
        assert_eq!(c.row(2), &[5.0, 6.0, 16.0]);
    }

    #[test]
    fn gemm_identity() {
        let m = a();
        let i = Dense::identity(2);
        assert_eq!(gemm(&m, &i), m);
    }

    #[test]
    fn crossprod_matches_explicit() {
        let m = a();
        let explicit = gemm(&m.transpose(), &m);
        assert!(crossprod(&m).approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn tmv_matches_explicit() {
        let m = a();
        let v = [1.0, 2.0, 3.0];
        let explicit = gemv(&m.transpose(), &v);
        let fused = tmv(&m, &v);
        for (x, y) in fused.iter().zip(&explicit) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn elementwise_ops() {
        let m = Dense::from_rows(&[&[1.0, 2.0]]);
        let n = Dense::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(add(&m, &n).row(0), &[4.0, 6.0]);
        assert_eq!(sub(&m, &n).row(0), &[-2.0, -2.0]);
        assert_eq!(mul(&m, &n).row(0), &[3.0, 8.0]);
        assert_eq!(div(&n, &m).row(0), &[3.0, 2.0]);
        assert_eq!(scale(&m, 2.0).row(0), &[2.0, 4.0]);
        assert_eq!(shift(&m, 1.0).row(0), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "elementwise shape mismatch")]
    fn elementwise_shape_panics() {
        add(&Dense::zeros(1, 2), &Dense::zeros(2, 1));
    }

    #[test]
    fn aggregations() {
        let m = a();
        assert_eq!(sum(&m), 21.0);
        assert_eq!(sum_sq(&m), 91.0);
        assert_eq!(col_sums(&m), vec![9.0, 12.0]);
        assert_eq!(row_sums(&m), vec![3.0, 7.0, 11.0]);
        assert_eq!(col_means(&m), vec![3.0, 4.0]);
        let vars = col_vars(&m);
        assert!((vars[0] - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(min(&m), 1.0);
        assert_eq!(max(&m), 6.0);
    }

    #[test]
    fn aggregations_on_empty() {
        let e = Dense::zeros(0, 3);
        assert_eq!(sum(&e), 0.0);
        assert_eq!(col_means(&e), vec![0.0, 0.0, 0.0]);
        assert_eq!(col_vars(&e), vec![0.0, 0.0, 0.0]);
        assert!(min(&e).is_nan());
    }

    #[test]
    fn dot_unrolled_matches_naive() {
        let x: Vec<f64> = (0..103).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = (0..103).map(|i| (103 - i) as f64).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-9);
    }

    #[test]
    fn dot2_bit_identical_to_dot() {
        for len in [0usize, 1, 3, 4, 7, 103] {
            let x0: Vec<f64> = (0..len).map(|i| i as f64 * 0.5 - 20.0).collect();
            let x1: Vec<f64> = (0..len).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
            let y: Vec<f64> = (0..len).map(|i| (len - i) as f64 * 0.25).collect();
            let (d0, d1) = dot2(&x0, &x1, &y);
            assert_eq!(d0.to_bits(), dot(&x0, &y).to_bits(), "len {len}");
            assert_eq!(d1.to_bits(), dot(&x1, &y).to_bits(), "len {len}");
        }
    }

    #[test]
    fn axpy_and_norm() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }
}
