//! Packed, register-tiled gemm building blocks (the classic GEBP scheme).
//!
//! Dense matrix multiply is restructured around three levels of blocking,
//! sized so each operand lives in the cache level that can feed the
//! innermost loop:
//!
//! * A [`KC`]`x`[`NC`] slab of `B` is packed once into [`PackedB`]:
//!   contiguous [`NR`]-column tiles, `k`-major within each tile, zero-padded
//!   to a full `NR` width. The slab is read-only after packing, so *all*
//!   workers of a parallel gemm share one copy instead of re-streaming `B`
//!   from cold memory per thread.
//! * An [`MC`]`x`[`KC`] block of `A` is packed into [`MR`]-row micro-panels,
//!   `k`-major, zero-padded to `MR` rows, so the microkernel reads both
//!   operands at unit stride.
//! * The [`MR`]`x`[`NR`] microkernel keeps the output tile in a local
//!   `[[f64; NR]; MR]` array. The bounds are compile-time constants and the
//!   loop body is branch-free, which is what lets LLVM promote the tile to
//!   vector registers and autovectorize the FMA chain — no `unsafe`, no
//!   intrinsics.
//!
//! # Bit-identity contract
//!
//! Every kernel in this workspace promises results **bit-identical** to the
//! serial reference loop (for each output element, products accumulated in
//! strictly increasing `k` order, left-associated). The packing layout is
//! chosen to preserve exactly that order:
//!
//! * Within a `KC` slab the microkernel walks `k` upward, accumulating into
//!   the tile one `k` at a time.
//! * Across slabs, the output tile is **loaded from `out`, accumulated, and
//!   stored back per slab** (never recomputed in fresh registers and added
//!   at the end), so the per-element sum stays left-associated across the
//!   `pc` loop.
//! * The `jc`/`ic`/`jr`/`ir` loops only partition *disjoint* output
//!   elements; they can be reordered freely without touching any sum.
//!
//! The one deliberate deviation from the reference loop is the `a[i][k] ==
//! 0.0` skip: the reference kernels skip zero `A` entries, the microkernel
//! must not branch per element. Dropping the skip is a **bit-exact** rewrite
//! whenever `B` contains only finite values, by the following argument:
//! output accumulators start at `+0.0` and, under round-to-nearest, an
//! accumulator can never become `-0.0` (`x + (-x) == +0.0` for finite
//! `x != 0`, and `-0.0` only arises from `(-0.0) + (-0.0)`); adding
//! `±0.0 * b == ±0.0` (finite `b`) to a non-`-0.0` value is an exact
//! identity. Only non-finite `B` values distinguish the two kernels
//! (`0.0 * inf == NaN`), so callers check [`all_finite`] on `B` and fall
//! back to the reference kernel otherwise — exact bit-identity in all cases.

use std::ops::Range;

/// Microkernel tile height (rows of `A` / the output held in registers).
///
/// `MR x NR = 24` accumulators fill the 16 SSE2 `xmm` registers of the
/// portable x86-64 baseline without spilling (measured: 2x12 beats 4x8 by
/// ~2x there, and still autovectorizes to wide FMA under
/// `-C target-cpu=native`).
pub const MR: usize = 2;

/// Microkernel tile width (columns of `B` / the output held in registers).
pub const NR: usize = 12;

/// Cache-block depth (the `k` extent of packed `A` and `B` slabs); sized so
/// an `MR x KC` micro-panel of `A` (8 KiB) stays in L1 while a `KC x NR`
/// tile of `B` (48 KiB) streams from L2.
pub const KC: usize = 512;

/// Cache-block height (rows of `A` packed per block, reused across all of
/// the slab's `B` tiles).
pub const MC: usize = 128;

/// Cache-block width (columns of `B` packed per slab, ~2 MiB at `KC = 512`,
/// sized for the shared outer cache).
pub const NC: usize = 512;

/// True if every element is finite (no `NaN`/`inf`). Gemm callers use this
/// on `B` to choose between the branch-free packed path and the reference
/// kernel with the `a[i][k] == 0.0` skip (see the module docs for why the
/// two are bit-identical exactly when `B` is finite).
pub fn all_finite(data: &[f64]) -> bool {
    data.iter().all(|v| v.is_finite())
}

/// A packed `KC x NC` slab of `B`: [`NR`]-column tiles, `k`-major within
/// each tile, zero-padded to full `NR` width. Immutable after [`pack`];
/// sharable by reference across parallel workers.
///
/// [`pack`]: PackedB::pack
#[derive(Default)]
pub struct PackedB {
    data: Vec<f64>,
    kc: usize,
    jcols: Range<usize>,
}

impl PackedB {
    /// Pack rows `kr` and columns `jcols` of the row-major matrix `b`
    /// (`n_cols` columns wide), replacing any previous contents.
    pub fn pack(&mut self, b: &[f64], n_cols: usize, kr: Range<usize>, jcols: Range<usize>) {
        self.data.clear();
        self.kc = kr.len();
        self.jcols = jcols.clone();
        self.data.reserve(jcols.len().div_ceil(NR) * NR * self.kc);
        for jr in (jcols.start..jcols.end).step_by(NR) {
            let jw = (jr + NR).min(jcols.end) - jr;
            for k in kr.clone() {
                self.data.extend_from_slice(&b[k * n_cols + jr..k * n_cols + jr + jw]);
                self.data.extend(std::iter::repeat_n(0.0, NR - jw));
            }
        }
    }

    /// The output columns this slab covers.
    pub fn jcols(&self) -> Range<usize> {
        self.jcols.clone()
    }

    /// The `k` extent of the slab.
    pub fn kc(&self) -> usize {
        self.kc
    }

    /// The `jt`-th packed `NR`-column tile (`kc * NR` elements).
    fn tile(&self, jt: usize) -> &[f64] {
        &self.data[jt * self.kc * NR..(jt + 1) * self.kc * NR]
    }
}

/// A borrowed block of a row-major `A` operand: rows `rows`, columns
/// `kcols`, row stride `stride`. Output rows are indexed relative to
/// `rows.start`.
pub struct AView<'a> {
    /// Row-major backing data.
    pub data: &'a [f64],
    /// Row stride of `data` (the full column count of `A`).
    pub stride: usize,
    /// Rows of `A` this view covers.
    pub rows: Range<usize>,
    /// The `k` columns of `A` matching the packed `B` slab's `k` extent.
    pub kcols: Range<usize>,
}

/// Pack the view's rows into `MR`-row micro-panels, `k`-major, zero-padded
/// to `MR` rows. `dst` is cleared and reused.
fn pack_a_block(a: &AView<'_>, rows: Range<usize>, dst: &mut Vec<f64>) {
    dst.clear();
    let kc = a.kcols.len();
    dst.reserve(rows.len().div_ceil(MR) * MR * kc);
    for ir in (rows.start..rows.end).step_by(MR) {
        let iw = (ir + MR).min(rows.end) - ir;
        for k in a.kcols.clone() {
            for i in ir..ir + iw {
                dst.push(a.data[i * a.stride + k]);
            }
            dst.extend(std::iter::repeat_n(0.0, MR - iw));
        }
    }
}

/// The register-tiled inner loop: `acc[i][j] += a[i][k] * b[k][j]` for `k`
/// in `0..kc`, reading both packed panels at unit stride. Constant bounds
/// and no branches: LLVM keeps `acc` in vector registers.
#[inline]
fn microkernel(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for i in 0..MR {
            let aik = av[i];
            for j in 0..NR {
                acc[i][j] += aik * bv[j];
            }
        }
    }
}

/// Full `MR x NR` tile: load the output tile, accumulate one `KC` slab,
/// store it back. The load/store loops have compile-time bounds — keeping
/// them separate from [`edge_tile`]'s dynamic bounds is what lets LLVM
/// promote `acc` to registers on this hot path.
#[inline]
fn full_tile(
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    out: &mut [f64],
    stride: usize,
    r0: usize,
    c0: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for (i, accr) in acc.iter_mut().enumerate() {
        let src = &out[(r0 + i) * stride + c0..(r0 + i) * stride + c0 + NR];
        accr.copy_from_slice(src);
    }
    microkernel(kc, ap, bp, &mut acc);
    for (i, accr) in acc.iter().enumerate() {
        let dst = &mut out[(r0 + i) * stride + c0..(r0 + i) * stride + c0 + NR];
        dst.copy_from_slice(accr);
    }
}

/// Partial tile at the right/bottom matrix edge: same accumulation, dynamic
/// `iw x jw` bounds. Padded lanes compute on packed zeros and are never
/// stored.
fn edge_tile(
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    out: &mut [f64],
    stride: usize,
    (r0, c0): (usize, usize),
    (iw, jw): (usize, usize),
) {
    let mut acc = [[0.0f64; NR]; MR];
    for (i, accr) in acc.iter_mut().enumerate().take(iw) {
        let src = &out[(r0 + i) * stride + c0..(r0 + i) * stride + c0 + jw];
        accr[..jw].copy_from_slice(src);
    }
    microkernel(kc, ap, bp, &mut acc);
    for (i, accr) in acc.iter().enumerate().take(iw) {
        let dst = &mut out[(r0 + i) * stride + c0..(r0 + i) * stride + c0 + jw];
        dst.copy_from_slice(&accr[..jw]);
    }
}

/// Accumulate `out[rows x jcols] += A[rows, kcols] * B[kcols, jcols]` for
/// one packed `B` slab.
///
/// `out` is row-major with stride `out_stride` and holds `a.rows.len()`
/// rows starting at row `a.rows.start` of the full product (columns are
/// indexed globally, so `out_stride` is the product's full width). `apack`
/// is caller-owned scratch reused across calls.
///
/// Per output element the `k` accumulation order is strictly increasing
/// within the slab, and `out` is read-modify-written, so driving slabs in
/// increasing `k` order reproduces the serial reference sum bit-for-bit
/// (see module docs; callers must gate on [`all_finite`]`(B)`).
pub fn gemm_packed_rows(
    a: &AView<'_>,
    bp: &PackedB,
    out: &mut [f64],
    out_stride: usize,
    apack: &mut Vec<f64>,
) {
    let kc = a.kcols.len();
    debug_assert_eq!(kc, bp.kc());
    debug_assert!(out.len() >= a.rows.len().saturating_sub(1) * out_stride);
    let (j0, j1) = (bp.jcols.start, bp.jcols.end);
    let n_jr = (j1 - j0).div_ceil(NR);
    for i0 in (a.rows.start..a.rows.end).step_by(MC) {
        let i1 = (i0 + MC).min(a.rows.end);
        pack_a_block(a, i0..i1, apack);
        let n_ir = (i1 - i0).div_ceil(MR);
        for jt in 0..n_jr {
            let btile = bp.tile(jt);
            let jr = j0 + jt * NR;
            let jw = (jr + NR).min(j1) - jr;
            for it in 0..n_ir {
                let ap = &apack[it * kc * MR..(it + 1) * kc * MR];
                let ir = i0 + it * MR;
                let iw = (ir + MR).min(i1) - ir;
                let r0 = ir - a.rows.start;
                if iw == MR && jw == NR {
                    full_tile(kc, ap, btile, out, out_stride, r0, jr);
                } else {
                    edge_tile(kc, ap, btile, out, out_stride, (r0, jr), (iw, jw));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The serial reference loop every kernel is pinned against: strictly
    // increasing k, left-associated, with the zero skip.
    fn naive_gemm(a: &[f64], b: &[f64], m: usize, k_dim: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for k in 0..k_dim {
                let aik = a[i * k_dim + k];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += aik * b[k * n + j];
                }
            }
        }
        out
    }

    fn fill(len: usize, seed: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let v = ((i * 31 + seed * 17) % 23) as f64 * 0.37 - 3.0;
                if (i + seed).is_multiple_of(11) {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    fn packed_gemm(a: &[f64], b: &[f64], m: usize, k_dim: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        let mut bpack = PackedB::default();
        let mut apack = Vec::new();
        for jc in (0..n).step_by(NC) {
            let j1 = (jc + NC).min(n);
            for pc in (0..k_dim).step_by(KC) {
                let p1 = (pc + KC).min(k_dim);
                bpack.pack(b, n, pc..p1, jc..j1);
                let view = AView { data: a, stride: k_dim, rows: 0..m, kcols: pc..p1 };
                gemm_packed_rows(&view, &bpack, &mut out, n, &mut apack);
            }
        }
        out
    }

    #[test]
    fn packed_layout_is_k_major_and_zero_padded() {
        // 3x5 B, one slab: two tiles of NR cols (5 < NR, so one padded tile).
        let b: Vec<f64> = (0..15).map(|i| i as f64 + 1.0).collect();
        let mut p = PackedB::default();
        p.pack(&b, 5, 0..3, 0..5);
        assert_eq!(p.kc(), 3);
        // k-major: row k of the tile holds b[k][0..5] then NR-5 zeros.
        assert_eq!(&p.tile(0)[..5], &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(&p.tile(0)[5..NR], &[0.0; NR - 5]);
        assert_eq!(&p.tile(0)[NR..NR + 5], &[6.0, 7.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn bit_identical_across_shapes() {
        // Degenerate and non-multiple-of-tile shapes, including dims that
        // straddle MR/NR/KC/MC boundaries.
        for (m, k_dim, n) in [
            (0, 3, 4),
            (1, 1, 1),
            (1, 7, 13),
            (2, 12, 12),
            (3, 5, 1),
            (5, 0, 4),
            (17, 23, 29),
            (MR + 1, KC + 3, NR + 1),
            (MC + 5, 33, NC / 8 + 7),
        ] {
            let a = fill(m * k_dim, 1);
            let b = fill(k_dim * n, 2);
            let want = naive_gemm(&a, &b, m, k_dim, n);
            let got = packed_gemm(&a, &b, m, k_dim, n);
            assert_eq!(want.len(), got.len());
            for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "{m}x{k_dim}x{n} at {i}: {w} vs {g}");
            }
        }
    }

    #[test]
    fn row_subrange_matches_full_product() {
        let (m, k_dim, n) = (37, 19, 21);
        let a = fill(m * k_dim, 3);
        let b = fill(k_dim * n, 4);
        let want = naive_gemm(&a, &b, m, k_dim, n);
        // Compute only rows 10..25 the way a parallel worker would.
        let rows = 10..25usize;
        let mut out = vec![0.0; rows.len() * n];
        let mut bpack = PackedB::default();
        let mut apack = Vec::new();
        for jc in (0..n).step_by(NC) {
            let j1 = (jc + NC).min(n);
            for pc in (0..k_dim).step_by(KC) {
                let p1 = (pc + KC).min(k_dim);
                bpack.pack(&b, n, pc..p1, jc..j1);
                let view = AView { data: &a, stride: k_dim, rows: rows.clone(), kcols: pc..p1 };
                gemm_packed_rows(&view, &bpack, &mut out, n, &mut apack);
            }
        }
        for (oi, r) in rows.enumerate() {
            assert_eq!(&out[oi * n..(oi + 1) * n], &want[r * n..(r + 1) * n], "row {r}");
        }
    }

    #[test]
    fn finite_check() {
        assert!(all_finite(&[0.0, -1.5, 1e300]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
        assert!(all_finite(&[]));
    }
}
