//! # dm-matrix
//!
//! Dense and sparse matrix substrate for the `dmml` workspace.
//!
//! This crate provides the numeric foundation that every other component of the
//! system builds on: row-major dense matrices ([`Dense`]), compressed sparse row
//! matrices ([`Csr`]) with a COO builder ([`Coo`]), a unifying [`Matrix`] enum used
//! by the physical-operator layer of `dm-lang`, block-partitioned matrices
//! ([`block::BlockMatrix`]) in the style of SystemML's distributed representation,
//! and direct/iterative solvers (Cholesky, Householder QR, conjugate gradient).
//!
//! ## Conventions
//!
//! * All element types are `f64`.
//! * Dense storage is row-major; `row(i)` returns a contiguous slice.
//! * Shape mismatches in algebra kernels are programming errors and **panic** with
//!   a descriptive message (the convention of mainstream Rust linear-algebra
//!   crates). Fallible *construction* from external data returns [`Result`].
//!
//! ## Quick example
//!
//! ```
//! use dm_matrix::{Dense, ops};
//!
//! let x = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let v = [1.0, 1.0];
//! let y = ops::gemv(&x, &v);
//! assert_eq!(y, vec![3.0, 7.0]);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod dense;
pub mod error;
pub mod lu;
pub mod ops;
pub mod pack;
pub mod par;
pub mod solve;
pub mod sparse;

pub use block::BlockMatrix;
pub use dense::Dense;
pub use error::MatrixError;
pub use sparse::{Coo, Csr};

/// A matrix in either dense or sparse (CSR) physical representation.
///
/// The declarative layer (`dm-lang`) selects the representation per operator
/// based on estimated sparsity; this enum is the value type that flows between
/// physical operators.
#[derive(Debug, Clone, PartialEq)]
pub enum Matrix {
    /// Row-major dense representation.
    Dense(Dense),
    /// Compressed sparse row representation.
    Sparse(Csr),
}

impl Matrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.rows(),
            Matrix::Sparse(s) => s.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.cols(),
            Matrix::Sparse(s) => s.cols(),
        }
    }

    /// Number of stored non-zero entries (dense matrices count actual non-zeros).
    pub fn nnz(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.nnz(),
            Matrix::Sparse(s) => s.nnz(),
        }
    }

    /// Fraction of non-zero cells, in `[0, 1]`. Empty matrices report 0.
    pub fn sparsity(&self) -> f64 {
        let cells = self.rows() * self.cols();
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Element access by (row, col). O(1) for dense, O(log nnz_row) for sparse.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        match self {
            Matrix::Dense(d) => d.get(r, c),
            Matrix::Sparse(s) => s.get(r, c),
        }
    }

    /// Convert to a dense matrix, cloning if already dense.
    pub fn to_dense(&self) -> Dense {
        match self {
            Matrix::Dense(d) => d.clone(),
            Matrix::Sparse(s) => s.to_dense(),
        }
    }

    /// Convert to CSR, cloning if already sparse.
    pub fn to_csr(&self) -> Csr {
        match self {
            Matrix::Dense(d) => Csr::from_dense(d),
            Matrix::Sparse(s) => s.clone(),
        }
    }

    /// True if the physical representation is dense.
    pub fn is_dense(&self) -> bool {
        matches!(self, Matrix::Dense(_))
    }

    /// Matrix-vector product dispatching on representation.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn gemv(&self, v: &[f64]) -> Vec<f64> {
        match self {
            Matrix::Dense(d) => ops::gemv(d, v),
            Matrix::Sparse(s) => sparse::spmv(s, v),
        }
    }

    /// Vector-matrix product (`v^T * M`) dispatching on representation.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        match self {
            Matrix::Dense(d) => ops::gevm(v, d),
            Matrix::Sparse(s) => sparse::spvm(v, s),
        }
    }
}

impl From<Dense> for Matrix {
    fn from(d: Dense) -> Self {
        Matrix::Dense(d)
    }
}

impl From<Csr> for Matrix {
    fn from(s: Csr) -> Self {
        Matrix::Sparse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_enum_dispatch() {
        let d = Dense::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let m_dense = Matrix::Dense(d.clone());
        let m_sparse = Matrix::Sparse(Csr::from_dense(&d));
        assert_eq!(m_dense.rows(), 2);
        assert_eq!(m_sparse.cols(), 2);
        assert_eq!(m_dense.nnz(), 2);
        assert_eq!(m_sparse.nnz(), 2);
        assert_eq!(m_dense.get(1, 1), 2.0);
        assert_eq!(m_sparse.get(1, 1), 2.0);
        assert!((m_dense.sparsity() - 0.5).abs() < 1e-12);
        let v = [3.0, 4.0];
        assert_eq!(m_dense.gemv(&v), m_sparse.gemv(&v));
        assert_eq!(m_dense.vecmat(&v), m_sparse.vecmat(&v));
    }

    #[test]
    fn round_trip_conversions() {
        let d = Dense::from_rows(&[&[0.0, 1.5, 0.0], &[2.5, 0.0, -1.0]]);
        let s = Csr::from_dense(&d);
        assert_eq!(s.to_dense(), d);
        let m: Matrix = s.into();
        assert_eq!(m.to_dense(), d);
    }

    #[test]
    fn sparsity_of_empty() {
        let d = Dense::zeros(0, 0);
        assert_eq!(Matrix::Dense(d).sparsity(), 0.0);
    }
}
