#![allow(clippy::needless_range_loop)] // index loops mirror the math in numeric kernels
//! Sparse matrices: COO builder and CSR storage with sparse kernels.

use crate::dense::Dense;
use crate::MatrixError;

/// Coordinate-format builder for sparse matrices.
///
/// Accumulate `(row, col, value)` triplets in any order (duplicates are summed),
/// then convert to [`Csr`] with [`Coo::to_csr`].
#[derive(Debug, Clone, Default)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    /// Create an empty builder with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Coo { rows, cols, entries: Vec::new() }
    }

    /// Append one triplet. Zero values are skipped.
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] for coordinates outside the shape.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), MatrixError> {
        if row >= self.rows || col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
        Ok(())
    }

    /// Number of accumulated (possibly duplicate) triplets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no triplets have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Convert to CSR, sorting triplets and summing duplicates.
    pub fn to_csr(mut self) -> Csr {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        indptr.push(0usize);
        let mut cur_row = 0usize;
        for (r, c, v) in self.entries {
            while cur_row < r {
                indptr.push(indices.len());
                cur_row += 1;
            }
            if let (Some(&last_c), true) = (indices.last(), indptr.last() != Some(&indices.len())) {
                if last_c == c {
                    // Duplicate coordinate within the same row: accumulate.
                    let last_v: &mut f64 =
                        values.last_mut().expect("values non-empty when indices non-empty");
                    *last_v += v;
                    if *last_v == 0.0 {
                        // Exact cancellation: drop the entry to keep nnz exact.
                        indices.pop();
                        values.pop();
                    }
                    continue;
                }
            }
            indices.push(c);
            values.push(v);
        }
        while cur_row < self.rows {
            indptr.push(indices.len());
            cur_row += 1;
        }
        Csr { rows: self.rows, cols: self.cols, indptr, indices, values }
    }
}

/// Compressed sparse row matrix.
///
/// `indptr` has `rows + 1` entries; row `r` occupies `indices[indptr[r]..indptr[r+1]]`
/// (column indices, strictly increasing within a row) and the parallel slice of
/// `values`. Explicit zeros are never stored.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// An empty (all-zero) sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Csr { rows, cols, indptr: vec![0; rows + 1], indices: Vec::new(), values: Vec::new() }
    }

    /// Build from raw CSR arrays, validating the invariants.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, MatrixError> {
        if indptr.len() != rows + 1 || indices.len() != values.len() {
            return Err(MatrixError::ShapeMismatch { expected: rows + 1, actual: indptr.len() });
        }
        if *indptr.last().unwrap_or(&0) != indices.len() || indptr[0] != 0 {
            return Err(MatrixError::ShapeMismatch {
                expected: indices.len(),
                actual: *indptr.last().unwrap_or(&0),
            });
        }
        for r in 0..rows {
            if indptr[r] > indptr[r + 1] {
                return Err(MatrixError::ShapeMismatch {
                    expected: indptr[r],
                    actual: indptr[r + 1],
                });
            }
            let row_idx = &indices[indptr[r]..indptr[r + 1]];
            for w in row_idx.windows(2) {
                if w[0] >= w[1] {
                    return Err(MatrixError::IndexOutOfBounds { row: r, col: w[1], rows, cols });
                }
            }
            if let Some(&last) = row_idx.last() {
                if last >= cols {
                    return Err(MatrixError::IndexOutOfBounds { row: r, col: last, rows, cols });
                }
            }
        }
        Ok(Csr { rows, cols, indptr, indices, values })
    }

    /// Convert a dense matrix to CSR, dropping zeros.
    pub fn from_dense(d: &Dense) -> Self {
        let mut indptr = Vec::with_capacity(d.rows() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..d.rows() {
            for (c, &v) in d.row(r).iter().enumerate() {
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Csr { rows: d.rows(), cols: d.cols(), indptr, indices, values }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of non-zero cells, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Element access via binary search within the row.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let (idx, vals) = self.row(r);
        match idx.binary_search(&c) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Materialize as a dense matrix.
    pub fn to_dense(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            let dst = out.row_mut(r);
            for (&c, &v) in idx.iter().zip(vals) {
                dst[c] = v;
            }
        }
        out
    }

    /// Transpose via the classic two-pass counting algorithm (O(nnz)).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut next = counts;
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                let pos = next[c];
                indices[pos] = r;
                values[pos] = v;
                next[c] += 1;
            }
        }
        Csr { rows: self.cols, cols: self.rows, indptr, indices, values }
    }

    /// Iterate over all stored `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (idx, vals) = self.row(r);
            idx.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }
}

/// Sparse matrix-vector product `m * v`.
///
/// # Panics
/// Panics if `v.len() != m.cols()`.
pub fn spmv(m: &Csr, v: &[f64]) -> Vec<f64> {
    assert_eq!(
        v.len(),
        m.cols(),
        "spmv dimension mismatch: vector {} vs cols {}",
        v.len(),
        m.cols()
    );
    let mut out = vec![0.0; m.rows()];
    for r in 0..m.rows() {
        let (idx, vals) = m.row(r);
        let mut acc = 0.0;
        for (&c, &x) in idx.iter().zip(vals) {
            acc += x * v[c];
        }
        out[r] = acc;
    }
    out
}

/// Sparse vector-matrix product `v^T * m`.
///
/// # Panics
/// Panics if `v.len() != m.rows()`.
pub fn spvm(v: &[f64], m: &Csr) -> Vec<f64> {
    assert_eq!(
        v.len(),
        m.rows(),
        "spvm dimension mismatch: vector {} vs rows {}",
        v.len(),
        m.rows()
    );
    let mut out = vec![0.0; m.cols()];
    for r in 0..m.rows() {
        let s = v[r];
        if s == 0.0 {
            continue;
        }
        let (idx, vals) = m.row(r);
        for (&c, &x) in idx.iter().zip(vals) {
            out[c] += s * x;
        }
    }
    out
}

/// Sparse-dense matrix multiply `a * b` producing a dense result.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn spmm_dense(a: &Csr, b: &Dense) -> Dense {
    assert_eq!(a.cols(), b.rows(), "spmm dimension mismatch: {} vs {}", a.cols(), b.rows());
    let mut out = Dense::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        let (idx, vals) = a.row(r);
        let dst = out.row_mut(r);
        for (&k, &x) in idx.iter().zip(vals) {
            let brow = b.row(k);
            for (d, &bv) in dst.iter_mut().zip(brow) {
                *d += x * bv;
            }
        }
    }
    out
}

/// Self-transpose product `m^T * m` ("crossprod") for a sparse matrix, dense result.
pub fn sp_crossprod(m: &Csr) -> Dense {
    let mut out = Dense::zeros(m.cols(), m.cols());
    for r in 0..m.rows() {
        let (idx, vals) = m.row(r);
        for (i, (&ci, &vi)) in idx.iter().zip(vals).enumerate() {
            for (&cj, &vj) in idx[i..].iter().zip(&vals[i..]) {
                let prod = vi * vj;
                out.set(ci, cj, out.get(ci, cj) + prod);
                if ci != cj {
                    out.set(cj, ci, out.get(cj, ci) + prod);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dense {
        Dense::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]])
    }

    #[test]
    fn coo_builds_sorted_csr() {
        let mut coo = Coo::new(3, 3);
        coo.push(2, 1, 3.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        assert_eq!(coo.len(), 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(0, 2), 2.0);
        assert_eq!(csr.get(2, 1), 3.0);
        assert_eq!(csr.get(1, 1), 0.0);
    }

    #[test]
    fn coo_sums_duplicates_and_drops_cancellation() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 5.0).unwrap();
        coo.push(1, 1, -5.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), 3.0);
        assert_eq!(csr.nnz(), 1, "cancelled entry must not be stored");
    }

    #[test]
    fn coo_rejects_out_of_bounds_and_skips_zero() {
        let mut coo = Coo::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        coo.push(0, 0, 0.0).unwrap();
        assert!(coo.is_empty());
    }

    #[test]
    fn dense_round_trip() {
        let d = sample();
        let s = Csr::from_dense(&d);
        assert_eq!(s.nnz(), 5);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn from_raw_validates() {
        // Valid 2x2 with one entry.
        assert!(Csr::from_raw(2, 2, vec![0, 1, 1], vec![1], vec![5.0]).is_ok());
        // indptr wrong length.
        assert!(Csr::from_raw(2, 2, vec![0, 1], vec![1], vec![5.0]).is_err());
        // column out of bounds.
        assert!(Csr::from_raw(2, 2, vec![0, 1, 1], vec![2], vec![5.0]).is_err());
        // non-increasing columns within a row.
        assert!(Csr::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // decreasing indptr.
        assert!(Csr::from_raw(2, 2, vec![0, 1, 0], vec![1], vec![5.0]).is_err());
    }

    #[test]
    fn transpose_matches_dense() {
        let d = sample();
        let s = Csr::from_dense(&d);
        assert_eq!(s.transpose().to_dense(), d.transpose());
        // Involution.
        assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn spmv_matches_dense_gemv() {
        let d = sample();
        let s = Csr::from_dense(&d);
        let v = [1.0, -1.0, 2.0];
        let expect = crate::ops::gemv(&d, &v);
        assert_eq!(spmv(&s, &v), expect);
    }

    #[test]
    fn spvm_matches_dense_gevm() {
        let d = sample();
        let s = Csr::from_dense(&d);
        let v = [1.0, 2.0, -1.0, 0.5];
        let expect = crate::ops::gevm(&v, &d);
        let got = spvm(&v, &s);
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        let d = sample();
        let s = Csr::from_dense(&d);
        let b = Dense::from_fn(3, 2, |r, c| (r + c) as f64);
        let expect = crate::ops::gemm(&d, &b);
        assert!(spmm_dense(&s, &b).approx_eq(&expect, 1e-12));
    }

    #[test]
    fn crossprod_matches_dense() {
        let d = sample();
        let s = Csr::from_dense(&d);
        let expect = crate::ops::crossprod(&d);
        assert!(sp_crossprod(&s).approx_eq(&expect, 1e-12));
    }

    #[test]
    fn iter_yields_all_triplets() {
        let s = Csr::from_dense(&sample());
        let trips: Vec<_> = s.iter().collect();
        assert_eq!(trips.len(), 5);
        assert_eq!(trips[0], (0, 0, 1.0));
        assert_eq!(trips[4], (3, 2, 5.0));
    }

    #[test]
    fn empty_matrix() {
        let s = Csr::zeros(3, 4);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.sparsity(), 0.0);
        assert_eq!(spmv(&s, &[0.0; 4]), vec![0.0; 3]);
    }
}
