//! Block-partitioned matrices in the style of SystemML's distributed
//! representation: a logical matrix split into fixed-size 2-D tiles.
//!
//! On a cluster each tile would be a partition key; here the tiles are the
//! eviction/serialization unit of the `dm-buffer` buffer pool and the scan unit
//! of out-of-core style kernels.

use crate::dense::Dense;
use crate::ops;

/// Identifier of a tile inside a [`BlockMatrix`]: `(block_row, block_col)`.
pub type BlockId = (usize, usize);

/// A dense matrix partitioned into `block_size x block_size` tiles
/// (edge tiles may be smaller).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMatrix {
    rows: usize,
    cols: usize,
    block_size: usize,
    /// Row-major grid of tiles: `blocks[br * block_cols + bc]`.
    blocks: Vec<Dense>,
}

impl BlockMatrix {
    /// Partition a dense matrix into tiles of `block_size`.
    ///
    /// # Panics
    /// Panics if `block_size == 0`.
    pub fn from_dense(m: &Dense, block_size: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        let (rows, cols) = m.shape();
        let brs = rows.div_ceil(block_size).max(1);
        let bcs = cols.div_ceil(block_size).max(1);
        let mut blocks = Vec::with_capacity(brs * bcs);
        for br in 0..brs {
            let r0 = br * block_size;
            let r1 = (r0 + block_size).min(rows);
            for bc in 0..bcs {
                let c0 = bc * block_size;
                let c1 = (c0 + block_size).min(cols);
                blocks.push(m.slice(r0.min(rows), r1, c0.min(cols), c1));
            }
        }
        BlockMatrix { rows, cols, block_size, blocks }
    }

    /// Logical number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile edge length.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of tile rows.
    pub fn block_rows(&self) -> usize {
        self.rows.div_ceil(self.block_size).max(1)
    }

    /// Number of tile columns.
    pub fn block_cols(&self) -> usize {
        self.cols.div_ceil(self.block_size).max(1)
    }

    /// Total number of tiles.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Borrow one tile.
    ///
    /// # Panics
    /// Panics if the block id is out of range.
    pub fn block(&self, id: BlockId) -> &Dense {
        let (br, bc) = id;
        assert!(br < self.block_rows() && bc < self.block_cols(), "block {id:?} out of range");
        &self.blocks[br * self.block_cols() + bc]
    }

    /// Iterate over `(BlockId, &Dense)` pairs in row-major tile order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Dense)> {
        let bcs = self.block_cols();
        self.blocks.iter().enumerate().map(move |(i, b)| ((i / bcs, i % bcs), b))
    }

    /// Reassemble the logical dense matrix.
    pub fn to_dense(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, self.cols);
        for ((br, bc), b) in self.iter_blocks() {
            let r0 = br * self.block_size;
            let c0 = bc * self.block_size;
            for r in 0..b.rows() {
                let dst = &mut out.row_mut(r0 + r)[c0..c0 + b.cols()];
                dst.copy_from_slice(b.row(r));
            }
        }
        out
    }

    /// Block-wise matrix-vector product, accumulating per tile row.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn gemv(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "block gemv dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for ((br, bc), b) in self.iter_blocks() {
            let r0 = br * self.block_size;
            let c0 = bc * self.block_size;
            let vseg = &v[c0..c0 + b.cols()];
            let part = ops::gemv(b, vseg);
            for (o, p) in out[r0..r0 + b.rows()].iter_mut().zip(part) {
                *o += p;
            }
        }
        out
    }

    /// Block-wise column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for ((_, bc), b) in self.iter_blocks() {
            let c0 = bc * self.block_size;
            let part = ops::col_sums(b);
            for (o, p) in out[c0..c0 + b.cols()].iter_mut().zip(part) {
                *o += p;
            }
        }
        out
    }

    /// Approximate serialized size of one tile in bytes (8 bytes per element
    /// plus a small header); the buffer pool uses this for memory accounting.
    pub fn block_bytes(&self, id: BlockId) -> usize {
        let b = self.block(id);
        b.rows() * b.cols() * 8 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> Dense {
        Dense::from_fn(rows, cols, |r, c| (r * cols + c) as f64)
    }

    #[test]
    fn partition_round_trip_even() {
        let m = sample(8, 8);
        let b = BlockMatrix::from_dense(&m, 4);
        assert_eq!(b.num_blocks(), 4);
        assert_eq!(b.to_dense(), m);
    }

    #[test]
    fn partition_round_trip_ragged() {
        let m = sample(7, 5);
        let b = BlockMatrix::from_dense(&m, 3);
        assert_eq!(b.block_rows(), 3);
        assert_eq!(b.block_cols(), 2);
        assert_eq!(b.num_blocks(), 6);
        // Edge tile shapes.
        assert_eq!(b.block((2, 1)).shape(), (1, 2));
        assert_eq!(b.to_dense(), m);
    }

    #[test]
    fn gemv_matches_dense() {
        let m = sample(7, 5);
        let b = BlockMatrix::from_dense(&m, 3);
        let v: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let expect = ops::gemv(&m, &v);
        let got = b.gemv(&v);
        for (x, y) in got.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn col_sums_match_dense() {
        let m = sample(9, 4);
        let b = BlockMatrix::from_dense(&m, 4);
        let expect = ops::col_sums(&m);
        for (x, y) in b.col_sums().iter().zip(&expect) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn iter_blocks_ids() {
        let b = BlockMatrix::from_dense(&sample(4, 6), 3);
        let ids: Vec<BlockId> = b.iter_blocks().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn block_bytes_accounting() {
        let b = BlockMatrix::from_dense(&sample(4, 4), 2);
        assert_eq!(b.block_bytes((0, 0)), 2 * 2 * 8 + 16);
    }

    #[test]
    #[should_panic(expected = "block_size must be positive")]
    fn zero_block_size_panics() {
        BlockMatrix::from_dense(&sample(2, 2), 0);
    }

    #[test]
    fn single_block_degenerate() {
        let m = sample(2, 2);
        let b = BlockMatrix::from_dense(&m, 10);
        assert_eq!(b.num_blocks(), 1);
        assert_eq!(b.to_dense(), m);
    }
}
