//! Multi-threaded dense kernels: row-partitioned products and fixed-block
//! reductions over the `dm-par` scoped pool.
//!
//! Every kernel here is **bit-identical to its serial counterpart in
//! [`crate::ops`] at every degree**, by one of two constructions:
//!
//! * *Row-partitioned* kernels ([`gemv`], [`gemm`]) assign disjoint output
//!   rows to workers; each output element is computed by exactly the code the
//!   serial kernel runs, so no floating-point operation is reordered. For
//!   gemm the workers additionally share one packed `B` slab per cache block
//!   (see [`crate::pack`]) rather than each re-streaming `B` from memory.
//! * *Reduction* kernels ([`gevm`], [`col_sums`], [`sum_sq`], [`crossprod`])
//!   decompose into fixed-size blocks ([`ROW_BLOCK`] rows / [`ELEM_BLOCK`]
//!   elements — never a function of the degree) and fold partials in block
//!   order. The serial versions in `ops` execute the *same* decomposition at
//!   degree 1, so the fold tree — and therefore every result bit — matches.

use crate::dense::Dense;
use crate::ops::{dot, dot2};
use crate::pack;
use dm_par::{for_each_slice_mut, reduce_blocks};
use std::ops::Range;

/// Fixed row-block size for reduction kernels (column sums, crossprod, gevm).
///
/// Block boundaries must not depend on the degree of parallelism, or
/// reductions would associate differently per degree and results would drift
/// bitwise. 1024 rows keeps per-block partials comfortably inside L1/L2
/// while bounding the partial count for any realistic input.
pub const ROW_BLOCK: usize = 1024;

/// Fixed element-block size for flat reductions (sum of squares).
pub const ELEM_BLOCK: usize = 16 * 1024;

/// Cache tile width (columns of `B` / the output) for the reference gemm
/// tile kernel ([`gemm_rows_naive`]).
const TILE_J: usize = 128;

/// Cache tile depth (rows of `B` / the inner dimension) for the reference
/// gemm tile kernel. A `TILE_K x TILE_J` panel of `B` (128 KiB) is reused
/// across every output row a worker owns.
const TILE_K: usize = 128;

/// The reference gemm tile kernel: computes rows `rows` of `a * b` into
/// `out` (a buffer of exactly `rows.len() * b.cols()` elements, assumed
/// zeroed), skipping `a[i][k] == 0.0` entries.
///
/// This is the kernel every faster path is pinned against bit-for-bit. The
/// packed path ([`crate::pack`]) replaces it whenever `B` is finite; this
/// one remains as the dispatch target for non-finite `B`, where the zero
/// skip is observable (`0.0 * inf == NaN`).
///
/// Loop order is `jb -> kb -> i -> k -> j`: for any fixed output element
/// the `k` accumulation order is strictly increasing, so the result is
/// bit-identical to the naive `ikj` loop.
pub(crate) fn gemm_rows_naive(a: &Dense, b: &Dense, out: &mut [f64], rows: Range<usize>) {
    let k_dim = a.cols();
    let n_cols = b.cols();
    debug_assert_eq!(out.len(), rows.len() * n_cols);
    for j0 in (0..n_cols).step_by(TILE_J) {
        let j1 = (j0 + TILE_J).min(n_cols);
        for k0 in (0..k_dim).step_by(TILE_K) {
            let k1 = (k0 + TILE_K).min(k_dim);
            for (oi, i) in rows.clone().enumerate() {
                let arow = &a.row(i)[k0..k1];
                let orow = &mut out[oi * n_cols + j0..oi * n_cols + j1];
                for (kk, &aik) in arow.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b.row(k0 + kk)[j0..j1];
                    for (o, &bkj) in orow.iter_mut().zip(brow) {
                        *o += aik * bkj;
                    }
                }
            }
        }
    }
}

/// Row-partitioned matrix-vector product `m * v` at the given degree.
///
/// # Panics
/// Panics if `v.len() != m.cols()`.
pub fn gemv(m: &Dense, v: &[f64], degree: usize) -> Vec<f64> {
    assert_eq!(
        v.len(),
        m.cols(),
        "gemv dimension mismatch: vector {} vs cols {}",
        v.len(),
        m.cols()
    );
    let mut out = vec![0.0; m.rows()];
    for_each_slice_mut(&mut out, 1, degree, |rows, chunk| {
        gemv_rows(m, v, chunk, rows);
    });
    out
}

/// Paired-row gemv tile: two output rows share one streaming pass over `v`,
/// each accumulated with exactly the fold of [`dot`] (via [`dot2`]), so
/// every element is bit-identical to the one-row-at-a-time loop.
pub(crate) fn gemv_rows(m: &Dense, v: &[f64], out: &mut [f64], rows: Range<usize>) {
    debug_assert_eq!(out.len(), rows.len());
    let base = rows.start;
    let mut r = rows.start;
    while r + 1 < rows.end {
        let (d0, d1) = dot2(m.row(r), m.row(r + 1), v);
        out[r - base] = d0;
        out[r + 1 - base] = d1;
        r += 2;
    }
    if r < rows.end {
        out[r - base] = dot(m.row(r), v);
    }
}

/// Row-partitioned matrix-matrix product `a * b` at the given degree,
/// through the packed register-tiled kernel of [`crate::pack`].
///
/// Each `KC x NC` slab of `B` is packed **once** and shared read-only by
/// every worker, which then computes its owned output rows against the hot
/// slab — instead of each thread re-streaming `B` from cold memory. Because
/// workers own disjoint output rows and the microkernel preserves the
/// per-element `k` order, results are bit-identical to serial at every
/// degree.
///
/// When `B` contains non-finite values the product falls back to the
/// reference tile kernel with the `a[i][k] == 0.0` skip
/// (`gemm_rows_naive`), whose skip semantics are observable there — see
/// [`crate::pack`] for the equivalence argument.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn gemm(a: &Dense, b: &Dense, degree: usize) -> Dense {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Dense::zeros(a.rows(), b.cols());
    let (n_cols, k_dim) = (b.cols(), a.cols());
    if a.rows() == 0 || n_cols == 0 {
        return out;
    }
    if !pack::all_finite(b.data()) {
        for_each_slice_mut(out.data_mut(), n_cols, degree, |rows, chunk| {
            gemm_rows_naive(a, b, chunk, rows);
        });
        return out;
    }
    let mut bpack = pack::PackedB::default();
    for jc in (0..n_cols).step_by(pack::NC) {
        let j1 = (jc + pack::NC).min(n_cols);
        for pc in (0..k_dim).step_by(pack::KC) {
            let p1 = (pc + pack::KC).min(k_dim);
            bpack.pack(b.data(), n_cols, pc..p1, jc..j1);
            let shared_b = &bpack;
            for_each_slice_mut(out.data_mut(), n_cols, degree, |rows, chunk| {
                let mut apack = Vec::new();
                let view = pack::AView { data: a.data(), stride: k_dim, rows, kcols: pc..p1 };
                pack::gemm_packed_rows(&view, shared_b, chunk, n_cols, &mut apack);
            });
        }
    }
    out
}

/// Vector-matrix product `v^T * m` as a fixed-block row reduction.
///
/// # Panics
/// Panics if `v.len() != m.rows()`.
pub fn gevm(v: &[f64], m: &Dense, degree: usize) -> Vec<f64> {
    assert_eq!(
        v.len(),
        m.rows(),
        "gevm dimension mismatch: vector {} vs rows {}",
        v.len(),
        m.rows()
    );
    reduce_blocks(
        m.rows(),
        ROW_BLOCK,
        degree,
        |rows| {
            // Paired rows: one pass over `part` applies two axpys. The two
            // `+=` statements stay separate per element, so element j sees
            // row r's product before row r+1's — exactly the one-row-at-a-
            // time order. The per-row `s == 0.0` skip is preserved.
            let mut part = vec![0.0; m.cols()];
            let mut r = rows.start;
            while r + 1 < rows.end {
                let (s0, s1) = (v[r], v[r + 1]);
                if s0 != 0.0 && s1 != 0.0 {
                    for ((o, &x0), &x1) in part.iter_mut().zip(m.row(r)).zip(m.row(r + 1)) {
                        *o += s0 * x0;
                        *o += s1 * x1;
                    }
                } else {
                    if s0 != 0.0 {
                        axpy_row(&mut part, s0, m.row(r));
                    }
                    if s1 != 0.0 {
                        axpy_row(&mut part, s1, m.row(r + 1));
                    }
                }
                r += 2;
            }
            if r < rows.end && v[r] != 0.0 {
                axpy_row(&mut part, v[r], m.row(r));
            }
            part
        },
        add_assign_vec,
    )
    .unwrap_or_else(|| vec![0.0; m.cols()])
}

/// Column sums as a fixed-block row reduction.
pub fn col_sums(a: &Dense, degree: usize) -> Vec<f64> {
    reduce_blocks(
        a.rows(),
        ROW_BLOCK,
        degree,
        |rows| {
            let mut part = vec![0.0; a.cols()];
            for r in rows {
                for (o, &v) in part.iter_mut().zip(a.row(r)) {
                    *o += v;
                }
            }
            part
        },
        add_assign_vec,
    )
    .unwrap_or_else(|| vec![0.0; a.cols()])
}

/// Sum of squares as a fixed-block flat reduction.
pub fn sum_sq(a: &Dense, degree: usize) -> f64 {
    let data = a.data();
    reduce_blocks(
        data.len(),
        ELEM_BLOCK,
        degree,
        |r| data[r].iter().map(|v| v * v).sum::<f64>(),
        |a, b| a + b,
    )
    .unwrap_or(0.0)
}

/// Self-transpose product `m^T * m` as a fixed-block row reduction over
/// per-block upper-triangular partials, mirrored once at the end.
pub fn crossprod(m: &Dense, degree: usize) -> Dense {
    let d = m.cols();
    let mut out = reduce_blocks(
        m.rows(),
        ROW_BLOCK,
        degree,
        |rows| {
            let mut part = Dense::zeros(d, d);
            for r in rows {
                let row = m.row(r);
                for (i, &vi) in row.iter().enumerate() {
                    if vi == 0.0 {
                        continue;
                    }
                    // Slices instead of enumerate().skip(i): same adds in
                    // the same order, but the zip over two contiguous
                    // slices autovectorizes.
                    let prow = &mut part.data_mut()[i * d + i..(i + 1) * d];
                    for (o, &vj) in prow.iter_mut().zip(&row[i..]) {
                        *o += vi * vj;
                    }
                }
            }
            part
        },
        |mut acc, part| {
            for (o, &p) in acc.data_mut().iter_mut().zip(part.data()) {
                *o += p;
            }
            acc
        },
    )
    .unwrap_or_else(|| Dense::zeros(d, d));
    // Mirror to the lower triangle.
    for i in 0..d {
        for j in (i + 1)..d {
            let v = out.get(i, j);
            out.set(j, i, v);
        }
    }
    out
}

/// Unit-stride `part += s * row` (one row of a gevm partial).
#[inline]
fn axpy_row(part: &mut [f64], s: f64, row: &[f64]) {
    for (o, &x) in part.iter_mut().zip(row) {
        *o += s * x;
    }
}

fn add_assign_vec(mut acc: Vec<f64>, part: Vec<f64>) -> Vec<f64> {
    for (o, p) in acc.iter_mut().zip(part) {
        *o += p;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn big(rows: usize, cols: usize) -> Dense {
        Dense::from_fn(rows, cols, |r, c| ((r * 31 + c * 17) % 23) as f64 * 0.37 - 3.0)
    }

    const DEGREES: [usize; 4] = [1, 2, 3, 8];

    #[test]
    fn gemv_bit_identical_to_serial() {
        let m = big(1500, 9);
        let v: Vec<f64> = (0..9).map(|i| (i as f64) * 0.21 - 1.0).collect();
        let serial = ops::gemv(&m, &v);
        for deg in DEGREES {
            assert_eq!(gemv(&m, &v, deg), serial, "degree {deg}");
        }
    }

    #[test]
    fn gemm_bit_identical_to_serial() {
        let a = big(300, 150);
        let b = big(150, 170);
        let serial = ops::gemm(&a, &b);
        for deg in DEGREES {
            assert_eq!(gemm(&a, &b, deg), serial, "degree {deg}");
        }
    }

    #[test]
    fn reductions_bit_identical_to_serial() {
        let m = big(3000, 7);
        let v: Vec<f64> = (0..3000).map(|i| ((i % 29) as f64) * 0.11 - 1.5).collect();
        for deg in DEGREES {
            assert_eq!(col_sums(&m, deg), ops::col_sums(&m), "col_sums degree {deg}");
            assert_eq!(sum_sq(&m, deg).to_bits(), ops::sum_sq(&m).to_bits(), "sum_sq {deg}");
            assert_eq!(gevm(&v, &m, deg), ops::gevm(&v, &m), "gevm degree {deg}");
            assert_eq!(crossprod(&m, deg), ops::crossprod(&m), "crossprod degree {deg}");
        }
    }

    #[test]
    fn edge_shapes() {
        for (r, c) in [(0usize, 3usize), (1, 3), (3, 1), (0, 0), (1, 1)] {
            let m = big(r, c);
            let v = vec![0.5; c];
            let u = vec![0.25; r];
            for deg in DEGREES {
                assert_eq!(gemv(&m, &v, deg), ops::gemv(&m, &v), "{r}x{c} deg {deg}");
                assert_eq!(gevm(&u, &m, deg), ops::gevm(&u, &m), "{r}x{c} deg {deg}");
                assert_eq!(col_sums(&m, deg), ops::col_sums(&m), "{r}x{c} deg {deg}");
                assert_eq!(sum_sq(&m, deg), ops::sum_sq(&m), "{r}x{c} deg {deg}");
                assert_eq!(crossprod(&m, deg), ops::crossprod(&m), "{r}x{c} deg {deg}");
                let b = big(c, 2);
                assert_eq!(gemm(&m, &b, deg), ops::gemm(&m, &b), "{r}x{c} deg {deg}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "gemm dimension mismatch")]
    fn gemm_shape_panics() {
        gemm(&big(2, 3), &big(2, 3), 2);
    }

    fn assert_bits(got: &Dense, want: &[f64], what: &str) {
        assert_eq!(got.data().len(), want.len(), "{what}");
        for (i, (g, w)) in got.data().iter().zip(want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{what} at {i}: {g} vs {w}");
        }
    }

    #[test]
    fn gemm_zero_skip_equivalence_with_finite_b() {
        // A with exact zeros: the packed path drops the a[i][k] == 0.0 skip,
        // which is bit-exact for finite B (see crate::pack docs).
        let mut a = big(40, 30);
        for r in 0..40 {
            a.set(r, (r * 3) % 30, 0.0);
            a.set(r, (r * 7) % 30, -0.0);
        }
        let b = big(30, 25);
        let mut reference = vec![0.0; 40 * 25];
        gemm_rows_naive(&a, &b, &mut reference, 0..40);
        for deg in DEGREES {
            assert_bits(&gemm(&a, &b, deg), &reference, "degree");
        }
    }

    #[test]
    fn gemm_non_finite_b_routes_through_reference_kernel() {
        // 0.0 * inf == NaN makes the zero skip observable, so non-finite B
        // must reproduce the reference kernel's bits at every degree.
        let mut a = big(24, 18);
        for r in 0..24 {
            a.set(r, r % 18, 0.0);
        }
        let mut b = big(18, 15);
        b.set(5, 5, f64::INFINITY);
        b.set(7, 3, f64::NAN);
        b.set(2, 9, f64::NEG_INFINITY);
        let mut reference = vec![0.0; 24 * 15];
        gemm_rows_naive(&a, &b, &mut reference, 0..24);
        for deg in DEGREES {
            assert_bits(&gemm(&a, &b, deg), &reference, "degree");
        }
    }
}
