//! Row-major dense matrix.

use crate::MatrixError;

/// A row-major dense `f64` matrix.
///
/// Rows are stored contiguously, so [`Dense::row`] returns a slice and row-wise
/// kernels are cache-friendly. This is the workhorse representation of the
/// whole workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Dense { rows, cols, data: vec![value; rows * cols] }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Dense::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a flat row-major vector.
    ///
    /// Returns [`MatrixError::ShapeMismatch`] when `data.len() != rows * cols`,
    /// including when `rows * cols` overflows `usize` (a wrapped product must
    /// not let absurd claimed dims pass validation with a short vector).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MatrixError> {
        match rows.checked_mul(cols) {
            Some(n) if n == data.len() => Ok(Dense { rows, cols, data }),
            expected => Err(MatrixError::ShapeMismatch {
                expected: expected.unwrap_or(usize::MAX),
                actual: data.len(),
            }),
        }
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "row {i} has length {} but expected {ncols}", r.len());
            data.extend_from_slice(r);
        }
        Dense { rows: nrows, cols: ncols, data }
    }

    /// Build an `n x 1` column matrix from a vector.
    pub fn column(v: &[f64]) -> Self {
        Dense { rows: v.len(), cols: 1, data: v.to_vec() }
    }

    /// Build a matrix by evaluating `f(row, col)` for every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Dense { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its flat row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element access.
    ///
    /// # Panics
    /// Panics when out of bounds (via slice indexing in debug and release).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Set one element.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Copy column `c` into a new vector.
    pub fn col_vec(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column {c} out of bounds for {} columns", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Count non-zero entries (exact scan).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Fraction of non-zero cells, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.data.len() as f64
        }
    }

    /// Return the transpose as a new matrix.
    pub fn transpose(&self) -> Dense {
        let mut out = Dense::zeros(self.cols, self.rows);
        // Blocked transpose for cache locality on large matrices.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Apply `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Dense {
        Dense { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Extract a rectangular sub-matrix `[r0, r1) x [c0, c1)`.
    ///
    /// # Panics
    /// Panics if the range exceeds the matrix bounds or is reversed.
    pub fn slice(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Dense {
        assert!(r0 <= r1 && r1 <= self.rows, "row range {r0}..{r1} invalid for {} rows", self.rows);
        assert!(c0 <= c1 && c1 <= self.cols, "col range {c0}..{c1} invalid for {} cols", self.cols);
        let mut out = Dense::zeros(r1 - r0, c1 - c0);
        for (i, r) in (r0..r1).enumerate() {
            out.row_mut(i).copy_from_slice(&self.row(r)[c0..c1]);
        }
        out
    }

    /// Gather the given rows into a new matrix (row projection).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, idx: &[usize]) -> Dense {
        let mut out = Dense::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            assert!(r < self.rows, "row index {r} out of bounds for {} rows", self.rows);
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Gather the given columns into a new matrix (column projection).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, idx: &[usize]) -> Dense {
        for &c in idx {
            assert!(c < self.cols, "col index {c} out of bounds for {} cols", self.cols);
        }
        let mut out = Dense::zeros(self.rows, idx.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (j, &c) in idx.iter().enumerate() {
                dst[j] = src[c];
            }
        }
        out
    }

    /// Horizontally concatenate `self` with `other` (`cbind`).
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn hcat(&self, other: &Dense) -> Dense {
        assert_eq!(self.rows, other.rows, "hcat row mismatch: {} vs {}", self.rows, other.rows);
        let mut out = Dense::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            let dst = out.row_mut(r);
            dst[..self.cols].copy_from_slice(self.row(r));
            dst[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertically concatenate `self` with `other` (`rbind`).
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vcat(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.cols, "vcat col mismatch: {} vs {}", self.cols, other.cols);
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Dense { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute elementwise difference to `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Dense) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in max_abs_diff");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// True when every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Dense, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Dense::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.data().iter().all(|&v| v == 0.0));

        let f = Dense::filled(2, 2, 7.0);
        assert_eq!(f.get(1, 1), 7.0);

        let i = Dense::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.nnz(), 3);

        let m = Dense::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.get(1, 0), 10.0);
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Dense::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Dense::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(err, MatrixError::ShapeMismatch { expected: 4, actual: 3 });
        // rows*cols wrapping to 0 in release builds must not validate an
        // empty vector against absurd claimed dims.
        let huge = 1usize << 32;
        assert!(Dense::from_vec(huge, huge, Vec::new()).is_err());
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_ragged_panics() {
        Dense::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn get_set_row_col() {
        let mut m = Dense::zeros(3, 2);
        m.set(2, 1, 5.0);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.row(2), &[0.0, 5.0]);
        assert_eq!(m.col_vec(1), vec![0.0, 0.0, 5.0]);
        m.row_mut(0)[0] = -1.0;
        assert_eq!(m.get(0, 0), -1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Dense::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Dense::from_fn(37, 53, |r, c| (r * 100 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (53, 37));
        assert_eq!(t.get(5, 7), m.get(7, 5));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn map_and_map_inplace() {
        let m = Dense::from_rows(&[&[1.0, -2.0]]);
        let sq = m.map(|v| v * v);
        assert_eq!(sq.row(0), &[1.0, 4.0]);
        let mut m2 = m.clone();
        m2.map_inplace(|v| v + 1.0);
        assert_eq!(m2.row(0), &[2.0, -1.0]);
    }

    #[test]
    fn slice_and_select() {
        let m = Dense::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let s = m.slice(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[6.0, 7.0]);
        assert_eq!(s.row(1), &[10.0, 11.0]);

        let rows = m.select_rows(&[3, 0]);
        assert_eq!(rows.row(0), m.row(3));
        assert_eq!(rows.row(1), m.row(0));

        let cols = m.select_cols(&[2, 0]);
        assert_eq!(cols.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn hcat_vcat() {
        let a = Dense::from_rows(&[&[1.0], &[2.0]]);
        let b = Dense::from_rows(&[&[3.0], &[4.0]]);
        let h = a.hcat(&b);
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h.row(0), &[1.0, 3.0]);
        let v = a.vcat(&b);
        assert_eq!(v.shape(), (4, 1));
        assert_eq!(v.col_vec(0), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn norms_and_compare() {
        let m = Dense::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        let n = Dense::from_rows(&[&[3.0, 4.5]]);
        assert!((m.max_abs_diff(&n) - 0.5).abs() < 1e-12);
        assert!(m.approx_eq(&n, 0.5));
        assert!(!m.approx_eq(&n, 0.4));
    }

    #[test]
    fn sparsity_counts() {
        let m = Dense::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]]);
        assert_eq!(m.nnz(), 2);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn iter_rows_matches_row() {
        let m = Dense::from_fn(3, 2, |r, c| (r + c) as f64);
        let collected: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(collected.len(), 3);
        for (i, row) in collected.iter().enumerate() {
            assert_eq!(*row, m.row(i));
        }
    }

    #[test]
    fn column_matrix() {
        let c = Dense::column(&[1.0, 2.0, 3.0]);
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c.get(2, 0), 3.0);
    }
}
