//! Direct and iterative solvers: Cholesky, Householder QR, conjugate gradient.

use crate::dense::Dense;
use crate::ops;
use crate::MatrixError;

/// Cholesky factorization of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor `L` with `A = L * L^T`.
///
/// # Errors
/// [`MatrixError::NotPositiveDefinite`] when a pivot is `<= 0` or not finite.
///
/// # Panics
/// Panics if `a` is not square.
pub fn cholesky(a: &Dense) -> Result<Dense, MatrixError> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "cholesky requires a square matrix, got {}x{}", a.rows(), a.cols());
    let mut l = Dense::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return Err(MatrixError::NotPositiveDefinite { pivot: i });
                }
                l.set(i, j, s.sqrt());
            } else {
                l.set(i, j, s / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solve `L * y = b` for lower-triangular `L` (forward substitution).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn forward_substitute(l: &Dense, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n, "forward_substitute length mismatch");
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        let row = l.row(i);
        for k in 0..i {
            s -= row[k] * y[k];
        }
        y[i] = s / row[i];
    }
    y
}

/// Solve `U * x = y` for upper-triangular `U` (back substitution).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn back_substitute(u: &Dense, y: &[f64]) -> Vec<f64> {
    let n = u.rows();
    assert_eq!(y.len(), n, "back_substitute length mismatch");
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        let row = u.row(i);
        for k in (i + 1)..n {
            s -= row[k] * x[k];
        }
        x[i] = s / row[i];
    }
    x
}

/// Solve the SPD system `A x = b` via Cholesky.
///
/// # Errors
/// Propagates [`MatrixError::NotPositiveDefinite`] from the factorization.
pub fn solve_spd(a: &Dense, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
    let l = cholesky(a)?;
    let y = forward_substitute(&l, b);
    Ok(back_substitute(&l.transpose(), &y))
}

/// Thin Householder QR factorization: `A (m x n, m >= n) = Q (m x n) * R (n x n)`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthonormal columns, `m x n`.
    pub q: Dense,
    /// Upper-triangular factor, `n x n`.
    pub r: Dense,
}

/// Compute a thin QR factorization by Householder reflections.
///
/// # Errors
/// [`MatrixError::Singular`] when a column is numerically dependent
/// (pivot magnitude below `1e-12` relative to the column norm).
///
/// # Panics
/// Panics if `a.rows() < a.cols()`.
pub fn qr(a: &Dense) -> Result<Qr, MatrixError> {
    let (m, n) = a.shape();
    assert!(m >= n, "qr requires rows >= cols, got {m}x{n}");
    // Work on a copy; accumulate the reflections into an m x m product lazily
    // by applying them to an identity block at the end.
    let mut r = a.clone();
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
    for k in 0..n {
        // Build the Householder vector for column k below the diagonal.
        let mut v = vec![0.0; m - k];
        for i in k..m {
            v[i - k] = r.get(i, k);
        }
        let alpha = -v[0].signum() * ops::norm2(&v);
        if alpha.abs() < 1e-12 {
            return Err(MatrixError::Singular { column: k });
        }
        v[0] -= alpha;
        let vnorm = ops::norm2(&v);
        if vnorm < 1e-300 {
            return Err(MatrixError::Singular { column: k });
        }
        for x in &mut v {
            *x /= vnorm;
        }
        // Apply H = I - 2 v v^T to the trailing submatrix of R.
        for j in k..n {
            let mut d = 0.0;
            for i in k..m {
                d += v[i - k] * r.get(i, j);
            }
            for i in k..m {
                let val = r.get(i, j) - 2.0 * v[i - k] * d;
                r.set(i, j, val);
            }
        }
        vs.push(v);
    }
    // Materialize thin Q by applying reflections in reverse to the first n
    // columns of the identity.
    let mut q = Dense::zeros(m, n);
    for j in 0..n {
        q.set(j, j, 1.0);
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        for j in 0..n {
            let mut d = 0.0;
            for i in k..m {
                d += v[i - k] * q.get(i, j);
            }
            for i in k..m {
                let val = q.get(i, j) - 2.0 * v[i - k] * d;
                q.set(i, j, val);
            }
        }
    }
    // Zero the strictly-lower part of R and truncate to n x n.
    let mut r_out = Dense::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r_out.set(i, j, r.get(i, j));
        }
    }
    Ok(Qr { q, r: r_out })
}

/// Solve the least-squares problem `min ||A x - b||` via thin QR.
///
/// # Errors
/// Propagates [`MatrixError::Singular`] from the factorization.
pub fn lstsq(a: &Dense, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
    let f = qr(a)?;
    // x = R^-1 Q^T b
    let qtb = ops::gevm(b, &f.q);
    Ok(back_substitute(&f.r, &qtb))
}

/// Options for the conjugate-gradient solver.
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Maximum number of iterations.
    pub max_iter: usize,
    /// Convergence threshold on the residual 2-norm.
    pub tol: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions { max_iter: 1000, tol: 1e-10 }
    }
}

/// Solve the SPD system `A x = b` by conjugate gradient.
///
/// `A` is supplied implicitly as a matrix-vector product closure so callers can
/// run CG against fused, compressed, or factorized operators without
/// materializing `A` (this is how `dm-compress` and `dm-factorized` reuse it).
///
/// # Errors
/// [`MatrixError::DidNotConverge`] when the residual is still above `tol`
/// after `max_iter` iterations.
pub fn conjugate_gradient(
    matvec: impl Fn(&[f64]) -> Vec<f64>,
    b: &[f64],
    opts: CgOptions,
) -> Result<Vec<f64>, MatrixError> {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old = ops::dot(&r, &r);
    if rs_old.sqrt() <= opts.tol {
        return Ok(x);
    }
    for it in 0..opts.max_iter {
        let ap = matvec(&p);
        let denom = ops::dot(&p, &ap);
        if denom <= 0.0 || !denom.is_finite() {
            return Err(MatrixError::NotPositiveDefinite { pivot: it });
        }
        let alpha = rs_old / denom;
        ops::axpy(alpha, &p, &mut x);
        ops::axpy(-alpha, &ap, &mut r);
        let rs_new = ops::dot(&r, &r);
        if rs_new.sqrt() <= opts.tol {
            return Ok(x);
        }
        let beta = rs_new / rs_old;
        for (pi, &ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs_old = rs_new;
    }
    Err(MatrixError::DidNotConverge { iterations: opts.max_iter, residual: rs_old.sqrt() })
}

/// Solve `A x = b` for dense SPD `A` by conjugate gradient.
pub fn cg_dense(a: &Dense, b: &[f64], opts: CgOptions) -> Result<Vec<f64>, MatrixError> {
    conjugate_gradient(|v| ops::gemv(a, v), b, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Dense {
        // A = B^T B + I is SPD for any B.
        let b = Dense::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[2.0, 0.0, 1.0]]);
        let mut a = ops::crossprod(&b);
        for i in 0..3 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd();
        let l = cholesky(&a).unwrap();
        let rec = ops::gemm(&l, &l.transpose());
        assert!(rec.approx_eq(&a, 1e-10));
        // L is lower triangular.
        assert_eq!(l.get(0, 1), 0.0);
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(1, 2), 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(cholesky(&a), Err(MatrixError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = spd();
        let x_true = [1.0, -2.0, 0.5];
        let b = ops::gemv(&a, &x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn triangular_substitution() {
        let l = Dense::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let y = forward_substitute(&l, &[4.0, 11.0]);
        assert_eq!(y, vec![2.0, 3.0]);
        let u = Dense::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let x = back_substitute(&u, &[7.0, 9.0]);
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn qr_orthonormal_and_reconstructs() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]]);
        let f = qr(&a).unwrap();
        // Q^T Q = I
        let qtq = ops::gemm(&f.q.transpose(), &f.q);
        assert!(qtq.approx_eq(&Dense::identity(2), 1e-10));
        // Q R = A
        assert!(ops::gemm(&f.q, &f.r).approx_eq(&a, 1e-10));
        // R upper triangular.
        assert!(f.r.get(1, 0).abs() < 1e-12);
    }

    #[test]
    fn qr_detects_rank_deficiency() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert!(matches!(qr(&a), Err(MatrixError::Singular { .. })));
    }

    #[test]
    fn lstsq_exact_system() {
        let a = Dense::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        let x_true = [3.0, -1.0];
        let b = ops::gemv(&a, &x_true);
        let x = lstsq(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn lstsq_overdetermined_matches_normal_equations() {
        let a = Dense::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0], &[1.0, 4.0]]);
        let b = [6.0, 5.0, 7.0, 10.0];
        let x_qr = lstsq(&a, &b).unwrap();
        // Normal equations: (A^T A) x = A^T b
        let ata = ops::crossprod(&a);
        let atb = ops::gevm(&b, &a);
        let x_ne = solve_spd(&ata, &atb).unwrap();
        for (p, q) in x_qr.iter().zip(&x_ne) {
            assert!((p - q).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_matches_direct() {
        let a = spd();
        let b = [1.0, 2.0, 3.0];
        let direct = solve_spd(&a, &b).unwrap();
        let iterative = cg_dense(&a, &b, CgOptions::default()).unwrap();
        for (p, q) in direct.iter().zip(&iterative) {
            assert!((p - q).abs() < 1e-7);
        }
    }

    #[test]
    fn cg_zero_rhs_short_circuits() {
        let a = spd();
        let x = cg_dense(&a, &[0.0; 3], CgOptions::default()).unwrap();
        assert_eq!(x, vec![0.0; 3]);
    }

    #[test]
    fn cg_budget_exhaustion() {
        let a = spd();
        let res = cg_dense(&a, &[1.0, 1.0, 1.0], CgOptions { max_iter: 1, tol: 1e-15 });
        assert!(matches!(res, Err(MatrixError::DidNotConverge { iterations: 1, .. })));
    }
}
