//! Error types for fallible matrix construction and numeric routines.

use std::fmt;

/// Errors surfaced by fallible `dm-matrix` operations.
///
/// Algebra kernels panic on shape mismatch (programming errors); this type is
/// reserved for failures that depend on *data*, not code: constructing a matrix
/// from malformed external input, or numeric breakdown inside a solver.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// Flat data length does not match `rows * cols`.
    ShapeMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Actual number of elements supplied.
        actual: usize,
    },
    /// A coordinate entry lies outside the declared shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Declared number of rows.
        rows: usize,
        /// Declared number of columns.
        cols: usize,
    },
    /// The matrix is not positive definite (Cholesky pivot `<= 0`).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// The matrix is singular or numerically rank-deficient.
    Singular {
        /// Index of the column where rank deficiency was detected.
        column: usize,
    },
    /// An iterative solver failed to converge within its iteration budget.
    DidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm at the final iteration.
        residual: f64,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected} elements, got {actual}")
            }
            MatrixError::IndexOutOfBounds { row, col, rows, cols } => {
                write!(f, "index ({row}, {col}) out of bounds for {rows}x{cols} matrix")
            }
            MatrixError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot} <= 0)")
            }
            MatrixError::Singular { column } => {
                write!(f, "matrix is singular or rank-deficient at column {column}")
            }
            MatrixError::DidNotConverge { iterations, residual } => {
                write!(
                    f,
                    "solver did not converge after {iterations} iterations (residual {residual:e})"
                )
            }
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MatrixError::ShapeMismatch { expected: 6, actual: 5 };
        assert!(e.to_string().contains("expected 6"));
        let e = MatrixError::IndexOutOfBounds { row: 3, col: 1, rows: 2, cols: 2 };
        assert!(e.to_string().contains("(3, 1)"));
        let e = MatrixError::NotPositiveDefinite { pivot: 2 };
        assert!(e.to_string().contains("pivot 2"));
        let e = MatrixError::Singular { column: 4 };
        assert!(e.to_string().contains("column 4"));
        let e = MatrixError::DidNotConverge { iterations: 100, residual: 1e-3 };
        assert!(e.to_string().contains("100 iterations"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(MatrixError::Singular { column: 0 });
        assert!(e.to_string().contains("singular"));
    }
}
