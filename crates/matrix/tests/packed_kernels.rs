//! Property tests pinning the pack-and-microkernel gemm (and the
//! restructured gemv/crossprod) **bit-identical** to the naive reference
//! kernels across degenerate and non-tile-multiple shapes.
//!
//! The packed kernels promise more than numerical closeness: for every
//! output element, the same products are added in the same order as the
//! historical serial loops, so results match to the last bit. These tests
//! enforce that promise on shapes the blocking logic finds awkward —
//! empty dims, single rows/cols, and sizes that are not multiples of
//! MR/NR/MC — with inputs that include both `0.0` and `-0.0` (the signed
//! zeros are what the zero-skip equivalence argument in `pack.rs` hinges
//! on).

use dm_matrix::{ops, par, Dense};
use proptest::prelude::*;

/// Shapes (m, k, n) that stress the tile edges: every dimension is drawn
/// from a set biased toward 0, 1, and values straddling MR=2 / NR=12.
fn awkward_shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    let dim = prop_oneof![
        2 => Just(0usize),
        2 => Just(1usize),
        3 => 2usize..=13,
        2 => 14usize..=40,
    ];
    (dim.clone(), dim.clone(), dim)
}

/// Element values with explicit mass on both signed zeros, the inputs the
/// legacy `aik == 0.0` skip used to special-case.
fn elements(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            4 => -100.0..100.0f64,
            1 => Just(0.0),
            1 => Just(-0.0),
        ],
        len,
    )
}

fn matrices() -> impl Strategy<Value = (Dense, Dense)> {
    awkward_shapes().prop_flat_map(|(m, k, n)| {
        (elements(m * k), elements(k * n)).prop_map(move |(a, b)| {
            (Dense::from_vec(m, k, a).unwrap(), Dense::from_vec(k, n, b).unwrap())
        })
    })
}

/// The historical serial gemm: ikj loop order with the `aik == 0.0` skip.
/// Per output element this accumulates products in strictly increasing k —
/// exactly the order the packed kernel must reproduce.
fn naive_gemm(a: &Dense, b: &Dense) -> Dense {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Dense::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aik = a.data()[i * k + p];
            if aik == 0.0 {
                continue;
            }
            let brow = &b.data()[p * n..(p + 1) * n];
            let orow = &mut out.data_mut()[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
    out
}

/// The historical crossprod: per row, accumulate the upper triangle with
/// increasing row index, then mirror.
fn naive_crossprod(m: &Dense) -> Dense {
    let d = m.cols();
    let mut out = Dense::zeros(d, d);
    for r in 0..m.rows() {
        let row = &m.data()[r * d..(r + 1) * d];
        for i in 0..d {
            for j in i..d {
                out.data_mut()[i * d + j] += row[i] * row[j];
            }
        }
    }
    for i in 0..d {
        for j in 0..i {
            out.data_mut()[i * d + j] = out.data()[j * d + i];
        }
    }
    out
}

fn assert_bits(got: &Dense, want: &Dense, what: &str) {
    prop_assert_eq!(got.rows(), want.rows());
    prop_assert_eq!(got.cols(), want.cols());
    for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{} diverges from reference at flat index {} ({} vs {})",
            what,
            i,
            x,
            y
        );
    }
}

proptest! {
    #[test]
    fn packed_gemm_bit_identical_to_naive((a, b) in matrices()) {
        assert_bits(&ops::gemm(&a, &b), &naive_gemm(&a, &b), "ops::gemm");
    }

    #[test]
    fn parallel_gemm_bit_identical_at_every_degree((a, b) in matrices()) {
        let want = naive_gemm(&a, &b);
        for degree in [1, 2, 3, 5] {
            assert_bits(&par::gemm(&a, &b, degree), &want, "par::gemm");
        }
    }

    #[test]
    fn gemm_with_non_finite_b_matches_reference_skip_kernel(
        (a, mut b) in matrices(),
        poison in 0.0..1.0f64,
    ) {
        // Plant a non-finite value so the finite-B gate must take the
        // reference path; the naive kernel *is* that path's semantics.
        if !b.data().is_empty() {
            let idx = (poison * (b.data().len() - 1) as f64) as usize;
            b.data_mut()[idx] = if poison < 0.5 { f64::INFINITY } else { f64::NAN };
        }
        let want = naive_gemm(&a, &b);
        assert_bits(&ops::gemm(&a, &b), &want, "ops::gemm (non-finite B)");
        for degree in [1, 3] {
            assert_bits(&par::gemm(&a, &b, degree), &want, "par::gemm (non-finite B)");
        }
    }

    #[test]
    fn gemv_bit_identical_to_rowwise_dot((a, _b) in matrices()) {
        let v: Vec<f64> = (0..a.cols()).map(|i| (i as f64) * 0.37 - 1.5).collect();
        let got = ops::gemv(&a, &v);
        prop_assert_eq!(got.len(), a.rows());
        for (r, y) in got.iter().enumerate() {
            let want = ops::dot(&a.data()[r * a.cols()..(r + 1) * a.cols()], &v);
            prop_assert_eq!(y.to_bits(), want.to_bits(), "gemv row {} != dot", r);
        }
        for degree in [2, 4] {
            for (x, y) in par::gemv(&a, &v, degree).iter().zip(&got) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn crossprod_bit_identical_to_naive((a, _b) in matrices()) {
        assert_bits(&ops::crossprod(&a), &naive_crossprod(&a), "ops::crossprod");
    }

    #[test]
    fn gevm_degree_invariant((a, _b) in matrices()) {
        let u: Vec<f64> = (0..a.rows()).map(|i| ((i % 9) as f64) * 0.25 - 1.0).collect();
        let serial = ops::gevm(&u, &a);
        for degree in [1, 2, 4] {
            for (x, y) in par::gevm(&u, &a, degree).iter().zip(&serial) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
