//! Property-based tests for the matrix substrate.

use dm_matrix::{ops, solve, Coo, Csr, Dense};
use proptest::prelude::*;

/// Strategy: a dense matrix with bounded shape and values, plus a sparsity knob.
fn dense_matrix(max_dim: usize) -> impl Strategy<Value = Dense> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(prop_oneof![3 => -100.0..100.0f64, 1 => Just(0.0)], r * c)
            .prop_map(move |data| Dense::from_vec(r, c, data).unwrap())
    })
}

fn vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0..10.0f64, len)
}

proptest! {
    #[test]
    fn transpose_is_involution(m in dense_matrix(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_preserves_sum(m in dense_matrix(12)) {
        prop_assert!((ops::sum(&m) - ops::sum(&m.transpose())).abs() < 1e-9);
    }

    #[test]
    fn csr_round_trip(m in dense_matrix(12)) {
        let s = Csr::from_dense(&m);
        prop_assert_eq!(s.to_dense(), m.clone());
        prop_assert_eq!(s.nnz(), m.nnz());
    }

    #[test]
    fn spmv_agrees_with_gemv(m in dense_matrix(10)) {
        let v: Vec<f64> = (0..m.cols()).map(|i| (i as f64) - 3.0).collect();
        let s = Csr::from_dense(&m);
        let a = ops::gemv(&m, &v);
        let b = dm_matrix::sparse::spmv(&s, &v);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_transpose_agrees_with_dense(m in dense_matrix(10)) {
        let s = Csr::from_dense(&m);
        prop_assert_eq!(s.transpose().to_dense(), m.transpose());
    }

    #[test]
    fn gemm_distributes_over_add(a in dense_matrix(6)) {
        // (A + A) * I == 2 * (A * I)
        let i = Dense::identity(a.cols());
        let lhs = ops::gemm(&ops::add(&a, &a), &i);
        let rhs = ops::scale(&ops::gemm(&a, &i), 2.0);
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn crossprod_is_symmetric_psd_diagonal(m in dense_matrix(8)) {
        let g = ops::crossprod(&m);
        for i in 0..g.rows() {
            prop_assert!(g.get(i, i) >= -1e-9, "diagonal of Gram matrix must be nonnegative");
            for j in 0..g.cols() {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn col_sums_equal_total(m in dense_matrix(12)) {
        let total: f64 = ops::col_sums(&m).iter().sum();
        prop_assert!((total - ops::sum(&m)).abs() < 1e-7);
        let total_rows: f64 = ops::row_sums(&m).iter().sum();
        prop_assert!((total_rows - ops::sum(&m)).abs() < 1e-7);
    }

    #[test]
    fn dot_is_commutative(v in vector(32), w in vector(32)) {
        prop_assert!((ops::dot(&v, &w) - ops::dot(&w, &v)).abs() < 1e-9);
    }

    #[test]
    fn coo_insertion_order_irrelevant(mut entries in proptest::collection::vec((0usize..8, 0usize..8, -10.0..10.0f64), 0..40)) {
        let build = |es: &[(usize, usize, f64)]| {
            let mut coo = Coo::new(8, 8);
            for &(r, c, v) in es {
                coo.push(r, c, v).unwrap();
            }
            coo.to_csr().to_dense()
        };
        let forward = build(&entries);
        entries.reverse();
        let backward = build(&entries);
        prop_assert!(forward.approx_eq(&backward, 1e-9));
    }

    #[test]
    fn cholesky_solves_random_spd(b in dense_matrix(6)) {
        // A = B^T B + n*I is SPD and well-conditioned enough for the test.
        let mut a = ops::crossprod(&b);
        let n = a.rows();
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64 + 1.0);
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
        let rhs = ops::gemv(&a, &x_true);
        let x = solve::solve_spd(&a, &rhs).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn cg_agrees_with_cholesky(b in dense_matrix(6)) {
        let mut a = ops::crossprod(&b);
        let n = a.rows();
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64 + 1.0);
        }
        let rhs: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        let direct = solve::solve_spd(&a, &rhs).unwrap();
        let iterative = solve::cg_dense(&a, &rhs, solve::CgOptions::default()).unwrap();
        for (p, q) in direct.iter().zip(&iterative) {
            prop_assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn block_matrix_round_trip(m in dense_matrix(15), bs in 1usize..6) {
        let b = dm_matrix::BlockMatrix::from_dense(&m, bs);
        prop_assert_eq!(b.to_dense(), m);
    }

    #[test]
    fn block_gemv_agrees(m in dense_matrix(15), bs in 1usize..6) {
        let v: Vec<f64> = (0..m.cols()).map(|i| i as f64 * 0.25 - 1.0).collect();
        let b = dm_matrix::BlockMatrix::from_dense(&m, bs);
        let expect = ops::gemv(&m, &v);
        for (x, y) in b.gemv(&v).iter().zip(&expect) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn hcat_slice_inverse(a in dense_matrix(8)) {
        let h = a.hcat(&a);
        let left = h.slice(0, a.rows(), 0, a.cols());
        let right = h.slice(0, a.rows(), a.cols(), 2 * a.cols());
        prop_assert_eq!(&left, &a);
        prop_assert_eq!(&right, &a);
    }
}
