//! Property-based tests for the matrix substrate.

use dm_matrix::{ops, par, solve, Coo, Csr, Dense};
use proptest::prelude::*;

/// Strategy: a dense matrix with bounded shape and values, plus a sparsity knob.
fn dense_matrix(max_dim: usize) -> impl Strategy<Value = Dense> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(prop_oneof![3 => -100.0..100.0f64, 1 => Just(0.0)], r * c)
            .prop_map(move |data| Dense::from_vec(r, c, data).unwrap())
    })
}

fn vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0..10.0f64, len)
}

proptest! {
    #[test]
    fn transpose_is_involution(m in dense_matrix(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_preserves_sum(m in dense_matrix(12)) {
        prop_assert!((ops::sum(&m) - ops::sum(&m.transpose())).abs() < 1e-9);
    }

    #[test]
    fn csr_round_trip(m in dense_matrix(12)) {
        let s = Csr::from_dense(&m);
        prop_assert_eq!(s.to_dense(), m.clone());
        prop_assert_eq!(s.nnz(), m.nnz());
    }

    #[test]
    fn spmv_agrees_with_gemv(m in dense_matrix(10)) {
        let v: Vec<f64> = (0..m.cols()).map(|i| (i as f64) - 3.0).collect();
        let s = Csr::from_dense(&m);
        let a = ops::gemv(&m, &v);
        let b = dm_matrix::sparse::spmv(&s, &v);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_transpose_agrees_with_dense(m in dense_matrix(10)) {
        let s = Csr::from_dense(&m);
        prop_assert_eq!(s.transpose().to_dense(), m.transpose());
    }

    #[test]
    fn gemm_distributes_over_add(a in dense_matrix(6)) {
        // (A + A) * I == 2 * (A * I)
        let i = Dense::identity(a.cols());
        let lhs = ops::gemm(&ops::add(&a, &a), &i);
        let rhs = ops::scale(&ops::gemm(&a, &i), 2.0);
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn crossprod_is_symmetric_psd_diagonal(m in dense_matrix(8)) {
        let g = ops::crossprod(&m);
        for i in 0..g.rows() {
            prop_assert!(g.get(i, i) >= -1e-9, "diagonal of Gram matrix must be nonnegative");
            for j in 0..g.cols() {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn col_sums_equal_total(m in dense_matrix(12)) {
        let total: f64 = ops::col_sums(&m).iter().sum();
        prop_assert!((total - ops::sum(&m)).abs() < 1e-7);
        let total_rows: f64 = ops::row_sums(&m).iter().sum();
        prop_assert!((total_rows - ops::sum(&m)).abs() < 1e-7);
    }

    #[test]
    fn dot_is_commutative(v in vector(32), w in vector(32)) {
        prop_assert!((ops::dot(&v, &w) - ops::dot(&w, &v)).abs() < 1e-9);
    }

    #[test]
    fn coo_insertion_order_irrelevant(mut entries in proptest::collection::vec((0usize..8, 0usize..8, -10.0..10.0f64), 0..40)) {
        let build = |es: &[(usize, usize, f64)]| {
            let mut coo = Coo::new(8, 8);
            for &(r, c, v) in es {
                coo.push(r, c, v).unwrap();
            }
            coo.to_csr().to_dense()
        };
        let forward = build(&entries);
        entries.reverse();
        let backward = build(&entries);
        prop_assert!(forward.approx_eq(&backward, 1e-9));
    }

    #[test]
    fn cholesky_solves_random_spd(b in dense_matrix(6)) {
        // A = B^T B + n*I is SPD and well-conditioned enough for the test.
        let mut a = ops::crossprod(&b);
        let n = a.rows();
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64 + 1.0);
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
        let rhs = ops::gemv(&a, &x_true);
        let x = solve::solve_spd(&a, &rhs).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn cg_agrees_with_cholesky(b in dense_matrix(6)) {
        let mut a = ops::crossprod(&b);
        let n = a.rows();
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64 + 1.0);
        }
        let rhs: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        let direct = solve::solve_spd(&a, &rhs).unwrap();
        let iterative = solve::cg_dense(&a, &rhs, solve::CgOptions::default()).unwrap();
        for (p, q) in direct.iter().zip(&iterative) {
            prop_assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn block_matrix_round_trip(m in dense_matrix(15), bs in 1usize..6) {
        let b = dm_matrix::BlockMatrix::from_dense(&m, bs);
        prop_assert_eq!(b.to_dense(), m);
    }

    #[test]
    fn block_gemv_agrees(m in dense_matrix(15), bs in 1usize..6) {
        let v: Vec<f64> = (0..m.cols()).map(|i| i as f64 * 0.25 - 1.0).collect();
        let b = dm_matrix::BlockMatrix::from_dense(&m, bs);
        let expect = ops::gemv(&m, &v);
        for (x, y) in b.gemv(&v).iter().zip(&expect) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn hcat_slice_inverse(a in dense_matrix(8)) {
        let h = a.hcat(&a);
        let left = h.slice(0, a.rows(), 0, a.cols());
        let right = h.slice(0, a.rows(), a.cols(), 2 * a.cols());
        prop_assert_eq!(&left, &a);
        prop_assert_eq!(&right, &a);
    }
}

/// Strategy: a dense matrix whose shape may be degenerate (zero rows or
/// columns, single row, single column) — the edge cases a row-partitioner
/// must survive.
fn maybe_empty_matrix(max_dim: usize) -> impl Strategy<Value = Dense> {
    (0..=max_dim, 0..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0..100.0f64, r * c)
            .prop_map(move |data| Dense::from_vec(r, c, data).unwrap())
    })
}

/// Degrees every parallel kernel is exercised at: serial, the smallest real
/// split, and the machine's core count.
fn sweep_degrees() -> [usize; 3] {
    [1, 2, std::thread::available_parallelism().map_or(4, |n| n.get()).max(3)]
}

proptest! {
    // The parallel kernels promise bit-identical results to the serial ops at
    // every degree: partitions are fixed-size blocks folded in index order,
    // never degree-dependent, so `assert_eq!` on raw f64s is the contract.
    #[test]
    fn par_gemv_bit_identical(m in maybe_empty_matrix(10)) {
        let v: Vec<f64> = (0..m.cols()).map(|i| i as f64 * 0.7 - 2.0).collect();
        let serial = ops::gemv(&m, &v);
        for deg in sweep_degrees() {
            prop_assert_eq!(&par::gemv(&m, &v, deg), &serial, "degree {}", deg);
        }
    }

    #[test]
    fn par_gemm_bit_identical((r, k, c) in (0usize..7, 0usize..7, 0usize..7),
                              seed in 0u64..1000) {
        let a = Dense::from_fn(r, k, |i, j| ((i * 13 + j * 7 + seed as usize) % 29) as f64 - 11.0);
        let b = Dense::from_fn(k, c, |i, j| ((i * 5 + j * 17 + seed as usize) % 31) as f64 - 13.0);
        let serial = ops::gemm(&a, &b);
        for deg in sweep_degrees() {
            prop_assert_eq!(par::gemm(&a, &b, deg).data(), serial.data(), "degree {}", deg);
        }
    }

    #[test]
    fn par_gevm_bit_identical(m in maybe_empty_matrix(10)) {
        let v: Vec<f64> = (0..m.rows()).map(|i| i as f64 * 0.3 - 1.0).collect();
        let serial = ops::gevm(&v, &m);
        for deg in sweep_degrees() {
            prop_assert_eq!(&par::gevm(&v, &m, deg), &serial, "degree {}", deg);
        }
    }

    #[test]
    fn par_col_sums_bit_identical(m in maybe_empty_matrix(12)) {
        let serial = ops::col_sums(&m);
        for deg in sweep_degrees() {
            prop_assert_eq!(&par::col_sums(&m, deg), &serial, "degree {}", deg);
        }
    }

    #[test]
    fn par_sum_sq_bit_identical(m in maybe_empty_matrix(12)) {
        let serial = ops::sum_sq(&m);
        for deg in sweep_degrees() {
            prop_assert_eq!(par::sum_sq(&m, deg).to_bits(), serial.to_bits(), "degree {}", deg);
        }
    }

    #[test]
    fn par_crossprod_bit_identical(m in maybe_empty_matrix(9)) {
        let serial = ops::crossprod(&m);
        for deg in sweep_degrees() {
            prop_assert_eq!(par::crossprod(&m, deg).data(), serial.data(), "degree {}", deg);
        }
    }
}
