//! Block-access trace generators for buffer-pool experiments (E10).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A sequence of block ids to access.
pub type Trace = Vec<usize>;

/// Sequential scans repeated `passes` times over `num_blocks` blocks —
/// the pathological case for LRU when the working set exceeds the pool.
pub fn scan(num_blocks: usize, passes: usize) -> Trace {
    (0..passes).flat_map(|_| 0..num_blocks).collect()
}

/// Hot-set workload: with probability `hot_prob` access one of the first
/// `hot_blocks` blocks, otherwise a uniform cold block.
pub fn hot_set(
    num_blocks: usize,
    hot_blocks: usize,
    hot_prob: f64,
    len: usize,
    seed: u64,
) -> Trace {
    assert!(hot_blocks > 0 && hot_blocks <= num_blocks, "invalid hot set size");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if rng.gen_bool(hot_prob.clamp(0.0, 1.0)) {
                rng.gen_range(0..hot_blocks)
            } else {
                rng.gen_range(0..num_blocks)
            }
        })
        .collect()
}

/// A reusable Zipf sampler: the normalized CDF over `num_blocks` ranks is
/// computed once at construction, so repeated draws (or whole traces at
/// different lengths/seeds) share the `O(num_blocks)` setup cost instead of
/// paying it per call.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `num_blocks` ranks with exponent `theta`
    /// (1.0 is the classic heavy-skew setting); rank 0 is the hottest.
    pub fn new(num_blocks: usize, theta: f64) -> Self {
        assert!(num_blocks > 0, "need at least one block");
        let weights: Vec<f64> = (1..=num_blocks).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(num_blocks);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        ZipfSampler { cdf }
    }

    /// Number of distinct ranks this sampler draws from.
    pub fn num_blocks(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one block id via inverse-CDF binary search.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Generate a full trace of `len` accesses from `seed`.
    pub fn generate(&self, len: usize, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| self.sample(&mut rng)).collect()
    }
}

/// Zipf-distributed accesses with exponent `theta` (1.0 is the classic
/// heavy-skew setting); block 0 is the hottest. Convenience wrapper around
/// [`ZipfSampler`] for one-shot trace generation.
pub fn zipf(num_blocks: usize, theta: f64, len: usize, seed: u64) -> Trace {
    ZipfSampler::new(num_blocks, theta).generate(len, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_is_cyclic() {
        let t = scan(4, 3);
        assert_eq!(t.len(), 12);
        assert_eq!(&t[..4], &[0, 1, 2, 3]);
        assert_eq!(&t[4..8], &[0, 1, 2, 3]);
    }

    #[test]
    fn hot_set_concentrates_accesses() {
        let t = hot_set(100, 5, 0.9, 10_000, 1);
        let hot = t.iter().filter(|&&b| b < 5).count();
        // 90% direct + ~5% of the uniform tail also lands in the hot set.
        assert!(hot as f64 / 10_000.0 > 0.85, "hot fraction {}", hot as f64 / 10_000.0);
        assert!(t.iter().all(|&b| b < 100));
    }

    #[test]
    fn zipf_rank_frequencies_decrease() {
        let t = zipf(50, 1.0, 50_000, 2);
        let mut counts = vec![0usize; 50];
        for &b in &t {
            counts[b] += 1;
        }
        assert!(counts[0] > counts[9], "{} vs {}", counts[0], counts[9]);
        assert!(counts[9] > counts[40]);
        // Head concentration: top 10 blocks carry the majority under theta=1.
        let head: usize = counts[..10].iter().sum();
        assert!(head * 2 > t.len(), "head {head}");
    }

    #[test]
    fn zipf_rank_frequency_shape_matches_power_law() {
        // Under theta=1 the frequency of rank k is proportional to 1/(k+1),
        // so count(rank 0) / count(rank 1) ~= 2 and
        // count(rank 0) / count(rank 3) ~= 4. Pin the shape, not just the
        // ordering, with generous tolerance for sampling noise.
        let sampler = ZipfSampler::new(50, 1.0);
        let t = sampler.generate(200_000, 7);
        let mut counts = vec![0usize; 50];
        for &b in &t {
            counts[b] += 1;
        }
        let r01 = counts[0] as f64 / counts[1] as f64;
        let r03 = counts[0] as f64 / counts[3] as f64;
        assert!((r01 - 2.0).abs() < 0.25, "rank0/rank1 ratio {r01}");
        assert!((r03 - 4.0).abs() < 0.5, "rank0/rank3 ratio {r03}");
    }

    #[test]
    fn sampler_reuse_matches_one_shot_helper() {
        let sampler = ZipfSampler::new(20, 0.8);
        assert_eq!(sampler.num_blocks(), 20);
        assert_eq!(sampler.generate(500, 3), zipf(20, 0.8, 500, 3));
        // Distinct seeds from the same sampler give distinct traces.
        assert_ne!(sampler.generate(500, 3), sampler.generate(500, 4));
    }

    #[test]
    fn traces_deterministic() {
        assert_eq!(hot_set(10, 2, 0.5, 100, 9), hot_set(10, 2, 0.5, 100, 9));
        assert_eq!(zipf(10, 1.0, 100, 9), zipf(10, 1.0, 100, 9));
    }
}
