//! Matrix generators with controlled statistical structure.

use dm_matrix::Dense;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Uniform dense matrix with values in `[lo, hi)`.
pub fn dense_uniform(rows: usize, cols: usize, lo: f64, hi: f64, seed: u64) -> Dense {
    let mut rng = StdRng::seed_from_u64(seed);
    Dense::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Sparse matrix: each cell is non-zero with probability `density`,
/// non-zero values uniform in `[0.5, 1.5)`.
pub fn sparse_uniform(rows: usize, cols: usize, density: f64, seed: u64) -> Dense {
    let density = density.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    Dense::from_fn(
        rows,
        cols,
        |_, _| {
            if rng.gen_bool(density) {
                rng.gen_range(0.5..1.5)
            } else {
                0.0
            }
        },
    )
}

/// Low-cardinality matrix: each column draws from `cardinality` distinct
/// values in random row order (DDC-friendly, not RLE-friendly).
pub fn low_cardinality(rows: usize, cols: usize, cardinality: usize, seed: u64) -> Dense {
    assert!(cardinality > 0, "cardinality must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    Dense::from_fn(rows, cols, |_, c| {
        ((rng.gen_range(0..cardinality) * (c + 1)) % (cardinality * (c + 1))) as f64
            / (c + 1) as f64
    })
}

/// Clustered low-cardinality matrix: values change in long runs
/// (RLE-friendly). `run_len` rows share a value before it switches.
pub fn clustered(rows: usize, cols: usize, cardinality: usize, run_len: usize, seed: u64) -> Dense {
    assert!(cardinality > 0 && run_len > 0, "cardinality and run_len must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    // Pre-draw the run values per column.
    let runs = rows.div_ceil(run_len);
    let mut values = vec![vec![0.0f64; runs]; cols];
    for col in values.iter_mut() {
        for v in col.iter_mut() {
            *v = rng.gen_range(0..cardinality) as f64;
        }
    }
    Dense::from_fn(rows, cols, |r, c| values[c][r / run_len])
}

/// Matrix whose later columns are deterministic functions of column 0
/// (maximally co-codable).
pub fn correlated(rows: usize, cols: usize, cardinality: usize, seed: u64) -> Dense {
    assert!(cardinality > 0, "cardinality must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<usize> = (0..rows).map(|_| rng.gen_range(0..cardinality)).collect();
    Dense::from_fn(rows, cols, |r, c| ((base[r] * (c + 1)) % cardinality) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn dense_uniform_range_and_determinism() {
        let a = dense_uniform(50, 4, -1.0, 1.0, 7);
        assert!(a.data().iter().all(|&v| (-1.0..1.0).contains(&v)));
        assert_eq!(a, dense_uniform(50, 4, -1.0, 1.0, 7));
        assert_ne!(a, dense_uniform(50, 4, -1.0, 1.0, 8));
    }

    #[test]
    fn sparse_density_approximate() {
        let m = sparse_uniform(2000, 5, 0.1, 3);
        let s = m.sparsity();
        assert!((s - 0.1).abs() < 0.02, "sparsity {s}");
        assert_eq!(sparse_uniform(10, 2, 0.0, 1).nnz(), 0);
        assert_eq!(sparse_uniform(10, 2, 1.0, 1).nnz(), 20);
    }

    #[test]
    fn low_cardinality_bounded_distinct() {
        let m = low_cardinality(1000, 3, 5, 11);
        for c in 0..3 {
            let distinct: HashSet<u64> = m.col_vec(c).iter().map(|v| v.to_bits()).collect();
            assert!(distinct.len() <= 5, "col {c} has {} distinct", distinct.len());
        }
    }

    #[test]
    fn clustered_has_long_runs() {
        let m = clustered(1000, 2, 4, 100, 5);
        // Count value changes per column: at most rows/run_len.
        for c in 0..2 {
            let col = m.col_vec(c);
            let changes = col.windows(2).filter(|w| w[0] != w[1]).count();
            assert!(changes <= 10, "col {c} changed {changes} times");
        }
    }

    #[test]
    fn correlated_columns_are_functions_of_base() {
        let m = correlated(500, 3, 7, 9);
        // Any two rows with equal col-0 values agree on all columns.
        for r1 in 0..100 {
            for r2 in 100..200 {
                if m.get(r1, 0) == m.get(r2, 0) {
                    for c in 1..3 {
                        assert_eq!(m.get(r1, c), m.get(r2, c));
                    }
                }
            }
        }
    }
}
