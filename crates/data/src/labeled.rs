//! Labeled dataset generators for GLM and classifier experiments.

use dm_matrix::Dense;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A labeled dataset with known generating weights.
#[derive(Debug, Clone)]
pub struct LabeledData {
    /// Feature matrix.
    pub x: Dense,
    /// Labels (continuous for regression, {0,1} for classification).
    pub y: Vec<f64>,
    /// True generating weights (including intercept at position 0).
    pub truth: Vec<f64>,
}

/// Linear regression data: `y = b0 + X·w + noise`.
pub fn regression(n: usize, d: usize, noise: f64, seed: u64) -> LabeledData {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Dense::from_fn(n, d, |_, _| rng.gen_range(-1.0..1.0));
    let truth: Vec<f64> = (0..=d).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let y = (0..n)
        .map(|r| {
            let mut s = truth[0];
            for j in 0..d {
                s += truth[j + 1] * x.get(r, j);
            }
            s + if noise > 0.0 { rng.gen_range(-noise..noise) } else { 0.0 }
        })
        .collect();
    LabeledData { x, y, truth }
}

/// Binary classification data from a logistic model: labels are drawn from
/// `Bernoulli(sigmoid(b0 + X·w))`, so the Bayes-optimal accuracy is below 1.
pub fn classification(n: usize, d: usize, scale: f64, seed: u64) -> LabeledData {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Dense::from_fn(n, d, |_, _| rng.gen_range(-1.0..1.0));
    let truth: Vec<f64> = (0..=d).map(|_| rng.gen_range(-scale..scale)).collect();
    let y = (0..n)
        .map(|r| {
            let mut s = truth[0];
            for j in 0..d {
                s += truth[j + 1] * x.get(r, j);
            }
            let p = 1.0 / (1.0 + (-s).exp());
            if rng.gen_bool(p.clamp(0.001, 0.999)) {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    LabeledData { x, y, truth }
}

/// Gaussian-blob multi-class data: `k` well-separated clusters with integer
/// labels `0..k` (for k-means / NB / tree experiments).
pub fn blobs(n: usize, d: usize, k: usize, spread: f64, seed: u64) -> (Dense, Vec<i64>) {
    assert!(k > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    // Place cluster centers on a scaled lattice so they are well separated.
    let centers = Dense::from_fn(k, d, |c, j| ((c * (j + 3) + 1) % (k + 2)) as f64 * 10.0);
    let mut x = Dense::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let c = r % k;
        y.push(c as i64);
        for j in 0..d {
            x.set(r, j, centers.get(c, j) + rng.gen_range(-spread..spread));
        }
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_labels_match_truth_without_noise() {
        let d = regression(100, 3, 0.0, 5);
        for r in [0usize, 17, 99] {
            let mut s = d.truth[0];
            for j in 0..3 {
                s += d.truth[j + 1] * d.x.get(r, j);
            }
            assert!((d.y[r] - s).abs() < 1e-12);
        }
    }

    #[test]
    fn regression_is_learnable() {
        let d = regression(500, 4, 0.01, 8);
        let m = dm_ml::linreg::LinearRegression::fit(
            &d.x,
            &d.y,
            dm_ml::linreg::Solver::NormalEquations,
            0.0,
        )
        .unwrap();
        assert!((m.intercept - d.truth[0]).abs() < 0.05);
        for (c, t) in m.coefficients.iter().zip(&d.truth[1..]) {
            assert!((c - t).abs() < 0.05);
        }
    }

    #[test]
    fn classification_labels_binary_and_balancedish() {
        let d = classification(1000, 3, 2.0, 3);
        assert!(d.y.iter().all(|&v| v == 0.0 || v == 1.0));
        let pos = d.y.iter().filter(|&&v| v == 1.0).count();
        assert!(pos > 100 && pos < 900, "pos {pos}");
    }

    #[test]
    fn blobs_are_separable() {
        let (x, y) = blobs(90, 2, 3, 0.5, 4);
        assert_eq!(x.rows(), 90);
        assert_eq!(y.len(), 90);
        let m = dm_ml::naive_bayes::GaussianNb::fit(&x, &y).unwrap();
        assert!(m.accuracy(&x, &y) > 0.99);
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(regression(10, 2, 0.1, 1).y, regression(10, 2, 0.1, 1).y);
        assert_eq!(classification(10, 2, 1.0, 1).y, classification(10, 2, 1.0, 1).y);
        assert_eq!(blobs(10, 2, 2, 0.1, 1).0, blobs(10, 2, 2, 0.1, 1).0);
    }
}
