#![allow(clippy::needless_range_loop)] // index loops mirror the math in numeric kernels
//! Star-schema generators for factorized-learning experiments.

use dm_matrix::Dense;
use dm_rel::{Table, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Raw pieces of a star schema: fact features, dimension features, and the
/// foreign-key map, plus labels generated from a known linear truth over the
/// joined features.
#[derive(Debug, Clone)]
pub struct StarData {
    /// `n x d_s` fact-table features.
    pub fact: Dense,
    /// `n_dim x d_dim` dimension-table features.
    pub dim: Dense,
    /// Foreign keys: for each fact row, the referenced dimension row.
    pub fk: Vec<usize>,
    /// Regression labels from the linear truth plus small noise.
    pub y_regression: Vec<f64>,
    /// Binary labels: 1 when the noiseless linear score exceeds its median.
    pub y_binary: Vec<f64>,
    /// The ground-truth weights (fact features first, then dimension).
    pub truth: Vec<f64>,
}

/// Parameters of the generator.
#[derive(Debug, Clone, Copy)]
pub struct StarConfig {
    /// Fact rows `n`.
    pub fact_rows: usize,
    /// Dimension rows `n_dim` (tuple ratio is `fact_rows / dim_rows`).
    pub dim_rows: usize,
    /// Fact features `d_s`.
    pub fact_features: usize,
    /// Dimension features `d_dim`.
    pub dim_features: usize,
    /// Label noise standard deviation (uniform approximation).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StarConfig {
    fn default() -> Self {
        StarConfig {
            fact_rows: 1000,
            dim_rows: 50,
            fact_features: 2,
            dim_features: 4,
            noise: 0.01,
            seed: 42,
        }
    }
}

/// Generate a star schema with a known linear ground truth.
pub fn generate(cfg: &StarConfig) -> StarData {
    assert!(cfg.fact_rows > 0 && cfg.dim_rows > 0, "rows must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let fact = Dense::from_fn(cfg.fact_rows, cfg.fact_features, |_, _| rng.gen_range(-1.0..1.0));
    let dim = Dense::from_fn(cfg.dim_rows, cfg.dim_features, |_, _| rng.gen_range(-1.0..1.0));
    let fk: Vec<usize> = (0..cfg.fact_rows).map(|_| rng.gen_range(0..cfg.dim_rows)).collect();
    let d = cfg.fact_features + cfg.dim_features;
    let truth: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect();

    let mut scores = Vec::with_capacity(cfg.fact_rows);
    for r in 0..cfg.fact_rows {
        let mut s = 0.0;
        for (j, &w) in truth.iter().enumerate().take(cfg.fact_features) {
            s += w * fact.get(r, j);
        }
        for j in 0..cfg.dim_features {
            s += truth[cfg.fact_features + j] * dim.get(fk[r], j);
        }
        scores.push(s);
    }
    let mut sorted = scores.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("scores are finite"));
    let median = sorted[sorted.len() / 2];

    let y_regression: Vec<f64> =
        scores.iter().map(|&s| s + rng.gen_range(-cfg.noise..cfg.noise.max(1e-12))).collect();
    let y_binary: Vec<f64> = scores.iter().map(|&s| if s > median { 1.0 } else { 0.0 }).collect();

    StarData { fact, dim, fk, y_regression, y_binary, truth }
}

/// Materialize the star schema as relational tables (fact with an integer FK
/// column, dimension with an integer key column) — the input format of the
/// end-to-end pipeline experiments.
pub fn to_tables(data: &StarData) -> (Table, Table) {
    let mut fact = Table::builder("fact");
    for j in 0..data.fact.cols() {
        fact = fact.float64(&format!("s{j}"));
    }
    let mut fact = fact.int64("fk").float64("label").build();
    for r in 0..data.fact.rows() {
        let mut row: Vec<Value> =
            (0..data.fact.cols()).map(|j| Value::Float64(data.fact.get(r, j))).collect();
        row.push(Value::Int64(data.fk[r] as i64));
        row.push(Value::Float64(data.y_regression[r]));
        fact.push_row(row).expect("schema matches construction");
    }

    let mut dim = Table::builder("dim").int64("id");
    for j in 0..data.dim.cols() {
        dim = dim.float64(&format!("r{j}"));
    }
    let mut dim = dim.build();
    for g in 0..data.dim.rows() {
        let mut row: Vec<Value> = vec![Value::Int64(g as i64)];
        row.extend((0..data.dim.cols()).map(|j| Value::Float64(data.dim.get(g, j))));
        dim.push_row(row).expect("schema matches construction");
    }
    (fact, dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let cfg = StarConfig::default();
        let d = generate(&cfg);
        assert_eq!(d.fact.shape(), (1000, 2));
        assert_eq!(d.dim.shape(), (50, 4));
        assert_eq!(d.fk.len(), 1000);
        assert_eq!(d.truth.len(), 6);
        assert!(d.fk.iter().all(|&k| k < 50));
        let d2 = generate(&cfg);
        assert_eq!(d.y_regression, d2.y_regression);
    }

    #[test]
    fn labels_follow_truth() {
        let cfg = StarConfig { noise: 0.0, ..Default::default() };
        let d = generate(&cfg);
        // Recompute one label by hand.
        let r = 17;
        let mut s = 0.0;
        for j in 0..2 {
            s += d.truth[j] * d.fact.get(r, j);
        }
        for j in 0..4 {
            s += d.truth[2 + j] * d.dim.get(d.fk[r], j);
        }
        assert!((d.y_regression[r] - s).abs() < 1e-12);
    }

    #[test]
    fn binary_labels_roughly_balanced() {
        let d = generate(&StarConfig::default());
        let pos = d.y_binary.iter().filter(|&&v| v == 1.0).count();
        assert!(pos > 350 && pos < 650, "pos {pos}");
    }

    #[test]
    fn to_tables_round_trips_through_relational_layer() {
        let cfg = StarConfig { fact_rows: 20, dim_rows: 4, ..Default::default() };
        let d = generate(&cfg);
        let (fact, dim) = to_tables(&d);
        assert_eq!(fact.num_rows(), 20);
        assert_eq!(dim.num_rows(), 4);
        assert_eq!(fact.schema().names(), vec!["s0", "s1", "fk", "label"]);
        // FK values index the dimension table.
        let joined = dm_rel::hash_join(&fact, &dim, "fk", "id", dm_rel::JoinKind::Inner).unwrap();
        assert_eq!(joined.num_rows(), 20, "every fact row matches");
    }
}
