//! # dm-data
//!
//! Deterministic synthetic data and workload generators shared by the test
//! suite, examples, and the benchmark harness.
//!
//! Every generator takes an explicit seed, so experiments are reproducible
//! run to run. The generators are designed to match the *statistical
//! structure* that the reproduced experiments depend on: column cardinality
//! and clustering for compression (E1/E2), join tuple ratios for factorized
//! learning (E3/E4/E9), sparsity for kernel crossovers (E6), and access skew
//! for buffer-pool traces (E10).

#![warn(missing_docs)]

pub mod labeled;
pub mod matgen;
pub mod star;
pub mod trace;
