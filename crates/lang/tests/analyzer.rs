//! Analyzer soundness and completeness: well-formed random programs must
//! produce zero error-severity diagnostics, and each seeded defect must be
//! reported under its expected code.

use dm_lang::analyze::{analyze, codes, Severity};
use dm_lang::exec::{Env, Executor};
use dm_lang::expr::{AggOp, EwiseOp, Graph, NodeId, UnaryOp};
use dm_lang::size::{propagate, InputSizes};
use dm_matrix::{Dense, Matrix};
use proptest::prelude::*;

const N: usize = 7;
const D: usize = 4;

fn inputs() -> InputSizes {
    let mut sizes = InputSizes::new();
    sizes.declare("X", N, D, 1.0);
    sizes.declare("v", D, 1, 1.0);
    sizes.declare("u", N, 1, 1.0);
    sizes
}

/// Shape-indexed well-formed expression generator (mirrors the optimizer
/// soundness suite): every produced program is type-correct by construction,
/// and `sqrt` is always guarded by `abs`, so no domain error is real.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Nd,
    D1,
    N1,
    Scalar,
}

#[derive(Debug, Clone)]
enum E {
    X,
    V,
    U,
    Const(i8),
    Add(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Abs(Box<E>),
    SqrtAbs(Box<E>),
    XtX,
    Xv,
    Xtu,
    Sum(Box<E>),
    Min(Box<E>),
    Max(Box<E>),
}

fn leaf(shape: Shape) -> BoxedStrategy<E> {
    match shape {
        Shape::Nd => Just(E::X).boxed(),
        Shape::D1 => prop_oneof![Just(E::V), Just(E::Xtu)].boxed(),
        Shape::N1 => prop_oneof![Just(E::U), Just(E::Xv)].boxed(),
        Shape::Scalar => (-3i8..4).prop_map(E::Const).boxed(),
    }
}

fn expr(shape: Shape, depth: u32) -> BoxedStrategy<E> {
    if depth == 0 {
        return leaf(shape);
    }
    let binop = (expr(shape, depth - 1), expr(shape, depth - 1)).prop_map(move |(a, b)| {
        if shape == Shape::Scalar {
            E::Add(Box::new(a), Box::new(b))
        } else {
            E::Mul(Box::new(a), Box::new(b))
        }
    });
    match shape {
        Shape::Scalar => prop_oneof![
            leaf(shape),
            binop,
            expr(Shape::Nd, depth - 1).prop_map(|a| E::Sum(Box::new(a))),
            expr(Shape::D1, depth - 1).prop_map(|a| E::Min(Box::new(a))),
            expr(Shape::N1, depth - 1).prop_map(|a| E::Max(Box::new(a))),
            Just(E::XtX),
        ]
        .boxed(),
        _ => prop_oneof![
            leaf(shape),
            binop,
            expr(shape, depth - 1).prop_map(|a| E::Abs(Box::new(a))),
            expr(shape, depth - 1).prop_map(|a| E::SqrtAbs(Box::new(a))),
        ]
        .boxed(),
    }
}

fn build(e: &E, g: &mut Graph) -> NodeId {
    match e {
        E::X => g.input("X"),
        E::V => g.input("v"),
        E::U => g.input("u"),
        E::Const(c) => g.constant(f64::from(*c)),
        E::Add(a, b) => {
            let (x, y) = (build(a, g), build(b, g));
            g.ewise(EwiseOp::Add, x, y)
        }
        E::Mul(a, b) => {
            let (x, y) = (build(a, g), build(b, g));
            g.ewise(EwiseOp::Mul, x, y)
        }
        E::Abs(a) => {
            let x = build(a, g);
            g.unary(UnaryOp::Abs, x)
        }
        E::SqrtAbs(a) => {
            let x = build(a, g);
            let ax = g.unary(UnaryOp::Abs, x);
            g.unary(UnaryOp::Sqrt, ax)
        }
        E::XtX => {
            let x = g.input("X");
            let t = g.transpose(x);
            let mm = g.matmul(t, x);
            g.agg(AggOp::Sum, mm)
        }
        E::Xv => {
            let x = g.input("X");
            let v = g.input("v");
            g.matmul(x, v)
        }
        E::Xtu => {
            let x = g.input("X");
            let t = g.transpose(x);
            let u = g.input("u");
            g.matmul(t, u)
        }
        E::Sum(a) => {
            let x = build(a, g);
            g.agg(AggOp::Sum, x)
        }
        E::Min(a) => {
            let x = build(a, g);
            g.agg(AggOp::Min, x)
        }
        E::Max(a) => {
            let x = build(a, g);
            g.agg(AggOp::Max, x)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Soundness: a well-formed program never draws an error-severity
    /// diagnostic, and the analyzer's size table matches `propagate`.
    #[test]
    fn well_formed_programs_lint_clean(e in expr(Shape::Scalar, 4)) {
        let mut g = Graph::new();
        let root = build(&e, &mut g);
        let sizes = inputs();
        let report = analyze(&g, root, &sizes);
        prop_assert!(
            report.is_clean(),
            "errors on well-formed program {}:\n{}",
            g.render(root),
            report.render(&g)
        );
        let expected = propagate(&g, root, &sizes).expect("well-formed");
        for (id, info) in &expected {
            prop_assert_eq!(report.sizes.get(id), Some(info));
        }
    }

    /// The static shape table agrees with actual execution on every node the
    /// executor touches (`eval_verified` would error otherwise).
    #[test]
    fn static_shapes_match_runtime(e in expr(Shape::Scalar, 3)) {
        let mut g = Graph::new();
        let root = build(&e, &mut g);
        let sizes = inputs();
        let report = analyze(&g, root, &sizes);
        let mut env = Env::new();
        env.bind("X", Matrix::Dense(Dense::from_fn(N, D, |r, c| ((r * 5 + c * 3) % 7) as f64 - 3.0)));
        let v: Vec<f64> = (0..D).map(|i| (i as f64) * 0.5 - 1.0).collect();
        env.bind("v", Matrix::Dense(Dense::column(&v)));
        let u: Vec<f64> = (0..N).map(|i| ((i % 3) as f64) - 1.0).collect();
        env.bind("u", Matrix::Dense(Dense::column(&u)));
        let mut ex = Executor::new(&g);
        for id in g.reachable(root) {
            let r = ex.eval_verified(id, &env, &report.sizes);
            prop_assert!(r.is_ok(), "static/runtime shape disagreement: {:?}", r);
        }
    }
}

// Completeness: each seeded defect is reported under its expected code, on
// the node that carries it.

fn diag_codes_at(g: &Graph, root: NodeId, node: NodeId) -> Vec<&'static str> {
    let report = analyze(g, root, &inputs());
    report.diagnostics.iter().filter(|d| d.node == node).map(|d| d.code).collect()
}

#[test]
fn mutation_shape_mismatch_is_e001() {
    // X %*% v is well-formed; X %*% u is not (inner dims 4 vs 7).
    let mut g = Graph::new();
    let x = g.input("X");
    let u = g.input("u");
    let mm = g.matmul(x, u);
    let root = g.agg(AggOp::Sum, mm);
    assert_eq!(diag_codes_at(&g, root, mm), vec![codes::SHAPE_MISMATCH]);
}

#[test]
fn mutation_undeclared_input_is_e002() {
    let mut g = Graph::new();
    let w = g.input("w_undeclared");
    let root = g.agg(AggOp::Sum, w);
    assert_eq!(diag_codes_at(&g, root, w), vec![codes::UNBOUND_INPUT]);
}

#[test]
fn mutation_negative_log_is_e003() {
    let mut g = Graph::new();
    let c = g.constant(-1.5);
    let l = g.unary(UnaryOp::Log, c);
    let x = g.input("X");
    let shifted = g.ewise(EwiseOp::Mul, x, l);
    let root = g.agg(AggOp::Sum, shifted);
    assert_eq!(diag_codes_at(&g, root, l), vec![codes::DOMAIN_VIOLATION]);
}

#[test]
fn mutation_possibly_negative_sqrt_is_w101() {
    let mut g = Graph::new();
    let x = g.input("X");
    let ax = g.unary(UnaryOp::Abs, x);
    let c = g.constant(2.0);
    let sub = g.ewise(EwiseOp::Sub, ax, c); // [-2, inf)
    let s = g.unary(UnaryOp::Sqrt, sub);
    let root = g.agg(AggOp::Sum, s);
    assert_eq!(diag_codes_at(&g, root, s), vec![codes::POSSIBLE_DOMAIN]);
}

#[test]
fn mutation_bad_chain_order_is_w102() {
    // (v %*% t(v)) %*% v — outer-product-first costs D*1*D + D*D*1;
    // optimal associates right: 1*D*1 twice. With a bigger disparity:
    // (X %*% (v %*% t(v))) is fine; use ((X %*% v_outer) %*% v) style chain.
    let mut g = Graph::new();
    let x = g.input("X"); // 7x4
    let t = g.transpose(x); // 4x7
    let xt = g.matmul(x, t); // 7x4 * 4x7 = 7x7: 196 mults
    let u = g.input("u"); // 7x1
    let chain = g.matmul(xt, u); // (X t(X)) u: 196 + 49; X (t(X) u): 28 + 28
    let root = g.agg(AggOp::Sum, chain);
    assert_eq!(diag_codes_at(&g, root, chain), vec![codes::MMCHAIN_COST]);
}

#[test]
fn mutation_orphan_node_is_h201() {
    let mut g = Graph::new();
    let x = g.input("X");
    let root = g.agg(AggOp::Sum, x);
    let orphan = g.agg(AggOp::ColSums, x);
    assert_eq!(diag_codes_at(&g, root, orphan), vec![codes::DEAD_NODE]);
}

#[test]
fn mutation_unfused_crossprod_is_h202() {
    let mut g = Graph::new();
    let x = g.input("X");
    let t = g.transpose(x);
    let mm = g.matmul(t, x);
    let root = g.agg(AggOp::Sum, mm);
    assert_eq!(diag_codes_at(&g, root, mm), vec![codes::MISSED_FUSION]);
}

#[test]
fn all_defects_surface_in_one_pass() {
    // One program holding an instance of every diagnostic class: a single
    // analyze() call must surface all of them.
    let mut g = Graph::new();
    let x = g.input("X");
    let u = g.input("u");
    let bad_mm = g.matmul(x, x); // E001
    let w = g.input("undeclared"); // E002
    let neg = g.constant(-2.0);
    let bad_log = g.unary(UnaryOp::Log, neg); // E003
    let ax = g.unary(UnaryOp::Abs, x);
    let c3 = g.constant(3.0);
    let shifted = g.ewise(EwiseOp::Sub, ax, c3);
    let risky = g.unary(UnaryOp::Sqrt, shifted); // W101
    let t = g.transpose(x);
    let xt = g.matmul(x, t);
    let chain = g.matmul(xt, u); // W102
    let gram = g.matmul(t, x); // H202

    let s1 = g.agg(AggOp::Sum, bad_mm);
    let s2 = g.agg(AggOp::Sum, w);
    let s3 = g.ewise(EwiseOp::Mul, s1, bad_log);
    let s4 = g.agg(AggOp::Sum, risky);
    let s5 = g.agg(AggOp::Sum, chain);
    let s6 = g.agg(AggOp::Sum, gram);
    let m1 = g.ewise(EwiseOp::Add, s2, s3);
    let m2 = g.ewise(EwiseOp::Add, s4, s5);
    let m3 = g.ewise(EwiseOp::Add, m1, m2);
    let root = g.ewise(EwiseOp::Add, m3, s6);
    let _orphan = g.input("v"); // H201

    let report = analyze(&g, root, &inputs());
    let expected = [
        codes::SHAPE_MISMATCH,
        codes::UNBOUND_INPUT,
        codes::DOMAIN_VIOLATION,
        codes::POSSIBLE_DOMAIN,
        codes::MMCHAIN_COST,
        codes::DEAD_NODE,
        codes::MISSED_FUSION,
    ];
    let found = report.codes();
    for code in expected {
        assert!(found.contains(&code), "missing {code}; found {found:?}\n{}", report.render(&g));
    }
    assert_eq!(report.error_count(), 3);
    assert_eq!(report.with_severity(Severity::Warning).count(), 2);
}

#[test]
fn eval_verified_catches_a_wrong_static_shape() {
    use dm_lang::size::{Shape as SShape, SizeInfo};
    use std::collections::HashMap;
    let mut g = Graph::new();
    let x = g.input("X");
    let root = g.agg(AggOp::ColSums, x);
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(Dense::from_fn(N, D, |r, c| (r + c) as f64)));
    // Claim the root is a scalar when it is really 1 x D.
    let mut wrong: HashMap<NodeId, SizeInfo> = HashMap::new();
    wrong.insert(root, SizeInfo { shape: SShape::Scalar, sparsity: 1.0 });
    let mut ex = Executor::new(&g);
    let err = ex.eval_verified(root, &env, &wrong).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("static analysis predicted"), "{msg}");
}
