//! Certification acceptance: the static liveness certificate is a sound
//! upper bound on the executor's observed spill-pool peak, across random
//! DAGs and budget fractions, with bit-identical results and clean pool
//! audits; and the certifier-driven planner fixes the composite-peak blind
//! spot of the per-node check end to end.

use dm_lang::exec::{Env, Executor, Val};
use dm_lang::expr::{AggOp, EwiseOp, Graph, NodeId, Op};
use dm_lang::memory::MemoryBudget;
use dm_lang::physical::{plan_with_degree, plan_with_memory, plan_with_memory_per_node, Kernel};
use dm_lang::size::InputSizes;
use dm_lang::{certify_plan, Verdict};
use dm_matrix::{Dense, Matrix};
use proptest::prelude::*;

fn dense_input(rows: usize, cols: usize, salt: u64) -> Dense {
    Dense::from_fn(rows, cols, |r, c| {
        let h = (r as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(c as u64)
            .wrapping_add(salt)
            .wrapping_mul(1442695040888963407);
        ((h >> 33) % 100) as f64 * 0.017 - 0.85
    })
}

/// A random same-shape DAG over two inputs, closed off by every blocked
/// kernel family: crossprod, a gemm-shaped matmul, colSums, and scalar
/// aggregation at the root.
fn random_dag(codes: &[(u8, u8, u8)]) -> (Graph, NodeId) {
    let mut g = Graph::new();
    let x = g.input("X");
    let y = g.input("Y");
    let mut pool = vec![x, y];
    for &(op, ia, ib) in codes {
        let a = pool[ia as usize % pool.len()];
        let b = pool[ib as usize % pool.len()];
        let n = match op % 3 {
            0 => g.ewise(EwiseOp::Add, a, b),
            1 => g.ewise(EwiseOp::Mul, a, b),
            _ => g.ewise(EwiseOp::Sub, a, b),
        };
        pool.push(n);
    }
    let last = *pool.last().unwrap();
    let cp = g.push(Op::CrossProd(last)); // cols x cols
    let mm = g.matmul(last, cp); // rows x cols gemm
    let cs = g.agg(AggOp::ColSums, mm);
    let s_cs = g.agg(AggOp::Sum, cs);
    let s_mm = g.agg(AggOp::Sum, mm);
    let root = g.ewise(EwiseOp::Add, s_cs, s_mm);
    (g, root)
}

fn scalar_bits(v: &Val) -> u64 {
    match v {
        Val::Scalar(s) => s.to_bits(),
        _ => panic!("scalar root expected"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For random DAGs at 100% / 50% / 25% of the unbounded certified peak:
    /// the static peak bounds the observed pool peak, blocked execution is
    /// bit-identical to in-memory, and the pool audits clean.
    #[test]
    fn static_peak_bounds_observed_pool_peak(
        rows in 64usize..200,
        cols in 4usize..16,
        codes in proptest::collection::vec((0u8..3, 0u8..8, 0u8..8), 1..6),
        salt in 0u64..1000,
    ) {
        let (g, root) = random_dag(&codes);
        let mut sizes = InputSizes::new();
        sizes.declare("X", rows, cols, 1.0);
        sizes.declare("Y", rows, cols, 1.0);
        let infos = dm_lang::size::propagate(&g, root, &sizes).unwrap();
        let mut env = Env::new();
        env.bind("X", Matrix::Dense(dense_input(rows, cols, salt)));
        env.bind("Y", Matrix::Dense(dense_input(rows, cols, salt.wrapping_add(31))));

        let mut plain = Executor::new(&g);
        let expect = scalar_bits(&plain.eval(root, &env).unwrap());

        // The unbounded plan's certified peak calibrates the budgets.
        let base = plan_with_degree(&g, root, &infos, 1);
        let unbounded = certify_plan(&g, root, &base, &infos, MemoryBudget::unbounded());
        prop_assert!(unbounded.peak_bytes > 0);

        for denom in [1usize, 2, 4] {
            let budget = MemoryBudget::bytes((unbounded.peak_bytes / denom).max(1));
            let plan = plan_with_memory(&g, root, &infos, 1, budget);
            let cert = certify_plan(&g, root, &plan, &infos, budget);
            if denom == 1 {
                // The full-peak budget needs no blocking at all.
                prop_assert!(cert.fits(), "{}", cert.render(&g));
                prop_assert_eq!(plan.nodes_with(Kernel::Blocked), Vec::<NodeId>::new());
            }
            let mut ex = Executor::with_plan(&g, plan);
            let got = scalar_bits(&ex.eval(root, &env).unwrap());
            prop_assert_eq!(got, expect, "budgeted run must be bit-identical (denom {})", denom);

            if let Some(stats) = ex.ooc_pool_stats() {
                prop_assert!(
                    cert.peak_bytes >= stats.peak_used,
                    "static peak {} B must bound the observed pool peak {} B (denom {})",
                    cert.peak_bytes,
                    stats.peak_used,
                    denom,
                );
                let pool = ex.ooc_pool().unwrap();
                let report = pool.audit_quiescent().expect("pool audit clean");
                prop_assert!(report.pinned.is_empty(), "no pins survive the run");
                prop_assert_eq!(pool.used(), 0, "all stores discarded");
            }
        }
    }
}

/// The ISSUE's acceptance scenario end to end: every node individually fits
/// the budget (the per-node check plans nothing out-of-core) but the
/// composite peak exceeds it; the certifier-driven planner produces a plan
/// certified to fit, and that plan executes identically to the in-memory
/// run while honoring the pool bound.
#[test]
fn composite_peak_is_caught_and_fixed_end_to_end() {
    let mut sizes = InputSizes::new();
    sizes.declare("X", 256, 256, 1.0); // 512 KB each
    sizes.declare("Y", 256, 256, 1.0);
    let mut g = Graph::new();
    let x = g.input("X");
    let y = g.input("Y");
    let z = g.ewise(EwiseOp::Add, x, y);
    let root = g.agg(AggOp::Sum, z);
    let infos = dm_lang::size::propagate(&g, root, &sizes).unwrap();
    let budget = MemoryBudget::bytes(1_300_000);

    // Per-node check: every value is under 1.3 MB, so nothing is blocked and
    // the certificate pins the exact step where the live set overflows.
    let old = plan_with_memory_per_node(&g, root, &infos, 1, budget);
    assert!(old.nodes_with(Kernel::Blocked).is_empty());
    let old_cert = certify_plan(&g, root, &old, &infos, budget);
    match old_cert.verdict {
        Verdict::Exceeds { step, node, live_bytes } => {
            assert_eq!(node, z, "the add is where three 512 KB values coexist");
            assert_eq!(step, 2);
            assert_eq!(live_bytes, 3 * 256 * 256 * 8);
        }
        Verdict::Fits => panic!("per-node plan must not certify"),
    }

    // Certifier-driven planner: blocks the add, certifies the fit.
    let new = plan_with_memory(&g, root, &infos, 1, budget);
    assert_eq!(new.kernel(z), Kernel::Blocked);
    let cert = certify_plan(&g, root, &new, &infos, budget);
    assert!(cert.fits(), "{}", cert.render(&g));

    let mut env = Env::new();
    env.bind("X", Matrix::Dense(dense_input(256, 256, 1)));
    env.bind("Y", Matrix::Dense(dense_input(256, 256, 2)));
    let mut plain = Executor::new(&g);
    let expect = scalar_bits(&plain.eval(root, &env).unwrap());
    let mut ex = Executor::with_plan(&g, new);
    let got = scalar_bits(&ex.eval(root, &env).unwrap());
    assert_eq!(got, expect, "blocked add is bit-identical");
    let stats = ex.ooc_pool_stats().expect("blocked dispatch created the pool");
    assert!(cert.peak_bytes >= stats.peak_used);
}

/// A reordered schedule from `plan_with_memory_reordered` runs through
/// `eval_schedule` and matches the default-order result, while avoiding the
/// spill the DFS order required.
#[test]
fn reordered_schedule_executes_without_spilling() {
    let mut sizes = InputSizes::new();
    sizes.declare("X", 256, 256, 1.0);
    sizes.declare("A", 256, 1024, 1.0);
    sizes.declare("B", 1024, 256, 1.0);
    let mut g = Graph::new();
    let x = g.input("X");
    let a = g.input("A");
    let b = g.input("B");
    let r = g.matmul(a, b);
    let add = g.ewise(EwiseOp::Add, x, r);
    let root = g.agg(AggOp::Sum, add);
    let infos = dm_lang::size::propagate(&g, root, &sizes).unwrap();
    let budget = MemoryBudget::bytes(5_100_000);

    let dfs = plan_with_memory(&g, root, &infos, 1, budget);
    assert!(!dfs.nodes_with(Kernel::Blocked).is_empty(), "DFS order must spill");
    let (re, order) = dm_lang::physical::plan_with_memory_reordered(&g, root, &infos, 1, budget);
    assert!(re.nodes_with(Kernel::Blocked).is_empty(), "reordered plan fits in memory");

    let mut env = Env::new();
    env.bind("X", Matrix::Dense(dense_input(256, 256, 5)));
    env.bind("A", Matrix::Dense(dense_input(256, 1024, 6)));
    env.bind("B", Matrix::Dense(dense_input(1024, 256, 7)));
    let mut plain = Executor::new(&g);
    let expect = scalar_bits(&plain.eval(root, &env).unwrap());
    let mut ex = Executor::with_plan(&g, re);
    let got = scalar_bits(&ex.eval_schedule(&order, &env).unwrap());
    assert_eq!(got, expect);
    assert!(ex.ooc_pool_stats().is_none(), "no blocked kernel, no spill pool");
}
