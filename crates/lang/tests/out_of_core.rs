//! Out-of-core acceptance: programs whose working set is a multiple of the
//! memory budget must execute through the blocked kernels **bit-identically**
//! to the unbounded in-memory executor, leave the spill pool audit-clean, and
//! honor the `DMML_MEM_BUDGET` environment variable.

use dm_lang::exec::{Env, ExecError, Executor, KernelChoice, Val};
use dm_lang::explain::{explain_with_memory, profile_report_with_spill};
use dm_lang::expr::{AggOp, EwiseOp, Graph, NodeId};
use dm_lang::memory::MemoryBudget;
use dm_lang::physical::{plan_with_inputs_memory, Kernel};
use dm_lang::size::InputSizes;
use dm_matrix::{Dense, Matrix};
use proptest::prelude::*;

/// The LA program under test, exercising every blocked kernel family:
/// `Y = X %*% B` (gemm), `Z = Y + Y` (ewise), `colSums(Z)` (reduction),
/// `crossprod(Z)` (fused reduction), combined into one scalar root.
struct Program {
    graph: Graph,
    y: NodeId,
    z: NodeId,
    cs: NodeId,
    cp: NodeId,
    root: NodeId,
}

fn program() -> Program {
    let mut g = Graph::new();
    let x = g.input("X");
    let b = g.input("B");
    let y = g.matmul(x, b);
    let z = g.ewise(EwiseOp::Add, y, y);
    let cs = g.agg(AggOp::ColSums, z);
    let cp = g.push(dm_lang::expr::Op::CrossProd(z));
    let s1 = g.agg(AggOp::Sum, cs);
    let s2 = g.agg(AggOp::Sum, cp);
    let root = g.ewise(EwiseOp::Add, s1, s2);
    Program { graph: g, y, z, cs, cp, root }
}

fn dense_input(rows: usize, cols: usize, salt: u64) -> Dense {
    Dense::from_fn(rows, cols, |r, c| {
        let h = (r as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(c as u64)
            .wrapping_add(salt)
            .wrapping_mul(1442695040888963407);
        let v = ((h >> 33) % 1000) as f64 * 0.013 - 6.5;
        // Exact zeros exercise the kernels' zero-skip fast paths.
        if h.is_multiple_of(13) {
            0.0
        } else {
            v
        }
    })
}

fn bits(d: &Dense) -> Vec<u64> {
    d.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance criterion: working set >= 4x budget, blocked execution
    /// bit-identical to in-memory, spill pool audit-clean afterwards.
    #[test]
    fn blocked_execution_bit_identical_to_in_memory(
        n in 96usize..160,
        k in 16usize..32,
        m in 40usize..64,
        degree in 1usize..4,
        salt in 0u64..1000,
    ) {
        let p = program();
        let mut env = Env::new();
        env.bind("X", Matrix::Dense(dense_input(n, k, salt)));
        env.bind("B", Matrix::Dense(dense_input(k, m, salt.wrapping_add(7))));
        let mut sizes = InputSizes::new();
        sizes.declare("X", n, k, 1.0);
        sizes.declare("B", k, m, 1.0);

        // Budget = a quarter of the working set (X + B + Y + Z), so the
        // blocked kernels must stream: nothing fits resident all at once.
        let ws = 8 * (n * k + k * m + 2 * (n * m));
        let budget = ws / 4;
        prop_assert!(ws >= 4 * budget);

        let mut in_mem = Executor::new(&p.graph);
        let expect = in_mem.eval(p.root, &env).unwrap();

        let plan =
            plan_with_inputs_memory(&p.graph, p.root, &sizes, degree, MemoryBudget::bytes(budget))
                .unwrap();
        for id in [p.y, p.z, p.cs, p.cp] {
            prop_assert_eq!(plan.kernel(id), Kernel::Blocked, "node {} must go out-of-core", id);
        }
        let mut ooc = Executor::with_plan(&p.graph, plan);
        let got = ooc.eval(p.root, &env).unwrap();

        match (&expect, &got) {
            (Val::Scalar(a), Val::Scalar(b)) => {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "scalar root must be bit-identical");
            }
            _ => prop_assert!(false, "scalar root expected"),
        }
        // Intermediates are bit-identical too, not just the folded scalar.
        let (zi, zo) = (in_mem.eval(p.z, &env).unwrap(), ooc.eval(p.z, &env).unwrap());
        prop_assert_eq!(bits(&zi.as_dense().unwrap()), bits(&zo.as_dense().unwrap()));

        prop_assert_eq!(ooc.stats().ooc_nodes, 4, "all four blocked nodes dispatched OOC");
        prop_assert_eq!(in_mem.stats().ooc_nodes, 0);
        prop_assert_eq!(in_mem.stats().flops, ooc.stats().flops, "same logical work");

        let pool = ooc.ooc_pool().expect("spill pool exists after blocked dispatch");
        let stats = pool.stats();
        prop_assert!(stats.evictions > 0, "working set 4x budget must evict: {stats:?}");
        prop_assert!(stats.spilled_bytes > 0, "dirty tiles must spill: {stats:?}");
        let report = pool.audit_quiescent().expect("pool audit clean after the run");
        prop_assert!(report.pinned.is_empty(), "no pins survive a completed program");
        prop_assert_eq!(pool.used(), 0, "all per-node stores were discarded");
    }
}

#[test]
fn blocked_budget_smaller_than_one_tile_is_a_clean_error() {
    // One full-width row of a 2^20-col matrix cannot fit an 8 KB budget:
    // the executor must surface PoolError::BlockTooLarge as ExecError,
    // not loop or panic.
    let mut g = Graph::new();
    let x = g.input("X");
    let z = g.ewise(EwiseOp::Add, x, x);
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(dense_input(2, 4096, 1)));
    let mut sizes = InputSizes::new();
    sizes.declare("X", 2, 4096, 1.0);
    let plan = plan_with_inputs_memory(&g, z, &sizes, 1, MemoryBudget::bytes(8 << 10)).unwrap();
    assert_eq!(plan.kernel(z), Kernel::Blocked);
    let mut ex = Executor::with_plan(&g, plan);
    match ex.eval(z, &env) {
        Err(ExecError::OutOfCore { node, message }) => {
            assert_eq!(node, z);
            assert!(message.contains("bytes"), "names the oversized tile: {message}");
        }
        other => panic!("expected OutOfCore error, got {other:?}"),
    }
}

#[test]
fn explain_and_profile_show_out_of_core_nodes() {
    let p = program();
    let (n, k, m) = (128, 24, 48);
    let mut sizes = InputSizes::new();
    sizes.declare("X", n, k, 1.0);
    sizes.declare("B", k, m, 1.0);
    let budget = 8 * (n * k + k * m + 2 * n * m) / 4;

    let txt = explain_with_memory(&p.graph, p.root, &sizes, 2, MemoryBudget::bytes(budget));
    assert!(txt.contains("blocked"), "explain must annotate OOC nodes:\n{txt}");
    // Unbounded budget renders the ordinary degree plan.
    let unbounded = explain_with_memory(&p.graph, p.root, &sizes, 2, MemoryBudget::unbounded());
    assert!(!unbounded.contains("blocked"), "{unbounded}");

    let mut env = Env::new();
    env.bind("X", Matrix::Dense(dense_input(n, k, 3)));
    env.bind("B", Matrix::Dense(dense_input(k, m, 11)));
    let plan =
        plan_with_inputs_memory(&p.graph, p.root, &sizes, 2, MemoryBudget::bytes(budget)).unwrap();
    let mut ex = Executor::with_plan(&p.graph, plan).profiled();
    ex.eval(p.root, &env).unwrap();
    assert_eq!(ex.profile().unwrap().node(p.y).unwrap().kernel, Some(KernelChoice::Blocked));

    let spill = ex.ooc_pool_stats();
    let report = profile_report_with_spill(
        &p.graph,
        p.root,
        ex.profile().unwrap(),
        &sizes,
        5,
        spill.as_ref(),
    );
    assert!(report.contains("out-of-core kernels: 4 evals"), "{report}");
    assert!(report.contains("spill pool:"), "{report}");
    assert!(report.contains("kernel blocked"), "{report}");
}

#[test]
fn record_stats_forwards_spill_counters() {
    use dm_obs::StatsRegistry;
    let p = program();
    let (n, k, m) = (128, 24, 48);
    let mut env = Env::new();
    env.bind("X", Matrix::Dense(dense_input(n, k, 5)));
    env.bind("B", Matrix::Dense(dense_input(k, m, 9)));
    let mut sizes = InputSizes::new();
    sizes.declare("X", n, k, 1.0);
    sizes.declare("B", k, m, 1.0);
    let budget = 8 * (n * k + k * m + 2 * n * m) / 4;
    let plan =
        plan_with_inputs_memory(&p.graph, p.root, &sizes, 1, MemoryBudget::bytes(budget)).unwrap();
    let mut ex = Executor::with_plan(&p.graph, plan);
    ex.eval(p.root, &env).unwrap();
    let reg = StatsRegistry::new();
    ex.record_stats(&reg);
    let rep = reg.report();
    assert_eq!(rep.counter("lang.exec.ooc_nodes"), Some(4));
    assert_eq!(rep.gauge("lang.exec.mem_budget").map(|(cur, _)| cur), Some(budget as u64));
    assert!(rep.counter("lang.exec.ooc.spilled_bytes").unwrap_or(0) > 0);
    assert!(rep.counter("lang.exec.ooc.evictions").unwrap_or(0) > 0);
}

/// `DMML_MEM_BUDGET` drives `plan_with_inputs_auto`, with the explicit API
/// taking precedence. This test owns the env var: nothing else in this
/// process reads it concurrently.
#[test]
fn mem_budget_env_var_drives_auto_planning() {
    let p = program();
    let mut sizes = InputSizes::new();
    sizes.declare("X", 4096, 512, 1.0); // 16 MB
    sizes.declare("B", 512, 1024, 1.0);
    std::env::set_var(dm_lang::MEM_BUDGET_ENV, "1m");
    let auto = dm_lang::physical::plan_with_inputs_auto(&p.graph, p.root, &sizes).unwrap();
    std::env::remove_var(dm_lang::MEM_BUDGET_ENV);
    assert_eq!(auto.kernel(p.y), Kernel::Blocked);
    assert_eq!(auto.mem_budget(), Some(1 << 20));

    // Unset: auto planning stays unbounded.
    let auto = dm_lang::physical::plan_with_inputs_auto(&p.graph, p.root, &sizes).unwrap();
    assert_eq!(auto.mem_budget(), None);
    assert_ne!(auto.kernel(p.y), Kernel::Blocked);

    // Explicit API beats whatever the environment says.
    std::env::set_var(dm_lang::MEM_BUDGET_ENV, "1m");
    let explicit =
        plan_with_inputs_memory(&p.graph, p.root, &sizes, 1, MemoryBudget::unbounded()).unwrap();
    std::env::remove_var(dm_lang::MEM_BUDGET_ENV);
    assert_eq!(explicit.mem_budget(), None);
    assert_ne!(explicit.kernel(p.y), Kernel::Blocked);
}
