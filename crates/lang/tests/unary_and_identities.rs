//! Tests for elementwise unary functions and algebraic-identity rewrites.

use dm_lang::exec::{Env, Executor};
use dm_lang::expr::{Graph, Op, UnaryOp};
use dm_lang::parser;
use dm_lang::rewrite::optimize;
use dm_lang::size::InputSizes;
use dm_matrix::{Csr, Dense, Matrix};

fn env() -> Env {
    let mut e = Env::new();
    e.bind("X", Matrix::Dense(Dense::from_rows(&[&[1.0, 4.0], &[9.0, 16.0]])));
    e
}

fn eval(src: &str, env: &Env) -> f64 {
    let (g, root) = parser::parse(src).unwrap();
    let mut ex = Executor::new(&g);
    ex.eval(root, env).unwrap().as_scalar().unwrap()
}

#[test]
fn unary_functions_parse_and_execute() {
    let e = env();
    assert!((eval("sum(sqrt(X))", &e) - (1.0 + 2.0 + 3.0 + 4.0)).abs() < 1e-12);
    assert!((eval("sum(abs(0 - X))", &e) - 30.0).abs() < 1e-12);
    assert!((eval("exp(0)", &e) - 1.0).abs() < 1e-12);
    assert!((eval("log(exp(1))", &e) - 1.0).abs() < 1e-12);
    assert!((eval("sum(log(exp(X)))", &e) - 30.0).abs() < 1e-9);
}

#[test]
fn sqrt_on_sparse_preserves_sparsity() {
    let d = Dense::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
    let mut g = Graph::new();
    let s = g.input("S");
    let r = g.unary(UnaryOp::Sqrt, s);
    let mut env = Env::new();
    env.bind("S", Matrix::Sparse(Csr::from_dense(&d)));
    let mut ex = Executor::new(&g);
    let out = ex.eval(r, &env).unwrap();
    match out {
        dm_lang::exec::Val::Matrix(Matrix::Sparse(sp)) => {
            assert_eq!(sp.nnz(), 2, "sqrt must keep the sparse representation");
            assert_eq!(sp.get(0, 0), 2.0);
            assert_eq!(sp.get(1, 1), 3.0);
        }
        other => panic!("expected sparse result, got {other:?}"),
    }
}

#[test]
fn exp_on_sparse_densifies() {
    let d = Dense::from_rows(&[&[0.0, 1.0]]);
    let mut g = Graph::new();
    let s = g.input("S");
    let r = g.unary(UnaryOp::Exp, s);
    let mut env = Env::new();
    env.bind("S", Matrix::Sparse(Csr::from_dense(&d)));
    let mut ex = Executor::new(&g);
    let out = ex.eval(r, &env).unwrap().as_dense().unwrap();
    assert!((out.get(0, 0) - 1.0).abs() < 1e-12, "exp(0) = 1 must appear");
    assert!((out.get(0, 1) - std::f64::consts::E).abs() < 1e-12);
}

#[test]
fn unary_constant_folding() {
    let (g, root) = parser::parse("sqrt(16) + exp(0)").unwrap();
    let (og, oroot, stats) = optimize(&g, root, &InputSizes::new()).unwrap();
    assert!(stats.constants_folded >= 2);
    assert_eq!(og.op(oroot), &Op::Const(5.0));
}

#[test]
fn identity_rewrites_remove_noops() {
    let mut sizes = InputSizes::new();
    sizes.declare("X", 2, 2, 1.0);
    for src in ["X * 1", "1 * X", "X + 0", "0 + X", "X - 0", "X / 1"] {
        let (g, root) = parser::parse(src).unwrap();
        let (og, oroot, stats) = optimize(&g, root, &sizes).unwrap();
        assert!(stats.identities >= 1, "{src}: {stats:?}");
        assert_eq!(og.op(oroot), &Op::Input("X".into()), "{src} must simplify to X");
    }
}

#[test]
fn identity_rewrite_preserves_value() {
    let e = env();
    assert_eq!(eval("sum(X * 1 + 0)", &e), eval("sum(X)", &e));
    let mut sizes = InputSizes::new();
    sizes.declare("X", 2, 2, 1.0);
    let (g, root) = parser::parse("sum((X + 0) %*% (X * 1))").unwrap();
    let (og, oroot, _) = optimize(&g, root, &sizes).unwrap();
    let mut naive = Executor::new(&g);
    let mut opt = Executor::new(&og);
    let a = naive.eval(root, &e).unwrap().as_scalar().unwrap();
    let b = opt.eval(oroot, &e).unwrap().as_scalar().unwrap();
    assert!((a - b).abs() < 1e-9);
    assert!(opt.stats().flops < naive.stats().flops);
}

#[test]
fn x_minus_zero_but_not_zero_minus_x() {
    // 0 - X is a negation, not an identity; it must NOT be rewritten to X.
    let mut sizes = InputSizes::new();
    sizes.declare("X", 2, 2, 1.0);
    let (g, root) = parser::parse("0 - X").unwrap();
    let (og, oroot, _) = optimize(&g, root, &sizes).unwrap();
    assert_ne!(og.op(oroot), &Op::Input("X".into()));
    let e = env();
    let mut ex = Executor::new(&og);
    let out = ex.eval(oroot, &e).unwrap().as_dense().unwrap();
    assert_eq!(out.get(0, 0), -1.0);
}

#[test]
fn log_renders_and_round_trips() {
    let (g, root) = parser::parse("log(X)").unwrap();
    assert_eq!(g.render(root), "log(X)");
    let (g, root) = parser::parse("sqrt(abs(X))").unwrap();
    assert_eq!(g.render(root), "sqrt(abs(X))");
}
