//! Optimizer soundness: for arbitrary generated expression trees, the
//! optimized DAG must produce the same value as the naive DAG, and never do
//! more work (flops) than it.

use dm_lang::exec::{Env, Executor, Val};
use dm_lang::expr::{AggOp, EwiseOp, Graph, NodeId, UnaryOp};
use dm_lang::rewrite::optimize;
use dm_lang::size::InputSizes;
use dm_matrix::{Dense, Matrix};
use proptest::prelude::*;

/// Fixed shapes: X is n x d, v is d x 1, u is n x 1.
const N: usize = 7;
const D: usize = 4;

fn env() -> (Env, InputSizes) {
    let mut e = Env::new();
    e.bind("X", Matrix::Dense(Dense::from_fn(N, D, |r, c| ((r * 5 + c * 3) % 7) as f64 - 3.0)));
    let v: Vec<f64> = (0..D).map(|i| (i as f64) * 0.5 - 1.0).collect();
    e.bind("v", Matrix::Dense(Dense::column(&v)));
    let u: Vec<f64> = (0..N).map(|i| ((i % 3) as f64) - 1.0).collect();
    e.bind("u", Matrix::Dense(Dense::column(&u)));
    let mut sizes = InputSizes::new();
    sizes.declare("X", N, D, 1.0);
    sizes.declare("v", D, 1, 1.0);
    sizes.declare("u", N, 1, 1.0);
    (e, sizes)
}

/// A recursively generated expression that always evaluates to a SCALAR, so
/// comparison is easy. Sub-expressions track their shape to stay well-typed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Nd, // n x d matrix
    D1, // d x 1 vector
    N1, // n x 1 vector
    Scalar,
}

/// Recursive strategy producing (builder function index tree). We encode the
/// tree as nested enum to build into a Graph afterwards.
#[derive(Debug, Clone)]
enum E {
    X,
    V,
    U,
    Const(i8),
    Add(Box<E>, Box<E>),     // same-shape ewise
    Mul(Box<E>, Box<E>),     // same-shape ewise
    ScalarShift(Box<E>, i8), // matrix + scalar
    Abs(Box<E>),
    Sqrt(Box<E>),       // applied to abs to stay real
    Transpose2(Box<E>), // t(t(e))
    XtX,                // t(X) %*% X -> d x d, then summed
    Xv,                 // X %*% v -> n x 1
    Xtu,                // t(X) %*% u -> d x 1
    Sum(Box<E>),
    SumSq(Box<E>), // sum(e * e) with shared subtree
    Min(Box<E>),
    Max(Box<E>),
}

fn shape_of(e: &E) -> Shape {
    match e {
        E::X => Shape::Nd,
        E::V => Shape::D1,
        E::U => Shape::N1,
        E::Const(_) => Shape::Scalar,
        E::Add(a, _) | E::Mul(a, _) => shape_of(a),
        E::ScalarShift(a, _) => shape_of(a),
        E::Abs(a) | E::Sqrt(a) | E::Transpose2(a) => shape_of(a),
        E::XtX => Shape::Scalar, // emitted as sum(t(X)%*%X)
        E::Xv => Shape::N1,
        E::Xtu => Shape::D1,
        E::Sum(_) | E::SumSq(_) | E::Min(_) | E::Max(_) => Shape::Scalar,
    }
}

fn leaf(shape: Shape) -> BoxedStrategy<E> {
    match shape {
        Shape::Nd => Just(E::X).boxed(),
        Shape::D1 => prop_oneof![Just(E::V), Just(E::Xtu)].boxed(),
        Shape::N1 => prop_oneof![Just(E::U), Just(E::Xv)].boxed(),
        Shape::Scalar => (-3i8..4).prop_map(E::Const).boxed(),
    }
}

fn expr(shape: Shape, depth: u32) -> BoxedStrategy<E> {
    if depth == 0 {
        return leaf(shape);
    }
    let inner = expr(shape, depth - 1);
    let same_shape_binop = (expr(shape, depth - 1), expr(shape, depth - 1)).prop_map(|(a, b)| {
        if matches!(shape_of(&a), Shape::Scalar) {
            E::Add(Box::new(a), Box::new(b))
        } else {
            E::Mul(Box::new(a), Box::new(b))
        }
    });
    match shape {
        Shape::Scalar => prop_oneof![
            leaf(shape),
            same_shape_binop,
            expr(Shape::Nd, depth - 1).prop_map(|a| E::Sum(Box::new(a))),
            expr(Shape::N1, depth - 1).prop_map(|a| E::SumSq(Box::new(a))),
            expr(Shape::D1, depth - 1).prop_map(|a| E::Min(Box::new(a))),
            expr(Shape::Nd, depth - 1).prop_map(|a| E::Max(Box::new(a))),
            Just(E::XtX),
        ]
        .boxed(),
        _ => prop_oneof![
            leaf(shape),
            same_shape_binop,
            (inner, -3i8..4).prop_map(|(a, s)| E::ScalarShift(Box::new(a), s)),
            expr(shape, depth - 1).prop_map(|a| E::Abs(Box::new(a))),
            expr(shape, depth - 1).prop_map(|a| E::Sqrt(Box::new(E::Abs(Box::new(a))))),
            expr(shape, depth - 1).prop_map(|a| E::Transpose2(Box::new(a))),
        ]
        .boxed(),
    }
}

fn build(e: &E, g: &mut Graph) -> NodeId {
    match e {
        E::X => g.input("X"),
        E::V => g.input("v"),
        E::U => g.input("u"),
        E::Const(c) => g.constant(f64::from(*c)),
        E::Add(a, b) => {
            let (x, y) = (build(a, g), build(b, g));
            g.ewise(EwiseOp::Add, x, y)
        }
        E::Mul(a, b) => {
            let (x, y) = (build(a, g), build(b, g));
            g.ewise(EwiseOp::Mul, x, y)
        }
        E::ScalarShift(a, s) => {
            let x = build(a, g);
            let c = g.constant(f64::from(*s));
            g.ewise(EwiseOp::Add, x, c)
        }
        E::Abs(a) => {
            let x = build(a, g);
            g.unary(UnaryOp::Abs, x)
        }
        E::Sqrt(a) => {
            let x = build(a, g);
            g.unary(UnaryOp::Sqrt, x)
        }
        E::Transpose2(a) => {
            let x = build(a, g);
            let t = g.transpose(x);
            g.transpose(t)
        }
        E::XtX => {
            let x = g.input("X");
            let t = g.transpose(x);
            let mm = g.matmul(t, x);
            g.agg(AggOp::Sum, mm)
        }
        E::Xv => {
            let x = g.input("X");
            let v = g.input("v");
            g.matmul(x, v)
        }
        E::Xtu => {
            let x = g.input("X");
            let t = g.transpose(x);
            let u = g.input("u");
            g.matmul(t, u)
        }
        E::Sum(a) => {
            let x = build(a, g);
            g.agg(AggOp::Sum, x)
        }
        E::SumSq(a) => {
            let x = build(a, g);
            let sq = g.ewise(EwiseOp::Mul, x, x);
            g.agg(AggOp::Sum, sq)
        }
        E::Min(a) => {
            let x = build(a, g);
            g.agg(AggOp::Min, x)
        }
        E::Max(a) => {
            let x = build(a, g);
            g.agg(AggOp::Max, x)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn optimizer_preserves_semantics(e in expr(Shape::Scalar, 4)) {
        let mut g = Graph::new();
        let root = build(&e, &mut g);
        let (env, sizes) = env();

        let mut naive = Executor::new(&g);
        let nv = naive.eval(root, &env).unwrap();

        let (og, oroot, _) = optimize(&g, root, &sizes).unwrap();
        let mut opt = Executor::new(&og);
        let ov = opt.eval(oroot, &env).unwrap();

        match (nv, ov) {
            (Val::Scalar(a), Val::Scalar(b)) => {
                prop_assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                    "value changed: {a} vs {b} for {}",
                    g.render(root)
                );
            }
            (a, b) => {
                let da = a.as_scalar();
                let db = b.as_scalar();
                prop_assert!(da.is_some() && db.is_some(), "scalar-shaped result expected");
                prop_assert!((da.unwrap() - db.unwrap()).abs() <= 1e-9 * (1.0 + da.unwrap().abs()));
            }
        }
        // The optimizer must never *increase* executed work.
        prop_assert!(
            opt.stats().flops <= naive.stats().flops,
            "optimizer increased flops: {} -> {} for {}",
            naive.stats().flops,
            opt.stats().flops,
            g.render(root)
        );
    }
}
