//! Plan-cache correctness (ISSUE 9): serving a cached physical plan must
//! be invisible in the results. For randomized programs and input shapes,
//! an execution through a cache **hit** is bit-identical to a cold
//! compile's execution; and a size-class change must **miss** the cache
//! rather than serve a stale plan.

use dm_lang::cache::{compile, program_hash, InputClass, PlanCache, PlanKey};
use dm_lang::cost::CostModel;
use dm_lang::exec::{Env, Executor, Val};
use dm_lang::memory::MemoryBudget;
use dm_lang::parser;
use dm_lang::size::InputSizes;
use dm_matrix::{Dense, Matrix};
use dm_obs::profile::ProfileStore;
use proptest::prelude::*;
use std::sync::Arc;

/// Program templates over X (n x d), v (d x 1), u (n x 1), alpha scalar.
const PROGRAMS: &[&str] = &[
    "X %*% v",
    "sum(t(X) %*% X)",
    "t(X) %*% u",
    "sum(X * X)",
    "colSums(X + X)",
    "(X %*% v) + u",
    "sum(sqrt(abs(X)))",
    "(X + alpha) %*% v",
];

fn workload(n: usize, d: usize, seed: u64) -> (InputSizes, Env) {
    let mut sizes = InputSizes::new();
    sizes.declare("X", n, d, 1.0);
    sizes.declare("v", d, 1, 1.0);
    sizes.declare("u", n, 1, 1.0);
    sizes.declare_scalar("alpha");
    let mut env = Env::new();
    let f = |r: usize, c: usize| ((r * 31 + c * 17 + seed as usize) % 23) as f64 * 0.37 - 3.1;
    env.bind("X", Matrix::Dense(Dense::from_fn(n, d, f)));
    env.bind("v", Matrix::Dense(Dense::from_fn(d, 1, f)));
    env.bind("u", Matrix::Dense(Dense::from_fn(n, 1, f)));
    env.bind_scalar("alpha", 0.25 + seed as f64);
    (sizes, env)
}

fn key_for(program: &str, n: usize, d: usize) -> PlanKey {
    let (g, root) = parser::parse(program).unwrap();
    PlanKey::new(
        program_hash(&g, root),
        vec![
            InputClass::new("X", n, d, 1.0),
            InputClass::new("v", d, 1, 1.0),
            InputClass::new("u", n, 1, 1.0),
        ],
    )
}

/// Bitwise comparison of results — `==` on f64 would let `-0.0 == 0.0`
/// and NaN slip through.
fn bits(v: &Val) -> Vec<u64> {
    match v {
        Val::Scalar(s) => vec![s.to_bits()],
        Val::Matrix(m) => {
            let d = m.to_dense();
            let mut out = vec![d.rows() as u64, d.cols() as u64];
            out.extend(d.data().iter().map(|x| x.to_bits()));
            out
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Cold compile vs. cache hit: the hit's execution must be
    /// bit-identical, across randomized programs, shapes, and data.
    #[test]
    fn cache_hit_execution_is_bit_identical(
        (pi, n, d, seed) in (0usize..8, 2usize..40, 1usize..12, 0u64..1000)
    ) {
        let program = PROGRAMS[pi];
        let (sizes, env) = workload(n, d, seed);
        let model = CostModel::new(ProfileStore::new());

        // Cold path: compile and execute.
        let cold = compile(program, &sizes, 2, MemoryBudget::unbounded(), &model).unwrap();
        let cold_val = Executor::with_plan(&cold.graph, cold.plan.clone())
            .eval(cold.root, &env)
            .unwrap();

        // Serve path: insert, probe (must hit), execute the cached plan.
        let mut cache = PlanCache::new(8);
        let key = key_for(program, n, d);
        cache.insert(key.clone(), Arc::new(cold.clone()));
        let hit = cache.get(&key).expect("identical request must hit");
        prop_assert_eq!(cache.hits(), 1);
        let hit_val = Executor::with_plan(&hit.graph, hit.plan.clone())
            .eval(hit.root, &env)
            .unwrap();

        prop_assert_eq!(
            bits(&cold_val),
            bits(&hit_val),
            "cache hit changed the result for {} at {}x{}",
            program, n, d
        );
    }

    /// Same program, different size class: the probe must miss (re-plan),
    /// never serve the stale entry.
    #[test]
    fn size_class_change_misses((pi, n, d) in (0usize..8, 2usize..40, 1usize..12)) {
        let program = PROGRAMS[pi];
        let (sizes, _) = workload(n, d, 0);
        let model = CostModel::new(ProfileStore::new());
        let prog = compile(program, &sizes, 1, MemoryBudget::unbounded(), &model).unwrap();

        let mut cache = PlanCache::new(8);
        cache.insert(key_for(program, n, d), Arc::new(prog));

        // Grow X's rows past its power-of-two class boundary: different
        // size class, so the key differs and the probe must miss.
        let n2 = (n.max(2)).next_power_of_two() + 1;
        prop_assert!(cache.get(&key_for(program, n2, d)).is_none(),
            "stale plan served across a size-class change ({n} -> {n2})");
        // The original class still hits.
        prop_assert!(cache.get(&key_for(program, n, d)).is_some());
    }
}

/// Eviction end-to-end: a size-class change not only misses, its compile
/// result is a *different* plan entry — and LRU eviction never brings the
/// stale entry back.
#[test]
fn eviction_never_resurrects_stale_plans() {
    let model = CostModel::new(ProfileStore::new());
    let program = "X %*% v";
    let mut cache = PlanCache::new(2);

    for (tag, n) in [(1usize, 8usize), (2, 64), (3, 1024)] {
        let (sizes, _) = workload(n, 4, 0);
        let prog = compile(program, &sizes, 1, MemoryBudget::unbounded(), &model).unwrap();
        cache.insert(key_for(program, n, 4), Arc::new(prog));
        let _ = tag;
    }
    // Capacity 2: the n=8 entry was evicted.
    assert_eq!(cache.evictions(), 1);
    assert!(cache.get(&key_for(program, 8, 4)).is_none(), "evicted entry must miss");
    assert!(cache.get(&key_for(program, 64, 4)).is_some());
    assert!(cache.get(&key_for(program, 1024, 4)).is_some());
}
