//! Plan-time liveness analysis and peak-memory certification.
//!
//! The surveyed compilers decide memory at *plan time*: SystemML-style
//! worst-case operator estimates pick local vs. distributed execution before
//! a byte is allocated. This module is that discipline for the dm-lang
//! executor. Given a graph, a physical plan, and propagated sizes, it
//! derives the execution [`Schedule`] (topological order plus per-value
//! last-use steps, accounting for memoized reuse), runs an abstract memory
//! interpretation over it, and produces a [`PlanCertificate`]: either a
//! proof that the plan's peak live set fits the [`MemoryBudget`], or the
//! exact step and node where it first exceeds it.
//!
//! ## The abstract machine
//!
//! The certificate models an executor that materializes each value at the
//! step that produces it and frees it after its last consumer — the
//! streaming ideal the blocked kernels implement, and the admission-control
//! contract for ROADMAP #2. Per step, resident bytes are:
//!
//! * every live non-streaming value, at its representation's footprint
//!   (dense cells, CSR triples for sparse-planned producers, 8 bytes for
//!   scalars);
//! * **streaming values** — values whose every consumer is
//!   [`Kernel::Blocked`] — contribute nothing outside their consumers'
//!   steps: they live in the spill pool, on disk, or in the source the
//!   blocked kernel reads panel-by-panel;
//! * at a blocked node's own step, a **pool term**: the bytes its operand
//!   and output [`BlockStore`](dm_buffer::BlockStore)s would charge the
//!   pool (dense cells plus [`FRAME_OVERHEAD`](dm_buffer::FRAME_OVERHEAD)
//!   per panel), capped at
//!   [`crate::memory::spill_pool_capacity`] — the pool
//!   never holds more than its capacity, evicting to disk instead.
//!
//! The pool term is an upper bound on the executor's
//! `buffer.pool.lru.used_bytes` gauge by construction (same panel math, same
//! capacity clamp), which is what the upper-bound property test in
//! `tests/certify.rs` exercises across random DAGs and budgets. The
//! materialized terms are as good as the size estimates driving them.
//!
//! [`min_peak_order`] is the schedule half of the story: a Sethi–Ullman
//! style reordering that evaluates high-transient-peak subtrees before
//! high-hold siblings, often fitting a budget in memory that the default
//! depth-first order could only meet by spilling (the linter's `H203`).

use crate::expr::{AggOp, Graph, NodeId, Op};
use crate::memory::{spill_pool_capacity, MemoryBudget, OOC_PANEL_DENOM};
use crate::physical::{Kernel, PhysicalPlan};
use crate::size::{Shape, SizeInfo};
use dm_buffer::{panel_bytes, panel_rows_for, store_bytes};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A topological execution order with per-value lifetime information.
#[derive(Debug, Clone)]
pub struct Schedule {
    order: Vec<NodeId>,
    step_of: HashMap<NodeId, usize>,
    last_use: HashMap<NodeId, usize>,
}

impl Schedule {
    /// The executor's default schedule: depth-first post-order from `root`
    /// (exactly [`Graph::reachable`]), shared nodes evaluated once at their
    /// first visit and served from the memo thereafter.
    pub fn new(graph: &Graph, root: NodeId) -> Self {
        Self::from_order(graph, graph.reachable(root))
    }

    /// A schedule over an explicit topological `order` (children before
    /// parents), e.g. one produced by [`min_peak_order`].
    pub fn from_order(graph: &Graph, order: Vec<NodeId>) -> Self {
        let step_of: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        // A value's last use is its latest consumer's step; values nothing
        // consumes (the root) live from their own step to the end of their
        // own step.
        let mut last_use: HashMap<NodeId, usize> =
            order.iter().map(|&n| (n, step_of[&n])).collect();
        for &n in &order {
            let step = step_of[&n];
            for c in graph.op(n).children() {
                if let Some(lu) = last_use.get_mut(&c) {
                    *lu = (*lu).max(step);
                }
            }
        }
        Schedule { order, step_of, last_use }
    }

    /// Number of steps (= scheduled nodes).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The execution order, one node per step.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The step at which a node executes.
    pub fn step_of(&self, id: NodeId) -> Option<usize> {
        self.step_of.get(&id).copied()
    }

    /// The last step at which a node's value is read (its own step when
    /// nothing consumes it).
    pub fn last_use(&self, id: NodeId) -> Option<usize> {
        self.last_use.get(&id).copied()
    }

    /// The values live during `step`: produced at or before it, last used
    /// at or after it.
    pub fn live_at(&self, step: usize) -> Vec<NodeId> {
        self.order[..=step.min(self.order.len().saturating_sub(1))]
            .iter()
            .copied()
            .filter(|&v| self.last_use[&v] >= step)
            .collect()
    }
}

/// Resident-byte estimates for one value under each kernel family — the
/// per-node abstract memory domain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeFootprint {
    /// Dense row-major materialization: `rows * cols * 8`.
    pub dense: usize,
    /// CSR materialization at the propagated sparsity: 16 bytes per stored
    /// non-zero plus the row-offset array.
    pub sparse: usize,
    /// Best-encoding compressed size from the `dm-compress` cost model
    /// (never exceeds `dense`: uncompressed is always a candidate).
    pub compressed: usize,
    /// One streamed row panel under the budget, as the blocked kernels tile
    /// it (`dense` when the budget is unbounded).
    pub blocked_panel: usize,
}

/// Compute the [`NodeFootprint`] of a value from its propagated size, under
/// an optional byte budget (which determines the blocked panel height).
pub fn footprint(info: &SizeInfo, budget: Option<usize>) -> NodeFootprint {
    match info.shape {
        Shape::Scalar => NodeFootprint { dense: 8, sparse: 8, compressed: 8, blocked_panel: 8 },
        Shape::Matrix { rows, cols } => {
            let dense = dense_value_bytes(rows, cols);
            let blocked_panel = match budget {
                Some(limit) => {
                    panel_bytes(panel_rows_for(cols, limit, OOC_PANEL_DENOM).min(rows.max(1)), cols)
                }
                None => dense,
            };
            NodeFootprint {
                dense,
                sparse: sparse_value_bytes(rows, cols, info.sparsity),
                compressed: dm_compress::static_matrix_bytes(rows, cols, info.sparsity),
                blocked_panel,
            }
        }
    }
}

fn dense_value_bytes(rows: usize, cols: usize) -> usize {
    rows.saturating_mul(cols).saturating_mul(8)
}

/// CSR bytes: 8-byte value + 8-byte column index per stored non-zero, plus
/// the `rows + 1` row-offset array.
fn sparse_value_bytes(rows: usize, cols: usize, sparsity: f64) -> usize {
    let nnz = ((rows as f64) * (cols as f64) * sparsity.clamp(0.0, 1.0)).ceil() as usize;
    nnz.saturating_mul(16).saturating_add((rows + 1).saturating_mul(8))
}

/// Bytes a value keeps resident while live, per its producer's kernel:
/// sparse producers hold CSR, everything else holds dense (blocked kernels
/// densify their outputs for non-blocked consumers).
pub fn materialized_bytes(kernel: Kernel, info: &SizeInfo) -> usize {
    match info.shape {
        Shape::Scalar => 8,
        Shape::Matrix { rows, cols } => match kernel {
            Kernel::Sparse => sparse_value_bytes(rows, cols, info.sparsity),
            _ => dense_value_bytes(rows, cols),
        },
    }
}

/// Pool bytes a blocked node's operand and output stores charge, mirroring
/// the executor's tiling exactly (same panel heights, same per-frame
/// overhead; gemv-shaped matmuls pool only the left operand, reductions
/// only their input). Zero for nodes without a blocked kernel shape.
fn blocked_io_bytes(
    graph: &Graph,
    id: NodeId,
    sizes: &HashMap<NodeId, SizeInfo>,
    limit: usize,
) -> usize {
    let dims = |n: NodeId| match sizes.get(&n).map(|s| s.shape) {
        Some(Shape::Matrix { rows, cols }) => Some((rows, cols)),
        _ => None,
    };
    let pr = |cols: usize| panel_rows_for(cols, limit, OOC_PANEL_DENOM);
    match graph.op(id) {
        Op::MatMul(a, b) => {
            let Some((ar, ac)) = dims(*a) else { return 0 };
            let sa = store_bytes(ar, ac, pr(ac));
            match dims(*b) {
                // gemm pools both operands plus the output store (panelled
                // at the left operand's height, as ooc::gemm builds it).
                Some((br, bc)) if bc > 1 => sa
                    .saturating_add(store_bytes(br, bc, pr(bc)))
                    .saturating_add(store_bytes(ar, bc, pr(ac))),
                // gemv streams only the left operand.
                _ => sa,
            }
        }
        Op::CrossProd(a) | Op::Agg(AggOp::ColSums, a) => {
            let Some((r, c)) = dims(*a) else { return 0 };
            store_bytes(r, c, pr(c))
        }
        Op::Ewise(_, a, b) => match (dims(*a), dims(*b)) {
            // matrix ⊕ matrix: two operand stores plus the output store.
            (Some((r, c)), Some(_)) => 3usize.saturating_mul(store_bytes(r, c, pr(c))),
            // matrix ⊕ scalar broadcast: input store plus output store.
            (Some((r, c)), None) | (None, Some((r, c))) => {
                2usize.saturating_mul(store_bytes(r, c, pr(c)))
            }
            (None, None) => 0,
        },
        _ => 0,
    }
}

/// Resident bytes at one schedule step.
#[derive(Debug, Clone)]
pub struct StepUsage {
    /// Step index in the schedule.
    pub step: usize,
    /// The node executing at this step.
    pub node: NodeId,
    /// Total modeled resident bytes during this step (live values plus the
    /// pool term).
    pub live_bytes: usize,
    /// The portion charged to the spill pool (non-zero only at blocked
    /// nodes' steps).
    pub pool_bytes: usize,
    /// The live materialized values and their individual contributions.
    pub live: Vec<(NodeId, usize)>,
}

/// The certifier's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The certified peak fits the budget (always the case when the budget
    /// is unbounded).
    Fits,
    /// The live set first exceeds the budget at `step`.
    Exceeds {
        /// First schedule step over budget.
        step: usize,
        /// The node executing at that step.
        node: NodeId,
        /// Modeled resident bytes at that step.
        live_bytes: usize,
    },
}

/// A static proof object for one (plan, schedule) pair: the full live-set
/// timeline, the peak, and whether it fits the budget.
#[derive(Debug, Clone)]
pub struct PlanCertificate {
    /// The budget certified against (`None` = unbounded).
    pub budget: Option<usize>,
    /// Maximum modeled resident bytes over all steps.
    pub peak_bytes: usize,
    /// The step where the peak occurs (first such step).
    pub peak_step: usize,
    /// Per-step usage, one entry per schedule step.
    pub timeline: Vec<StepUsage>,
    /// Fits or the first offending step.
    pub verdict: Verdict,
}

impl PlanCertificate {
    /// True when the plan is certified to fit.
    pub fn fits(&self) -> bool {
        matches!(self.verdict, Verdict::Fits)
    }

    /// Render the verdict and the live-set timeline as text (the section
    /// [`explain_with_memory`](crate::explain::explain_with_memory) appends
    /// under the plan tree). Peak step marked `*`, over-budget steps `!`.
    pub fn render(&self, graph: &Graph) -> String {
        let mut out = String::new();
        match self.verdict {
            Verdict::Fits => {
                let _ = write!(out, "memory certificate: plan fits");
                if let Some(b) = self.budget {
                    let _ = write!(out, ": certified peak {} B <= budget {b} B", self.peak_bytes);
                } else {
                    let _ = write!(out, " (unbounded): certified peak {} B", self.peak_bytes);
                }
            }
            Verdict::Exceeds { step, node, live_bytes } => {
                let _ = write!(
                    out,
                    "memory certificate: plan EXCEEDS the budget: {live_bytes} B live at step \
                     {step} (%{node} {}) > budget {} B",
                    crate::explain::op_label(graph, node),
                    self.budget.unwrap_or(0),
                );
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "live-set timeline:");
        for su in &self.timeline {
            let over = self.budget.is_some_and(|b| su.live_bytes > b);
            let marker = if over {
                '!'
            } else if su.step == self.peak_step {
                '*'
            } else {
                ' '
            };
            let _ = write!(
                out,
                "{marker} step {:>3}  %{} {:<12} live {:>12} B",
                su.step,
                su.node,
                crate::explain::op_label(graph, su.node),
                su.live_bytes,
            );
            if su.pool_bytes > 0 {
                let _ = write!(out, "  (pool {} B)", su.pool_bytes);
            }
            if !su.live.is_empty() {
                let vals: Vec<String> = su.live.iter().map(|(v, b)| format!("%{v}:{b}")).collect();
                let _ = write!(out, "  [{}]", vals.join(" "));
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Certify `plan` over the default depth-first schedule from `root`.
///
/// Walks the schedule, sums the modeled live bytes at every step (see the
/// module docs for the abstract machine), and returns a
/// [`PlanCertificate`] whose verdict is either [`Verdict::Fits`] or the
/// exact first step/node over budget. Nodes missing from `sizes` are
/// treated as free — callers wanting sound certificates should check
/// coverage first (as [`plan_with_memory`](crate::physical::plan_with_memory)
/// does, falling back to per-node checks).
pub fn certify_plan(
    graph: &Graph,
    root: NodeId,
    plan: &PhysicalPlan,
    sizes: &HashMap<NodeId, SizeInfo>,
    budget: MemoryBudget,
) -> PlanCertificate {
    certify_schedule(graph, &Schedule::new(graph, root), plan, sizes, budget)
}

/// [`certify_plan`] over an explicit schedule (e.g. from
/// [`min_peak_order`]).
pub fn certify_schedule(
    graph: &Graph,
    sched: &Schedule,
    plan: &PhysicalPlan,
    sizes: &HashMap<NodeId, SizeInfo>,
    budget: MemoryBudget,
) -> PlanCertificate {
    let limit = budget.get();

    // Streaming values — every consumer reads them panel-by-panel through
    // the pool — are never materialized; their bytes are the consumers'
    // pool terms.
    let mut consumers: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &n in sched.order() {
        for c in graph.op(n).children() {
            consumers.entry(c).or_default().push(n);
        }
    }
    let resident: HashMap<NodeId, usize> = sched
        .order()
        .iter()
        .map(|&v| {
            let streams = consumers
                .get(&v)
                .is_some_and(|cs| cs.iter().all(|&c| plan.kernel(c) == Kernel::Blocked));
            let bytes = if streams {
                0
            } else {
                sizes.get(&v).map_or(0, |info| materialized_bytes(plan.kernel(v), info))
            };
            (v, bytes)
        })
        .collect();

    let mut timeline = Vec::with_capacity(sched.len());
    let mut peak = (0usize, 0usize);
    let mut first_exceed: Option<(usize, NodeId, usize)> = None;
    for (step, &n) in sched.order().iter().enumerate() {
        let mut live = Vec::new();
        let mut total = 0usize;
        for &v in &sched.order()[..=step] {
            if sched.last_use[&v] >= step {
                let b = resident[&v];
                if b > 0 {
                    live.push((v, b));
                    total = total.saturating_add(b);
                }
            }
        }
        let pool = match limit {
            Some(l) if plan.kernel(n) == Kernel::Blocked => {
                blocked_io_bytes(graph, n, sizes, l).min(spill_pool_capacity(l))
            }
            _ => 0,
        };
        total = total.saturating_add(pool);
        if total > peak.0 {
            peak = (total, step);
        }
        if first_exceed.is_none() && limit.is_some_and(|l| total > l) {
            first_exceed = Some((step, n, total));
        }
        timeline.push(StepUsage { step, node: n, live_bytes: total, pool_bytes: pool, live });
    }
    let verdict = match first_exceed {
        Some((step, node, live_bytes)) => Verdict::Exceeds { step, node, live_bytes },
        None => Verdict::Fits,
    };
    PlanCertificate { budget: limit, peak_bytes: peak.0, peak_step: peak.1, timeline, verdict }
}

/// A peak-minimizing topological order: at every node, evaluate the child
/// subtree with the largest *slack* (its transient peak minus the bytes its
/// result holds afterwards) first, so big transients happen while few
/// sibling results are held — the Sethi–Ullman register-count argument
/// applied to bytes. Shared nodes are costed once and emitted at their
/// first visit, matching the executor's memoization.
pub fn min_peak_order(
    graph: &Graph,
    root: NodeId,
    sizes: &HashMap<NodeId, SizeInfo>,
    plan: &PhysicalPlan,
) -> Vec<NodeId> {
    // (subtree peak, hold) per node, tree-approximated over the DAG.
    fn costs(
        graph: &Graph,
        id: NodeId,
        sizes: &HashMap<NodeId, SizeInfo>,
        plan: &PhysicalPlan,
        memo: &mut HashMap<NodeId, (usize, usize)>,
    ) -> (usize, usize) {
        if let Some(&c) = memo.get(&id) {
            return c;
        }
        let hold = sizes.get(&id).map_or(0, |info| materialized_bytes(plan.kernel(id), info));
        let mut children: Vec<(usize, usize)> = graph
            .op(id)
            .children()
            .into_iter()
            .map(|c| costs(graph, c, sizes, plan, memo))
            .collect();
        children.sort_by_key(|&(p, h)| std::cmp::Reverse(p.saturating_sub(h)));
        let mut held = 0usize;
        let mut peak = 0usize;
        for &(p, h) in &children {
            peak = peak.max(held.saturating_add(p));
            held = held.saturating_add(h);
        }
        // Executing this node: all children's results plus the output.
        let peak = peak.max(held.saturating_add(hold));
        memo.insert(id, (peak, hold));
        (peak, hold)
    }

    fn emit(
        graph: &Graph,
        id: NodeId,
        memo: &HashMap<NodeId, (usize, usize)>,
        seen: &mut Vec<bool>,
        order: &mut Vec<NodeId>,
    ) {
        if seen[id] {
            return;
        }
        seen[id] = true;
        let mut children = graph.op(id).children();
        children.sort_by_key(|&c| {
            let (p, h) = memo.get(&c).copied().unwrap_or((0, 0));
            (std::cmp::Reverse(p.saturating_sub(h)), c)
        });
        for c in children {
            emit(graph, c, memo, seen, order);
        }
        order.push(id);
    }

    let mut memo = HashMap::new();
    costs(graph, root, sizes, plan, &mut memo);
    let mut seen = vec![false; graph.len()];
    let mut order = Vec::new();
    emit(graph, root, &memo, &mut seen, &mut order);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::EwiseOp;
    use crate::physical::{plan_with_degree, plan_with_memory};
    use crate::size::{propagate, InputSizes};

    #[test]
    fn schedule_last_use_tracks_shared_consumers() {
        // add = t + t: t's last use is add's step, x's is t's step.
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let add = g.ewise(EwiseOp::Add, t, t);
        let s = Schedule::new(&g, add);
        assert_eq!(s.order(), &[x, t, add]);
        assert_eq!(s.last_use(x), Some(s.step_of(t).unwrap()));
        assert_eq!(s.last_use(t), Some(s.step_of(add).unwrap()));
        assert_eq!(s.last_use(add), Some(2), "the root lives to its own step");
        assert_eq!(s.live_at(1), vec![x, t]);
        assert_eq!(s.live_at(2), vec![t, add]);
    }

    #[test]
    fn footprint_orders_representations_sensibly() {
        let info = SizeInfo { shape: Shape::Matrix { rows: 1000, cols: 20 }, sparsity: 0.05 };
        let fp = footprint(&info, Some(1 << 20));
        assert_eq!(fp.dense, 1000 * 20 * 8);
        assert!(fp.sparse < fp.dense, "5% non-zeros beat dense storage");
        assert!(fp.compressed <= fp.dense, "uncompressed is always a candidate");
        assert!(fp.blocked_panel < fp.dense, "one panel is a fraction of the matrix");
        let sc = footprint(&SizeInfo { shape: Shape::Scalar, sparsity: 1.0 }, None);
        assert_eq!(sc.dense, 8);
    }

    #[test]
    fn certifier_counts_composite_peaks_the_per_node_check_misses() {
        // Two operands plus the output of an elementwise add are live at
        // once; each alone is under the limit, together they are not.
        let mut inputs = InputSizes::new();
        inputs.declare("X", 100, 100, 1.0); // 80 KB each
        inputs.declare("Y", 100, 100, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let y = g.input("Y");
        let z = g.ewise(EwiseOp::Add, x, y);
        let sizes = propagate(&g, z, &inputs).unwrap();
        let plan = plan_with_degree(&g, z, &sizes, 1);
        let budget = MemoryBudget::bytes(200_000);
        let cert = certify_plan(&g, z, &plan, &sizes, budget);
        assert!(!cert.fits(), "3 x 80 KB live > 200 KB");
        let Verdict::Exceeds { step, node, live_bytes } = cert.verdict else {
            panic!("expected Exceeds")
        };
        assert_eq!(node, z, "the add is where the three values first coexist");
        assert_eq!(step, 2);
        assert_eq!(live_bytes, 3 * 80_000);
        assert_eq!(cert.peak_bytes, 240_000);
        assert_eq!(cert.timeline.len(), 3);
    }

    #[test]
    fn streaming_operands_of_blocked_consumers_are_not_materialized() {
        let mut inputs = InputSizes::new();
        inputs.declare("X", 100_000, 200, 1.0); // 160 MB
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(Op::CrossProd(x));
        let sizes = propagate(&g, cp, &inputs).unwrap();
        let budget = MemoryBudget::bytes(1 << 20);
        let plan = plan_with_memory(&g, cp, &sizes, 1, budget);
        assert_eq!(plan.kernel(cp), Kernel::Blocked);
        let cert = certify_plan(&g, cp, &plan, &sizes, budget);
        assert!(cert.fits(), "{}", cert.render(&g));
        // X contributes nothing at its own step; the crossprod step pays the
        // pool term (capped at half the budget) plus its small output.
        assert_eq!(cert.timeline[0].live_bytes, 0);
        let cp_step = &cert.timeline[1];
        assert_eq!(cp_step.pool_bytes, spill_pool_capacity(1 << 20));
        assert_eq!(cp_step.live_bytes, cp_step.pool_bytes + 200 * 200 * 8);
    }

    #[test]
    fn render_marks_peak_and_overflow_steps() {
        let mut inputs = InputSizes::new();
        inputs.declare("X", 100, 100, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let z = g.ewise(EwiseOp::Add, x, x);
        let sizes = propagate(&g, z, &inputs).unwrap();
        let plan = plan_with_degree(&g, z, &sizes, 1);
        let cert = certify_plan(&g, z, &plan, &sizes, MemoryBudget::bytes(100_000));
        let txt = cert.render(&g);
        assert!(txt.contains("EXCEEDS"), "{txt}");
        assert!(txt.contains("! step"), "{txt}");
        assert!(txt.contains("live-set timeline:"), "{txt}");

        let ok = certify_plan(&g, z, &plan, &sizes, MemoryBudget::bytes(1 << 20));
        let txt = ok.render(&g);
        assert!(txt.contains("plan fits"), "{txt}");
        assert!(txt.contains("* step"), "{txt}");
    }

    #[test]
    fn min_peak_order_evaluates_high_slack_subtrees_first() {
        // root = X + (A %*% B): the matmul subtree has a huge transient
        // (both operands live) but holds only its product; X holds its full
        // bytes from step 0. Default DFS order evaluates X first and carries
        // it under the matmul's transient; the reorder runs the matmul
        // first.
        let mut inputs = InputSizes::new();
        inputs.declare("X", 256, 256, 1.0); // 512 KB hold
        inputs.declare("A", 256, 1024, 1.0); // 2 MB
        inputs.declare("B", 1024, 256, 1.0); // 2 MB
        let mut g = Graph::new();
        let x = g.input("X");
        let a = g.input("A");
        let b = g.input("B");
        let r = g.matmul(a, b);
        let root = g.ewise(EwiseOp::Add, x, r);
        let sizes = propagate(&g, root, &inputs).unwrap();
        let plan = plan_with_degree(&g, root, &sizes, 1);

        let dfs = Schedule::new(&g, root);
        let dfs_cert = certify_schedule(&g, &dfs, &plan, &sizes, MemoryBudget::unbounded());

        let order = min_peak_order(&g, root, &sizes, &plan);
        assert_eq!(order, vec![a, b, r, x, root], "matmul chain drains before X loads");
        let re = Schedule::from_order(&g, order);
        let re_cert = certify_schedule(&g, &re, &plan, &sizes, MemoryBudget::unbounded());

        // DFS: X + A + B + R live at the matmul step. Reordered: A + B + R.
        assert_eq!(dfs_cert.peak_bytes, (256 * 256 + 2 * 256 * 1024 + 256 * 256) * 8);
        assert_eq!(re_cert.peak_bytes, (2 * 256 * 1024 + 256 * 256) * 8);
        assert!(re_cert.peak_bytes < dfs_cert.peak_bytes);
    }

    #[test]
    fn min_peak_order_is_topological_with_shared_nodes() {
        let mut inputs = InputSizes::new();
        inputs.declare("X", 64, 64, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let mm = g.matmul(t, x); // x shared by t and mm
        let s = g.agg(AggOp::Sum, mm);
        let sizes = propagate(&g, s, &inputs).unwrap();
        let plan = plan_with_degree(&g, s, &sizes, 1);
        let order = min_peak_order(&g, s, &sizes, &plan);
        assert_eq!(order.len(), 4, "each node exactly once: {order:?}");
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for &n in &order {
            for c in g.op(n).children() {
                assert!(pos[&c] < pos[&n], "child %{c} after parent %{n} in {order:?}");
            }
        }
    }
}
