//! The logical expression DAG ("HOPs").

use std::fmt;

/// Node identifier within a [`Graph`] arena.
pub type NodeId = usize;

/// Elementwise binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EwiseOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Hadamard multiplication.
    Mul,
    /// Division.
    Div,
}

/// Elementwise unary functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `exp(x)`.
    Exp,
    /// Natural log.
    Log,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
}

/// Aggregation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// Sum of all elements (scalar result).
    Sum,
    /// Column sums (1 x cols result).
    ColSums,
    /// Row sums (rows x 1 result).
    RowSums,
    /// Minimum element.
    Min,
    /// Maximum element.
    Max,
}

/// Logical operators. `CrossProd`, `Tmv`, and `SumSq` are fused operators
/// introduced only by the rewriter — the parser and builder never emit them.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A named input bound at execution time.
    Input(String),
    /// A scalar literal.
    Const(f64),
    /// Matrix multiplication.
    MatMul(NodeId, NodeId),
    /// Transpose.
    Transpose(NodeId),
    /// Elementwise binary op; scalars broadcast against matrices.
    Ewise(EwiseOp, NodeId, NodeId),
    /// Elementwise unary function.
    Unary(UnaryOp, NodeId),
    /// Aggregation.
    Agg(AggOp, NodeId),
    /// Fused `t(X) %*% X`.
    CrossProd(NodeId),
    /// Fused `t(X) %*% v` for vector `v`.
    Tmv(NodeId, NodeId),
    /// Fused `sum(X * X)`.
    SumSq(NodeId),
}

impl Op {
    /// Child node ids, in order.
    pub fn children(&self) -> Vec<NodeId> {
        match self {
            Op::Input(_) | Op::Const(_) => vec![],
            Op::Transpose(a)
            | Op::Agg(_, a)
            | Op::Unary(_, a)
            | Op::CrossProd(a)
            | Op::SumSq(a) => vec![*a],
            Op::MatMul(a, b) | Op::Ewise(_, a, b) | Op::Tmv(a, b) => vec![*a, *b],
        }
    }

    /// Rebuild this op with new children (same arity).
    ///
    /// # Panics
    /// Panics if the arity does not match.
    pub fn with_children(&self, ch: &[NodeId]) -> Op {
        match self {
            Op::Input(n) => {
                assert!(ch.is_empty());
                Op::Input(n.clone())
            }
            Op::Const(v) => {
                assert!(ch.is_empty());
                Op::Const(*v)
            }
            Op::Transpose(_) => Op::Transpose(ch[0]),
            Op::Agg(a, _) => Op::Agg(*a, ch[0]),
            Op::Unary(u, _) => Op::Unary(*u, ch[0]),
            Op::CrossProd(_) => Op::CrossProd(ch[0]),
            Op::SumSq(_) => Op::SumSq(ch[0]),
            Op::MatMul(_, _) => Op::MatMul(ch[0], ch[1]),
            Op::Ewise(e, _, _) => Op::Ewise(*e, ch[0], ch[1]),
            Op::Tmv(_, _) => Op::Tmv(ch[0], ch[1]),
        }
    }
}

/// An arena of expression nodes forming a DAG.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    nodes: Vec<Op>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Append a node, returning its id.
    pub fn push(&mut self, op: Op) -> NodeId {
        self.nodes.push(op);
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    pub fn op(&self, id: NodeId) -> &Op {
        &self.nodes[id]
    }

    /// All nodes, indexable by id.
    pub fn nodes(&self) -> &[Op] {
        &self.nodes
    }

    // Convenience builders.

    /// A named input.
    pub fn input(&mut self, name: &str) -> NodeId {
        self.push(Op::Input(name.to_owned()))
    }

    /// A scalar literal.
    pub fn constant(&mut self, v: f64) -> NodeId {
        self.push(Op::Const(v))
    }

    /// `a %*% b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::MatMul(a, b))
    }

    /// `t(a)`.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        self.push(Op::Transpose(a))
    }

    /// Elementwise op.
    pub fn ewise(&mut self, op: EwiseOp, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Ewise(op, a, b))
    }

    /// Aggregation.
    pub fn agg(&mut self, op: AggOp, a: NodeId) -> NodeId {
        self.push(Op::Agg(op, a))
    }

    /// Elementwise unary function.
    pub fn unary(&mut self, op: UnaryOp, a: NodeId) -> NodeId {
        self.push(Op::Unary(op, a))
    }

    /// Render a node as an R-like expression string (for debugging and tests).
    pub fn render(&self, id: NodeId) -> String {
        match self.op(id) {
            Op::Input(n) => n.clone(),
            Op::Const(v) => format!("{v}"),
            Op::MatMul(a, b) => format!("({} %*% {})", self.render(*a), self.render(*b)),
            Op::Transpose(a) => format!("t({})", self.render(*a)),
            Op::Ewise(e, a, b) => {
                let sym = match e {
                    EwiseOp::Add => "+",
                    EwiseOp::Sub => "-",
                    EwiseOp::Mul => "*",
                    EwiseOp::Div => "/",
                };
                format!("({} {sym} {})", self.render(*a), self.render(*b))
            }
            Op::Agg(a, x) => {
                let f = match a {
                    AggOp::Sum => "sum",
                    AggOp::ColSums => "colSums",
                    AggOp::RowSums => "rowSums",
                    AggOp::Min => "min",
                    AggOp::Max => "max",
                };
                format!("{f}({})", self.render(*x))
            }
            Op::Unary(u, a) => {
                let f = match u {
                    UnaryOp::Exp => "exp",
                    UnaryOp::Log => "log",
                    UnaryOp::Sqrt => "sqrt",
                    UnaryOp::Abs => "abs",
                };
                format!("{f}({})", self.render(*a))
            }
            Op::CrossProd(a) => format!("crossprod({})", self.render(*a)),
            Op::Tmv(a, b) => format!("tmv({}, {})", self.render(*a), self.render(*b)),
            Op::SumSq(a) => format!("sumSq({})", self.render(*a)),
        }
    }

    /// Ids of all nodes reachable from `root`, in topological (children-first)
    /// order.
    pub fn reachable(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        fn visit(g: &Graph, id: NodeId, seen: &mut [bool], order: &mut Vec<NodeId>) {
            if seen[id] {
                return;
            }
            seen[id] = true;
            for c in g.op(id).children() {
                visit(g, c, seen, order);
            }
            order.push(id);
        }
        visit(self, root, &mut seen, &mut order);
        order
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.nodes.iter().enumerate() {
            writeln!(f, "%{i} = {op:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let mm = g.matmul(t, x);
        let s = g.agg(AggOp::Sum, mm);
        assert_eq!(g.render(s), "sum((t(X) %*% X))");
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn children_and_with_children() {
        let mut g = Graph::new();
        let a = g.input("A");
        let b = g.input("B");
        let mm = g.matmul(a, b);
        assert_eq!(g.op(mm).children(), vec![a, b]);
        let swapped = g.op(mm).with_children(&[b, a]);
        assert_eq!(swapped, Op::MatMul(b, a));
        assert_eq!(g.op(a).children(), Vec::<NodeId>::new());
        let e = g.ewise(EwiseOp::Add, a, b);
        assert_eq!(g.op(e).with_children(&[b, b]), Op::Ewise(EwiseOp::Add, b, b));
    }

    #[test]
    fn reachable_topological() {
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let mm = g.matmul(t, x); // shares x
        let order = g.reachable(mm);
        assert_eq!(order, vec![x, t, mm]);
        // Unreachable nodes excluded.
        let _orphan = g.input("Y");
        assert_eq!(g.reachable(mm).len(), 3);
    }

    #[test]
    fn display_lists_nodes() {
        let mut g = Graph::new();
        g.input("X");
        g.constant(2.0);
        let s = format!("{g}");
        assert!(s.contains("%0 = Input(\"X\")"));
        assert!(s.contains("%1 = Const(2.0)"));
    }
}
