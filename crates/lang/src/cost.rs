//! The calibrated cost model: the re-cost half of the
//! observe→calibrate→re-cost loop.
//!
//! [`estimated_cost`](crate::rewrite::estimated_cost) prices a plan in flops
//! under an implicit "every flop costs the same" assumption. Real kernels
//! disagree by orders of magnitude — a fused crossprod streams at memory
//! bandwidth while a sparse gather stalls on indices — and the gap is
//! machine-specific. A [`CostModel`] wraps a persisted
//! [`ProfileStore`] of observed per-(op,
//! kernel family, size-class) throughputs and converts per-node flop
//! estimates into *nanoseconds*, dividing by the measured GFLOP/s where
//! enough samples exist and falling back to the static
//! [`STATIC_GFLOPS`] assumption where they don't. The calibrated figures
//! feed [`plan_with_profile`](crate::physical::plan_with_profile) (a
//! measured serial-vs-parallel crossover replacing the fixed
//! [`PAR_FLOP_THRESHOLD`](crate::physical::PAR_FLOP_THRESHOLD)),
//! [`explain_with_profile`](crate::explain::explain_with_profile), and the
//! analyzer's H204 staleness hint.
//!
//! Closing the loop end to end:
//!
//! ```
//! use dm_lang::{cost::CostModel, exec::{Env, Executor}, parser, physical};
//! use dm_lang::size::InputSizes;
//! use dm_matrix::{Dense, Matrix};
//!
//! let (g, root) = parser::parse("sum(t(X) %*% X)").unwrap();
//! let mut sizes = InputSizes::new();
//! sizes.declare("X", 64, 8, 1.0);
//! let mut env = Env::new();
//! env.bind("X", Matrix::Dense(Dense::from_fn(64, 8, |r, c| (r + c) as f64)));
//!
//! // Observe: a profiled run yields throughput samples.
//! let mut store = dm_obs::ProfileStore::new();
//! for _ in 0..3 {
//!     let mut ex = Executor::new(&g).profiled();
//!     ex.eval(root, &env).unwrap();
//!     ex.record_kernel_profiles(&mut store);
//! }
//!
//! // Calibrate + re-cost: the model turns flops into observed nanoseconds.
//! let model = CostModel::new(store);
//! let plan = physical::plan_with_inputs(&g, root, &sizes).unwrap();
//! let calibrated = dm_lang::cost::calibrated_cost(&g, root, &sizes, &plan, &model).unwrap();
//! assert!(calibrated > 0);
//! ```

use crate::expr::{Graph, NodeId, Op};
use crate::physical::{node_flops, PhysicalPlan};
use crate::size::{propagate, InputSizes, SizeError, SizeInfo};
use dm_obs::profile::{ProfileError, ProfileStore};
use std::collections::HashMap;
use std::path::Path;

/// The static throughput assumption, in GFLOP/s: with `ns = flops / 1.0`,
/// the static cost in nanoseconds is numerically the flop count — the same
/// ~1 Gflop/s-per-core rationale behind
/// [`PAR_FLOP_THRESHOLD`](crate::physical::PAR_FLOP_THRESHOLD).
pub const STATIC_GFLOPS: f64 = 1.0;

/// Calibrated-vs-static disagreement beyond which the analyzer flags the
/// static model stale for a kernel (H204): a measured throughput more than
/// 4x off the [`STATIC_GFLOPS`] assumption, in either direction.
pub const DRIFT_FACTOR: f64 = 4.0;

/// A loaded throughput profile, ready to price plans in nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    store: ProfileStore,
}

/// Per-node cost breakdown: the flop estimate and its static and calibrated
/// nanosecond prices. Produced by [`node_costs`]; rendered by
/// [`explain_with_profile`](crate::explain::explain_with_profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCost {
    /// Estimated flops ([`node_flops`]).
    pub flops: u128,
    /// Static price in ns (flops at [`STATIC_GFLOPS`]).
    pub static_ns: u128,
    /// Calibrated price in ns (flops at the observed GFLOP/s), when the
    /// profile holds enough samples for this node's (op, kernel family,
    /// size class).
    pub calibrated_ns: Option<u128>,
    /// Kernel family the node prices under (see [`node_family`]).
    pub family: &'static str,
}

impl CostModel {
    /// Wrap an in-memory store (e.g. freshly recorded via
    /// [`Executor::record_kernel_profiles`](crate::exec::Executor::record_kernel_profiles)).
    pub fn new(store: ProfileStore) -> Self {
        CostModel { store }
    }

    /// Load the profile persisted under `dir` (see
    /// [`ProfileStore::load`]). A missing file yields an empty — but valid —
    /// model; corruption errors propagate for the caller to degrade from.
    pub fn load(dir: &Path) -> Result<Self, ProfileError> {
        ProfileStore::load(dir).map(CostModel::new)
    }

    /// Load from the directory named by `DMML_PROFILE_DIR`. `None` when the
    /// variable is unset or the store is unreadable — corruption warns on
    /// stderr and degrades to the static model rather than failing the run.
    pub fn from_env() -> Option<Self> {
        let dir = dm_obs::profile::env_profile_dir()?;
        match Self::load(&dir) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!(
                    "{}: unusable kernel profile ({e}); falling back to the static cost model",
                    dm_obs::profile::PROFILE_DIR_ENV
                );
                None
            }
        }
    }

    /// The underlying profile store.
    pub fn store(&self) -> &ProfileStore {
        &self.store
    }

    /// True when no samples are loaded (every price falls back to static).
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Calibrated price in ns of `flops` flops of `op` on `family`, or
    /// `None` below the sample threshold. Flop counts beyond `u64` saturate
    /// into the top size class.
    pub fn calibrated_ns(&self, op: &str, family: &str, flops: u128) -> Option<u128> {
        if flops == 0 {
            return None;
        }
        let f64_flops = flops as f64;
        let g = self.store.gflops(op, family, u64::try_from(flops).unwrap_or(u64::MAX))?;
        if g <= 0.0 {
            return None;
        }
        Some((f64_flops / g).ceil() as u128)
    }

    /// True when the calibrated price for this (op, family, size) disagrees
    /// with the static assumption by more than [`DRIFT_FACTOR`] — the
    /// trigger for the analyzer's H204 staleness hint.
    pub fn is_stale(&self, op: &str, family: &str, flops: u128) -> bool {
        match self.calibrated_ns(op, family, flops) {
            Some(cal) if cal > 0 && flops > 0 => {
                let ratio = cal as f64 / static_ns(flops) as f64;
                !(1.0 / DRIFT_FACTOR..=DRIFT_FACTOR).contains(&ratio)
            }
            _ => false,
        }
    }
}

/// Static price of `flops` flops in ns: the flop count divided by
/// [`STATIC_GFLOPS`].
pub fn static_ns(flops: u128) -> u128 {
    (flops as f64 / STATIC_GFLOPS).ceil() as u128
}

/// The kernel family node `id` will be priced (and profiled) under, mirroring
/// the executor's dispatch classification
/// ([`KernelChoice`](crate::exec::KernelChoice)) from static plan
/// information: blocked and parallel follow the plan (when a budget/degree
/// makes them effective), fused operators and constants classify by op, and
/// the rest follow the plan's dense/sparse choice.
pub fn node_family(graph: &Graph, id: NodeId, plan: &PhysicalPlan) -> &'static str {
    use crate::physical::Kernel;
    match plan.kernel(id) {
        Kernel::Blocked if plan.mem_budget().is_some() => return "blocked",
        Kernel::Parallel if plan.degree() > 1 => return "parallel",
        _ => {}
    }
    match graph.op(id) {
        Op::CrossProd(_) | Op::Tmv(..) | Op::SumSq(_) => "fused",
        Op::Const(_) => "scalar",
        _ if plan.kernel(id) == Kernel::Sparse => "sparse",
        _ => "dense",
    }
}

/// Per-node cost table over every node reachable from `root`, given
/// propagated sizes and the physical plan the costs should assume.
pub fn node_costs(
    graph: &Graph,
    root: NodeId,
    infos: &HashMap<NodeId, SizeInfo>,
    plan: &PhysicalPlan,
    model: &CostModel,
) -> HashMap<NodeId, NodeCost> {
    let mut out = HashMap::new();
    for id in graph.reachable(root) {
        let flops = node_flops(graph, id, infos);
        let family = node_family(graph, id, plan);
        let op = crate::explain::op_label(graph, id);
        out.insert(
            id,
            NodeCost {
                flops,
                static_ns: static_ns(flops),
                calibrated_ns: model.calibrated_ns(&op, family, flops),
                family,
            },
        );
    }
    out
}

/// Calibrated execution-cost estimate in nanoseconds of the DAG rooted at
/// `root` under `plan`: per node, flops divided by the observed GFLOP/s of
/// its (op, kernel family, size class) where the profile holds enough
/// samples, the static [`STATIC_GFLOPS`] price otherwise. With an empty
/// model this equals [`static_ns`] of
/// [`estimated_cost`](crate::rewrite::estimated_cost).
pub fn calibrated_cost(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
    plan: &PhysicalPlan,
    model: &CostModel,
) -> Result<u128, SizeError> {
    let infos = propagate(graph, root, inputs)?;
    Ok(node_costs(graph, root, &infos, plan, model)
        .values()
        .map(|c| c.calibrated_ns.unwrap_or(c.static_ns))
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AggOp;
    use crate::physical::{plan_with_inputs, plan_with_inputs_degree};

    fn glm() -> (Graph, NodeId, InputSizes) {
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(Op::CrossProd(x));
        let root = g.agg(AggOp::Sum, cp);
        let mut s = InputSizes::new();
        s.declare("X", 1000, 20, 1.0);
        (g, root, s)
    }

    /// A store holding `n` samples of `gflops` throughput for (op, family)
    /// at the size class of `flops`.
    fn store_with(op: &str, family: &str, flops: u64, gflops: f64, n: usize) -> ProfileStore {
        let mut s = ProfileStore::new();
        let ns = (flops as f64 / gflops) as u64;
        for _ in 0..n {
            s.record(op, family, flops, ns.max(1));
        }
        s
    }

    #[test]
    fn empty_model_prices_exactly_static() {
        let (g, root, sizes) = glm();
        let plan = plan_with_inputs(&g, root, &sizes).unwrap();
        let model = CostModel::default();
        let cal = calibrated_cost(&g, root, &sizes, &plan, &model).unwrap();
        let est = crate::rewrite::estimated_cost(&g, root, &sizes).unwrap();
        assert_eq!(cal, static_ns(est), "no samples -> static fallback everywhere");
    }

    #[test]
    fn calibration_divides_by_observed_throughput() {
        let (g, root, sizes) = glm();
        let plan = plan_with_inputs(&g, root, &sizes).unwrap();
        let infos = propagate(&g, root, &sizes).unwrap();
        // crossprod on 1000x20: 2 * 20000 * 20 = 800_000 flops, fused family.
        let cp_flops = 800_000u64;
        // Measured 4 GFLOP/s, 4x faster than the static assumption.
        let model = CostModel::new(store_with("crossprod", "fused", cp_flops, 4.0, 5));
        let costs = node_costs(&g, root, &infos, &plan, &model);
        let cp = costs.values().find(|c| c.family == "fused").expect("crossprod node");
        assert_eq!(cp.flops, cp_flops as u128);
        let cal = cp.calibrated_ns.expect("enough samples");
        assert!(
            cal < cp.static_ns / 3 && cal > cp.static_ns / 5,
            "4 GFLOP/s should price ~4x below static: cal {cal} static {}",
            cp.static_ns
        );
        // The total moves too, and differs from the static estimate.
        let total = calibrated_cost(&g, root, &sizes, &plan, &model).unwrap();
        let est = crate::rewrite::estimated_cost(&g, root, &sizes).unwrap();
        assert!(total < static_ns(est));
    }

    #[test]
    fn below_min_samples_falls_back_to_static() {
        let (g, root, sizes) = glm();
        let plan = plan_with_inputs(&g, root, &sizes).unwrap();
        let model = CostModel::new(store_with("crossprod", "fused", 800_000, 4.0, 2));
        let cal = calibrated_cost(&g, root, &sizes, &plan, &model).unwrap();
        let est = crate::rewrite::estimated_cost(&g, root, &sizes).unwrap();
        assert_eq!(cal, static_ns(est), "2 samples < MIN_SAMPLES -> static");
    }

    #[test]
    fn node_family_mirrors_dispatch() {
        let (g, root, sizes) = glm();
        let cp = match g.op(root) {
            Op::Agg(_, c) => *c,
            _ => unreachable!(),
        };
        let serial = plan_with_inputs(&g, root, &sizes).unwrap();
        assert_eq!(node_family(&g, cp, &serial), "fused");
        assert_eq!(node_family(&g, root, &serial), "dense");

        // At degree 4 with a big input, crossprod plans parallel.
        let mut big = InputSizes::new();
        big.declare("X", 100_000, 200, 1.0);
        let par = plan_with_inputs_degree(&g, root, &big, 4).unwrap();
        assert_eq!(node_family(&g, cp, &par), "parallel");
    }

    #[test]
    fn staleness_trips_only_beyond_drift_factor() {
        let flops = 800_000u64;
        // 2x off: not stale. 8x off: stale (both directions).
        let m2 = CostModel::new(store_with("crossprod", "fused", flops, 2.0, 5));
        assert!(!m2.is_stale("crossprod", "fused", flops as u128));
        let m8 = CostModel::new(store_with("crossprod", "fused", flops, 8.0, 5));
        assert!(m8.is_stale("crossprod", "fused", flops as u128));
        let slow = CostModel::new(store_with("crossprod", "fused", flops, 0.1, 5));
        assert!(slow.is_stale("crossprod", "fused", flops as u128));
        // No samples: never stale.
        assert!(!CostModel::default().is_stale("crossprod", "fused", flops as u128));
    }

    #[test]
    fn from_env_degrades_on_corruption() {
        // Not exercised via the env var here (tests run in parallel and the
        // var is process-global); load() carries the same contract.
        let dir = std::env::temp_dir().join(format!("dmml_cost_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(dm_obs::profile::PROFILE_FILE), b"DMML-PROFILE v1\njunk\n")
            .unwrap();
        assert!(CostModel::load(&dir).is_err(), "corrupt store must surface an error");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
