//! `explain`- and `-stats`-style reports: an annotated HOP-DAG tree renderer
//! and a post-run runtime profile, modeled on the surveyed declarative ML
//! systems' plan/statistics output.

use crate::exec::{ExecProfile, KernelChoice};
use crate::expr::{AggOp, EwiseOp, Graph, NodeId, Op, UnaryOp};
use crate::memory::MemoryBudget;
use crate::physical::{plan, plan_with_degree, plan_with_memory, PhysicalPlan};
use crate::size::{propagate, InputSizes, Shape, SizeInfo};
use dm_buffer::PoolStats;
use dm_obs::fmt_ns;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Sparsity-estimate drift beyond which the profile report flags a node.
pub const SPARSITY_DRIFT_THRESHOLD: f64 = 0.05;

/// Short mnemonic for an operator, used in explain trees and profile tables.
pub fn op_label(graph: &Graph, id: NodeId) -> String {
    match op_site(graph, id) {
        std::borrow::Cow::Borrowed(s) => s["exec.".len()..].to_owned(),
        std::borrow::Cow::Owned(s) => s["exec.".len()..].to_owned(),
    }
}

/// [`op_label`] prefixed with `exec.`, as the executor's per-node span-site
/// name. Borrows a static string for every fixed-name op so the hot path
/// (one span per evaluated node, on every served request) records without
/// allocating; only `input`/`const` nodes format their label.
pub fn op_site(graph: &Graph, id: NodeId) -> std::borrow::Cow<'static, str> {
    std::borrow::Cow::Borrowed(match graph.op(id) {
        Op::Input(n) => return format!("exec.input {n}").into(),
        Op::Const(v) => return format!("exec.const {v}").into(),
        Op::MatMul(_, _) => "exec.matmul",
        Op::Transpose(_) => "exec.t",
        Op::Ewise(e, _, _) => match e {
            EwiseOp::Add => "exec.ewise +",
            EwiseOp::Sub => "exec.ewise -",
            EwiseOp::Mul => "exec.ewise *",
            EwiseOp::Div => "exec.ewise /",
        },
        Op::Unary(u, _) => match u {
            UnaryOp::Exp => "exec.exp",
            UnaryOp::Log => "exec.log",
            UnaryOp::Sqrt => "exec.sqrt",
            UnaryOp::Abs => "exec.abs",
        },
        Op::Agg(a, _) => match a {
            AggOp::Sum => "exec.sum",
            AggOp::ColSums => "exec.colSums",
            AggOp::RowSums => "exec.rowSums",
            AggOp::Min => "exec.min",
            AggOp::Max => "exec.max",
        },
        Op::CrossProd(_) => "exec.crossprod",
        Op::Tmv(_, _) => "exec.tmv",
        Op::SumSq(_) => "exec.sumSq",
    })
}

fn annotation(
    id: NodeId,
    sizes: Option<&HashMap<NodeId, SizeInfo>>,
    plan: Option<&PhysicalPlan>,
) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(info) = sizes.and_then(|s| s.get(&id)) {
        match info.shape {
            Shape::Scalar => parts.push("scalar".into()),
            Shape::Matrix { rows, cols } => {
                parts.push(format!("{rows}x{cols}"));
                parts.push(format!("sp {:.2}", info.sparsity));
            }
        }
    }
    if let Some(p) = plan {
        parts.push(format!("{}", p.kernel(id)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("  [{}]", parts.join(", "))
    }
}

#[allow(clippy::too_many_arguments)] // recursive renderer threads layout + annotation state
fn render_tree(
    graph: &Graph,
    id: NodeId,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    seen: &mut HashSet<NodeId>,
    sizes: Option<&HashMap<NodeId, SizeInfo>>,
    plan: Option<&PhysicalPlan>,
    out: &mut String,
) {
    let connector = if is_root {
        String::new()
    } else if is_last {
        format!("{prefix}`-- ")
    } else {
        format!("{prefix}|-- ")
    };
    let shared = !seen.insert(id);
    let label = op_label(graph, id);
    if shared {
        // A DAG node already printed elsewhere: reference it, don't recurse.
        let _ = writeln!(out, "{connector}%{id} {label} (shared, printed above)");
        return;
    }
    let _ = writeln!(out, "{connector}%{id} {label}{}", annotation(id, sizes, plan));
    let children = graph.op(id).children();
    let child_prefix = if is_root {
        String::new()
    } else if is_last {
        format!("{prefix}    ")
    } else {
        format!("{prefix}|   ")
    };
    for (i, &c) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        render_tree(graph, c, &child_prefix, last, false, seen, sizes, plan, out);
    }
}

/// Render the DAG rooted at `root` as a text tree, one node per line, shared
/// subtrees printed once and referenced thereafter. No size or kernel
/// annotations — see [`explain_with`] for the annotated form.
pub fn explain(graph: &Graph, root: NodeId) -> String {
    let mut out = String::new();
    let mut seen = HashSet::new();
    render_tree(graph, root, "", true, true, &mut seen, None, None, &mut out);
    out
}

/// Render the DAG as a text tree annotated with propagated shapes, sparsity
/// estimates, and planned kernels. When size propagation fails (undeclared
/// inputs), annotations are silently omitted rather than failing the render.
pub fn explain_with(graph: &Graph, root: NodeId, inputs: &InputSizes) -> String {
    let sizes = propagate(graph, root, inputs).ok();
    let phys = sizes.as_ref().map(|s| plan(graph, root, s));
    let mut out = String::new();
    let mut seen = HashSet::new();
    render_tree(graph, root, "", true, true, &mut seen, sizes.as_ref(), phys.as_ref(), &mut out);
    out
}

/// [`explain_with`], but planning at the given degree of parallelism: nodes
/// whose estimated flops clear the parallel threshold are annotated
/// `parallel` instead of `dense` (see
/// [`plan_with_degree`]).
pub fn explain_with_degree(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
    degree: usize,
) -> String {
    let sizes = propagate(graph, root, inputs).ok();
    let phys = sizes.as_ref().map(|s| plan_with_degree(graph, root, s, degree));
    let mut out = String::new();
    let mut seen = HashSet::new();
    render_tree(graph, root, "", true, true, &mut seen, sizes.as_ref(), phys.as_ref(), &mut out);
    out
}

/// [`explain_with_degree`], but also planning under a memory budget: nodes
/// the liveness certifier forces out-of-core are annotated `blocked` — they
/// will stream tiles through the spill pool (see [`plan_with_memory`]).
/// When the budget is bounded and sizes propagate, the plan's
/// [`PlanCertificate`](crate::liveness::PlanCertificate) is appended under
/// the tree: the fits/exceeds verdict plus the step-by-step live-set
/// timeline. An unbounded budget renders exactly what
/// [`explain_with_degree`] renders.
pub fn explain_with_memory(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
    degree: usize,
    budget: MemoryBudget,
) -> String {
    let sizes = propagate(graph, root, inputs).ok();
    let phys = sizes.as_ref().map(|s| plan_with_memory(graph, root, s, degree, budget));
    let mut out = String::new();
    let mut seen = HashSet::new();
    render_tree(graph, root, "", true, true, &mut seen, sizes.as_ref(), phys.as_ref(), &mut out);
    if budget.get().is_some() {
        if let (Some(sizes), Some(plan)) = (sizes.as_ref(), phys.as_ref()) {
            let cert = crate::liveness::certify_plan(graph, root, plan, sizes, budget);
            out.push('\n');
            out.push_str(&cert.render(graph));
        }
    }
    out
}

/// [`explain_with_degree`] with a calibrated physical plan and an appended
/// per-node cost table: the plan comes from
/// [`plan_with_profile`](crate::physical::plan_with_profile) (measured
/// serial-vs-parallel crossover), and each compute node's line in the table
/// shows estimated flops, the static nanosecond price, the calibrated price
/// where the model holds enough samples (`-` otherwise), and the priced
/// kernel family. Nodes whose calibrated price disagrees with the static one
/// by more than [`DRIFT_FACTOR`](crate::cost::DRIFT_FACTOR) are marked
/// `<- drift` — the same condition the analyzer reports as H204.
pub fn explain_with_profile(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
    degree: usize,
    model: &crate::cost::CostModel,
) -> String {
    let sizes = propagate(graph, root, inputs).ok();
    let phys =
        sizes.as_ref().map(|s| crate::physical::plan_with_profile(graph, root, s, degree, model));
    let mut out = String::new();
    let mut seen = HashSet::new();
    render_tree(graph, root, "", true, true, &mut seen, sizes.as_ref(), phys.as_ref(), &mut out);
    let (Some(sizes), Some(plan)) = (sizes.as_ref(), phys.as_ref()) else {
        return out;
    };
    let costs = crate::cost::node_costs(graph, root, sizes, plan, model);
    let mut ids: Vec<NodeId> = costs.keys().copied().collect();
    ids.sort_unstable();
    let _ = writeln!(out, "\ncost table (static {} GFLOP/s baseline):", crate::cost::STATIC_GFLOPS);
    let _ = writeln!(
        out,
        "  {:<4} {:<12} {:>14} {:>12} {:>12}  family",
        "node", "op", "flops", "static", "calibrated"
    );
    for id in ids {
        let c = &costs[&id];
        if c.flops == 0 {
            continue; // inputs/constants carry no priced work
        }
        let cal =
            c.calibrated_ns.map_or("-".to_string(), |ns| fmt_ns(ns.min(u64::MAX as u128) as u64));
        let drift =
            if model.is_stale(&op_label(graph, id), c.family, c.flops) { "  <- drift" } else { "" };
        let _ = writeln!(
            out,
            "  %{:<3} {:<12} {:>14} {:>12} {:>12}  {}{drift}",
            id,
            op_label(graph, id),
            c.flops,
            fmt_ns(c.static_ns.min(u64::MAX as u128) as u64),
            cal,
            c.family,
        );
    }
    out
}

/// Render a post-run `-stats`-style report from an execution profile: total
/// wall time, the `top_k` heaviest operators by self time (with kernel choice
/// and output shape), estimated-vs-actual sparsity drift beyond
/// [`SPARSITY_DRIFT_THRESHOLD`], and memoization totals.
pub fn profile_report(
    graph: &Graph,
    root: NodeId,
    profile: &ExecProfile,
    inputs: &InputSizes,
    top_k: usize,
) -> String {
    profile_report_with_spill(graph, root, profile, inputs, top_k, None)
}

/// [`profile_report`] with a spill section: pass the executor's spill-pool
/// counters ([`Executor::ooc_pool_stats`](crate::exec::Executor::ooc_pool_stats))
/// to append blocked-kernel totals and the pool's spill / fault / eviction
/// traffic. `None` (or a run with no blocked dispatch) renders the plain
/// report.
pub fn profile_report_with_spill(
    graph: &Graph,
    root: NodeId,
    profile: &ExecProfile,
    inputs: &InputSizes,
    top_k: usize,
    spill: Option<&PoolStats>,
) -> String {
    let mut out = String::new();
    let total_ns = profile.total_self_ns();
    let _ = writeln!(out, "runtime report for {}", graph.render(root));
    let _ = writeln!(out, "total eval wall time: {}", fmt_ns(total_ns));

    // Heavy hitters by self time.
    let mut by_self: Vec<(NodeId, &crate::exec::NodeStats)> = profile.nodes().collect();
    by_self.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(&b.0)));
    let _ = writeln!(out, "heavy hitters (top {} by self time):", top_k.min(by_self.len()));
    for (rank, (id, ns)) in by_self.iter().take(top_k).enumerate() {
        let pct = if total_ns == 0 { 0.0 } else { 100.0 * ns.self_ns as f64 / total_ns as f64 };
        let kernel = ns.kernel.map_or_else(|| "?".to_string(), |k| k.to_string());
        let _ = writeln!(
            out,
            "  #{:<2} %{id} {:<12} self {:>9} ({pct:4.1}%)  evals {}  hits {}  kernel {kernel}  out {}x{} sp {:.2}",
            rank + 1,
            op_label(graph, *id),
            fmt_ns(ns.self_ns),
            ns.evals,
            ns.memo_hits,
            ns.out_rows,
            ns.out_cols,
            ns.out_sparsity,
        );
    }

    // Self-time distribution across all profiled nodes: a p99 far above the
    // p50 means a few heavy operators dominate (see the heavy hitters above);
    // close quantiles mean the time is spread evenly.
    if by_self.len() > 1 {
        let hist = dm_obs::LogHistogram::new();
        for (_, ns) in &by_self {
            hist.record(ns.self_ns);
        }
        let s = hist.snapshot();
        let _ = writeln!(
            out,
            "node self time: p50 {} / p95 {} / p99 {} over {} nodes",
            fmt_ns(s.p50()),
            fmt_ns(s.p95()),
            fmt_ns(s.p99()),
            s.count,
        );
    }

    // Estimated vs actual sparsity drift.
    if let Ok(sizes) = propagate(graph, root, inputs) {
        let mut drifted: Vec<(NodeId, f64, f64)> = Vec::new();
        for (id, ns) in profile.nodes() {
            if let Some(info) = sizes.get(&id) {
                if matches!(info.shape, Shape::Matrix { .. })
                    && (info.sparsity - ns.out_sparsity).abs() > SPARSITY_DRIFT_THRESHOLD
                {
                    drifted.push((id, info.sparsity, ns.out_sparsity));
                }
            }
        }
        drifted.sort_by(|a, b| {
            let da = (a.1 - a.2).abs();
            let db = (b.1 - b.2).abs();
            db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        if drifted.is_empty() {
            let _ = writeln!(
                out,
                "sparsity estimates: all within {SPARSITY_DRIFT_THRESHOLD:.2} of actual"
            );
        } else {
            let _ =
                writeln!(out, "sparsity drift (|est - actual| > {SPARSITY_DRIFT_THRESHOLD:.2}):");
            for (id, est, actual) in drifted {
                let _ = writeln!(
                    out,
                    "  %{id} {:<12} est {est:.2} actual {actual:.2}",
                    op_label(graph, id)
                );
            }
        }
    }

    // Multi-threaded dispatch summary.
    let (par_evals, par_ns) = profile
        .nodes()
        .filter(|(_, n)| n.kernel == Some(KernelChoice::Parallel))
        .fold((0u64, 0u64), |(e, t), (_, n)| (e + n.evals, t + n.self_ns));
    if par_evals > 0 {
        let pct = if total_ns == 0 { 0.0 } else { 100.0 * par_ns as f64 / total_ns as f64 };
        let _ = writeln!(
            out,
            "parallel kernels: {par_evals} evals, {} self time ({pct:.1}%)",
            fmt_ns(par_ns)
        );
    }

    // Out-of-core dispatch summary + spill-pool traffic.
    let (ooc_evals, ooc_ns) = profile
        .nodes()
        .filter(|(_, n)| n.kernel == Some(KernelChoice::Blocked))
        .fold((0u64, 0u64), |(e, t), (_, n)| (e + n.evals, t + n.self_ns));
    if ooc_evals > 0 {
        let pct = if total_ns == 0 { 0.0 } else { 100.0 * ooc_ns as f64 / total_ns as f64 };
        let _ = writeln!(
            out,
            "out-of-core kernels: {ooc_evals} evals, {} self time ({pct:.1}%)",
            fmt_ns(ooc_ns)
        );
    }
    if let Some(ps) = spill {
        let _ = writeln!(
            out,
            "spill pool: {} B spilled, {} B faulted back, {} evictions, {} pins",
            ps.spilled_bytes, ps.faulted_bytes, ps.evictions, ps.pins
        );
    }

    let evals: u64 = profile.nodes().map(|(_, n)| n.evals).sum();
    let hits: u64 = profile.nodes().map(|(_, n)| n.memo_hits).sum();
    let _ = writeln!(out, "memoization: {evals} node evals, {hits} memo hits");
    out
}

/// [`profile_report`] plus a cost-model accuracy section: for every profiled
/// compute node, the *estimated* ns (static flop price), the *calibrated* ns
/// (the loaded [`CostModel`](crate::cost::CostModel)'s measured-throughput
/// price, `-` below the sample threshold), and the *observed* ns this run
/// actually spent — the three columns whose convergence is the whole point
/// of the observe→calibrate→re-cost loop. Nodes where calibrated and static
/// disagree by more than [`DRIFT_FACTOR`](crate::cost::DRIFT_FACTOR) are
/// marked `<- drift (H204)`.
pub fn profile_report_with_cost(
    graph: &Graph,
    root: NodeId,
    profile: &ExecProfile,
    inputs: &InputSizes,
    top_k: usize,
    plan: &PhysicalPlan,
    model: &crate::cost::CostModel,
) -> String {
    let mut out = profile_report(graph, root, profile, inputs, top_k);
    let Ok(infos) = propagate(graph, root, inputs) else {
        return out;
    };
    let costs = crate::cost::node_costs(graph, root, &infos, plan, model);
    let mut ids: Vec<NodeId> = profile
        .nodes()
        .filter(|(id, ns)| ns.evals > 0 && costs.get(id).is_some_and(|c| c.flops > 0))
        .map(|(id, _)| id)
        .collect();
    ids.sort_unstable();
    if ids.is_empty() {
        return out;
    }
    let _ = writeln!(out, "cost model (estimated vs calibrated vs observed):");
    for id in ids {
        let c = &costs[&id];
        let observed = profile.node(id).map_or(0, |n| n.self_ns);
        let cal =
            c.calibrated_ns.map_or("-".to_string(), |ns| fmt_ns(ns.min(u64::MAX as u128) as u64));
        let drift = if model.is_stale(&op_label(graph, id), c.family, c.flops) {
            "  <- drift (H204)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  %{:<3} {:<12} est {:>10}  cal {:>10}  obs {:>10}  {}{drift}",
            id,
            op_label(graph, id),
            fmt_ns(c.static_ns.min(u64::MAX as u128) as u64),
            cal,
            fmt_ns(observed),
            c.family,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Env, Executor};
    use crate::rewrite::optimize;
    use dm_matrix::{Dense, Matrix};

    fn glm_graph() -> (Graph, NodeId) {
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let mm = g.matmul(t, x);
        let s = g.agg(AggOp::Sum, mm);
        (g, s)
    }

    #[test]
    fn explain_marks_shared_subtrees() {
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let add = g.ewise(EwiseOp::Add, t, t);
        let txt = explain(&g, add);
        assert_eq!(txt.matches("shared, printed above").count(), 1, "{txt}");
        // Three distinct nodes plus one shared reference.
        assert_eq!(txt.lines().count(), 4, "{txt}");
    }

    #[test]
    fn explain_with_annotates_shapes_and_kernels() {
        let (g, s) = glm_graph();
        let mut sizes = InputSizes::new();
        sizes.declare("X", 1000, 20, 0.05);
        let (og, root, _) = optimize(&g, s, &sizes).unwrap();
        let txt = explain_with(&og, root, &sizes);
        assert!(txt.contains("crossprod"), "{txt}");
        assert!(txt.contains("1000x20"), "{txt}");
        assert!(txt.contains("sp 0.05"), "{txt}");
        assert!(txt.contains("sparse"), "{txt}");
    }

    #[test]
    fn explain_golden_output() {
        let (g, s) = glm_graph();
        let mut sizes = InputSizes::new();
        sizes.declare("X", 1000, 20, 1.0);
        let (og, root, _) = optimize(&g, s, &sizes).unwrap();
        let expected = "\
%2 sum  [scalar, dense]
`-- %1 crossprod  [20x20, sp 1.00, dense]
    `-- %0 input X  [1000x20, sp 1.00, dense]
";
        assert_eq!(explain_with(&og, root, &sizes), expected);
    }

    #[test]
    fn explain_with_degree_annotates_parallel_kernels() {
        let (g, s) = glm_graph();
        let mut sizes = InputSizes::new();
        sizes.declare("X", 100_000, 200, 1.0);
        let (og, root, _) = optimize(&g, s, &sizes).unwrap();
        let txt = explain_with_degree(&og, root, &sizes, 4);
        assert!(txt.contains("parallel"), "{txt}");
        // Degree 1 renders exactly what explain_with renders.
        assert_eq!(explain_with_degree(&og, root, &sizes, 1), explain_with(&og, root, &sizes));
    }

    #[test]
    fn profile_report_summarizes_parallel_kernels() {
        let (g, s) = glm_graph();
        let mut sizes = InputSizes::new();
        sizes.declare("X", 400, 300, 1.0);
        let mut env = Env::new();
        env.bind("X", Matrix::Dense(Dense::from_fn(400, 300, |r, c| ((r + c) % 7) as f64)));
        let (og, root, _) = optimize(&g, s, &sizes).unwrap();
        let plan = crate::physical::plan_with_inputs_degree(&og, root, &sizes, 2).unwrap();
        let mut ex = Executor::with_plan(&og, plan).profiled();
        ex.eval(root, &env).unwrap();
        let txt = profile_report(&og, root, ex.profile().unwrap(), &sizes, 5);
        assert!(txt.contains("parallel kernels: 1 evals"), "{txt}");
        assert!(txt.contains("kernel parallel"), "{txt}");
    }

    #[test]
    fn explain_with_memory_appends_the_certificate() {
        let (g, s) = glm_graph();
        let mut sizes = InputSizes::new();
        sizes.declare("X", 100_000, 200, 1.0);
        let (og, root, _) = optimize(&g, s, &sizes).unwrap();
        let txt = explain_with_memory(&og, root, &sizes, 1, MemoryBudget::bytes(1 << 20));
        assert!(txt.contains("blocked"), "{txt}");
        assert!(txt.contains("memory certificate: plan fits"), "{txt}");
        assert!(txt.contains("live-set timeline:"), "{txt}");
        // An unbounded budget renders the plain degree plan, no certificate.
        let txt = explain_with_memory(&og, root, &sizes, 1, MemoryBudget::unbounded());
        assert!(!txt.contains("memory certificate"), "{txt}");
    }

    #[test]
    fn explain_with_profile_appends_the_cost_table() {
        let (g, s) = glm_graph();
        let mut sizes = InputSizes::new();
        sizes.declare("X", 1000, 20, 1.0);
        let (og, root, _) = optimize(&g, s, &sizes).unwrap();
        // An 8x-fast measured fused kernel: calibrated column filled, drift
        // flagged.
        let mut store = dm_obs::ProfileStore::new();
        for _ in 0..5 {
            store.record("crossprod", "fused", 800_000, 100_000); // 8 GFLOP/s
        }
        let model = crate::cost::CostModel::new(store);
        let txt = explain_with_profile(&og, root, &sizes, 1, &model);
        assert!(txt.contains("cost table"), "{txt}");
        assert!(txt.contains("crossprod"), "{txt}");
        assert!(txt.contains("<- drift"), "{txt}");
        // The empty model still renders the table, calibrated column dashed.
        let txt = explain_with_profile(&og, root, &sizes, 1, &crate::cost::CostModel::default());
        assert!(txt.contains("cost table"), "{txt}");
        assert!(txt.contains(" -  "), "{txt}");
        assert!(!txt.contains("<- drift"), "{txt}");
    }

    #[test]
    fn profile_report_with_cost_shows_all_three_columns() {
        let (g, s) = glm_graph();
        let mut sizes = InputSizes::new();
        sizes.declare("X", 1000, 20, 1.0);
        let mut env = Env::new();
        env.bind("X", Matrix::Dense(Dense::from_fn(1000, 20, |r, c| ((r + c) % 5) as f64)));
        let (og, root, _) = optimize(&g, s, &sizes).unwrap();
        let plan = crate::physical::plan_with_inputs(&og, root, &sizes).unwrap();

        // Observe a real run, then price with the model it produced.
        let mut store = dm_obs::ProfileStore::new();
        for _ in 0..dm_obs::profile::MIN_SAMPLES {
            let mut ex = Executor::with_plan(&og, plan.clone()).profiled();
            ex.eval(root, &env).unwrap();
            ex.record_kernel_profiles(&mut store);
        }
        let model = crate::cost::CostModel::new(store);
        let mut ex = Executor::with_plan(&og, plan.clone()).profiled();
        ex.eval(root, &env).unwrap();
        let txt =
            profile_report_with_cost(&og, root, ex.profile().unwrap(), &sizes, 5, &plan, &model);
        assert!(txt.contains("cost model (estimated vs calibrated vs observed)"), "{txt}");
        assert!(txt.contains("est "), "{txt}");
        assert!(txt.contains("cal "), "{txt}");
        assert!(txt.contains("obs "), "{txt}");
        // The crossprod was observed MIN_SAMPLES times at its exact size
        // class, so its calibrated column cannot be dashed.
        let cp_line = txt
            .lines()
            .find(|l| l.contains("crossprod") && l.contains("est "))
            .expect("crossprod cost line");
        assert!(!cp_line.contains("cal          -"), "{cp_line}");
    }

    #[test]
    fn explain_without_sizes_omits_annotations() {
        let (g, s) = glm_graph();
        let txt = explain(&g, s);
        assert!(!txt.contains('['), "{txt}");
        assert!(txt.contains("matmul"), "{txt}");
    }

    #[test]
    fn profile_report_lists_heavy_hitters_and_memo_totals() {
        let (g, s) = glm_graph();
        let mut sizes = InputSizes::new();
        sizes.declare("X", 30, 4, 1.0);
        let mut env = Env::new();
        env.bind("X", Matrix::Dense(Dense::from_fn(30, 4, |r, c| (r + c) as f64)));
        let mut ex = Executor::new(&g).profiled();
        ex.eval(s, &env).unwrap();
        let txt = profile_report(&g, s, ex.profile().unwrap(), &sizes, 3);
        assert!(txt.contains("runtime report"), "{txt}");
        assert!(txt.contains("heavy hitters (top 3"), "{txt}");
        assert!(txt.contains("memoization: 4 node evals"), "{txt}");
    }

    #[test]
    fn profile_report_flags_sparsity_drift() {
        // Declared fully dense, but the bound matrix is mostly zeros: the
        // estimate should drift from the observed sparsity.
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let mut sizes = InputSizes::new();
        sizes.declare("X", 10, 10, 1.0);
        let mut env = Env::new();
        env.bind("X", Matrix::Dense(Dense::from_fn(10, 10, |r, c| if r == c { 1.0 } else { 0.0 })));
        let mut ex = Executor::new(&g).profiled();
        ex.eval(t, &env).unwrap();
        let txt = profile_report(&g, t, ex.profile().unwrap(), &sizes, 5);
        assert!(txt.contains("sparsity drift"), "{txt}");
        assert!(txt.contains("est 1.00 actual 0.10"), "{txt}");
    }
}
