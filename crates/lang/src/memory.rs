//! Memory budgets driving out-of-core kernel selection.
//!
//! A [`MemoryBudget`] caps the bytes the executor may hold resident for one
//! kernel's working set. When the size propagator estimates that an operand
//! or an intermediate of a blockable operator exceeds the budget, physical
//! selection switches that node to
//! [`Kernel::Blocked`](crate::physical::Kernel::Blocked) and the executor
//! streams its tiles through a `dm_buffer` pool instead of materializing
//! everything at once.
//!
//! The budget comes from one of two places, in precedence order:
//!
//! 1. An explicit API value — [`MemoryBudget::bytes`] passed to
//!    [`plan_with_memory`](crate::physical::plan_with_memory) or
//!    [`Executor::with_memory_budget`](crate::exec::Executor::with_memory_budget).
//! 2. The `DMML_MEM_BUDGET` environment variable (read by
//!    [`MemoryBudget::from_env`] and
//!    [`plan_with_inputs_auto`](crate::physical::plan_with_inputs_auto)),
//!    accepting a byte count with an optional binary suffix: `67108864`,
//!    `64m`, `1g`, `512k`.
//!
//! With neither set, execution is unbounded and nothing goes out-of-core.
//!
//! ```
//! use dm_lang::memory::MemoryBudget;
//!
//! assert_eq!(MemoryBudget::bytes(1 << 20).get(), Some(1 << 20));
//! assert!(MemoryBudget::unbounded().get().is_none());
//! assert_eq!(MemoryBudget::parse("64m"), Some(64 << 20));
//! assert_eq!(MemoryBudget::parse("512K"), Some(512 << 10));
//! assert_eq!(MemoryBudget::parse("nonsense"), None);
//! ```

use std::fmt;

/// Environment variable naming the default memory budget, e.g. `64m`.
/// An explicit API budget always takes precedence over the variable.
pub const MEM_BUDGET_ENV: &str = "DMML_MEM_BUDGET";

/// Fraction of the budget (as a divisor) the executor grants its spill pool:
/// the pool gets half, the other half is headroom for the materialized
/// values the liveness certifier (see [`crate::liveness`]) proves must be
/// resident alongside the streaming kernel. Keeping the split here, next to
/// the budget type, ties the executor and the certifier to the same number.
pub fn spill_pool_capacity(budget: usize) -> usize {
    (budget / 2).max(1)
}

/// Panel-height divisor the executor passes to
/// [`panel_rows_for`](dm_buffer::panel_rows_for) for blocked kernels: one
/// panel is ~1/16 of the *budget*, i.e. 1/8 of the spill pool's capacity
/// ([`spill_pool_capacity`]), so several panels (two operands, an output,
/// and per-worker pins) coexist in the pool without thrashing.
pub const OOC_PANEL_DENOM: usize = 16;

/// A byte cap on the executor's resident working set per blocked kernel, or
/// unbounded (the default: everything stays in memory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: Option<usize>,
}

impl MemoryBudget {
    /// No cap: all kernels run in memory (the default).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A cap of `n` bytes.
    pub fn bytes(n: usize) -> Self {
        MemoryBudget { bytes: Some(n) }
    }

    /// Read [`MEM_BUDGET_ENV`]; unset or unparsable values mean unbounded.
    pub fn from_env() -> Self {
        match std::env::var(MEM_BUDGET_ENV).ok().as_deref().and_then(Self::parse) {
            Some(n) => Self::bytes(n),
            None => Self::unbounded(),
        }
    }

    /// Parse a byte count with an optional binary suffix (`k`, `m`, `g`,
    /// case-insensitive): `"1048576"`, `"64m"`, `"512K"`. Returns `None` for
    /// anything else (including overflow).
    pub fn parse(s: &str) -> Option<usize> {
        let t = s.trim();
        let (digits, mult): (&str, usize) = match t.chars().last()? {
            c if c.eq_ignore_ascii_case(&'k') => (&t[..t.len() - 1], 1 << 10),
            c if c.eq_ignore_ascii_case(&'m') => (&t[..t.len() - 1], 1 << 20),
            c if c.eq_ignore_ascii_case(&'g') => (&t[..t.len() - 1], 1 << 30),
            _ => (t, 1),
        };
        digits.trim().parse::<usize>().ok()?.checked_mul(mult)
    }

    /// The cap in bytes, or `None` when unbounded.
    pub fn get(&self) -> Option<usize> {
        self.bytes
    }

    /// True when no cap is set.
    pub fn is_unbounded(&self) -> bool {
        self.bytes.is_none()
    }
}

impl fmt::Display for MemoryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bytes {
            Some(n) => write!(f, "{n} B"),
            None => f.write_str("unbounded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_suffixed() {
        assert_eq!(MemoryBudget::parse("0"), Some(0));
        assert_eq!(MemoryBudget::parse("4096"), Some(4096));
        assert_eq!(MemoryBudget::parse(" 16k "), Some(16 << 10));
        assert_eq!(MemoryBudget::parse("3M"), Some(3 << 20));
        assert_eq!(MemoryBudget::parse("2g"), Some(2 << 30));
        assert_eq!(MemoryBudget::parse("2 g"), Some(2 << 30));
    }

    #[test]
    fn rejects_garbage_and_overflow() {
        assert_eq!(MemoryBudget::parse(""), None);
        assert_eq!(MemoryBudget::parse("k"), None);
        assert_eq!(MemoryBudget::parse("lots"), None);
        assert_eq!(MemoryBudget::parse("-5"), None);
        assert_eq!(MemoryBudget::parse("1.5g"), None);
        assert_eq!(MemoryBudget::parse(&format!("{}g", usize::MAX)), None);
    }

    #[test]
    fn display_and_accessors() {
        assert_eq!(MemoryBudget::bytes(64).to_string(), "64 B");
        assert_eq!(MemoryBudget::unbounded().to_string(), "unbounded");
        assert!(MemoryBudget::unbounded().is_unbounded());
        assert!(!MemoryBudget::bytes(1).is_unbounded());
    }
}
