//! Shape and sparsity propagation over the expression DAG.
//!
//! The optimizer needs sizes *before* execution — matrix-chain reordering and
//! dense/sparse kernel selection are both driven by propagated shapes and
//! non-zero estimates, exactly as in the surveyed compilers' inter-procedural
//! analysis passes.

use crate::expr::{AggOp, EwiseOp, Graph, NodeId, Op};
use std::collections::HashMap;

/// Logical shape of a node's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// A scalar.
    Scalar,
    /// A matrix (vectors are `n x 1` or `1 x n`).
    Matrix {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
}

impl Shape {
    /// Rows (scalars are 1x1).
    pub fn rows(&self) -> usize {
        match self {
            Shape::Scalar => 1,
            Shape::Matrix { rows, .. } => *rows,
        }
    }

    /// Columns (scalars are 1x1).
    pub fn cols(&self) -> usize {
        match self {
            Shape::Scalar => 1,
            Shape::Matrix { cols, .. } => *cols,
        }
    }
}

/// Propagated metadata for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeInfo {
    /// Shape of the node's value.
    pub shape: Shape,
    /// Estimated fraction of non-zero cells, in `[0, 1]`.
    pub sparsity: f64,
}

/// Errors during propagation.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeError {
    /// An input has no declared shape.
    UnboundInput(String),
    /// Shapes are incompatible for an operator.
    Incompatible {
        /// Offending node.
        node: NodeId,
        /// Description.
        message: String,
    },
}

impl std::fmt::Display for SizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SizeError::UnboundInput(n) => write!(f, "input {n} has no declared shape"),
            SizeError::Incompatible { node, message } => {
                write!(f, "shape error at node {node}: {message}")
            }
        }
    }
}

impl std::error::Error for SizeError {}

/// Declared shapes/sparsities of the named inputs.
#[derive(Debug, Clone, Default)]
pub struct InputSizes {
    map: HashMap<String, SizeInfo>,
}

impl InputSizes {
    /// Empty declaration set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an input matrix.
    pub fn declare(&mut self, name: &str, rows: usize, cols: usize, sparsity: f64) -> &mut Self {
        self.map.insert(
            name.to_owned(),
            SizeInfo { shape: Shape::Matrix { rows, cols }, sparsity: sparsity.clamp(0.0, 1.0) },
        );
        self
    }

    /// Declare a scalar input.
    pub fn declare_scalar(&mut self, name: &str) -> &mut Self {
        self.map.insert(name.to_owned(), SizeInfo { shape: Shape::Scalar, sparsity: 1.0 });
        self
    }

    fn get(&self, name: &str) -> Option<SizeInfo> {
        self.map.get(name).copied()
    }
}

/// Infer one node's [`SizeInfo`] from its children's already-resolved infos.
///
/// Returns `Ok(None)` when a child has no entry in `resolved` — that happens
/// only in accumulating analyses (the child's own inference failed earlier
/// and was reported there), so the caller should stay silent rather than
/// duplicate the error. [`propagate`] resolves children before parents and
/// never observes `Ok(None)`.
///
/// Both the fail-fast propagation and the accumulating linter in
/// [`crate::analyze`](mod@crate::analyze) route through this function, so shape rules cannot
/// drift between the two.
pub fn infer_node(
    graph: &Graph,
    id: NodeId,
    inputs: &InputSizes,
    resolved: &HashMap<NodeId, SizeInfo>,
) -> Result<Option<SizeInfo>, SizeError> {
    // Child lookup that distinguishes "failed upstream" from real errors.
    macro_rules! child {
        ($c:expr) => {
            match resolved.get($c) {
                Some(info) => *info,
                None => return Ok(None),
            }
        };
    }
    let info = match graph.op(id) {
        Op::Input(name) => inputs.get(name).ok_or_else(|| SizeError::UnboundInput(name.clone()))?,
        Op::Const(v) => {
            SizeInfo { shape: Shape::Scalar, sparsity: if *v == 0.0 { 0.0 } else { 1.0 } }
        }
        Op::Transpose(a) => {
            let ia = child!(a);
            match ia.shape {
                Shape::Scalar => ia,
                Shape::Matrix { rows, cols } => SizeInfo {
                    shape: Shape::Matrix { rows: cols, cols: rows },
                    sparsity: ia.sparsity,
                },
            }
        }
        Op::MatMul(a, b) => {
            let (ia, ib) = (child!(a), child!(b));
            match (ia.shape, ib.shape) {
                (Shape::Matrix { rows, cols: k1 }, Shape::Matrix { rows: k2, cols }) => {
                    if k1 != k2 {
                        return Err(SizeError::Incompatible {
                            node: id,
                            message: format!("matmul inner dims {k1} vs {k2}"),
                        });
                    }
                    let s = 1.0 - (1.0 - ia.sparsity * ib.sparsity).powi(k1.min(1_000_000) as i32);
                    SizeInfo { shape: Shape::Matrix { rows, cols }, sparsity: s.clamp(0.0, 1.0) }
                }
                _ => {
                    return Err(SizeError::Incompatible {
                        node: id,
                        message: "matmul requires matrix operands".into(),
                    })
                }
            }
        }
        Op::Ewise(e, a, b) => {
            let (ia, ib) = (child!(a), child!(b));
            let shape = match (ia.shape, ib.shape) {
                (Shape::Scalar, s) | (s, Shape::Scalar) => s,
                (Shape::Matrix { rows: r1, cols: c1 }, Shape::Matrix { rows: r2, cols: c2 }) => {
                    if r1 != r2 || c1 != c2 {
                        return Err(SizeError::Incompatible {
                            node: id,
                            message: format!("elementwise {r1}x{c1} vs {r2}x{c2}"),
                        });
                    }
                    ia.shape
                }
            };
            let sparsity = match e {
                EwiseOp::Mul => ia.sparsity * ib.sparsity,
                EwiseOp::Add | EwiseOp::Sub => (ia.sparsity + ib.sparsity).min(1.0),
                EwiseOp::Div => 1.0,
            };
            SizeInfo { shape, sparsity }
        }
        Op::Unary(u, a) => {
            let ia = child!(a);
            // sqrt/abs preserve zeros; exp maps 0 -> 1 (dense); log(0) is
            // -inf, so conservatively dense.
            let sparsity = match u {
                crate::expr::UnaryOp::Sqrt | crate::expr::UnaryOp::Abs => ia.sparsity,
                crate::expr::UnaryOp::Exp | crate::expr::UnaryOp::Log => 1.0,
            };
            SizeInfo { shape: ia.shape, sparsity }
        }
        Op::Agg(a, x) => {
            let ix = child!(x);
            let shape = match (a, ix.shape) {
                (AggOp::Sum | AggOp::Min | AggOp::Max, _) => Shape::Scalar,
                (AggOp::ColSums, Shape::Matrix { cols, .. }) => Shape::Matrix { rows: 1, cols },
                (AggOp::RowSums, Shape::Matrix { rows, .. }) => Shape::Matrix { rows, cols: 1 },
                (AggOp::ColSums | AggOp::RowSums, Shape::Scalar) => Shape::Scalar,
            };
            SizeInfo { shape, sparsity: 1.0 }
        }
        Op::CrossProd(a) => {
            let ia = child!(a);
            let (rows, cols) = (ia.shape.rows(), ia.shape.cols());
            let s = 1.0 - (1.0 - ia.sparsity * ia.sparsity).powi(rows.min(1_000_000) as i32);
            SizeInfo { shape: Shape::Matrix { rows: cols, cols }, sparsity: s.clamp(0.0, 1.0) }
        }
        Op::Tmv(a, b) => {
            let (ia, ib) = (child!(a), child!(b));
            if ia.shape.rows() != ib.shape.rows() {
                return Err(SizeError::Incompatible {
                    node: id,
                    message: format!("tmv rows {} vs {}", ia.shape.rows(), ib.shape.rows()),
                });
            }
            SizeInfo { shape: Shape::Matrix { rows: ia.shape.cols(), cols: 1 }, sparsity: 1.0 }
        }
        Op::SumSq(a) => {
            let _ = child!(a);
            SizeInfo { shape: Shape::Scalar, sparsity: 1.0 }
        }
    };
    Ok(Some(info))
}

/// Propagate sizes through all nodes reachable from `root`, failing on the
/// first error.
///
/// Sparsity estimation uses the standard independence assumptions:
/// * `A %*% B`: `1 - (1 - sA·sB)^k` for inner dimension `k`.
/// * `A * B` (elementwise): `sA · sB`; `A + B`: `min(1, sA + sB)`.
/// * Aggregates and divisions conservatively estimate 1.0.
///
/// For a non-bailing variant that reports *every* size error in the program,
/// see [`crate::analyze::analyze`].
pub fn propagate(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
) -> Result<HashMap<NodeId, SizeInfo>, SizeError> {
    let mut out: HashMap<NodeId, SizeInfo> = HashMap::new();
    for id in graph.reachable(root) {
        let info = infer_node(graph, id, inputs, &out)?
            .expect("children resolved before parents in topological order");
        out.insert(id, info);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> InputSizes {
        let mut i = InputSizes::new();
        i.declare("X", 100, 10, 1.0);
        i.declare("v", 10, 1, 1.0);
        i.declare("S", 100, 10, 0.01);
        i
    }

    #[test]
    fn basic_shapes() {
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let mm = g.matmul(t, x);
        let s = g.agg(AggOp::Sum, mm);
        let sizes = propagate(&g, s, &env()).unwrap();
        assert_eq!(sizes[&t].shape, Shape::Matrix { rows: 10, cols: 100 });
        assert_eq!(sizes[&mm].shape, Shape::Matrix { rows: 10, cols: 10 });
        assert_eq!(sizes[&s].shape, Shape::Scalar);
    }

    #[test]
    fn vector_shapes_and_aggregates() {
        let mut g = Graph::new();
        let x = g.input("X");
        let v = g.input("v");
        let xv = g.matmul(x, v);
        let cs = g.agg(AggOp::ColSums, x);
        let rs = g.agg(AggOp::RowSums, x);
        // Roots must cover all: (t(colSums(X)) 10x1) %*% (t(rowSums(X)+Xv) 1x100).
        let t = g.transpose(cs);
        let both = g.ewise(EwiseOp::Add, rs, xv);
        let t_both = g.transpose(both);
        let root = g.matmul(t, t_both);
        let sizes = propagate(&g, root, &env()).unwrap();
        assert_eq!(sizes[&xv].shape, Shape::Matrix { rows: 100, cols: 1 });
        assert_eq!(sizes[&cs].shape, Shape::Matrix { rows: 1, cols: 10 });
        assert_eq!(sizes[&rs].shape, Shape::Matrix { rows: 100, cols: 1 });
        assert_eq!(sizes[&root].shape, Shape::Matrix { rows: 10, cols: 100 });
    }

    #[test]
    fn scalar_broadcast() {
        let mut g = Graph::new();
        let x = g.input("X");
        let c = g.constant(2.0);
        let scaled = g.ewise(EwiseOp::Mul, x, c);
        let sizes = propagate(&g, scaled, &env()).unwrap();
        assert_eq!(sizes[&scaled].shape, Shape::Matrix { rows: 100, cols: 10 });
    }

    #[test]
    fn sparsity_propagation() {
        let mut g = Graph::new();
        let s = g.input("S"); // 1% dense
        let had = g.ewise(EwiseOp::Mul, s, s);
        let sum = g.ewise(EwiseOp::Add, s, s);
        let root = g.ewise(EwiseOp::Add, had, sum);
        let sizes = propagate(&g, root, &env()).unwrap();
        assert!((sizes[&had].sparsity - 0.0001).abs() < 1e-12);
        assert!((sizes[&sum].sparsity - 0.02).abs() < 1e-12);
        // Dense X stays dense through matmul.
        let mut g2 = Graph::new();
        let x = g2.input("X");
        let t = g2.transpose(x);
        let mm = g2.matmul(t, x);
        let sizes2 = propagate(&g2, mm, &env()).unwrap();
        assert!(sizes2[&mm].sparsity > 0.99);
    }

    #[test]
    fn errors() {
        let mut g = Graph::new();
        let a = g.input("missing");
        assert!(matches!(propagate(&g, a, &env()), Err(SizeError::UnboundInput(_))));

        let mut g = Graph::new();
        let x = g.input("X");
        let bad = g.matmul(x, x); // 100x10 * 100x10
        assert!(matches!(propagate(&g, bad, &env()), Err(SizeError::Incompatible { .. })));

        let mut g = Graph::new();
        let x = g.input("X");
        let v = g.input("v");
        let bad = g.ewise(EwiseOp::Add, x, v);
        assert!(matches!(propagate(&g, bad, &env()), Err(SizeError::Incompatible { .. })));
    }

    #[test]
    fn fused_ops_shapes() {
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(Op::CrossProd(x));
        let sizes = propagate(&g, cp, &env()).unwrap();
        assert_eq!(sizes[&cp].shape, Shape::Matrix { rows: 10, cols: 10 });

        let mut g = Graph::new();
        let x = g.input("X");
        let u = g.input("u");
        let tmv = g.push(Op::Tmv(x, u));
        let mut inp = env();
        inp.declare("u", 100, 1, 1.0);
        let sizes = propagate(&g, tmv, &inp).unwrap();
        assert_eq!(sizes[&tmv].shape, Shape::Matrix { rows: 10, cols: 1 });

        let mut g = Graph::new();
        let x = g.input("X");
        let ss = g.push(Op::SumSq(x));
        let sizes = propagate(&g, ss, &env()).unwrap();
        assert_eq!(sizes[&ss].shape, Shape::Scalar);
    }
}
