//! Plan caching: compile a DMML program once, reuse the physical plan for
//! every later request that looks the same.
//!
//! A scoring server sees the same handful of programs millions of times
//! with inputs that differ only in content, not meaningfully in shape.
//! Re-running the whole compile pipeline (parse → rewrite → size
//! propagation → physical selection → certification) per request would
//! dwarf the actual kernel time for small scoring calls, so the pipeline
//! output is cached under a [`PlanKey`]:
//!
//! * **program hash** — a structural FNV-1a hash of the expression DAG
//!   ([`program_hash`]), so textual differences that parse to the same DAG
//!   share an entry;
//! * **per-input size class** — each declared input contributes its name
//!   plus the ceil-log2 class of its rows and cols ([`size_class`]).
//!   Plans are shape-driven (dense/sparse/parallel/blocked thresholds), so
//!   inputs in the same power-of-two class get the same plan, while a
//!   size-class change misses the cache and re-plans instead of serving a
//!   stale kernel selection;
//! * **per-input sparsity bucket** — sparsity in tenths
//!   ([`sparsity_bucket`]), because the dense/sparse crossover is the other
//!   axis physical selection moves on.
//!
//! A cache hit returns the [`CompiledProgram`] — optimized graph, physical
//! plan, and memory certificate — and execution proceeds exactly as if the
//! program had just been compiled: the executor is a fresh
//! [`Executor::with_plan`](crate::exec::Executor::with_plan) either way, so
//! hit and miss executions are bit-identical by construction (pinned by the
//! `plan_cache` proptests).
//!
//! [`PlanCache`] is a plain LRU over these keys with hit/miss/eviction
//! counters; wrap it in a mutex to share it across server workers.

use crate::cost::CostModel;
use crate::expr::{Graph, NodeId, Op};
use crate::liveness::{certify_plan, PlanCertificate};
use crate::memory::MemoryBudget;
use crate::parser::{self, ParseError};
use crate::physical::{plan_with_memory_profile, PhysicalPlan};
use crate::rewrite::{optimize, RewriteStats};
use crate::size::{InputSizes, SizeError};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a over byte chunks.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Structural hash of the DAG reachable from `root`: node ids are remapped
/// to their position in topological order, so two graphs with the same
/// structure hash identically regardless of how their arenas were built
/// (e.g. a graph with unreachable leftovers from rewriting hashes the same
/// as a fresh parse of the final program).
pub fn program_hash(graph: &Graph, root: NodeId) -> u64 {
    let order = graph.reachable(root);
    let pos: HashMap<NodeId, u64> =
        order.iter().enumerate().map(|(i, &id)| (id, i as u64)).collect();
    let mut h = Fnv::new();
    for &id in &order {
        let op = graph.op(id);
        // One tag byte per op variant, then the variant's payload.
        let (tag, payload): (u8, u64) = match op {
            Op::Input(_) => (0, 0),
            Op::Const(v) => (1, v.to_bits()),
            Op::MatMul(..) => (2, 0),
            Op::Transpose(_) => (3, 0),
            Op::Ewise(e, _, _) => (4, *e as u64),
            Op::Unary(u, _) => (5, *u as u64),
            Op::Agg(a, _) => (6, *a as u64),
            Op::CrossProd(_) => (7, 0),
            Op::Tmv(..) => (8, 0),
            Op::SumSq(_) => (9, 0),
        };
        h.write(&[tag]);
        h.write_u64(payload);
        if let Op::Input(name) = op {
            h.write(name.as_bytes());
            h.write(&[0xff]); // terminator so "ab"+"c" != "a"+"bc"
        }
        for c in op.children() {
            h.write_u64(pos[&c]);
        }
    }
    h.0
}

/// Ceil-log2 size class of a dimension: 0 and 1 map to class 0, then each
/// power-of-two range gets its own class (`2` → 1, `3..=4` → 2,
/// `5..=8` → 3, ...). Matches the bucketing spirit of
/// [`dm_obs::profile::size_class`] so plan reuse and throughput profiles
/// coarsen the same way.
pub fn size_class(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Sparsity bucketed into tenths: `0.0..0.1` → 0, ..., `>= 1.0` → 10.
/// Coarse on purpose — physical selection only cares which side of the
/// dense/sparse crossover (~0.2) an input falls on, so finer buckets would
/// just fragment the cache.
pub fn sparsity_bucket(sparsity: f64) -> u8 {
    (sparsity.clamp(0.0, 1.0) * 10.0).floor().min(10.0) as u8
}

/// One input's contribution to a [`PlanKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputClass {
    /// Input name as bound in the program.
    pub name: String,
    /// [`size_class`] of the row count.
    pub rows_class: u32,
    /// [`size_class`] of the column count.
    pub cols_class: u32,
    /// [`sparsity_bucket`] of the measured non-zero fraction.
    pub sparsity: u8,
}

impl InputClass {
    /// Classify one named input.
    pub fn new(name: &str, rows: usize, cols: usize, sparsity: f64) -> Self {
        InputClass {
            name: name.to_owned(),
            rows_class: size_class(rows),
            cols_class: size_class(cols),
            sparsity: sparsity_bucket(sparsity),
        }
    }
}

/// The plan-cache key: (program hash, per-input size classes, per-input
/// sparsity buckets). See the [module docs](self) for why each axis is
/// part of the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    program: u64,
    inputs: Vec<InputClass>,
}

impl PlanKey {
    /// Build a key from a program hash and the request's input classes
    /// (sorted internally, so caller order does not matter).
    pub fn new(program: u64, mut inputs: Vec<InputClass>) -> Self {
        inputs.sort();
        PlanKey { program, inputs }
    }

    /// The structural program hash component.
    pub fn program(&self) -> u64 {
        self.program
    }

    /// The classified inputs, sorted by name.
    pub fn inputs(&self) -> &[InputClass] {
        &self.inputs
    }
}

impl fmt::Display for PlanKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.program)?;
        for i in &self.inputs {
            write!(f, "/{}:r{}c{}s{}", i.name, i.rows_class, i.cols_class, i.sparsity)?;
        }
        Ok(())
    }
}

/// Everything the compile pipeline produced for one (program, size-class)
/// point: ready to execute with
/// [`Executor::with_plan`](crate::exec::Executor::with_plan).
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The optimized expression DAG.
    pub graph: Graph,
    /// Root node of the optimized DAG.
    pub root: NodeId,
    /// Physical kernel selection for the optimized DAG.
    pub plan: PhysicalPlan,
    /// What the rewriter did (fusion, CSE, chain reordering).
    pub rewrites: RewriteStats,
    /// Peak-memory certificate over the default schedule, when every
    /// reachable node had propagated sizes (always the case for programs
    /// compiled through [`compile`]).
    pub certificate: Option<PlanCertificate>,
    /// Number of nodes planned as
    /// [`Kernel::Blocked`](crate::physical::Kernel::Blocked) — over-budget
    /// work that will stream through the spill pool instead of OOMing.
    pub blocked_nodes: usize,
    /// Calibrated cost-model estimate of executing this plan, in
    /// nanoseconds ([`calibrated_cost`](crate::cost::calibrated_cost) at
    /// compile time). The serving layer compares this against observed
    /// execute time to detect cost-model drift per plan-cache entry.
    pub est_cost_ns: u64,
}

impl CompiledProgram {
    /// Certified peak resident bytes of executing this plan, when known.
    /// Admission control charges this against the shared budget.
    pub fn certified_peak(&self) -> Option<usize> {
        self.certificate.as_ref().map(|c| c.peak_bytes)
    }

    /// Compact `op/kernel` summary of the plan's compute nodes (inputs and
    /// scalar constants omitted), most frequent first, e.g.
    /// `"matmul/parallel sum/dense x2"`. This is what the flight recorder
    /// shows per request, so an operator can tell at a glance which kernels
    /// a slow request ran without dumping the whole plan.
    pub fn kernel_summary(&self) -> String {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for id in self.graph.reachable(self.root) {
            if matches!(self.graph.op(id), crate::expr::Op::Input(_) | crate::expr::Op::Const(_)) {
                continue;
            }
            let label =
                format!("{}/{}", crate::explain::op_label(&self.graph, id), self.plan.kernel(id));
            match counts.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => counts.push((label, 1)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        counts
            .iter()
            .map(|(l, n)| if *n > 1 { format!("{l} x{n}") } else { l.clone() })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Compilation errors: the parse and size-propagation failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The program text did not parse.
    Parse(ParseError),
    /// Sizes failed to propagate (undeclared input, incompatible shapes).
    Size(SizeError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Size(e) => write!(f, "size error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<SizeError> for CompileError {
    fn from(e: SizeError) -> Self {
        CompileError::Size(e)
    }
}

/// The full compile pipeline, once: parse → logical rewrites → size
/// propagation → physical selection
/// ([`plan_with_memory_profile`] — calibrated serial/parallel crossover
/// plus certify-and-block memory fitting) → certification. This is the
/// expensive path a [`PlanCache`] hit skips entirely.
pub fn compile(
    src: &str,
    inputs: &InputSizes,
    degree: usize,
    budget: MemoryBudget,
    model: &CostModel,
) -> Result<CompiledProgram, CompileError> {
    let (raw, raw_root) = parser::parse(src)?;
    let (graph, root, rewrites) = optimize(&raw, raw_root, inputs)?;
    let sizes = crate::size::propagate(&graph, root, inputs)?;
    let plan = plan_with_memory_profile(&graph, root, &sizes, degree, budget, model);
    let certificate = if graph.reachable(root).iter().all(|id| sizes.contains_key(id)) {
        Some(certify_plan(&graph, root, &plan, &sizes, budget))
    } else {
        None
    };
    let blocked_nodes = plan.nodes_with(crate::physical::Kernel::Blocked).len();
    // Price the plan once at compile time; serving compares observed execute
    // time against this to spot per-plan cost-model drift.
    let est_cost_ns = crate::cost::calibrated_cost(&graph, root, inputs, &plan, model)
        .map(|ns| u64::try_from(ns).unwrap_or(u64::MAX))
        .unwrap_or(0);
    Ok(CompiledProgram { graph, root, plan, rewrites, certificate, blocked_nodes, est_cost_ns })
}

#[derive(Debug)]
struct Entry {
    prog: Arc<CompiledProgram>,
    last_used: u64,
}

/// An LRU cache of [`CompiledProgram`]s keyed by [`PlanKey`].
///
/// Plain single-threaded state with internal hit/miss/eviction counters;
/// share it across threads behind a `Mutex` (the critical section is a map
/// probe — compilation itself should happen outside the lock).
#[derive(Debug)]
pub struct PlanCache {
    map: HashMap<PlanKey, Entry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (at least 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Probe the cache, refreshing the entry's recency on a hit.
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<CompiledProgram>> {
        self.clock += 1;
        match self.map.get_mut(key) {
            Some(e) => {
                e.last_used = self.clock;
                self.hits += 1;
                Some(Arc::clone(&e.prog))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a compiled program, evicting the least-recently-used entry
    /// when over capacity. Re-inserting an existing key replaces the entry.
    pub fn insert(&mut self, key: PlanKey, prog: Arc<CompiledProgram>) {
        self.clock += 1;
        self.map.insert(key, Entry { prog, last_used: self.clock });
        while self.map.len() > self.capacity {
            // O(n) victim scan: capacities are small (tens of plans) and
            // eviction only runs on insert, which already paid for a full
            // compile.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over capacity");
            self.map.remove(&victim);
            self.evictions += 1;
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Probes that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to stay under capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AggOp;

    fn model() -> CostModel {
        CostModel::new(dm_obs::ProfileStore::new())
    }

    fn sizes() -> InputSizes {
        let mut s = InputSizes::new();
        s.declare("X", 64, 8, 1.0);
        s.declare("v", 8, 1, 1.0);
        s
    }

    #[test]
    fn program_hash_is_structural() {
        // Same program, different arena layouts (orphan nodes) hash alike.
        let mut a = Graph::new();
        let x = a.input("X");
        let ra = a.agg(AggOp::Sum, x);

        let mut b = Graph::new();
        let _orphan = b.input("junk");
        let x = b.input("X");
        let rb = b.agg(AggOp::Sum, x);

        assert_eq!(program_hash(&a, ra), program_hash(&b, rb));

        // Different input name, aggregate, or structure changes the hash.
        let mut c = Graph::new();
        let y = c.input("Y");
        let rc = c.agg(AggOp::Sum, y);
        assert_ne!(program_hash(&a, ra), program_hash(&c, rc));

        let mut d = Graph::new();
        let x = d.input("X");
        let rd = d.agg(AggOp::Max, x);
        assert_ne!(program_hash(&a, ra), program_hash(&d, rd));
    }

    #[test]
    fn parse_equivalent_texts_share_a_hash() {
        let (g1, r1) = parser::parse("sum(X %*% v)").unwrap();
        let (g2, r2) = parser::parse("sum( X %*% v )").unwrap();
        assert_eq!(program_hash(&g1, r1), program_hash(&g2, r2));
        let (g3, r3) = parser::parse("sum(v %*% X)").unwrap();
        assert_ne!(program_hash(&g1, r1), program_hash(&g3, r3));
    }

    #[test]
    fn size_classes_are_ceil_log2() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(3), 2);
        assert_eq!(size_class(4), 2);
        assert_eq!(size_class(5), 3);
        assert_eq!(size_class(1024), 10);
        assert_eq!(size_class(1025), 11);
    }

    #[test]
    fn sparsity_buckets_are_tenths() {
        assert_eq!(sparsity_bucket(0.0), 0);
        assert_eq!(sparsity_bucket(0.09), 0);
        assert_eq!(sparsity_bucket(0.1), 1);
        assert_eq!(sparsity_bucket(0.55), 5);
        assert_eq!(sparsity_bucket(1.0), 10);
        assert_eq!(sparsity_bucket(7.0), 10);
        assert_eq!(sparsity_bucket(-1.0), 0);
    }

    #[test]
    fn plan_key_is_order_insensitive() {
        let a = PlanKey::new(
            7,
            vec![InputClass::new("X", 64, 8, 1.0), InputClass::new("v", 8, 1, 1.0)],
        );
        let b = PlanKey::new(
            7,
            vec![InputClass::new("v", 8, 1, 1.0), InputClass::new("X", 64, 8, 1.0)],
        );
        assert_eq!(a, b);
        let c = PlanKey::new(
            7,
            vec![InputClass::new("X", 200, 8, 1.0), InputClass::new("v", 8, 1, 1.0)],
        );
        assert_ne!(a, c, "size-class change must be a different key");
    }

    #[test]
    fn compile_produces_certificate_and_plan() {
        let model = model();
        let p = compile("sum(t(X) %*% X)", &sizes(), 1, MemoryBudget::unbounded(), &model)
            .expect("compiles");
        assert!(p.rewrites.crossprod_fused >= 1, "{:?}", p.rewrites);
        assert!(p.certificate.is_some());
        assert_eq!(p.blocked_nodes, 0);
        assert!(p.certified_peak().unwrap() > 0);
        assert!(p.est_cost_ns > 0, "calibrated estimate priced at compile time");
        let summary = p.kernel_summary();
        assert!(summary.contains("crossprod/"), "{summary}");
        assert!(!summary.contains("input"), "{summary}");
    }

    #[test]
    fn compile_reports_errors() {
        let model = model();
        assert!(matches!(
            compile("sum(", &sizes(), 1, MemoryBudget::unbounded(), &model),
            Err(CompileError::Parse(_))
        ));
        assert!(matches!(
            compile("sum(Unknown)", &sizes(), 1, MemoryBudget::unbounded(), &model),
            Err(CompileError::Size(_))
        ));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let model = model();
        let prog =
            Arc::new(compile("sum(X)", &sizes(), 1, MemoryBudget::unbounded(), &model).unwrap());
        let key = |i: usize| PlanKey::new(i as u64, vec![InputClass::new("X", 64, 8, 1.0)]);
        let mut cache = PlanCache::new(2);
        cache.insert(key(1), Arc::clone(&prog));
        cache.insert(key(2), Arc::clone(&prog));
        assert!(cache.get(&key(1)).is_some()); // refresh 1; 2 is now coldest
        cache.insert(key(3), Arc::clone(&prog));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&key(2)).is_none(), "coldest entry evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let c = PlanCache::new(0);
        assert_eq!(c.capacity(), 1);
    }
}
