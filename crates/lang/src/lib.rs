//! # dm-lang
//!
//! A small declarative linear-algebra language compiled the way the surveyed
//! declarative ML systems compile their scripts: an expression DAG of logical
//! operators ("HOPs"), size/sparsity propagation, a logical rewrite engine
//! (common-subexpression elimination, transpose elimination, fused-operator
//! patterns like `t(X)%*%X` and `sum(X^2)`, matrix-chain reordering), and a
//! physical layer that picks dense or sparse kernels per operator before an
//! interpreter executes the plan.
//!
//! Programs can be built through the [`expr::Graph`] API or parsed from an
//! R-like surface syntax:
//!
//! ```
//! use dm_lang::{parser, exec::{Env, Executor}};
//! use dm_matrix::{Dense, Matrix};
//!
//! let (graph, root) = parser::parse("sum(t(X) %*% X)").unwrap();
//! let mut env = Env::new();
//! env.bind("X", Matrix::Dense(Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])));
//! let mut ex = Executor::new(&graph);
//! let result = ex.eval(root, &env).unwrap();
//! // t(X)%*%X = [[10, 14], [14, 20]]; its sum is 58.
//! assert_eq!(result.as_scalar().unwrap(), 58.0);
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod cache;
pub mod cost;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod liveness;
pub mod memory;
pub mod parser;
pub mod physical;
pub mod rewrite;
pub mod size;

pub use analyze::{
    analyze, analyze_program, analyze_with_cost, analyze_with_memory, verify_rewrite,
    AnalysisReport, Diagnostic, RewriteCheckError, Severity,
};
pub use cache::{
    compile, program_hash, CompileError, CompiledProgram, InputClass, PlanCache, PlanKey,
};
pub use cost::{calibrated_cost, CostModel, NodeCost};
pub use exec::{Env, ExecError, ExecProfile, Executor, KernelChoice, NodeStats, Val};
pub use explain::{
    explain, explain_with, explain_with_degree, explain_with_memory, explain_with_profile,
    profile_report, profile_report_with_cost, profile_report_with_spill,
};
pub use expr::{AggOp, EwiseOp, Graph, NodeId, Op, UnaryOp};
pub use liveness::{
    certify_plan, certify_schedule, footprint, min_peak_order, NodeFootprint, PlanCertificate,
    Schedule, StepUsage, Verdict,
};
pub use memory::{MemoryBudget, MEM_BUDGET_ENV};
pub use rewrite::{
    estimated_cost, optimize, optimize_traced, optimize_traced_calibrated, RewriteStats,
    RewriteTrace,
};
pub use size::{Shape, SizeInfo};
