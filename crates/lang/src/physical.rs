//! Physical operator selection: dense vs. sparse kernels per logical op.
//!
//! The selection mirrors the surveyed compilers' LOP assignment: propagated
//! sparsity estimates pick the kernel family, with a crossover threshold
//! calibrated by experiment E6.

use crate::expr::{Graph, NodeId, Op};
use crate::size::{InputSizes, SizeInfo};
use std::collections::HashMap;
use std::fmt;

/// Kernel family chosen for one operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Dense row-major kernel.
    Dense,
    /// CSR sparse kernel.
    Sparse,
    /// Scalar computation (constants, folded aggregates).
    Scalar,
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kernel::Dense => "dense",
            Kernel::Sparse => "sparse",
            Kernel::Scalar => "scalar",
        })
    }
}

/// The per-node physical plan.
#[derive(Debug, Clone, Default)]
pub struct PhysicalPlan {
    kernels: HashMap<NodeId, Kernel>,
}

impl PhysicalPlan {
    /// The kernel chosen for a node (defaults to dense for nodes the planner
    /// never saw — e.g. when sizes were unavailable).
    pub fn kernel(&self, id: NodeId) -> Kernel {
        self.kernels.get(&id).copied().unwrap_or(Kernel::Dense)
    }

    /// Number of planned nodes.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True when no nodes were planned.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

/// Sparsity below which sparse kernels win for multiply-like ops.
///
/// CSR row iteration costs roughly `2·nnz` flops plus index traffic versus the
/// dense kernel's `2·n·d`; the index overhead and lost vectorization put the
/// measured crossover near 0.15–0.3 on this code base (see E6). We use a
/// conservative 0.2.
pub const SPARSE_THRESHOLD: f64 = 0.2;

/// Assign kernels to every node reachable from `root`, given propagated sizes.
pub fn plan(graph: &Graph, root: NodeId, sizes: &HashMap<NodeId, SizeInfo>) -> PhysicalPlan {
    let mut kernels = HashMap::new();
    for id in graph.reachable(root) {
        let info = sizes.get(&id);
        let k = match graph.op(id) {
            Op::Const(_) => Kernel::Scalar,
            Op::Agg(_, _) | Op::SumSq(_) => {
                // Aggregates produce small outputs; the kernel choice follows
                // the *input* representation.
                let child = graph.op(id).children()[0];
                sparsity_kernel(sizes.get(&child))
            }
            Op::MatMul(a, _) | Op::Tmv(a, _) | Op::CrossProd(a) => sparsity_kernel(sizes.get(a)),
            Op::Input(_) | Op::Transpose(_) | Op::Ewise(_, _, _) | Op::Unary(_, _) => {
                sparsity_kernel(info)
            }
        };
        kernels.insert(id, k);
    }
    PhysicalPlan { kernels }
}

fn sparsity_kernel(info: Option<&SizeInfo>) -> Kernel {
    match info {
        Some(i) if matches!(i.shape, crate::size::Shape::Scalar) => Kernel::Scalar,
        Some(i) if i.sparsity < SPARSE_THRESHOLD => Kernel::Sparse,
        _ => Kernel::Dense,
    }
}

/// Convenience: propagate sizes then plan.
pub fn plan_with_inputs(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
) -> Result<PhysicalPlan, crate::size::SizeError> {
    let sizes = crate::size::propagate(graph, root, inputs)?;
    Ok(plan(graph, root, &sizes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AggOp;

    fn inputs() -> InputSizes {
        let mut s = InputSizes::new();
        s.declare("D", 100, 50, 0.9); // dense
        s.declare("S", 100, 50, 0.01); // sparse
        s.declare("v", 50, 1, 1.0);
        s
    }

    #[test]
    fn dense_input_gets_dense_kernels() {
        let mut g = Graph::new();
        let d = g.input("D");
        let v = g.input("v");
        let mm = g.matmul(d, v);
        let p = plan_with_inputs(&g, mm, &inputs()).unwrap();
        assert_eq!(p.kernel(mm), Kernel::Dense);
        assert_eq!(p.kernel(d), Kernel::Dense);
    }

    #[test]
    fn sparse_input_gets_sparse_kernels() {
        let mut g = Graph::new();
        let s = g.input("S");
        let v = g.input("v");
        let mm = g.matmul(s, v);
        let p = plan_with_inputs(&g, mm, &inputs()).unwrap();
        assert_eq!(p.kernel(mm), Kernel::Sparse);
        assert_eq!(p.kernel(s), Kernel::Sparse);
    }

    #[test]
    fn aggregate_follows_input_representation() {
        let mut g = Graph::new();
        let s = g.input("S");
        let sum = g.agg(AggOp::Sum, s);
        let p = plan_with_inputs(&g, sum, &inputs()).unwrap();
        assert_eq!(p.kernel(sum), Kernel::Sparse);

        let mut g = Graph::new();
        let d = g.input("D");
        let sum = g.agg(AggOp::Sum, d);
        let p = plan_with_inputs(&g, sum, &inputs()).unwrap();
        assert_eq!(p.kernel(sum), Kernel::Dense);
    }

    #[test]
    fn scalar_nodes_marked() {
        let mut g = Graph::new();
        let c = g.constant(2.0);
        let p = plan_with_inputs(&g, c, &inputs()).unwrap();
        assert_eq!(p.kernel(c), Kernel::Scalar);
    }

    #[test]
    fn elementwise_product_of_sparse_goes_sparse() {
        // S * S has sparsity 0.0001 -> sparse kernel.
        let mut g = Graph::new();
        let s = g.input("S");
        let had = g.ewise(crate::expr::EwiseOp::Mul, s, s);
        let p = plan_with_inputs(&g, had, &inputs()).unwrap();
        assert_eq!(p.kernel(had), Kernel::Sparse);
    }

    #[test]
    fn unknown_nodes_default_dense() {
        let p = PhysicalPlan::default();
        assert_eq!(p.kernel(42), Kernel::Dense);
        assert!(p.is_empty());
    }
}
