//! Physical operator selection: dense vs. sparse kernels per logical op.
//!
//! The selection mirrors the surveyed compilers' LOP assignment: propagated
//! sparsity estimates pick the kernel family, with a crossover threshold
//! calibrated by experiment E6.

use crate::expr::{Graph, NodeId, Op};
use crate::memory::MemoryBudget;
use crate::size::{InputSizes, SizeInfo};
use std::collections::HashMap;
use std::fmt;

/// Kernel family chosen for one operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Dense row-major kernel.
    Dense,
    /// CSR sparse kernel.
    Sparse,
    /// Scalar computation (constants, folded aggregates).
    Scalar,
    /// Multi-threaded dense kernel (`dm_matrix::par`), chosen when the
    /// estimated flop count clears [`PAR_FLOP_THRESHOLD`] and the plan was
    /// built with a degree above one.
    Parallel,
    /// Blocked out-of-core kernel (`dm_buffer::ooc`), chosen by
    /// [`plan_with_memory`] when an operand or the output is estimated to
    /// exceed the memory budget: tiles stream through a buffer pool instead
    /// of being held resident at once.
    Blocked,
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kernel::Dense => "dense",
            Kernel::Sparse => "sparse",
            Kernel::Scalar => "scalar",
            Kernel::Parallel => "parallel",
            Kernel::Blocked => "blocked",
        })
    }
}

/// The per-node physical plan.
#[derive(Debug, Clone, Default)]
pub struct PhysicalPlan {
    kernels: HashMap<NodeId, Kernel>,
    degree: usize,
    mem_budget: Option<usize>,
}

impl PhysicalPlan {
    /// The kernel chosen for a node (defaults to dense for nodes the planner
    /// never saw — e.g. when sizes were unavailable).
    pub fn kernel(&self, id: NodeId) -> Kernel {
        self.kernels.get(&id).copied().unwrap_or(Kernel::Dense)
    }

    /// Degree of parallelism the plan was built for (at least 1). Plans from
    /// [`plan`] are serial; [`plan_with_degree`] records its degree here so
    /// the executor dispatches [`Kernel::Parallel`] nodes accordingly.
    pub fn degree(&self) -> usize {
        self.degree.max(1)
    }

    /// The memory budget (bytes) the plan was built under, when
    /// [`plan_with_memory`] chose [`Kernel::Blocked`] nodes; `None` for
    /// unbounded plans. The executor sizes its spill pool from this.
    pub fn mem_budget(&self) -> Option<usize> {
        self.mem_budget
    }

    /// Number of planned nodes.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True when no nodes were planned.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// The planned nodes assigned kernel `k`, in ascending node order.
    pub fn nodes_with(&self, k: Kernel) -> Vec<NodeId> {
        let mut v: Vec<NodeId> =
            self.kernels.iter().filter(|&(_, &kk)| kk == k).map(|(&n, _)| n).collect();
        v.sort_unstable();
        v
    }
}

/// Sparsity below which sparse kernels win for multiply-like ops.
///
/// CSR row iteration costs roughly `2·nnz` flops plus index traffic versus the
/// dense kernel's `2·n·d`; the index overhead and lost vectorization put the
/// measured crossover near 0.15–0.3 on this code base (see E6). We use a
/// conservative 0.2.
pub const SPARSE_THRESHOLD: f64 = 0.2;

/// Assign kernels to every node reachable from `root`, given propagated sizes.
pub fn plan(graph: &Graph, root: NodeId, sizes: &HashMap<NodeId, SizeInfo>) -> PhysicalPlan {
    let mut kernels = HashMap::new();
    for id in graph.reachable(root) {
        let info = sizes.get(&id);
        let k = match graph.op(id) {
            Op::Const(_) => Kernel::Scalar,
            Op::Agg(_, _) | Op::SumSq(_) => {
                // Aggregates produce small outputs; the kernel choice follows
                // the *input* representation.
                let child = graph.op(id).children()[0];
                sparsity_kernel(sizes.get(&child))
            }
            Op::MatMul(a, _) | Op::Tmv(a, _) | Op::CrossProd(a) => sparsity_kernel(sizes.get(a)),
            Op::Input(_) | Op::Transpose(_) | Op::Ewise(_, _, _) | Op::Unary(_, _) => {
                sparsity_kernel(info)
            }
        };
        kernels.insert(id, k);
    }
    PhysicalPlan { kernels, degree: 1, mem_budget: None }
}

fn sparsity_kernel(info: Option<&SizeInfo>) -> Kernel {
    match info {
        Some(i) if matches!(i.shape, crate::size::Shape::Scalar) => Kernel::Scalar,
        Some(i) if i.sparsity < SPARSE_THRESHOLD => Kernel::Sparse,
        _ => Kernel::Dense,
    }
}

/// Estimated flops below which serial dense kernels beat the multi-threaded
/// ones: at ~1 Gflop/s-per-core effective throughput, 16M flops is in the
/// tens of milliseconds — comfortably above the scoped-pool spawn + partition
/// overhead — while everything the small-input benchmarks (E5) execute stays
/// far below it.
pub const PAR_FLOP_THRESHOLD: u128 = 16_000_000;

/// Estimated flops executed by a single node given propagated sizes — the
/// per-node term of [`estimated_cost`](crate::rewrite::estimated_cost), also
/// used by [`plan_with_degree`] to decide serial vs. parallel dispatch.
/// Nodes with no size information estimate 0.
pub fn node_flops(graph: &Graph, id: NodeId, infos: &HashMap<NodeId, SizeInfo>) -> u128 {
    use crate::size::Shape;
    let nnz = |id: NodeId| -> u128 {
        match infos.get(&id) {
            Some(info) => match info.shape {
                Shape::Scalar => 1,
                Shape::Matrix { rows, cols } => {
                    ((rows as f64) * (cols as f64) * info.sparsity).ceil() as u128
                }
            },
            None => 0,
        }
    };
    let cells = |id: NodeId| -> u128 {
        match infos.get(&id) {
            Some(info) => match info.shape {
                Shape::Scalar => 1,
                Shape::Matrix { rows, cols } => (rows as u128) * (cols as u128),
            },
            None => 0,
        }
    };
    match graph.op(id) {
        Op::Input(_) | Op::Const(_) => 0,
        Op::Transpose(a) => nnz(*a),
        Op::MatMul(a, b) => {
            let b_cols = infos.get(b).map_or(0, |i| i.shape.cols()) as u128;
            2 * nnz(*a) * b_cols
        }
        Op::Ewise(_, _, _) => cells(id),
        Op::Unary(_, a) | Op::Agg(_, a) => nnz(*a),
        Op::CrossProd(a) => {
            let a_cols = infos.get(a).map_or(0, |i| i.shape.cols()) as u128;
            2 * nnz(*a) * a_cols
        }
        Op::Tmv(a, _) | Op::SumSq(a) => 2 * nnz(*a),
    }
}

/// True for ops with a multi-threaded dense kernel in `dm_matrix::par`.
fn parallelizable(op: &Op) -> bool {
    matches!(
        op,
        Op::MatMul(..)
            | Op::CrossProd(_)
            | Op::Tmv(..)
            | Op::SumSq(_)
            | Op::Agg(crate::expr::AggOp::ColSums, _)
    )
}

/// [`plan`], then upgrade dense nodes to [`Kernel::Parallel`] where a
/// multi-threaded kernel exists and the estimated flop count clears
/// [`PAR_FLOP_THRESHOLD`]. Sparse and scalar choices are never upgraded
/// (the sparse kernels have no parallel implementation), and a degree of
/// one returns the serial plan unchanged — so small inputs keep the exact
/// serial dispatch and cost profile.
pub fn plan_with_degree(
    graph: &Graph,
    root: NodeId,
    sizes: &HashMap<NodeId, SizeInfo>,
    degree: usize,
) -> PhysicalPlan {
    let mut p = plan(graph, root, sizes);
    p.degree = degree.max(1);
    if p.degree == 1 {
        return p;
    }
    for id in graph.reachable(root) {
        if p.kernel(id) == Kernel::Dense
            && parallelizable(graph.op(id))
            && node_flops(graph, id, sizes) >= PAR_FLOP_THRESHOLD
        {
            p.kernels.insert(id, Kernel::Parallel);
        }
    }
    p
}

/// [`plan_with_degree`] with a *calibrated* serial-vs-parallel crossover:
/// where the loaded [`CostModel`](crate::cost::CostModel) holds enough
/// samples for both the serial family (dense/fused) and the parallel family
/// of a candidate node at its size class, the upgrade decision compares the
/// two measured prices directly — parallel wins iff its calibrated
/// nanoseconds beat serial's — instead of trusting the fixed
/// [`PAR_FLOP_THRESHOLD`]. Nodes the profile can't price on both sides keep
/// the static threshold rule, so an empty model reproduces
/// [`plan_with_degree`] exactly.
pub fn plan_with_profile(
    graph: &Graph,
    root: NodeId,
    sizes: &HashMap<NodeId, SizeInfo>,
    degree: usize,
    model: &crate::cost::CostModel,
) -> PhysicalPlan {
    let mut p = plan(graph, root, sizes);
    p.degree = degree.max(1);
    if p.degree == 1 {
        return p;
    }
    for id in graph.reachable(root) {
        if p.kernel(id) != Kernel::Dense || !parallelizable(graph.op(id)) {
            continue;
        }
        let flops = node_flops(graph, id, sizes);
        let op = crate::explain::op_label(graph, id);
        // The serial price is what dispatch would classify this node as
        // without the upgrade (fused for crossprod/tmv/sumSq, dense else).
        let serial_family = crate::cost::node_family(graph, id, &p);
        let serial = model.calibrated_ns(&op, serial_family, flops);
        let parallel = model.calibrated_ns(&op, "parallel", flops);
        let upgrade = match (serial, parallel) {
            // Both families measured at this size: trust the observations.
            (Some(s), Some(par)) => par < s,
            // Not enough evidence: the static threshold stands.
            _ => flops >= PAR_FLOP_THRESHOLD,
        };
        if upgrade {
            p.kernels.insert(id, Kernel::Parallel);
        }
    }
    p
}

/// Convenience: propagate sizes then [`plan_with_profile`].
pub fn plan_with_inputs_profile(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
    degree: usize,
    model: &crate::cost::CostModel,
) -> Result<PhysicalPlan, crate::size::SizeError> {
    let sizes = crate::size::propagate(graph, root, inputs)?;
    Ok(plan_with_profile(graph, root, &sizes, degree, model))
}

/// True for ops with a blocked out-of-core kernel in `dm_buffer::ooc`.
fn blockable(op: &Op) -> bool {
    matches!(
        op,
        Op::MatMul(..) | Op::CrossProd(_) | Op::Ewise(..) | Op::Agg(crate::expr::AggOp::ColSums, _)
    )
}

/// Dense in-memory footprint of a node's value in bytes, per propagated
/// shape. Sparsity is deliberately ignored: the blocked kernels stream dense
/// row panels, and sparse-planned nodes are never upgraded anyway.
fn dense_bytes(info: Option<&SizeInfo>) -> usize {
    use crate::size::Shape;
    match info {
        Some(i) => match i.shape {
            Shape::Scalar => 8,
            Shape::Matrix { rows, cols } => rows.saturating_mul(cols).saturating_mul(8),
        },
        None => 0,
    }
}

/// [`plan_with_degree`], then use the liveness certifier
/// ([`certify_schedule`](crate::liveness::certify_schedule)) to downgrade
/// dense and parallel choices to [`Kernel::Blocked`] until the plan's
/// certified peak live set fits the budget.
///
/// Unlike the earlier per-node check (kept as
/// [`plan_with_memory_per_node`]), the certifier accounts for *composite*
/// peaks — several individually-fitting values live at the same step — and
/// blocks only as many nodes as the peak requires: each round it trial-blocks
/// the blockable nodes implicated at the peak step and keeps the upgrade
/// that shrinks the certified peak the most, stopping when the plan fits.
/// When no upgrade helps — a certified fit is unreachable — it finishes with
/// the per-node rule so oversized operands still stream, and the certificate
/// honestly reports `Exceeds`.
/// Sparse and scalar choices are never touched — the sparse kernels already
/// hold only non-zeros — and an unbounded budget returns the degree plan
/// unchanged. When any reachable node is missing from `sizes`, the certifier
/// has nothing sound to add and the per-node fallback runs instead.
pub fn plan_with_memory(
    graph: &Graph,
    root: NodeId,
    sizes: &HashMap<NodeId, SizeInfo>,
    degree: usize,
    budget: MemoryBudget,
) -> PhysicalPlan {
    let mut p = plan_with_degree(graph, root, sizes, degree);
    let Some(limit) = budget.get() else {
        return p;
    };
    p.mem_budget = Some(limit);
    let reachable = graph.reachable(root);
    if reachable.iter().any(|id| !sizes.contains_key(id)) {
        apply_per_node_blocking(graph, &reachable, sizes, limit, &mut p);
        return p;
    }
    let sched = crate::liveness::Schedule::from_order(graph, reachable);
    fit_plan_to_schedule(graph, &sched, sizes, budget, &mut p);
    p
}

/// The pre-certifier blocking rule: a blockable node goes
/// [`Kernel::Blocked`] when its own output or any operand alone exceeds the
/// budget. Kept as the fallback for incomplete size information (where the
/// liveness certifier cannot run) and for callers wanting the cheap local
/// check; it misses composite peaks — see
/// `certifier_counts_composite_peaks_the_per_node_check_misses` in
/// [`crate::liveness`].
pub fn plan_with_memory_per_node(
    graph: &Graph,
    root: NodeId,
    sizes: &HashMap<NodeId, SizeInfo>,
    degree: usize,
    budget: MemoryBudget,
) -> PhysicalPlan {
    let mut p = plan_with_degree(graph, root, sizes, degree);
    let Some(limit) = budget.get() else {
        return p;
    };
    p.mem_budget = Some(limit);
    apply_per_node_blocking(graph, &graph.reachable(root), sizes, limit, &mut p);
    p
}

fn apply_per_node_blocking(
    graph: &Graph,
    reachable: &[NodeId],
    sizes: &HashMap<NodeId, SizeInfo>,
    limit: usize,
    p: &mut PhysicalPlan,
) {
    for &id in reachable {
        if !matches!(p.kernel(id), Kernel::Dense | Kernel::Parallel) || !blockable(graph.op(id)) {
            continue;
        }
        let oversized = std::iter::once(id)
            .chain(graph.op(id).children().iter().copied())
            .any(|n| dense_bytes(sizes.get(&n)) > limit);
        if oversized {
            p.kernels.insert(id, Kernel::Blocked);
        }
    }
}

/// Certifier-driven fixed point: upgrade blockable nodes to
/// [`Kernel::Blocked`] one at a time — greedily, by largest certified-peak
/// reduction — until the plan fits `budget` over `sched` or no candidate
/// improves the peak. Candidates each round are the blockable dense/parallel
/// nodes implicated at the peak step: the node executing there, or any
/// consumer of a value live there (blocking a consumer turns its operands
/// into streamed, pool-resident values).
pub(crate) fn fit_plan_to_schedule(
    graph: &Graph,
    sched: &crate::liveness::Schedule,
    sizes: &HashMap<NodeId, SizeInfo>,
    budget: MemoryBudget,
    p: &mut PhysicalPlan,
) {
    use crate::liveness::{certify_schedule, Verdict};
    let Some(limit) = budget.get() else {
        return;
    };
    loop {
        let cert = certify_schedule(graph, sched, p, sizes, budget);
        let Verdict::Exceeds { .. } = cert.verdict else {
            return;
        };
        let peak = &cert.timeline[cert.peak_step];
        let live_at_peak: std::collections::HashSet<NodeId> =
            peak.live.iter().map(|&(v, _)| v).collect();
        let exec_at_peak = peak.node;
        let mut best: Option<(usize, NodeId)> = None;
        for &c in sched.order() {
            if !matches!(p.kernel(c), Kernel::Dense | Kernel::Parallel) || !blockable(graph.op(c)) {
                continue;
            }
            let relevant = c == exec_at_peak
                || graph.op(c).children().iter().any(|ch| live_at_peak.contains(ch));
            if !relevant {
                continue;
            }
            let mut trial = p.clone();
            trial.kernels.insert(c, Kernel::Blocked);
            let tc = certify_schedule(graph, sched, &trial, sizes, budget);
            if best.is_none_or(|(bp, _)| tc.peak_bytes < bp) {
                best = Some((tc.peak_bytes, c));
            }
        }
        match best {
            Some((new_peak, c)) if new_peak < cert.peak_bytes => {
                p.kernels.insert(c, Kernel::Blocked);
            }
            // No single upgrade shrinks the peak any further: a certified
            // fit is out of reach (the certificate will report Exceeds). So
            // oversized operands still stream rather than being held whole,
            // finish with the per-node rule — the pre-certifier behavior.
            _ => {
                apply_per_node_blocking(graph, sched.order(), sizes, limit, p);
                return;
            }
        }
    }
}

/// [`plan_with_memory`] over a peak-minimizing schedule instead of the
/// default depth-first order: computes
/// [`min_peak_order`](crate::liveness::min_peak_order), fits the plan to
/// *that* schedule, and returns both. Run the result with
/// [`Executor::eval_schedule`](crate::exec::Executor::eval_schedule) — the
/// reordered schedule often fits a budget in memory that the default order
/// could only meet by spilling.
pub fn plan_with_memory_reordered(
    graph: &Graph,
    root: NodeId,
    sizes: &HashMap<NodeId, SizeInfo>,
    degree: usize,
    budget: MemoryBudget,
) -> (PhysicalPlan, Vec<NodeId>) {
    let mut p = plan_with_degree(graph, root, sizes, degree);
    let Some(limit) = budget.get() else {
        return (p, graph.reachable(root));
    };
    p.mem_budget = Some(limit);
    let reachable = graph.reachable(root);
    if reachable.iter().any(|id| !sizes.contains_key(id)) {
        apply_per_node_blocking(graph, &reachable, sizes, limit, &mut p);
        return (p, reachable);
    }
    let order = crate::liveness::min_peak_order(graph, root, sizes, &p);
    let sched = crate::liveness::Schedule::from_order(graph, order.clone());
    fit_plan_to_schedule(graph, &sched, sizes, budget, &mut p);
    (p, order)
}

/// [`plan_with_memory`] whose serial-vs-parallel upgrades come from
/// [`plan_with_profile`]'s calibrated crossover instead of the static
/// [`PAR_FLOP_THRESHOLD`], then the same certify-and-block fitting. An
/// empty model reproduces [`plan_with_memory`] exactly; a model holding
/// fresh measurements (e.g. after a kernel-speed change shifts where
/// parallel stops paying) moves the upgrade decision with them.
pub fn plan_with_memory_profile(
    graph: &Graph,
    root: NodeId,
    sizes: &HashMap<NodeId, SizeInfo>,
    degree: usize,
    budget: MemoryBudget,
    model: &crate::cost::CostModel,
) -> PhysicalPlan {
    let mut p = plan_with_profile(graph, root, sizes, degree, model);
    let Some(limit) = budget.get() else {
        return p;
    };
    p.mem_budget = Some(limit);
    let reachable = graph.reachable(root);
    if reachable.iter().any(|id| !sizes.contains_key(id)) {
        apply_per_node_blocking(graph, &reachable, sizes, limit, &mut p);
        return p;
    }
    let sched = crate::liveness::Schedule::from_order(graph, reachable);
    fit_plan_to_schedule(graph, &sched, sizes, budget, &mut p);
    p
}

/// Convenience: propagate sizes then [`plan_with_memory`].
pub fn plan_with_inputs_memory(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
    degree: usize,
    budget: MemoryBudget,
) -> Result<PhysicalPlan, crate::size::SizeError> {
    let sizes = crate::size::propagate(graph, root, inputs)?;
    Ok(plan_with_memory(graph, root, &sizes, degree, budget))
}

/// Convenience: propagate sizes then plan.
pub fn plan_with_inputs(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
) -> Result<PhysicalPlan, crate::size::SizeError> {
    let sizes = crate::size::propagate(graph, root, inputs)?;
    Ok(plan(graph, root, &sizes))
}

/// Convenience: propagate sizes then [`plan_with_degree`]. Pass
/// [`dm_par::default_degree`] to honor `DMML_THREADS` / the machine's core
/// count.
pub fn plan_with_inputs_degree(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
    degree: usize,
) -> Result<PhysicalPlan, crate::size::SizeError> {
    let sizes = crate::size::propagate(graph, root, inputs)?;
    Ok(plan_with_degree(graph, root, &sizes, degree))
}

/// Plan at the machine defaults: degree from `DMML_THREADS` / the core
/// count (see [`dm_par::default_degree`]), memory budget from
/// `DMML_MEM_BUDGET` (see
/// [`MemoryBudget::from_env`](crate::memory::MemoryBudget::from_env)), and
/// — when `DMML_PROFILE_DIR` names a readable kernel profile — the
/// calibrated serial-vs-parallel crossover of [`plan_with_profile`] in
/// place of the static threshold, closing the adaptive loop: measured
/// kernel throughput from earlier runs steers the next plan. With neither
/// variable set this is identical to [`plan_with_inputs_degree`].
pub fn plan_with_inputs_auto(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
) -> Result<PhysicalPlan, crate::size::SizeError> {
    let sizes = crate::size::propagate(graph, root, inputs)?;
    let model = crate::cost::CostModel::from_env().unwrap_or_default();
    Ok(plan_with_memory_profile(
        graph,
        root,
        &sizes,
        dm_par::default_degree(),
        MemoryBudget::from_env(),
        &model,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AggOp;

    fn inputs() -> InputSizes {
        let mut s = InputSizes::new();
        s.declare("D", 100, 50, 0.9); // dense
        s.declare("S", 100, 50, 0.01); // sparse
        s.declare("v", 50, 1, 1.0);
        s
    }

    #[test]
    fn dense_input_gets_dense_kernels() {
        let mut g = Graph::new();
        let d = g.input("D");
        let v = g.input("v");
        let mm = g.matmul(d, v);
        let p = plan_with_inputs(&g, mm, &inputs()).unwrap();
        assert_eq!(p.kernel(mm), Kernel::Dense);
        assert_eq!(p.kernel(d), Kernel::Dense);
    }

    #[test]
    fn sparse_input_gets_sparse_kernels() {
        let mut g = Graph::new();
        let s = g.input("S");
        let v = g.input("v");
        let mm = g.matmul(s, v);
        let p = plan_with_inputs(&g, mm, &inputs()).unwrap();
        assert_eq!(p.kernel(mm), Kernel::Sparse);
        assert_eq!(p.kernel(s), Kernel::Sparse);
    }

    #[test]
    fn aggregate_follows_input_representation() {
        let mut g = Graph::new();
        let s = g.input("S");
        let sum = g.agg(AggOp::Sum, s);
        let p = plan_with_inputs(&g, sum, &inputs()).unwrap();
        assert_eq!(p.kernel(sum), Kernel::Sparse);

        let mut g = Graph::new();
        let d = g.input("D");
        let sum = g.agg(AggOp::Sum, d);
        let p = plan_with_inputs(&g, sum, &inputs()).unwrap();
        assert_eq!(p.kernel(sum), Kernel::Dense);
    }

    #[test]
    fn scalar_nodes_marked() {
        let mut g = Graph::new();
        let c = g.constant(2.0);
        let p = plan_with_inputs(&g, c, &inputs()).unwrap();
        assert_eq!(p.kernel(c), Kernel::Scalar);
    }

    #[test]
    fn elementwise_product_of_sparse_goes_sparse() {
        // S * S has sparsity 0.0001 -> sparse kernel.
        let mut g = Graph::new();
        let s = g.input("S");
        let had = g.ewise(crate::expr::EwiseOp::Mul, s, s);
        let p = plan_with_inputs(&g, had, &inputs()).unwrap();
        assert_eq!(p.kernel(had), Kernel::Sparse);
    }

    #[test]
    fn unknown_nodes_default_dense() {
        let p = PhysicalPlan::default();
        assert_eq!(p.kernel(42), Kernel::Dense);
        assert!(p.is_empty());
        assert_eq!(p.degree(), 1);
    }

    #[test]
    fn large_dense_ops_upgrade_to_parallel() {
        // crossprod on 100_000 x 200 dense: 2 * 2e7 * 200 = 8e9 flops, far
        // above the threshold.
        let mut s = InputSizes::new();
        s.declare("X", 100_000, 200, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(crate::expr::Op::CrossProd(x));
        let p = plan_with_inputs_degree(&g, cp, &s, 4).unwrap();
        assert_eq!(p.kernel(cp), Kernel::Parallel);
        assert_eq!(p.degree(), 4);
        // Inputs are not compute nodes; they stay dense.
        assert_eq!(p.kernel(x), Kernel::Dense);
    }

    #[test]
    fn small_dense_ops_stay_serial_at_any_degree() {
        // The E5 shape: 1000 x 20 crossprod is 8e5 flops, below threshold.
        let mut s = InputSizes::new();
        s.declare("X", 1000, 20, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(crate::expr::Op::CrossProd(x));
        let p = plan_with_inputs_degree(&g, cp, &s, 8).unwrap();
        assert_eq!(p.kernel(cp), Kernel::Dense);
    }

    #[test]
    fn sparse_choices_never_upgrade() {
        let mut s = InputSizes::new();
        s.declare("S", 1_000_000, 500, 0.01); // sparse but huge
        let mut g = Graph::new();
        let x = g.input("S");
        let cp = g.push(crate::expr::Op::CrossProd(x));
        let p = plan_with_inputs_degree(&g, cp, &s, 8).unwrap();
        assert_eq!(p.kernel(cp), Kernel::Sparse);
    }

    #[test]
    fn degree_one_plan_is_the_serial_plan() {
        let mut s = InputSizes::new();
        s.declare("X", 100_000, 200, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(crate::expr::Op::CrossProd(x));
        let p = plan_with_inputs_degree(&g, cp, &s, 1).unwrap();
        assert_eq!(p.kernel(cp), Kernel::Dense);
        assert_eq!(p.degree(), 1);
    }

    #[test]
    fn oversized_dense_ops_go_blocked() {
        // 100_000 x 200 dense X is 160 MB; a 1 MB budget forces the
        // crossprod out-of-core even though it also cleared the parallel
        // flop threshold.
        let mut s = InputSizes::new();
        s.declare("X", 100_000, 200, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(crate::expr::Op::CrossProd(x));
        let p = plan_with_inputs_memory(&g, cp, &s, 4, MemoryBudget::bytes(1 << 20)).unwrap();
        assert_eq!(p.kernel(cp), Kernel::Blocked);
        assert_eq!(p.mem_budget(), Some(1 << 20));
        // Inputs are not compute nodes; they are never blocked.
        assert_eq!(p.kernel(x), Kernel::Dense);
    }

    #[test]
    fn unbounded_budget_leaves_the_degree_plan_unchanged() {
        let mut s = InputSizes::new();
        s.declare("X", 100_000, 200, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(crate::expr::Op::CrossProd(x));
        let p = plan_with_inputs_memory(&g, cp, &s, 4, MemoryBudget::unbounded()).unwrap();
        assert_eq!(p.kernel(cp), Kernel::Parallel);
        assert_eq!(p.mem_budget(), None);
    }

    #[test]
    fn sparse_and_small_nodes_never_go_blocked() {
        let mut s = InputSizes::new();
        s.declare("S", 1_000_000, 500, 0.01); // huge but sparse-planned
        s.declare("D", 100, 50, 0.9); // dense but tiny
        let mut g = Graph::new();
        let sp = g.input("S");
        let cp = g.push(crate::expr::Op::CrossProd(sp));
        let p = plan_with_inputs_memory(&g, cp, &s, 4, MemoryBudget::bytes(1 << 20)).unwrap();
        assert_eq!(p.kernel(cp), Kernel::Sparse, "sparse kernels already stream non-zeros");

        let mut g = Graph::new();
        let d = g.input("D");
        let dd = g.ewise(crate::expr::EwiseOp::Add, d, d);
        let p = plan_with_inputs_memory(&g, dd, &s, 4, MemoryBudget::bytes(1 << 20)).unwrap();
        assert_eq!(p.kernel(dd), Kernel::Dense, "fits the budget, stays in memory");
    }

    #[test]
    fn oversized_operand_blocks_the_consumer_not_the_producer_of_small_outputs() {
        // colSums over an oversized dense matrix produces a tiny 1 x d row,
        // but reading the operand is what must stream.
        let mut s = InputSizes::new();
        s.declare("X", 100_000, 200, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let cs = g.agg(AggOp::ColSums, x);
        let p = plan_with_inputs_memory(&g, cs, &s, 1, MemoryBudget::bytes(1 << 20)).unwrap();
        assert_eq!(p.kernel(cs), Kernel::Blocked);
        assert_eq!(p.degree(), 1, "blocked selection is independent of degree");
    }

    #[test]
    fn composite_peak_blocks_what_the_per_node_check_misses() {
        // Z = X + Y with X, Y 256x256 dense (512 KB each) under a 1.3 MB
        // budget: every node individually fits, so the per-node rule blocks
        // nothing and execution would hold 1.5 MB live at the add. The
        // certifier sees the composite peak and blocks the add, whose
        // streamed form fits.
        let mut s = InputSizes::new();
        s.declare("X", 256, 256, 1.0);
        s.declare("Y", 256, 256, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let y = g.input("Y");
        let z = g.ewise(crate::expr::EwiseOp::Add, x, y);
        let root = g.agg(AggOp::Sum, z);
        let sizes = crate::size::propagate(&g, root, &s).unwrap();
        let budget = MemoryBudget::bytes(1_300_000);

        let old = plan_with_memory_per_node(&g, root, &sizes, 1, budget);
        assert_eq!(
            old.nodes_with(Kernel::Blocked),
            Vec::<NodeId>::new(),
            "per-node check is blind"
        );
        let old_cert = crate::liveness::certify_plan(&g, root, &old, &sizes, budget);
        assert!(!old_cert.fits(), "3 x 512 KB live at the add > 1.3 MB");

        let new = plan_with_memory(&g, root, &sizes, 1, budget);
        assert_eq!(new.kernel(z), Kernel::Blocked, "the add streams its operands");
        let cert = crate::liveness::certify_plan(&g, root, &new, &sizes, budget);
        assert!(cert.fits(), "{}", cert.render(&g));
    }

    #[test]
    fn planner_stops_when_no_upgrade_helps() {
        // sum(X) has no blockable node; the plan is returned unchanged and
        // the certificate honestly reports Exceeds.
        let mut s = InputSizes::new();
        s.declare("X", 256, 256, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let root = g.agg(AggOp::Sum, x);
        let sizes = crate::size::propagate(&g, root, &s).unwrap();
        let budget = MemoryBudget::bytes(100_000);
        let p = plan_with_memory(&g, root, &sizes, 1, budget);
        assert_eq!(p.nodes_with(Kernel::Blocked), Vec::<NodeId>::new());
        let cert = crate::liveness::certify_plan(&g, root, &p, &sizes, budget);
        assert!(!cert.fits());
    }

    #[test]
    fn reordered_planner_avoids_blocking_where_the_schedule_suffices() {
        // root = X + (A %*% B): the default DFS order holds X under the
        // matmul's transient and exceeds a 5 MB budget, so plan_with_memory
        // must spill; the peak-minimizing order drains the matmul first and
        // fits without a single blocked node.
        let mut s = InputSizes::new();
        s.declare("X", 256, 256, 1.0);
        s.declare("A", 256, 1024, 1.0);
        s.declare("B", 1024, 256, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let a = g.input("A");
        let b = g.input("B");
        let r = g.matmul(a, b);
        let root = g.ewise(crate::expr::EwiseOp::Add, x, r);
        let sizes = crate::size::propagate(&g, root, &s).unwrap();
        let budget = MemoryBudget::bytes(5_000_000);

        let dfs = plan_with_memory(&g, root, &sizes, 1, budget);
        assert!(!dfs.nodes_with(Kernel::Blocked).is_empty(), "DFS order must spill");

        let (re, order) = plan_with_memory_reordered(&g, root, &sizes, 1, budget);
        assert_eq!(order, vec![a, b, r, x, root]);
        assert_eq!(re.nodes_with(Kernel::Blocked), Vec::<NodeId>::new(), "reorder fits in memory");
        let sched = crate::liveness::Schedule::from_order(&g, order);
        let cert = crate::liveness::certify_schedule(&g, &sched, &re, &sizes, budget);
        assert!(cert.fits(), "{}", cert.render(&g));
    }

    /// A model with `n` samples of the given GFLOP/s for (op, family) at
    /// `flops`' size class.
    fn model_with(entries: &[(&str, &str, u64, f64)]) -> crate::cost::CostModel {
        let mut s = dm_obs::ProfileStore::new();
        for &(op, family, flops, gflops) in entries {
            let ns = ((flops as f64 / gflops) as u64).max(1);
            for _ in 0..5 {
                s.record(op, family, flops, ns);
            }
        }
        crate::cost::CostModel::new(s)
    }

    #[test]
    fn empty_profile_reproduces_the_static_threshold_plan() {
        let mut s = InputSizes::new();
        s.declare("X", 100_000, 200, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(crate::expr::Op::CrossProd(x));
        let sizes = crate::size::propagate(&g, cp, &s).unwrap();
        let model = crate::cost::CostModel::default();
        for degree in [1, 4] {
            let static_plan = plan_with_degree(&g, cp, &sizes, degree);
            let profiled = plan_with_profile(&g, cp, &sizes, degree, &model);
            for id in g.reachable(cp) {
                assert_eq!(profiled.kernel(id), static_plan.kernel(id));
            }
            assert_eq!(profiled.degree(), static_plan.degree());
        }
    }

    #[test]
    fn calibrated_crossover_overrides_the_flop_threshold() {
        // crossprod on 100_000 x 200: 8e9 flops, far above the static
        // threshold — but measurements say serial (fused) is faster than
        // parallel at this size, so the calibrated plan stays serial.
        let mut s = InputSizes::new();
        s.declare("X", 100_000, 200, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(crate::expr::Op::CrossProd(x));
        let sizes = crate::size::propagate(&g, cp, &s).unwrap();
        let flops = node_flops(&g, cp, &sizes) as u64;

        let serial_wins = model_with(&[
            ("crossprod", "fused", flops, 4.0),
            ("crossprod", "parallel", flops, 2.0),
        ]);
        let p = plan_with_profile(&g, cp, &sizes, 4, &serial_wins);
        assert_eq!(p.kernel(cp), Kernel::Dense, "measured serial beats parallel");

        let parallel_wins = model_with(&[
            ("crossprod", "fused", flops, 2.0),
            ("crossprod", "parallel", flops, 6.0),
        ]);
        let p = plan_with_profile(&g, cp, &sizes, 4, &parallel_wins);
        assert_eq!(p.kernel(cp), Kernel::Parallel, "measured parallel beats serial");

        // One-sided evidence keeps the static threshold decision (upgrade,
        // since 8e9 >= PAR_FLOP_THRESHOLD).
        let one_sided = model_with(&[("crossprod", "fused", flops, 4.0)]);
        let p = plan_with_profile(&g, cp, &sizes, 4, &one_sided);
        assert_eq!(p.kernel(cp), Kernel::Parallel);
    }

    #[test]
    fn calibrated_crossover_can_parallelize_below_the_threshold() {
        // 1000 x 20 crossprod is 8e5 flops — statically serial — but if the
        // profile proves parallel faster at that size, the plan upgrades.
        let mut s = InputSizes::new();
        s.declare("X", 1000, 20, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(crate::expr::Op::CrossProd(x));
        let sizes = crate::size::propagate(&g, cp, &s).unwrap();
        let flops = node_flops(&g, cp, &sizes) as u64;
        let m = model_with(&[
            ("crossprod", "fused", flops, 1.0),
            ("crossprod", "parallel", flops, 3.0),
        ]);
        let p = plan_with_profile(&g, cp, &sizes, 4, &m);
        assert_eq!(p.kernel(cp), Kernel::Parallel);
    }

    #[test]
    fn memory_profile_plan_composes_crossover_and_blocking() {
        // crossprod far above the flop threshold, measurements saying serial
        // wins, and an input too big for the budget: the composed planner
        // must keep the node off Kernel::Parallel *and* still block it.
        let mut s = InputSizes::new();
        s.declare("X", 100_000, 200, 1.0); // 160 MB input
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(crate::expr::Op::CrossProd(x));
        let sizes = crate::size::propagate(&g, cp, &s).unwrap();
        let flops = node_flops(&g, cp, &sizes) as u64;
        let serial_wins = model_with(&[
            ("crossprod", "fused", flops, 4.0),
            ("crossprod", "parallel", flops, 2.0),
        ]);

        let unbounded =
            plan_with_memory_profile(&g, cp, &sizes, 4, MemoryBudget::unbounded(), &serial_wins);
        assert_eq!(unbounded.kernel(cp), Kernel::Dense, "measured serial beats parallel");

        let tight =
            plan_with_memory_profile(&g, cp, &sizes, 4, MemoryBudget::bytes(1 << 20), &serial_wins);
        assert_eq!(tight.kernel(cp), Kernel::Blocked, "oversized operand still streams");

        // An empty model reproduces plan_with_memory exactly.
        let empty = crate::cost::CostModel::default();
        for budget in [MemoryBudget::unbounded(), MemoryBudget::bytes(1 << 20)] {
            let composed = plan_with_memory_profile(&g, cp, &sizes, 4, budget, &empty);
            let plain = plan_with_memory(&g, cp, &sizes, 4, budget);
            for id in g.reachable(cp) {
                assert_eq!(composed.kernel(id), plain.kernel(id));
            }
        }
    }

    #[test]
    fn node_flops_matches_estimated_cost_total() {
        let mut s = InputSizes::new();
        s.declare("X", 500, 40, 0.8);
        s.declare("v", 40, 1, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let v = g.input("v");
        let mm = g.matmul(x, v);
        let sum = g.agg(crate::expr::AggOp::Sum, mm);
        let infos = crate::size::propagate(&g, sum, &s).unwrap();
        let per_node: u128 =
            g.reachable(sum).into_iter().map(|id| node_flops(&g, id, &infos)).sum();
        assert_eq!(per_node, crate::rewrite::estimated_cost(&g, sum, &s).unwrap());
    }
}
