//! Static analysis over the expression DAG: an accumulating linter and a
//! rewrite-safety differ.
//!
//! [`size::propagate`](crate::size::propagate) fail-fasts on the first shape
//! error, which is right for the optimizer but wrong for a user-facing
//! check: an analyst wants *every* problem in the script at once. [`analyze`]
//! walks the DAG a single time and collects all findings as [`Diagnostic`]s
//! with node-level provenance:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | `E001` | error | shape mismatch (matmul inner dims, elementwise dims, tmv rows) |
//! | `E002` | error | input used without a declared shape |
//! | `E003` | error | definite domain violation (`log`/`sqrt` of a certainly-negative value, division by the constant zero) |
//! | `W101` | warning | possible domain violation (`log`/`sqrt` over a possibly-negative subexpression, division by a possibly-zero value) |
//! | `W102` | warning | matrix-chain cost: the chain as written costs ≥ 2x the DP-optimal order |
//! | `W103` | warning | certified peak live set exceeds the memory budget even after blocking (see [`analyze_with_memory`]) |
//! | `H201` | hint | dead node: unreachable from the root |
//! | `H202` | hint | missed fusion: a pattern the rewriter would fuse (`crossprod`, `tmv`, `sumSq`, double transpose) |
//! | `H203` | hint | the budget forces spilling, but a peak-minimizing schedule fits in memory |
//! | `H204` | hint | stale cost model: the calibrated price disagrees with the static estimate by more than 4x (see [`analyze_with_cost`]) |
//!
//! Findings with the same code on the same node are merged into one
//! diagnostic carrying a use count (rendered as `(x3)`), so a value
//! implicated at many schedule steps reports once.
//!
//! Domain findings come from value-interval propagation: every node gets a
//! conservative `[lo, hi]` bound on its elements, seeded by constants and
//! sharpened through monotone operators (`abs`, `exp`, squares). The fully
//! unknown interval stays silent — warnings fire only on *evidence* of a
//! possibly-invalid operand, never on mere absence of information.
//!
//! The second half of the module is the rewrite-safety differ
//! ([`verify_rewrite`]): after `optimize`, sizes are re-propagated on the
//! rewritten graph and checked against the original. The contract is:
//!
//! 1. the rewritten graph must still size-propagate if the original did;
//! 2. the root shape must be preserved exactly;
//! 3. every sparsity estimate must remain a valid fraction in `[0, 1]`.
//!
//! Sparsity *values* may legitimately shift (fusion and reassociation change
//! the estimator's path), so only validity is enforced, not equality.
//! `optimize` runs this differ automatically in debug builds, turning
//! optimizer bugs into loud panics in every test that exercises a rewrite.

use crate::expr::{AggOp, EwiseOp, Graph, NodeId, Op, UnaryOp};
use crate::parser::{self, ParseError};
use crate::rewrite::{collect_chain_leaves, optimal_chain_cost, original_chain_cost};
use crate::size::{infer_node, propagate, InputSizes, Shape, SizeError, SizeInfo};
use std::collections::HashMap;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program cannot execute correctly.
    Error,
    /// The program may fail or waste resources at runtime.
    Warning,
    /// Stylistic or optimization opportunity.
    Hint,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Hint => write!(f, "hint"),
        }
    }
}

/// Stable diagnostic codes, one per finding category.
pub mod codes {
    /// Shape mismatch between operands.
    pub const SHAPE_MISMATCH: &str = "E001";
    /// Input used without a declared shape.
    pub const UNBOUND_INPUT: &str = "E002";
    /// Definite domain violation (`log`/`sqrt` of a negative value, `x / 0`).
    pub const DOMAIN_VIOLATION: &str = "E003";
    /// Possible domain violation under interval analysis.
    pub const POSSIBLE_DOMAIN: &str = "W101";
    /// Matrix-chain order far from DP-optimal.
    pub const MMCHAIN_COST: &str = "W102";
    /// Certified peak live set exceeds the memory budget even after the
    /// planner blocked everything it could.
    pub const PLAN_EXCEEDS_BUDGET: &str = "W103";
    /// Node unreachable from the analysis root.
    pub const DEAD_NODE: &str = "H201";
    /// Pattern the rewriter would fuse.
    pub const MISSED_FUSION: &str = "H202";
    /// The budget forces spilling, but a peak-minimizing schedule fits the
    /// whole computation in memory.
    pub const REORDER_AVOIDS_SPILL: &str = "H203";
    /// The calibrated cost model disagrees with the static flop estimate by
    /// more than [`DRIFT_FACTOR`](crate::cost::DRIFT_FACTOR) for a kernel —
    /// the static model is stale for this machine.
    pub const COST_MODEL_STALE: &str = "H204";
}

/// One analyzer finding, anchored to a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// The node the finding is about.
    pub node: NodeId,
    /// Stable code from [`codes`].
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// How many identical findings (same code, same node) were merged into
    /// this one. Always at least 1.
    pub count: usize,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] at %{}: {}", self.severity, self.code, self.node, self.message)?;
        if self.count > 1 {
            write!(f, " (x{})", self.count)?;
        }
        Ok(())
    }
}

/// Merge diagnostics with identical (code, node) into one entry with a use
/// count, keeping the first message.
fn dedupe_diagnostics(diags: &mut Vec<Diagnostic>) {
    let mut merged: Vec<Diagnostic> = Vec::with_capacity(diags.len());
    for d in diags.drain(..) {
        match merged.iter_mut().find(|p| p.code == d.code && p.node == d.node) {
            Some(prev) => prev.count += d.count,
            None => merged.push(d),
        }
    }
    *diags = merged;
}

/// Everything [`analyze`] learned about a program.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// All findings, in node order (errors are not deduplicated against
    /// warnings on the same node).
    pub diagnostics: Vec<Diagnostic>,
    /// Sizes for every node that could be inferred (nodes downstream of a
    /// shape error are absent).
    pub sizes: HashMap<NodeId, SizeInfo>,
}

impl AnalysisReport {
    /// Findings of a given severity.
    pub fn with_severity(&self, s: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity == s)
    }

    /// Count of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.with_severity(Severity::Error).count()
    }

    /// True when no error-severity findings exist.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// All distinct codes reported.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut cs: Vec<&'static str> = self.diagnostics.iter().map(|d| d.code).collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    }

    /// Render the findings with each node's expression for context.
    pub fn render(&self, graph: &Graph) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n    in: {}\n", graph.render(d.node)));
        }
        if self.diagnostics.is_empty() {
            out.push_str("no findings\n");
        }
        out
    }
}

/// A conservative bound on every element of a node's value.
///
/// `TOP` (the full real line) means "no information" and is deliberately
/// treated as silent by the domain checks: warning on every unknown input
/// would bury real findings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (may be `-inf`).
    pub lo: f64,
    /// Upper bound (may be `+inf`).
    pub hi: f64,
}

impl Interval {
    /// The unknown interval: every real number.
    pub const TOP: Interval = Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY };

    /// A single point.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// True when nothing is known.
    pub fn is_top(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// True when zero lies inside the bound.
    pub fn contains_zero(&self) -> bool {
        self.lo <= 0.0 && self.hi >= 0.0
    }

    fn add(self, o: Interval) -> Interval {
        Interval { lo: self.lo + o.lo, hi: self.hi + o.hi }
    }

    fn sub(self, o: Interval) -> Interval {
        Interval { lo: self.lo - o.hi, hi: self.hi - o.lo }
    }

    fn mul(self, o: Interval) -> Interval {
        let c = [
            safe_mul(self.lo, o.lo),
            safe_mul(self.lo, o.hi),
            safe_mul(self.hi, o.lo),
            safe_mul(self.hi, o.hi),
        ];
        Interval {
            lo: c.iter().copied().fold(f64::INFINITY, f64::min),
            hi: c.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Quotient bound; the full line when the divisor may be zero.
    fn div(self, o: Interval) -> Interval {
        if o.contains_zero() {
            return Interval::TOP;
        }
        let c = [self.lo / o.lo, self.lo / o.hi, self.hi / o.lo, self.hi / o.hi];
        Interval {
            lo: c.iter().copied().fold(f64::INFINITY, f64::min),
            hi: c.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Bound on `x*x` for `x` in self (tighter than `mul(self, self)`, which
    /// treats the operands as independent).
    fn square(self) -> Interval {
        if self.lo >= 0.0 {
            Interval { lo: self.lo * self.lo, hi: safe_mul(self.hi, self.hi) }
        } else if self.hi <= 0.0 {
            Interval { lo: self.hi * self.hi, hi: safe_mul(self.lo, self.lo) }
        } else {
            Interval { lo: 0.0, hi: safe_mul(self.lo, self.lo).max(safe_mul(self.hi, self.hi)) }
        }
    }

    fn abs(self) -> Interval {
        if self.lo >= 0.0 {
            self
        } else if self.hi <= 0.0 {
            Interval { lo: -self.hi, hi: -self.lo }
        } else {
            Interval { lo: 0.0, hi: (-self.lo).max(self.hi) }
        }
    }

    /// Bound on the sum of exactly `n` values drawn from self.
    fn sum_of(self, n: usize) -> Interval {
        let n = n as f64;
        Interval { lo: safe_mul(self.lo, n), hi: safe_mul(self.hi, n) }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// `a * b` with the convention `0 * inf = 0` (counts and bounds, not limits).
fn safe_mul(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        a * b
    }
}

/// Lint the DAG rooted at `root`: collect every finding in one pass instead
/// of bailing on the first error.
///
/// Shape inference reuses the exact per-node rules of
/// [`size::propagate`](crate::size::propagate) via
/// [`size::infer_node`](crate::size::infer_node); nodes downstream of a shape
/// error are skipped silently (the root cause is already reported).
pub fn analyze(graph: &Graph, root: NodeId, inputs: &InputSizes) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let mut sizes: HashMap<NodeId, SizeInfo> = HashMap::new();
    let mut intervals: HashMap<NodeId, Interval> = HashMap::new();
    let reachable = graph.reachable(root);

    for &id in &reachable {
        // 1. Shape/sparsity inference, accumulating instead of bailing.
        match infer_node(graph, id, inputs, &sizes) {
            Ok(Some(info)) => {
                sizes.insert(id, info);
            }
            Ok(None) => {} // a child already failed; stay silent
            Err(SizeError::UnboundInput(name)) => report.diagnostics.push(Diagnostic {
                severity: Severity::Error,
                node: id,
                code: codes::UNBOUND_INPUT,
                count: 1,
                message: format!("input {name:?} has no declared shape"),
            }),
            Err(SizeError::Incompatible { message, .. }) => report.diagnostics.push(Diagnostic {
                severity: Severity::Error,
                node: id,
                code: codes::SHAPE_MISMATCH,
                count: 1,
                message,
            }),
        }

        // 2. Value-interval propagation + domain checks.
        let iv = infer_interval(graph, id, &sizes, &intervals, &mut report.diagnostics);
        intervals.insert(id, iv);

        // 3. Missed-fusion hints.
        fusion_hint(graph, id, &sizes, &mut report.diagnostics);

        // 4. Matrix-chain cost warnings at maximal chain roots.
        chain_cost_warning(graph, id, &sizes, &mut report.diagnostics);
    }

    // 5. Dead nodes: allocated in the arena but unreachable from the root.
    let mut live = vec![false; graph.len()];
    for &id in &reachable {
        live[id] = true;
    }
    for (id, &is_live) in live.iter().enumerate() {
        if !is_live {
            report.diagnostics.push(Diagnostic {
                severity: Severity::Hint,
                node: id,
                code: codes::DEAD_NODE,
                count: 1,
                message: format!("node is unreachable from the root ({})", graph.render(id)),
            });
        }
    }

    dedupe_diagnostics(&mut report.diagnostics);
    report.diagnostics.sort_by_key(|d| (d.severity, d.node));
    report.sizes = sizes;
    report
}

/// Parse an R-like program and lint it in one step.
pub fn analyze_program(
    src: &str,
    inputs: &InputSizes,
) -> Result<(AnalysisReport, Graph, NodeId), ParseError> {
    let (graph, root) = parser::parse(src)?;
    let report = analyze(&graph, root, inputs);
    Ok((report, graph, root))
}

/// [`analyze`], then plan under `budget`, certify the plan with the liveness
/// analysis ([`crate::liveness`]), and extend the report with the
/// admission-control findings:
///
/// * `W103` ([`codes::PLAN_EXCEEDS_BUDGET`]) — the certified live set
///   exceeds the budget even after the planner blocked everything it could;
///   one finding per offending step, anchored at the step's largest live
///   value (merged by the dedup pass into a single counted diagnostic per
///   node) — the exact step and node are in the message.
/// * `H203` ([`codes::REORDER_AVOIDS_SPILL`]) — the plan had to spill
///   (blocked nodes), but a peak-minimizing schedule
///   ([`min_peak_order`](crate::liveness::min_peak_order)) certifiably fits
///   the budget entirely in memory.
///
/// An unbounded budget, or a program whose sizes do not fully propagate
/// (those errors are already reported), returns the plain [`analyze`]
/// report.
pub fn analyze_with_memory(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
    degree: usize,
    budget: crate::memory::MemoryBudget,
) -> AnalysisReport {
    use crate::liveness::{certify_plan, certify_schedule, min_peak_order, Schedule};
    use crate::physical::{plan_with_degree, plan_with_memory, Kernel};

    let mut report = analyze(graph, root, inputs);
    let Some(limit) = budget.get() else {
        return report;
    };
    let reachable = graph.reachable(root);
    if reachable.iter().any(|id| !report.sizes.contains_key(id)) {
        return report;
    }
    let plan = plan_with_memory(graph, root, &report.sizes, degree, budget);
    let cert = certify_plan(graph, root, &plan, &report.sizes, budget);
    if !cert.fits() {
        for su in &cert.timeline {
            if su.live_bytes <= limit {
                continue;
            }
            // Anchor at the largest live value (the thing to shrink); when
            // the step's cost is all pool term, anchor at the executing node.
            let anchor = su
                .live
                .iter()
                .max_by_key(|&&(v, b)| (b, std::cmp::Reverse(v)))
                .map_or(su.node, |&(v, _)| v);
            report.diagnostics.push(Diagnostic {
                severity: Severity::Warning,
                node: anchor,
                code: codes::PLAN_EXCEEDS_BUDGET,
                count: 1,
                message: format!(
                    "certified live set reaches {} B at step {} (%{} {}) but the budget is \
                     {limit} B; even the blocked plan cannot fit — split the program or raise {}",
                    su.live_bytes,
                    su.step,
                    su.node,
                    crate::explain::op_label(graph, su.node),
                    crate::memory::MEM_BUDGET_ENV,
                ),
            });
        }
    } else {
        let spilled = plan.nodes_with(Kernel::Blocked).len();
        if spilled > 0 {
            let base = plan_with_degree(graph, root, &report.sizes, degree);
            let order = min_peak_order(graph, root, &report.sizes, &base);
            let sched = Schedule::from_order(graph, order);
            let re = certify_schedule(graph, &sched, &base, &report.sizes, budget);
            if re.fits() {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Hint,
                    node: root,
                    code: codes::REORDER_AVOIDS_SPILL,
                    count: 1,
                    message: format!(
                        "the plan spills {spilled} node(s) under the {limit} B budget, but a \
                         peak-minimizing schedule fits in memory (certified peak {} B); plan with \
                         plan_with_memory_reordered and run it via eval_schedule",
                        re.peak_bytes,
                    ),
                });
            }
        }
    }
    dedupe_diagnostics(&mut report.diagnostics);
    report.diagnostics.sort_by_key(|d| (d.severity, d.node));
    report
}

/// [`analyze`], then cross-check the static flop cost model against a loaded
/// calibrated [`CostModel`](crate::cost::CostModel) and report where they
/// disagree:
///
/// * `H204` ([`codes::COST_MODEL_STALE`]) — the calibrated price of a node
///   (measured GFLOP/s for its op, kernel family, and size class) differs
///   from the static estimate by more than
///   [`DRIFT_FACTOR`](crate::cost::DRIFT_FACTOR) in either direction. The
///   static model's threshold decisions
///   ([`PAR_FLOP_THRESHOLD`](crate::physical::PAR_FLOP_THRESHOLD),
///   rewrite cost ratios) are unreliable for that kernel on this machine;
///   plan with [`plan_with_profile`](crate::physical::plan_with_profile).
///
/// An empty model, or a program whose sizes do not fully propagate (those
/// errors are already reported), returns the plain [`analyze`] report.
pub fn analyze_with_cost(
    graph: &Graph,
    root: NodeId,
    inputs: &InputSizes,
    degree: usize,
    model: &crate::cost::CostModel,
) -> AnalysisReport {
    let mut report = analyze(graph, root, inputs);
    if model.is_empty() {
        return report;
    }
    let reachable = graph.reachable(root);
    if reachable.iter().any(|id| !report.sizes.contains_key(id)) {
        return report;
    }
    let plan = crate::physical::plan_with_profile(graph, root, &report.sizes, degree, model);
    let costs = crate::cost::node_costs(graph, root, &report.sizes, &plan, model);
    for id in reachable {
        let Some(c) = costs.get(&id) else { continue };
        if c.flops == 0 {
            continue;
        }
        let op = crate::explain::op_label(graph, id);
        if model.is_stale(&op, c.family, c.flops) {
            let cal = c.calibrated_ns.unwrap_or(c.static_ns);
            let ratio = cal as f64 / c.static_ns.max(1) as f64;
            report.diagnostics.push(Diagnostic {
                severity: Severity::Hint,
                node: id,
                code: codes::COST_MODEL_STALE,
                count: 1,
                message: format!(
                    "calibrated cost of {op} on the {} kernel is {ratio:.2}x the static \
                     estimate ({cal} ns vs {} ns for {} flops): the static cost model is \
                     stale for this kernel on this machine; prefer plan_with_profile",
                    c.family, c.static_ns, c.flops,
                ),
            });
        }
    }
    dedupe_diagnostics(&mut report.diagnostics);
    report.diagnostics.sort_by_key(|d| (d.severity, d.node));
    report
}

/// Per-node interval rules; pushes domain diagnostics as a side effect.
fn infer_interval(
    graph: &Graph,
    id: NodeId,
    sizes: &HashMap<NodeId, SizeInfo>,
    intervals: &HashMap<NodeId, Interval>,
    diags: &mut Vec<Diagnostic>,
) -> Interval {
    let iv = |n: &NodeId| intervals.get(n).copied().unwrap_or(Interval::TOP);
    let cells = |n: &NodeId| sizes.get(n).map(|s| s.shape.rows() * s.shape.cols());
    match graph.op(id) {
        Op::Input(_) => Interval::TOP,
        Op::Const(v) => Interval::point(*v),
        Op::Transpose(a) => iv(a),
        Op::MatMul(a, b) => {
            // Each output cell sums k products of one element from each side.
            let prod = iv(a).mul(iv(b));
            match sizes.get(a).map(|s| s.shape.cols()) {
                Some(k) => prod.sum_of(k),
                None if prod.lo >= 0.0 => Interval { lo: 0.0, hi: f64::INFINITY },
                None => Interval::TOP,
            }
        }
        Op::Ewise(e, a, b) => {
            let (ia, ib) = (iv(a), iv(b));
            match e {
                EwiseOp::Add => ia.add(ib),
                EwiseOp::Sub => ia.sub(ib),
                EwiseOp::Mul if a == b => ia.square(),
                EwiseOp::Mul => ia.mul(ib),
                EwiseOp::Div => {
                    if ib.lo == 0.0 && ib.hi == 0.0 {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            node: id,
                            code: codes::DOMAIN_VIOLATION,
                            count: 1,
                            message: "division by the constant zero".into(),
                        });
                    } else if !ib.is_top() && ib.contains_zero() {
                        diags.push(Diagnostic {
                            severity: Severity::Warning,
                            node: id,
                            code: codes::POSSIBLE_DOMAIN,
                            count: 1,
                            message: format!("divisor may be zero: its value is bounded by {ib}"),
                        });
                    }
                    ia.div(ib)
                }
            }
        }
        Op::Unary(u, a) => {
            let ia = iv(a);
            match u {
                UnaryOp::Abs => ia.abs(),
                UnaryOp::Exp => Interval { lo: ia.lo.exp(), hi: ia.hi.exp() },
                UnaryOp::Log | UnaryOp::Sqrt => {
                    let name = if *u == UnaryOp::Log { "log" } else { "sqrt" };
                    if ia.hi < 0.0 {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            node: id,
                            code: codes::DOMAIN_VIOLATION,
                            count: 1,
                            message: format!(
                                "{name} of a definitely-negative value (bounded by {ia})"
                            ),
                        });
                        return Interval::TOP;
                    }
                    if !ia.is_top() && ia.lo < 0.0 {
                        diags.push(Diagnostic {
                            severity: Severity::Warning,
                            node: id,
                            code: codes::POSSIBLE_DOMAIN,
                            count: 1,
                            message: format!(
                                "{name} over a possibly-negative subexpression (bounded by {ia})"
                            ),
                        });
                    }
                    let lo_clamped = ia.lo.max(0.0);
                    if *u == UnaryOp::Log {
                        Interval { lo: lo_clamped.ln(), hi: ia.hi.ln() }
                    } else {
                        Interval { lo: lo_clamped.sqrt(), hi: ia.hi.sqrt() }
                    }
                }
            }
        }
        Op::Agg(aop, x) => {
            let ix = iv(x);
            match aop {
                AggOp::Min | AggOp::Max => ix,
                AggOp::Sum => match cells(x) {
                    Some(n) => ix.sum_of(n),
                    None if ix.lo >= 0.0 => Interval { lo: 0.0, hi: f64::INFINITY },
                    None => Interval::TOP,
                },
                AggOp::ColSums => match sizes.get(x).map(|s| s.shape.rows()) {
                    Some(r) => ix.sum_of(r),
                    None => Interval::TOP,
                },
                AggOp::RowSums => match sizes.get(x).map(|s| s.shape.cols()) {
                    Some(c) => ix.sum_of(c),
                    None => Interval::TOP,
                },
            }
        }
        Op::CrossProd(a) => {
            // Entries are dot products of column pairs; off-diagonal entries
            // can be negative even for a "nice" input, so only the product
            // bound scaled by the row count is safe.
            let prod = iv(a).mul(iv(a));
            match sizes.get(a).map(|s| s.shape.rows()) {
                Some(r) => prod.sum_of(r),
                None => Interval::TOP,
            }
        }
        Op::Tmv(a, b) => {
            let prod = iv(a).mul(iv(b));
            match sizes.get(a).map(|s| s.shape.rows()) {
                Some(r) => prod.sum_of(r),
                None => Interval::TOP,
            }
        }
        Op::SumSq(a) => {
            let sq = iv(a).square();
            match cells(a) {
                Some(n) => sq.sum_of(n),
                None => Interval { lo: 0.0, hi: f64::INFINITY },
            }
        }
    }
}

/// Hint when a node matches a pattern the rewriter would fuse or eliminate.
fn fusion_hint(
    graph: &Graph,
    id: NodeId,
    sizes: &HashMap<NodeId, SizeInfo>,
    diags: &mut Vec<Diagnostic>,
) {
    let hint = |diags: &mut Vec<Diagnostic>, message: String| {
        diags.push(Diagnostic {
            severity: Severity::Hint,
            node: id,
            code: codes::MISSED_FUSION,
            count: 1,
            message,
        });
    };
    match graph.op(id) {
        Op::MatMul(a, b) => {
            if let Op::Transpose(inner) = graph.op(*a) {
                if inner == b {
                    hint(diags, "t(X) %*% X fuses to crossprod(X), halving the multiplies".into());
                } else if matches!(
                    sizes.get(b).map(|s| s.shape),
                    Some(Shape::Matrix { cols: 1, .. })
                ) {
                    hint(
                        diags,
                        "t(X) %*% v fuses to tmv(X, v), avoiding the transpose materialization"
                            .into(),
                    );
                }
            }
        }
        Op::Agg(AggOp::Sum, x) => {
            if let Op::Ewise(EwiseOp::Mul, p, q) = graph.op(*x) {
                if p == q {
                    hint(diags, "sum(X * X) fuses to sumSq(X), skipping the intermediate".into());
                }
            }
        }
        Op::Transpose(a) => {
            if matches!(graph.op(*a), Op::Transpose(_)) {
                hint(diags, "t(t(X)) cancels to X".into());
            }
        }
        _ => {}
    }
}

/// Warn when a matmul chain, evaluated as written, costs at least twice the
/// DP-optimal association order.
fn chain_cost_warning(
    graph: &Graph,
    id: NodeId,
    sizes: &HashMap<NodeId, SizeInfo>,
    diags: &mut Vec<Diagnostic>,
) {
    if !matches!(graph.op(id), Op::MatMul(_, _)) {
        return;
    }
    // Only analyze maximal chains: skip matmuls consumed by another matmul
    // (the chain root reports once for the whole chain).
    // A node may have several parents; it suffices that *this* traversal
    // reports at the outermost multiply of each chain, so check all nodes.
    let consumed_by_matmul =
        graph.nodes().iter().any(|op| matches!(op, Op::MatMul(a, b) if *a == id || *b == id));
    if consumed_by_matmul {
        return;
    }
    let leaves = collect_chain_leaves(graph, id);
    if leaves.len() < 3 {
        return; // two matrices have only one association order
    }
    let dims: Option<Vec<(usize, usize)>> = leaves
        .iter()
        .map(|l| match sizes.get(l).map(|s| s.shape) {
            Some(Shape::Matrix { rows, cols }) => Some((rows, cols)),
            _ => None,
        })
        .collect();
    let Some(dims) = dims else { return };
    let shape_of = |n: NodeId| sizes.get(&n).map(|s| s.shape);
    let Some(as_written) = original_chain_cost(graph, id, &shape_of) else { return };
    let optimal = optimal_chain_cost(&dims);
    if optimal > 0 && as_written >= 2 * optimal {
        diags.push(Diagnostic {
            severity: Severity::Warning,
            node: id,
            code: codes::MMCHAIN_COST,
            count: 1,
            message: format!(
                "chain of {} matrices costs {as_written} multiplies as written vs {optimal} \
                 in the optimal order ({:.1}x); the optimizer's chain reordering would fix this",
                leaves.len(),
                as_written as f64 / optimal as f64
            ),
        });
    }
}

/// Violations of the rewrite-safety contract found by [`verify_rewrite`].
#[derive(Debug, Clone, PartialEq)]
pub enum RewriteCheckError {
    /// The rewritten graph no longer size-propagates though the original did.
    SizeRegression {
        /// The propagation failure on the rewritten graph.
        error: SizeError,
    },
    /// The rewrite changed the root's shape.
    RootShapeChanged {
        /// Shape of the original root.
        original: Shape,
        /// Shape of the rewritten root.
        rewritten: Shape,
    },
    /// A sparsity estimate left the valid `[0, 1]` range.
    InvalidSparsity {
        /// Offending node in the rewritten graph.
        node: NodeId,
        /// The out-of-range estimate.
        sparsity: f64,
    },
}

impl fmt::Display for RewriteCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteCheckError::SizeRegression { error } => {
                write!(f, "rewritten graph fails size propagation: {error}")
            }
            RewriteCheckError::RootShapeChanged { original, rewritten } => {
                write!(f, "rewrite changed the root shape: {original:?} -> {rewritten:?}")
            }
            RewriteCheckError::InvalidSparsity { node, sparsity } => {
                write!(f, "rewritten node %{node} has sparsity estimate {sparsity} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for RewriteCheckError {}

/// The rewrite-safety differ: statically re-propagate sizes on a rewritten
/// graph and check it against the original.
///
/// Returns `Ok(())` when the original graph does not size-propagate (there
/// is nothing to compare against — `optimize` accepts such graphs and only
/// applies size-oblivious rules to them).
pub fn verify_rewrite(
    original: &Graph,
    original_root: NodeId,
    rewritten: &Graph,
    rewritten_root: NodeId,
    inputs: &InputSizes,
) -> Result<(), RewriteCheckError> {
    let Ok(before) = propagate(original, original_root, inputs) else {
        return Ok(());
    };
    let after = propagate(rewritten, rewritten_root, inputs)
        .map_err(|error| RewriteCheckError::SizeRegression { error })?;

    let orig_shape = before[&original_root].shape;
    let new_shape = after[&rewritten_root].shape;
    // Scalars and 1x1 matrices are interchangeable at runtime; anything else
    // must match exactly.
    let dims = |s: Shape| (s.rows(), s.cols());
    if dims(orig_shape) != dims(new_shape) {
        return Err(RewriteCheckError::RootShapeChanged {
            original: orig_shape,
            rewritten: new_shape,
        });
    }

    for (node, info) in &after {
        if !(0.0..=1.0).contains(&info.sparsity) || info.sparsity.is_nan() {
            return Err(RewriteCheckError::InvalidSparsity {
                node: *node,
                sparsity: info.sparsity,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> InputSizes {
        let mut i = InputSizes::new();
        i.declare("X", 100, 10, 1.0);
        i.declare("v", 10, 1, 1.0);
        i.declare("u", 100, 1, 1.0);
        i
    }

    #[test]
    fn clean_program_has_no_findings() {
        let mut g = Graph::new();
        let x = g.input("X");
        let v = g.input("v");
        let xv = g.matmul(x, v);
        let s = g.agg(AggOp::Sum, xv);
        let r = analyze(&g, s, &inputs());
        assert!(r.is_clean(), "{}", r.render(&g));
        assert!(r.diagnostics.is_empty(), "{}", r.render(&g));
        assert_eq!(r.sizes[&s].shape, Shape::Scalar);
    }

    #[test]
    fn collects_multiple_errors_in_one_pass() {
        // Two independent shape errors plus an unbound input: all reported.
        let mut g = Graph::new();
        let x = g.input("X");
        let bad_mm = g.matmul(x, x); // 100x10 %*% 100x10
        let v = g.input("v");
        let bad_ew = g.ewise(EwiseOp::Add, x, v); // 100x10 + 10x1
        let w = g.input("undeclared");
        let joined = g.ewise(EwiseOp::Mul, bad_ew, w);
        let paired = g.ewise(EwiseOp::Sub, bad_mm, joined);
        let root = g.agg(AggOp::Sum, paired);
        let r = analyze(&g, root, &inputs());
        assert_eq!(r.error_count(), 3, "{}", r.render(&g));
        let codes = r.codes();
        assert!(codes.contains(&codes::SHAPE_MISMATCH));
        assert!(codes.contains(&codes::UNBOUND_INPUT));
        // Provenance: the matmul error is anchored to the matmul node.
        assert!(r.diagnostics.iter().any(|d| d.node == bad_mm && d.code == codes::SHAPE_MISMATCH));
    }

    #[test]
    fn log_of_negative_constant_is_error() {
        let mut g = Graph::new();
        let c = g.constant(-2.0);
        let l = g.unary(UnaryOp::Log, c);
        let r = analyze(&g, l, &inputs());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.diagnostics[0].code, codes::DOMAIN_VIOLATION);
        assert_eq!(r.diagnostics[0].node, l);
    }

    #[test]
    fn sqrt_of_possibly_negative_warns() {
        // X - 5 could be negative even if X were nonnegative; but X is TOP,
        // so X - 5 is TOP and stays silent. Use abs(X) - 5: [−5, inf).
        let mut g = Graph::new();
        let x = g.input("X");
        let ax = g.unary(UnaryOp::Abs, x);
        let c = g.constant(5.0);
        let shifted = g.ewise(EwiseOp::Sub, ax, c);
        let s = g.unary(UnaryOp::Sqrt, shifted);
        let root = g.agg(AggOp::Sum, s);
        let r = analyze(&g, root, &inputs());
        assert!(r.is_clean());
        let warns: Vec<_> = r.with_severity(Severity::Warning).collect();
        assert_eq!(warns.len(), 1, "{}", r.render(&g));
        assert_eq!(warns[0].code, codes::POSSIBLE_DOMAIN);
        assert_eq!(warns[0].node, s);
    }

    #[test]
    fn unknown_operand_stays_silent() {
        // log(X) with X fully unknown: no evidence, no warning.
        let mut g = Graph::new();
        let x = g.input("X");
        let l = g.unary(UnaryOp::Log, x);
        let root = g.agg(AggOp::Sum, l);
        let r = analyze(&g, root, &inputs());
        assert!(r.diagnostics.is_empty(), "{}", r.render(&g));
    }

    #[test]
    fn division_by_constant_zero_is_error() {
        let mut g = Graph::new();
        let x = g.input("X");
        let z = g.constant(0.0);
        let d = g.ewise(EwiseOp::Div, x, z);
        let root = g.agg(AggOp::Sum, d);
        let r = analyze(&g, root, &inputs());
        assert_eq!(r.error_count(), 1);
        assert!(r.diagnostics.iter().any(|d2| d2.node == d && d2.code == codes::DOMAIN_VIOLATION));
    }

    #[test]
    fn division_by_possibly_zero_warns() {
        // abs(X) is [0, inf): contains zero but is not all-unknown.
        let mut g = Graph::new();
        let x = g.input("X");
        let ax = g.unary(UnaryOp::Abs, x);
        let d = g.ewise(EwiseOp::Div, x, ax);
        let root = g.agg(AggOp::Sum, d);
        let r = analyze(&g, root, &inputs());
        assert!(r.is_clean());
        assert!(r.diagnostics.iter().any(|d2| d2.node == d && d2.code == codes::POSSIBLE_DOMAIN));
    }

    #[test]
    fn dead_nodes_are_hinted() {
        let mut g = Graph::new();
        let x = g.input("X");
        let root = g.agg(AggOp::Sum, x);
        let orphan = g.input("v");
        let orphan2 = g.transpose(orphan);
        let r = analyze(&g, root, &inputs());
        let dead: Vec<NodeId> =
            r.diagnostics.iter().filter(|d| d.code == codes::DEAD_NODE).map(|d| d.node).collect();
        assert_eq!(dead, vec![orphan, orphan2]);
    }

    #[test]
    fn missed_fusion_hints_fire() {
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let cp = g.matmul(t, x); // crossprod pattern
        let sq = g.ewise(EwiseOp::Mul, x, x);
        let ss = g.agg(AggOp::Sum, sq); // sumsq pattern
        let scaled = g.ewise(EwiseOp::Mul, cp, ss);
        let root = g.agg(AggOp::Sum, scaled);
        let r = analyze(&g, root, &inputs());
        let fusions: Vec<NodeId> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == codes::MISSED_FUSION)
            .map(|d| d.node)
            .collect();
        assert!(fusions.contains(&cp), "{}", r.render(&g));
        assert!(fusions.contains(&ss), "{}", r.render(&g));
    }

    #[test]
    fn tmv_and_double_transpose_hints() {
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let u = g.input("u");
        let tmv = g.matmul(t, u);
        let tt_in = g.transpose(t); // t(t(X))
        let joined = g.matmul(tt_in, tmv);
        let root = g.agg(AggOp::Sum, joined);
        let r = analyze(&g, root, &inputs());
        let fusions: Vec<NodeId> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == codes::MISSED_FUSION)
            .map(|d| d.node)
            .collect();
        assert!(fusions.contains(&tmv), "{}", r.render(&g));
        assert!(fusions.contains(&tt_in), "{}", r.render(&g));
    }

    #[test]
    fn mmchain_warning_on_bad_order() {
        // (X %*% Y) %*% u: 1000x20 * 20x1000 * 1000x1.
        // Left-deep: 20M + 1M = 21M multiplies; optimal: 20K + 20K = 40K.
        let mut i = InputSizes::new();
        i.declare("X", 1000, 20, 1.0);
        i.declare("Y", 20, 1000, 1.0);
        i.declare("u", 1000, 1, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let y = g.input("Y");
        let u = g.input("u");
        let xy = g.matmul(x, y);
        let root = g.matmul(xy, u);
        let r = analyze(&g, root, &i);
        let w: Vec<_> = r.diagnostics.iter().filter(|d| d.code == codes::MMCHAIN_COST).collect();
        assert_eq!(w.len(), 1, "{}", r.render(&g));
        assert_eq!(w[0].node, root);

        // The optimal order gets no warning.
        let mut g2 = Graph::new();
        let x = g2.input("X");
        let y = g2.input("Y");
        let u = g2.input("u");
        let yu = g2.matmul(y, u);
        let root2 = g2.matmul(x, yu);
        let r2 = analyze(&g2, root2, &i);
        assert!(r2.diagnostics.iter().all(|d| d.code != codes::MMCHAIN_COST));
    }

    #[test]
    fn analyze_program_integrates_with_parser() {
        let (report, graph, _root) = analyze_program("sum(X %*% X)", &inputs()).expect("parses");
        assert_eq!(report.error_count(), 1, "{}", report.render(&graph));
        assert_eq!(report.diagnostics[0].code, codes::SHAPE_MISMATCH);
    }

    #[test]
    fn report_renders_with_provenance() {
        let mut g = Graph::new();
        let c = g.constant(-1.0);
        let l = g.unary(UnaryOp::Log, c);
        let r = analyze(&g, l, &inputs());
        let text = r.render(&g);
        assert!(text.contains("E003"), "{text}");
        assert!(text.contains("log(-1)"), "{text}");
    }

    #[test]
    fn interval_arithmetic_basics() {
        let a = Interval { lo: -2.0, hi: 3.0 };
        let b = Interval { lo: 1.0, hi: 4.0 };
        assert_eq!(a.add(b), Interval { lo: -1.0, hi: 7.0 });
        assert_eq!(a.sub(b), Interval { lo: -6.0, hi: 2.0 });
        assert_eq!(a.mul(b), Interval { lo: -8.0, hi: 12.0 });
        assert_eq!(a.square(), Interval { lo: 0.0, hi: 9.0 });
        assert_eq!(a.abs(), Interval { lo: 0.0, hi: 3.0 });
        assert!(a.div(a).is_top(), "divisor spans zero");
        assert_eq!(
            Interval::point(6.0).div(Interval { lo: 2.0, hi: 3.0 }),
            Interval { lo: 2.0, hi: 3.0 }
        );
        assert_eq!(b.sum_of(3), Interval { lo: 3.0, hi: 12.0 });
        assert_eq!(Interval::TOP.sum_of(0), Interval { lo: 0.0, hi: 0.0 });
    }

    #[test]
    fn differ_accepts_real_optimizer_output() {
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let mm = g.matmul(t, x);
        let s = g.agg(AggOp::Sum, mm);
        let i = inputs();
        let (og, root, _) = crate::rewrite::optimize(&g, s, &i).unwrap();
        verify_rewrite(&g, s, &og, root, &i).unwrap();
    }

    #[test]
    fn differ_rejects_shape_change() {
        // Simulate a buggy rewrite: replace sum(X) with colSums(X).
        let mut g = Graph::new();
        let x = g.input("X");
        let s = g.agg(AggOp::Sum, x);
        let mut bad = Graph::new();
        let x2 = bad.input("X");
        let cs = bad.agg(AggOp::ColSums, x2);
        let err = verify_rewrite(&g, s, &bad, cs, &inputs()).unwrap_err();
        assert!(matches!(err, RewriteCheckError::RootShapeChanged { .. }), "{err}");
    }

    #[test]
    fn differ_rejects_size_regression() {
        // Buggy rewrite introduces a shape error that the original lacked.
        let mut g = Graph::new();
        let x = g.input("X");
        let v = g.input("v");
        let xv = g.matmul(x, v);
        let s = g.agg(AggOp::Sum, xv);
        let mut bad = Graph::new();
        let x2 = bad.input("X");
        let bad_mm = bad.matmul(x2, x2);
        let s2 = bad.agg(AggOp::Sum, bad_mm);
        let err = verify_rewrite(&g, s, &bad, s2, &inputs()).unwrap_err();
        assert!(matches!(err, RewriteCheckError::SizeRegression { .. }), "{err}");
    }

    #[test]
    fn budget_overflow_warns_with_step_provenance_and_merged_counts() {
        // sum(exp(X)) has no blockable operator: the planner cannot help, so
        // W103 fires. X is the largest live value at two over-budget steps;
        // the dedup pass merges them into one counted diagnostic.
        let mut i = InputSizes::new();
        i.declare("X", 256, 256, 1.0); // 512 KB
        let mut g = Graph::new();
        let x = g.input("X");
        let u = g.unary(UnaryOp::Exp, x);
        let root = g.agg(AggOp::Sum, u);
        let r = analyze_with_memory(&g, root, &i, 1, crate::memory::MemoryBudget::bytes(400_000));
        let w: Vec<_> =
            r.diagnostics.iter().filter(|d| d.code == codes::PLAN_EXCEEDS_BUDGET).collect();
        assert_eq!(w.len(), 2, "{}", r.render(&g));
        let at_x = w.iter().find(|d| d.node == x).expect("anchored at X");
        assert_eq!(at_x.count, 2, "X is the largest live value at two steps");
        assert!(at_x.to_string().contains("(x2)"), "{at_x}");
        assert!(at_x.message.contains("step 0"), "{}", at_x.message);
        assert!(w.iter().any(|d| d.node == u && d.count == 1), "{}", r.render(&g));
        // Hints never fire alongside an over-budget verdict.
        assert!(r.diagnostics.iter().all(|d| d.code != codes::REORDER_AVOIDS_SPILL));
    }

    #[test]
    fn reorder_hint_fires_when_a_schedule_avoids_the_spill() {
        // root = X + (A %*% B) under 5 MB: the DFS plan must block the
        // matmul, but evaluating the matmul subtree first fits in memory.
        let mut i = InputSizes::new();
        i.declare("X", 256, 256, 1.0);
        i.declare("A", 256, 1024, 1.0);
        i.declare("B", 1024, 256, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let a = g.input("A");
        let b = g.input("B");
        let r_mm = g.matmul(a, b);
        let root = g.ewise(EwiseOp::Add, x, r_mm);
        let r = analyze_with_memory(&g, root, &i, 1, crate::memory::MemoryBudget::bytes(5_000_000));
        let hints: Vec<_> =
            r.diagnostics.iter().filter(|d| d.code == codes::REORDER_AVOIDS_SPILL).collect();
        assert_eq!(hints.len(), 1, "{}", r.render(&g));
        assert_eq!(hints[0].node, root);
        assert!(hints[0].message.contains("peak-minimizing"), "{}", hints[0].message);
        assert!(r.diagnostics.iter().all(|d| d.code != codes::PLAN_EXCEEDS_BUDGET));
    }

    #[test]
    fn unbounded_budget_adds_no_memory_findings() {
        let mut g = Graph::new();
        let x = g.input("X");
        let root = g.agg(AggOp::Sum, x);
        let r =
            analyze_with_memory(&g, root, &inputs(), 1, crate::memory::MemoryBudget::unbounded());
        assert!(r.diagnostics.is_empty(), "{}", r.render(&g));
    }

    #[test]
    fn fitting_plans_get_no_memory_findings() {
        // The planner's blocked plan fits: no W103; a spill is required in
        // *every* order (the operand simply doesn't fit), so no H203 either.
        let mut i = InputSizes::new();
        i.declare("X", 100_000, 200, 1.0); // 160 MB
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(Op::CrossProd(x));
        let r = analyze_with_memory(&g, cp, &i, 1, crate::memory::MemoryBudget::bytes(1 << 20));
        assert!(
            r.diagnostics.iter().all(|d| d.code != codes::PLAN_EXCEEDS_BUDGET),
            "{}",
            r.render(&g)
        );
        assert!(
            r.diagnostics.iter().all(|d| d.code != codes::REORDER_AVOIDS_SPILL),
            "{}",
            r.render(&g)
        );
    }

    #[test]
    fn stale_cost_model_hint_fires_on_drift() {
        // crossprod on 1000x20 = 8e5 flops. A model that measured the fused
        // kernel at 8 GFLOP/s disagrees with the 1 GFLOP/s static assumption
        // by 8x > DRIFT_FACTOR: H204 fires on the crossprod node only.
        let mut i = InputSizes::new();
        i.declare("X", 1000, 20, 1.0);
        let mut g = Graph::new();
        let x = g.input("X");
        let cp = g.push(Op::CrossProd(x));
        let root = g.agg(AggOp::Sum, cp);
        let mut store = dm_obs::ProfileStore::new();
        for _ in 0..5 {
            store.record("crossprod", "fused", 800_000, 100_000); // 8 GFLOP/s
        }
        let model = crate::cost::CostModel::new(store);
        let r = analyze_with_cost(&g, root, &i, 1, &model);
        let hints: Vec<_> =
            r.diagnostics.iter().filter(|d| d.code == codes::COST_MODEL_STALE).collect();
        assert_eq!(hints.len(), 1, "{}", r.render(&g));
        assert_eq!(hints[0].node, cp);
        assert!(hints[0].message.contains("stale"), "{}", hints[0].message);

        // Within DRIFT_FACTOR (2 GFLOP/s): silent.
        let mut store = dm_obs::ProfileStore::new();
        for _ in 0..5 {
            store.record("crossprod", "fused", 800_000, 400_000); // 2 GFLOP/s
        }
        let r = analyze_with_cost(&g, root, &i, 1, &crate::cost::CostModel::new(store));
        assert!(r.diagnostics.iter().all(|d| d.code != codes::COST_MODEL_STALE));

        // Empty model: the plain analyze report.
        let r = analyze_with_cost(&g, root, &i, 1, &crate::cost::CostModel::default());
        assert!(r.diagnostics.iter().all(|d| d.code != codes::COST_MODEL_STALE));
    }

    #[test]
    fn differ_tolerates_unpropagatable_original() {
        let mut g = Graph::new();
        let x = g.input("Undeclared");
        let t = g.transpose(x);
        let mut og = Graph::new();
        let x2 = og.input("Undeclared");
        let t2 = og.transpose(x2);
        assert_eq!(verify_rewrite(&g, t, &og, t2, &InputSizes::new()), Ok(()));
    }
}
