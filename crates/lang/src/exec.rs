//! The interpreter: executes an optimized DAG over bound inputs with
//! physical-kernel dispatch and per-node memoization.

use crate::expr::{AggOp, EwiseOp, Graph, NodeId, Op, UnaryOp};
use crate::memory::MemoryBudget;
use crate::physical::{Kernel, PhysicalPlan};
use dm_buffer::policy::PolicyKind;
use dm_buffer::storage::{FileStore, MemStore, Storage};
use dm_buffer::{
    ooc, panel_rows_for, BlockStore, BufferPool, PoolError, PoolStats, SharedBufferPool,
};
use dm_matrix::{ops, par, sparse, Csr, Dense, Matrix};
use dm_obs::{elapsed_ns, trace, Recorder};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A runtime value: matrix (dense or sparse) or scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// Matrix value.
    Matrix(Matrix),
    /// Scalar value.
    Scalar(f64),
}

impl Val {
    /// Unwrap a scalar.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Val::Scalar(v) => Some(*v),
            Val::Matrix(m) if m.rows() == 1 && m.cols() == 1 => Some(m.get(0, 0)),
            _ => None,
        }
    }

    /// Unwrap (and densify) a matrix.
    pub fn as_dense(&self) -> Option<Dense> {
        match self {
            Val::Matrix(m) => Some(m.to_dense()),
            Val::Scalar(_) => None,
        }
    }
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A named input is not bound in the environment.
    UnboundInput(String),
    /// Operand shapes or types are incompatible at runtime.
    Type {
        /// Node where the error occurred.
        node: NodeId,
        /// Description.
        message: String,
    },
    /// The out-of-core spill pool failed while a blocked kernel streamed
    /// tiles (e.g. the budget is smaller than a single tile, or spill I/O
    /// failed).
    OutOfCore {
        /// Node where the error occurred.
        node: NodeId,
        /// Description of the pool failure.
        message: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnboundInput(n) => write!(f, "unbound input: {n}"),
            ExecError::Type { node, message } => write!(f, "type error at node {node}: {message}"),
            ExecError::OutOfCore { node, message } => {
                write!(f, "out-of-core failure at node {node}: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Input bindings for execution.
#[derive(Debug, Clone, Default)]
pub struct Env {
    map: HashMap<String, Val>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a matrix input.
    pub fn bind(&mut self, name: &str, m: Matrix) -> &mut Self {
        self.map.insert(name.to_owned(), Val::Matrix(m));
        self
    }

    /// Bind a scalar input.
    pub fn bind_scalar(&mut self, name: &str, v: f64) -> &mut Self {
        self.map.insert(name.to_owned(), Val::Scalar(v));
        self
    }

    fn get(&self, name: &str) -> Option<&Val> {
        self.map.get(name)
    }
}

/// Per-execution statistics: approximate floating-point operation counts,
/// used by the E5 experiment to quantify rewrite wins independent of timer
/// noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Approximate flops executed.
    pub flops: u64,
    /// Nodes evaluated (cache misses).
    pub nodes_evaluated: u64,
    /// Node evaluations served from the memo table.
    pub memo_hits: u64,
    /// Node evaluations dispatched to a multi-threaded kernel.
    pub par_nodes: u64,
    /// Node evaluations dispatched to a blocked out-of-core kernel.
    pub ooc_nodes: u64,
}

/// Which kernel family actually ran for one node, as observed at dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Dense row-major kernel.
    Dense,
    /// CSR sparse kernel (a sparse operand or output drove dispatch).
    Sparse,
    /// A fused operator (`crossprod`, `tmv`, `sumSq`).
    Fused,
    /// Scalar-only computation.
    Scalar,
    /// Multi-threaded dense kernel (`dm_matrix::par`).
    Parallel,
    /// Blocked out-of-core kernel (`dm_buffer::ooc`), streaming tiles
    /// through the executor's spill pool.
    Blocked,
}

impl KernelChoice {
    /// Static lowercase name, used as a span argument and by `Display`.
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::Dense => "dense",
            KernelChoice::Sparse => "sparse",
            KernelChoice::Fused => "fused",
            KernelChoice::Scalar => "scalar",
            KernelChoice::Parallel => "parallel",
            KernelChoice::Blocked => "blocked",
        }
    }
}

impl fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-node runtime measurements collected when profiling is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeStats {
    /// Wall time spent in this node excluding children (summed over evals).
    pub self_ns: u64,
    /// Wall time including children.
    pub total_ns: u64,
    /// Flops executed by this node excluding children (summed over evals).
    /// Paired with [`self_ns`](Self::self_ns) this is an observed
    /// throughput sample, the raw material of
    /// [`record_kernel_profiles`](Executor::record_kernel_profiles).
    pub self_flops: u64,
    /// Cache-miss evaluations.
    pub evals: u64,
    /// Evaluations served from the memo table.
    pub memo_hits: u64,
    /// Kernel family dispatched (None until first eval).
    pub kernel: Option<KernelChoice>,
    /// Rows of the last produced value (scalars are 1).
    pub out_rows: usize,
    /// Columns of the last produced value.
    pub out_cols: usize,
    /// Actual non-zero fraction of the last produced value.
    pub out_sparsity: f64,
}

/// The per-node runtime profile of one execution — the raw material for
/// [`profile_report`](crate::explain::profile_report).
#[derive(Debug, Clone, Default)]
pub struct ExecProfile {
    nodes: HashMap<NodeId, NodeStats>,
}

impl ExecProfile {
    /// Stats for one node, if it was ever reached.
    pub fn node(&self, id: NodeId) -> Option<&NodeStats> {
        self.nodes.get(&id)
    }

    /// Every profiled node.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeStats)> {
        self.nodes.iter().map(|(&k, v)| (k, v))
    }

    /// Total self time across all nodes (= end-to-end eval wall time, since
    /// self times partition the tree walk).
    pub fn total_self_ns(&self) -> u64 {
        self.nodes.values().map(|n| n.self_ns).sum()
    }
}

/// DAG interpreter with memoization.
pub struct Executor<'g> {
    graph: &'g Graph,
    plan: Option<PhysicalPlan>,
    degree: usize,
    mem_budget: Option<usize>,
    // Spill pool shared by every blocked kernel of this executor, created
    // lazily on the first out-of-core dispatch.
    ooc_pool: Option<SharedBufferPool<Box<dyn Storage>>>,
    next_ooc_matrix: u64,
    memo: HashMap<NodeId, Val>,
    stats: ExecStats,
    profile: Option<ExecProfile>,
    // Per-recursion-frame accumulator of children wall time, so self time
    // can be derived as total minus children. Only used while profiling.
    child_ns_stack: Vec<u64>,
    // Same discipline for flops: children subtree flops, so self flops can
    // be derived as subtree total minus children. Only used while profiling.
    child_flops_stack: Vec<u64>,
    // Emit one structured trace span per evaluated node (plus memo-hit
    // instants). Set by `traced()` or implied by the DMML_TRACE env var.
    tracing: bool,
    // When DMML_TRACE named a file at construction, the executor writes the
    // Chrome trace there on drop.
    trace_to_env: bool,
    // When DMML_PROFILE_DIR named a directory at construction, the executor
    // merge-saves its kernel throughput profile there on drop.
    profile_to_env: bool,
}

impl<'g> Executor<'g> {
    /// New executor with default (dense) kernel choices.
    pub fn new(graph: &'g Graph) -> Self {
        // DMML_TRACE=<path> turns tracing on for every executor in the
        // process and writes the Chrome trace to <path> when this executor
        // is dropped.
        let trace_to_env = trace::env_trace_path().is_some();
        if trace_to_env {
            trace::set_enabled(true);
        }
        // DMML_PROFILE_DIR=<dir> turns per-node profiling on and persists
        // (op, kernel, flops, ns) throughput samples there when this
        // executor is dropped, feeding the calibrated cost model
        // (crate::cost) on subsequent runs.
        let profile_to_env = dm_obs::profile::env_profile_dir().is_some();
        Executor {
            graph,
            plan: None,
            degree: 1,
            mem_budget: None,
            ooc_pool: None,
            next_ooc_matrix: 0,
            memo: HashMap::new(),
            stats: ExecStats::default(),
            profile: profile_to_env.then(ExecProfile::default),
            child_ns_stack: Vec::new(),
            child_flops_stack: Vec::new(),
            tracing: trace_to_env,
            trace_to_env,
            profile_to_env,
        }
    }

    /// New executor honoring a physical plan. Nodes the plan marked
    /// [`Kernel::Parallel`] run the multi-threaded kernels at the plan's
    /// degree (see [`plan_with_degree`](crate::physical::plan_with_degree));
    /// nodes marked [`Kernel::Blocked`] stream tiles through a spill pool
    /// sized to the plan's memory budget (see
    /// [`plan_with_memory`](crate::physical::plan_with_memory)); everything
    /// else keeps the serial dispatch.
    pub fn with_plan(graph: &'g Graph, plan: PhysicalPlan) -> Self {
        let mut ex = Executor::new(graph);
        ex.degree = plan.degree();
        ex.mem_budget = plan.mem_budget();
        ex.plan = Some(plan);
        ex
    }

    /// Override the degree of parallelism used for [`Kernel::Parallel`]
    /// nodes (the parallel kernels are bit-identical to the serial ones at
    /// every degree, so this only affects wall time).
    pub fn with_degree(mut self, degree: usize) -> Self {
        self.degree = degree.max(1);
        self
    }

    /// The degree of parallelism in effect for parallel-planned nodes.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Override the memory budget for [`Kernel::Blocked`] nodes. An
    /// unbounded budget makes blocked-planned nodes fall back to the
    /// in-memory dense kernels (which compute the identical bits — the
    /// budget only bounds residency).
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.mem_budget = budget.get();
        self
    }

    /// The memory budget (bytes) in effect for blocked-planned nodes.
    pub fn mem_budget(&self) -> Option<usize> {
        self.mem_budget
    }

    /// The spill pool backing blocked kernels, once one has run. Exposes
    /// pool counters ([`SharedBufferPool::stats`]) and the audit hooks used
    /// by tests and the profile report.
    pub fn ooc_pool(&self) -> Option<&SharedBufferPool<Box<dyn Storage>>> {
        self.ooc_pool.as_ref()
    }

    /// Spill-pool counters (spills, faults, evictions, pins), or `None`
    /// until a blocked kernel has run.
    pub fn ooc_pool_stats(&self) -> Option<PoolStats> {
        self.ooc_pool.as_ref().map(|p| p.stats())
    }

    /// The executor's spill pool, created on first use: an LRU pool capped
    /// at the memory budget over an on-disk store in a unique temp
    /// directory (falling back to an in-memory store if the directory
    /// cannot be created).
    fn spill_pool(&mut self, budget: usize) -> SharedBufferPool<Box<dyn Storage>> {
        if let Some(p) = &self.ooc_pool {
            return p.clone();
        }
        static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dmml_spill_{}_{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let storage: Box<dyn Storage> = match FileStore::new(dir) {
            Ok(fs) => Box::new(fs),
            Err(_) => Box::new(MemStore::default()),
        };
        // The pool gets half the budget; the other half is headroom for the
        // materialized operands/outputs the certifier keeps resident (see
        // crate::liveness — the certifier caps its pool term with the same
        // spill_pool_capacity, so certified plans and this pool agree).
        let capacity = crate::memory::spill_pool_capacity(budget);
        let pool = SharedBufferPool::new(BufferPool::new(capacity, PolicyKind::Lru, storage));
        self.ooc_pool = Some(pool.clone());
        pool
    }

    /// Reserve `n` fresh matrix ids in the spill pool's key space.
    fn ooc_ids(&mut self, n: u64) -> u64 {
        let base = self.next_ooc_matrix;
        self.next_ooc_matrix += n;
        base
    }

    /// Share a pre-built spill pool instead of lazily creating a private
    /// one, reserving matrix ids starting at `first_matrix_id`.
    ///
    /// A server runs many executors against one bounded spill pool so that
    /// blocked kernels from concurrent requests compete for the *same*
    /// budgeted capacity instead of each opening an unbounded private
    /// pool. [`PageKey`](dm_buffer::PageKey) matrix ids are allocated from
    /// `self` starting at 0 by default, so concurrent executors sharing a
    /// pool **must** be given disjoint id ranges here (e.g. a per-request
    /// sequence number shifted into the high bits) or their pages would
    /// alias.
    pub fn with_spill_pool(
        mut self,
        pool: SharedBufferPool<Box<dyn Storage>>,
        first_matrix_id: u64,
    ) -> Self {
        self.ooc_pool = Some(pool);
        self.next_ooc_matrix = first_matrix_id;
        self
    }

    /// Disable the `DMML_TRACE` / `DMML_PROFILE_DIR` drop-time exports for
    /// this executor. Long-lived processes that construct an executor per
    /// request (the scoring server) record stats and profiles through
    /// their own registry instead; per-request file writes on drop would
    /// be both slow and racy.
    pub fn without_env_sinks(mut self) -> Self {
        self.trace_to_env = false;
        self.profile_to_env = false;
        self
    }

    /// Enable per-node profiling (wall time, kernel dispatch, output shape
    /// and sparsity). Profiling reads the clock and counts non-zeros per
    /// node, so enable it for diagnosis runs, not benchmark baselines.
    pub fn profiled(mut self) -> Self {
        self.profile = Some(ExecProfile::default());
        self
    }

    /// The collected per-node profile (None unless [`profiled`](Self::profiled)).
    pub fn profile(&self) -> Option<&ExecProfile> {
        self.profile.as_ref()
    }

    /// Enable structured tracing: one [`dm_obs::trace`] span per evaluated
    /// HOP node (op label, kernel family, output dims, subtree flops) and an
    /// instant event per memo hit, on the same timeline as the `dm-par` task
    /// spans and `dm-buffer` pool events those evaluations trigger. Turns
    /// the process-global collector on; drain with
    /// [`trace::take_events`] or export with [`trace::write_chrome_trace`].
    pub fn traced(mut self) -> Self {
        trace::set_enabled(true);
        self.tracing = true;
        self
    }

    /// True when this executor emits trace spans.
    pub fn is_traced(&self) -> bool {
        self.tracing
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Push this execution's aggregate statistics into a [`Recorder`] under
    /// the `lang.exec.*` sites.
    pub fn record_stats(&self, rec: &dyn Recorder) {
        if !rec.is_enabled() {
            return;
        }
        rec.add("lang.exec.nodes_evaluated", self.stats.nodes_evaluated);
        rec.add("lang.exec.memo_hits", self.stats.memo_hits);
        rec.add("lang.exec.flops", self.stats.flops);
        rec.add("lang.exec.par_nodes", self.stats.par_nodes);
        rec.gauge_set("lang.exec.par_degree", self.degree as u64);
        rec.add("lang.exec.ooc_nodes", self.stats.ooc_nodes);
        if let Some(budget) = self.mem_budget {
            rec.gauge_set("lang.exec.mem_budget", budget as u64);
        }
        if let Some(pool) = &self.ooc_pool {
            // Spill traffic of the blocked kernels: how many bytes left and
            // re-entered memory to stay under the budget.
            let ps = pool.stats();
            rec.add("lang.exec.ooc.spilled_bytes", ps.spilled_bytes);
            rec.add("lang.exec.ooc.faulted_bytes", ps.faulted_bytes);
            rec.add("lang.exec.ooc.evictions", ps.evictions);
            rec.add("lang.exec.ooc.pins", ps.pins);
        }
        if let Some(p) = &self.profile {
            rec.record_duration_ns("lang.exec.eval_wall", p.total_self_ns());
            // Per-kernel-family self times: comparing `lang.exec.kernel.dense`
            // against `lang.exec.kernel.parallel` across runs is how per-kernel
            // speedup is derived (see EXPERIMENTS.md E13).
            for (_, ns) in p.nodes() {
                if let Some(k) = ns.kernel {
                    rec.record_duration_ns(&format!("lang.exec.kernel.{k}"), ns.self_ns);
                }
                // Latency distribution across nodes: the report's p50/p95/p99
                // show whether wall time is spread evenly or dominated by a
                // few heavy operators.
                rec.record_histogram("lang.exec.node_self_ns", ns.self_ns);
            }
        }
    }

    /// Fold this execution's per-node throughput observations into a
    /// [`ProfileStore`](dm_obs::profile::ProfileStore): one
    /// `(op, kernel family, self flops, self ns)` sample per profiled node
    /// that did real work. This is the observe edge of the
    /// observe→calibrate→re-cost loop — persist the store and the
    /// calibrated cost model ([`CostModel`](crate::cost::CostModel)) divides
    /// future flop estimates by these measured GFLOP/s. No-op unless the
    /// executor was [`profiled`](Self::profiled).
    pub fn record_kernel_profiles(&self, store: &mut dm_obs::profile::ProfileStore) {
        let Some(p) = &self.profile else { return };
        for (id, ns) in p.nodes() {
            let Some(kernel) = ns.kernel else { continue };
            if ns.self_flops == 0 || ns.self_ns == 0 {
                continue;
            }
            let op = crate::explain::op_label(self.graph, id);
            store.record(&op, &kernel.to_string(), ns.self_flops, ns.self_ns);
        }
    }

    fn kernel(&self, id: NodeId) -> Kernel {
        self.plan.as_ref().map_or(Kernel::Dense, |p| p.kernel(id))
    }

    /// Degree to run node `id` at: the executor degree for parallel-planned
    /// nodes, 1 (serial) otherwise. Also counts parallel dispatches.
    fn node_degree(&mut self, id: NodeId) -> usize {
        if self.kernel(id) == Kernel::Parallel && self.degree > 1 {
            self.stats.par_nodes += 1;
            self.degree
        } else {
            1
        }
    }

    /// Evaluate the node, then cross-check the runtime value's dimensions
    /// against statically propagated sizes (from
    /// [`size::propagate`](crate::size::propagate) or
    /// [`analyze`](crate::analyze::analyze)). A mismatch means the static
    /// analyzer and the interpreter disagree — a compiler bug, reported as a
    /// [`ExecError::Type`] naming both shapes. Scalars and 1x1 matrices are
    /// interchangeable.
    pub fn eval_verified(
        &mut self,
        id: NodeId,
        env: &Env,
        expected: &HashMap<NodeId, crate::size::SizeInfo>,
    ) -> Result<Val, ExecError> {
        let val = self.eval(id, env)?;
        if let Some(info) = expected.get(&id) {
            let (er, ec) = (info.shape.rows(), info.shape.cols());
            let (ar, ac) = match &val {
                Val::Scalar(_) => (1, 1),
                Val::Matrix(m) => (m.rows(), m.cols()),
            };
            if (ar, ac) != (er, ec) {
                return Err(ExecError::Type {
                    node: id,
                    message: format!(
                        "static analysis predicted a {er}x{ec} result but execution \
                         produced {ar}x{ac}"
                    ),
                });
            }
        }
        Ok(val)
    }

    /// Evaluate the nodes of a topological `order` in sequence, returning
    /// the final node's value. Each step primes the memo, so the recursive
    /// evaluator inside follows the given schedule instead of its default
    /// depth-first order — this is how a reordered schedule from
    /// [`min_peak_order`](crate::liveness::min_peak_order) is realized.
    /// The order must be topological (children before parents); a
    /// non-topological order still computes correct values (children are
    /// evaluated on demand) but loses the scheduling intent.
    pub fn eval_schedule(&mut self, order: &[NodeId], env: &Env) -> Result<Val, ExecError> {
        let mut last = None;
        for &id in order {
            last = Some(self.eval(id, env)?);
        }
        last.ok_or_else(|| ExecError::Type { node: 0, message: "empty schedule".into() })
    }

    /// Evaluate the node, reusing memoized results for shared subtrees.
    pub fn eval(&mut self, id: NodeId, env: &Env) -> Result<Val, ExecError> {
        let tracing = self.tracing && trace::is_enabled();
        if let Some(v) = self.memo.get(&id) {
            self.stats.memo_hits += 1;
            if let Some(p) = &mut self.profile {
                p.nodes.entry(id).or_default().memo_hits += 1;
            }
            if tracing {
                trace::instant(
                    "exec.memo_hit",
                    &[("node", id.into()), ("op", crate::explain::op_site(self.graph, id).into())],
                );
            }
            return Ok(v.clone());
        }
        self.stats.nodes_evaluated += 1;
        let mut span = if tracing {
            let mut s = trace::Span::enter(crate::explain::op_site(self.graph, id), "exec");
            s.arg("node", id);
            Some(s)
        } else {
            None
        };
        let flops_before = self.stats.flops;
        let result = if self.profile.is_none() {
            match self.eval_uncached(id, env) {
                Ok(val) => {
                    self.memo.insert(id, val.clone());
                    Ok(val)
                }
                Err(e) => Err(e),
            }
        } else {
            self.eval_profiled(id, env)
        };
        if let (Some(s), Ok(val)) = (&mut span, &result) {
            s.arg("kernel", self.kernel_choice(id, val).name());
            let (rows, cols) = match val {
                Val::Scalar(_) => (1, 1),
                Val::Matrix(m) => (m.rows(), m.cols()),
            };
            s.arg("rows", rows);
            s.arg("cols", cols);
            // Flops accumulated by this node *and* its children — the child
            // spans nested under this one carry their own subtree counts.
            s.arg("flops", self.stats.flops - flops_before);
        }
        result
    }

    /// The cache-miss path with timing: self time is derived as total wall
    /// time minus the summed wall time of child evaluations, collected via a
    /// per-frame accumulator stack.
    fn eval_profiled(&mut self, id: NodeId, env: &Env) -> Result<Val, ExecError> {
        let t0 = Instant::now();
        let flops_before = self.stats.flops;
        self.child_ns_stack.push(0);
        self.child_flops_stack.push(0);
        let result = self.eval_uncached(id, env);
        let children_ns = self.child_ns_stack.pop().unwrap_or(0);
        let children_flops = self.child_flops_stack.pop().unwrap_or(0);
        let total_ns = elapsed_ns(t0);
        let subtree_flops = self.stats.flops - flops_before;
        if let Some(parent) = self.child_ns_stack.last_mut() {
            *parent += total_ns;
        }
        if let Some(parent) = self.child_flops_stack.last_mut() {
            *parent += subtree_flops;
        }
        let val = result?;
        let kernel = self.kernel_choice(id, &val);
        let (out_rows, out_cols, out_sparsity) = match &val {
            Val::Scalar(_) => (1, 1, 1.0),
            Val::Matrix(m) => {
                let cells = m.rows() * m.cols();
                let frac = if cells == 0 { 0.0 } else { m.nnz() as f64 / cells as f64 };
                (m.rows(), m.cols(), frac)
            }
        };
        if let Some(p) = &mut self.profile {
            let ns = p.nodes.entry(id).or_default();
            ns.evals += 1;
            ns.total_ns += total_ns;
            ns.self_ns += total_ns.saturating_sub(children_ns);
            ns.self_flops += subtree_flops.saturating_sub(children_flops);
            ns.kernel = Some(kernel);
            ns.out_rows = out_rows;
            ns.out_cols = out_cols;
            ns.out_sparsity = out_sparsity;
        }
        self.memo.insert(id, val.clone());
        Ok(val)
    }

    /// Classify the kernel family that served node `id`, inferred from the op
    /// itself plus the (already memoized) representations of its operands and
    /// output.
    fn kernel_choice(&self, id: NodeId, out: &Val) -> KernelChoice {
        if self.kernel(id) == Kernel::Blocked && self.mem_budget.is_some() {
            return KernelChoice::Blocked;
        }
        if self.kernel(id) == Kernel::Parallel && self.degree > 1 {
            return KernelChoice::Parallel;
        }
        let op = self.graph.op(id);
        match op {
            Op::CrossProd(_) | Op::Tmv(..) | Op::SumSq(_) => return KernelChoice::Fused,
            Op::Const(_) => return KernelChoice::Scalar,
            _ => {}
        }
        let sparse_out = matches!(out, Val::Matrix(Matrix::Sparse(_)));
        let sparse_operand = op
            .children()
            .iter()
            .any(|c| matches!(self.memo.get(c), Some(Val::Matrix(Matrix::Sparse(_)))));
        if sparse_out || sparse_operand {
            KernelChoice::Sparse
        } else if matches!(out, Val::Scalar(_)) && op.children().is_empty() {
            KernelChoice::Scalar
        } else {
            KernelChoice::Dense
        }
    }

    fn eval_uncached(&mut self, id: NodeId, env: &Env) -> Result<Val, ExecError> {
        let type_err = |message: String| ExecError::Type { node: id, message };
        match self.graph.op(id).clone() {
            Op::Input(name) => {
                let v = env.get(&name).ok_or(ExecError::UnboundInput(name.clone()))?.clone();
                // Honor the physical plan's representation choice for inputs.
                if let (Val::Matrix(m), Kernel::Sparse) = (&v, self.kernel(id)) {
                    if m.is_dense() {
                        return Ok(Val::Matrix(Matrix::Sparse(m.to_csr())));
                    }
                }
                Ok(v)
            }
            Op::Const(v) => Ok(Val::Scalar(v)),
            Op::Transpose(a) => match self.eval(a, env)? {
                Val::Scalar(v) => Ok(Val::Scalar(v)),
                Val::Matrix(Matrix::Dense(d)) => {
                    self.stats.flops += (d.rows() * d.cols()) as u64;
                    Ok(Val::Matrix(Matrix::Dense(d.transpose())))
                }
                Val::Matrix(Matrix::Sparse(s)) => {
                    self.stats.flops += s.nnz() as u64;
                    Ok(Val::Matrix(Matrix::Sparse(s.transpose())))
                }
            },
            Op::MatMul(a, b) => {
                let (va, vb) = (self.eval(a, env)?, self.eval(b, env)?);
                let (ma, mb) = match (va, vb) {
                    (Val::Matrix(ma), Val::Matrix(mb)) => (ma, mb),
                    _ => return Err(type_err("matmul requires matrix operands".into())),
                };
                if ma.cols() != mb.rows() {
                    return Err(type_err(format!(
                        "matmul inner dims {} vs {}",
                        ma.cols(),
                        mb.rows()
                    )));
                }
                if let Some(budget) = self.blocked_budget(id) {
                    return self.blocked_matmul(id, &ma, &mb, budget);
                }
                // Vector shapes dispatch to mv/vm kernels.
                if mb.cols() == 1 {
                    let v: Vec<f64> = (0..mb.rows()).map(|r| mb.get(r, 0)).collect();
                    self.stats.flops += 2
                        * (match &ma {
                            Matrix::Dense(d) => d.rows() * d.cols(),
                            Matrix::Sparse(s) => s.nnz(),
                        }) as u64;
                    let out = match &ma {
                        Matrix::Dense(d) => par::gemv(d, &v, self.node_degree(id)),
                        _ => ma.gemv(&v),
                    };
                    return Ok(Val::Matrix(Matrix::Dense(Dense::column(&out))));
                }
                let out = match (&ma, &mb) {
                    (Matrix::Sparse(sa), Matrix::Dense(db)) => {
                        self.stats.flops += 2 * (sa.nnz() * db.cols()) as u64;
                        sparse::spmm_dense(sa, db)
                    }
                    _ => {
                        let da = ma.to_dense();
                        let db = mb.to_dense();
                        self.stats.flops += 2 * (da.rows() * da.cols() * db.cols()) as u64;
                        par::gemm(&da, &db, self.node_degree(id))
                    }
                };
                Ok(Val::Matrix(Matrix::Dense(out)))
            }
            Op::Ewise(e, a, b) => {
                let (va, vb) = (self.eval(a, env)?, self.eval(b, env)?);
                self.ewise(id, e, va, vb)
            }
            Op::Unary(u, a) => {
                let f = |x: f64| match u {
                    UnaryOp::Exp => x.exp(),
                    UnaryOp::Log => x.ln(),
                    UnaryOp::Sqrt => x.sqrt(),
                    UnaryOp::Abs => x.abs(),
                };
                match self.eval(a, env)? {
                    Val::Scalar(s) => Ok(Val::Scalar(f(s))),
                    Val::Matrix(m) => {
                        // sqrt/abs preserve zeros, so sparse stays sparse;
                        // exp/log densify and run on the dense form.
                        let zero_preserving = matches!(u, UnaryOp::Sqrt | UnaryOp::Abs);
                        match (m, zero_preserving) {
                            (Matrix::Sparse(s), true) => {
                                self.stats.flops += s.nnz() as u64;
                                let mut coo = dm_matrix::Coo::new(s.rows(), s.cols());
                                for (r, c, v) in s.iter() {
                                    coo.push(r, c, f(v)).expect("indices in range");
                                }
                                Ok(Val::Matrix(Matrix::Sparse(coo.to_csr())))
                            }
                            (m, _) => {
                                let d = m.to_dense();
                                self.stats.flops += (d.rows() * d.cols()) as u64;
                                Ok(Val::Matrix(Matrix::Dense(d.map(f))))
                            }
                        }
                    }
                }
            }
            Op::Agg(aop, a) => {
                let v = self.eval(a, env)?;
                let m = match v {
                    Val::Scalar(s) => return Ok(Val::Scalar(s)),
                    Val::Matrix(m) => m,
                };
                // Dense aggregates read every cell; sparse ones only stored entries.
                self.stats.flops += match &m {
                    Matrix::Dense(d) => (d.rows() * d.cols()) as u64,
                    Matrix::Sparse(s) => s.nnz() as u64,
                };
                Ok(match aop {
                    AggOp::Sum => match &m {
                        Matrix::Dense(d) => Val::Scalar(ops::sum(d)),
                        Matrix::Sparse(s) => Val::Scalar(s.iter().map(|(_, _, v)| v).sum()),
                    },
                    AggOp::ColSums => {
                        let cs = match (&m, self.blocked_budget(id)) {
                            (Matrix::Dense(d), Some(budget)) => {
                                self.blocked_col_sums(id, d, budget)?
                            }
                            (Matrix::Dense(d), None) => par::col_sums(d, self.node_degree(id)),
                            (Matrix::Sparse(s), _) => {
                                let ones = vec![1.0; s.rows()];
                                sparse::spvm(&ones, s)
                            }
                        };
                        let mut out = Dense::zeros(1, cs.len());
                        out.row_mut(0).copy_from_slice(&cs);
                        Val::Matrix(Matrix::Dense(out))
                    }
                    AggOp::RowSums => {
                        let rs = match &m {
                            Matrix::Dense(d) => ops::row_sums(d),
                            Matrix::Sparse(s) => {
                                let ones = vec![1.0; s.cols()];
                                sparse::spmv(s, &ones)
                            }
                        };
                        Val::Matrix(Matrix::Dense(Dense::column(&rs)))
                    }
                    AggOp::Min => Val::Scalar(min_of(&m)),
                    AggOp::Max => Val::Scalar(max_of(&m)),
                })
            }
            Op::CrossProd(a) => {
                let v = self.eval(a, env)?;
                let m = v.as_dense().ok_or_else(|| type_err("crossprod needs a matrix".into()))?;
                match (self.kernel(id), self.blocked_budget(id)) {
                    (Kernel::Sparse, _) => {
                        let s = Csr::from_dense(&m);
                        self.stats.flops += 2 * (s.nnz() * m.cols()) as u64;
                        Ok(Val::Matrix(Matrix::Dense(sparse::sp_crossprod(&s))))
                    }
                    (_, Some(budget)) => {
                        self.stats.flops += (m.rows() * m.cols() * m.cols()) as u64;
                        let out = self.blocked_crossprod(id, &m, budget)?;
                        Ok(Val::Matrix(Matrix::Dense(out)))
                    }
                    _ => {
                        self.stats.flops += (m.rows() * m.cols() * m.cols()) as u64;
                        let deg = self.node_degree(id);
                        Ok(Val::Matrix(Matrix::Dense(par::crossprod(&m, deg))))
                    }
                }
            }
            Op::Tmv(a, b) => {
                let (va, vb) = (self.eval(a, env)?, self.eval(b, env)?);
                let (ma, mb) = match (va, vb) {
                    (Val::Matrix(ma), Val::Matrix(mb)) => (ma, mb),
                    _ => return Err(type_err("tmv requires matrix operands".into())),
                };
                if mb.cols() != 1 || ma.rows() != mb.rows() {
                    return Err(type_err("tmv requires X (n x d) and v (n x 1)".into()));
                }
                let v: Vec<f64> = (0..mb.rows()).map(|r| mb.get(r, 0)).collect();
                self.stats.flops += 2
                    * (match &ma {
                        Matrix::Dense(d) => d.rows() * d.cols(),
                        Matrix::Sparse(s) => s.nnz(),
                    }) as u64;
                let out = match &ma {
                    Matrix::Dense(d) => par::gevm(&v, d, self.node_degree(id)),
                    _ => ma.vecmat(&v),
                };
                Ok(Val::Matrix(Matrix::Dense(Dense::column(&out))))
            }
            Op::SumSq(a) => {
                let v = self.eval(a, env)?;
                match v {
                    Val::Scalar(s) => Ok(Val::Scalar(s * s)),
                    Val::Matrix(Matrix::Dense(d)) => {
                        self.stats.flops += 2 * (d.rows() * d.cols()) as u64;
                        Ok(Val::Scalar(par::sum_sq(&d, self.node_degree(id))))
                    }
                    Val::Matrix(Matrix::Sparse(s)) => {
                        self.stats.flops += 2 * s.nnz() as u64;
                        Ok(Val::Scalar(s.iter().map(|(_, _, v)| v * v).sum()))
                    }
                }
            }
        }
    }

    fn ewise(&mut self, id: NodeId, e: EwiseOp, va: Val, vb: Val) -> Result<Val, ExecError> {
        let f = |x: f64, y: f64| match e {
            EwiseOp::Add => x + y,
            EwiseOp::Sub => x - y,
            EwiseOp::Mul => x * y,
            EwiseOp::Div => x / y,
        };
        match (va, vb) {
            (Val::Scalar(a), Val::Scalar(b)) => Ok(Val::Scalar(f(a, b))),
            (Val::Matrix(m), Val::Scalar(s)) => {
                let d = m.to_dense();
                self.stats.flops += (d.rows() * d.cols()) as u64;
                if let Some(budget) = self.blocked_budget(id) {
                    let out = self.blocked_map(id, &d, move |v| f(v, s), budget)?;
                    return Ok(Val::Matrix(Matrix::Dense(out)));
                }
                Ok(Val::Matrix(Matrix::Dense(d.map(|v| f(v, s)))))
            }
            (Val::Scalar(s), Val::Matrix(m)) => {
                let d = m.to_dense();
                self.stats.flops += (d.rows() * d.cols()) as u64;
                if let Some(budget) = self.blocked_budget(id) {
                    let out = self.blocked_map(id, &d, move |v| f(s, v), budget)?;
                    return Ok(Val::Matrix(Matrix::Dense(out)));
                }
                Ok(Val::Matrix(Matrix::Dense(d.map(|v| f(s, v)))))
            }
            (Val::Matrix(ma), Val::Matrix(mb)) => {
                if ma.rows() != mb.rows() || ma.cols() != mb.cols() {
                    return Err(ExecError::Type {
                        node: id,
                        message: format!(
                            "elementwise {}x{} vs {}x{}",
                            ma.rows(),
                            ma.cols(),
                            mb.rows(),
                            mb.cols()
                        ),
                    });
                }
                let (da, db) = (ma.to_dense(), mb.to_dense());
                self.stats.flops += (da.rows() * da.cols()) as u64;
                if let Some(budget) = self.blocked_budget(id) {
                    let out = self.blocked_ewise(id, &da, &db, f, budget)?;
                    return Ok(Val::Matrix(Matrix::Dense(out)));
                }
                let out = match e {
                    EwiseOp::Add => ops::add(&da, &db),
                    EwiseOp::Sub => ops::sub(&da, &db),
                    EwiseOp::Mul => ops::mul(&da, &db),
                    EwiseOp::Div => ops::div(&da, &db),
                };
                Ok(Val::Matrix(Matrix::Dense(out)))
            }
        }
    }

    /// Budget for node `id` when (and only when) the plan chose
    /// [`Kernel::Blocked`] for it and a budget is in effect.
    fn blocked_budget(&self, id: NodeId) -> Option<usize> {
        if self.kernel(id) == Kernel::Blocked {
            self.mem_budget
        } else {
            None
        }
    }

    /// `a * b` through the blocked kernels: operands are tiled into the
    /// spill pool and streamed panel-by-panel, bit-identical to the
    /// in-memory dense path.
    fn blocked_matmul(
        &mut self,
        id: NodeId,
        ma: &Matrix,
        mb: &Matrix,
        budget: usize,
    ) -> Result<Val, ExecError> {
        self.stats.ooc_nodes += 1;
        let da = ma.to_dense();
        let pool = self.spill_pool(budget);
        let err = |e: PoolError| ooc_err(id, e);
        if mb.cols() == 1 {
            let v: Vec<f64> = (0..mb.rows()).map(|r| mb.get(r, 0)).collect();
            self.stats.flops += 2 * (da.rows() * da.cols()) as u64;
            let pr = panel_rows_for(da.cols(), budget, crate::memory::OOC_PANEL_DENOM);
            let sa = BlockStore::from_dense(&pool, self.ooc_ids(1), &da, pr).map_err(err)?;
            let out = ooc::gemv(&sa, &v, self.degree).map_err(err)?;
            sa.discard().map_err(err)?;
            return Ok(Val::Matrix(Matrix::Dense(Dense::column(&out))));
        }
        let db = mb.to_dense();
        self.stats.flops += 2 * (da.rows() * da.cols() * db.cols()) as u64;
        let base = self.ooc_ids(3);
        let sa = BlockStore::from_dense(
            &pool,
            base,
            &da,
            panel_rows_for(da.cols(), budget, crate::memory::OOC_PANEL_DENOM),
        )
        .map_err(err)?;
        let sb = BlockStore::from_dense(
            &pool,
            base + 1,
            &db,
            panel_rows_for(db.cols(), budget, crate::memory::OOC_PANEL_DENOM),
        )
        .map_err(err)?;
        let sout = ooc::gemm(&sa, &sb, base + 2, self.degree).map_err(err)?;
        let out = sout.to_dense().map_err(err)?;
        for s in [sa, sb, sout] {
            s.discard().map_err(err)?;
        }
        Ok(Val::Matrix(Matrix::Dense(out)))
    }

    /// `t(a) * a` through the blocked crossprod kernel.
    fn blocked_crossprod(
        &mut self,
        id: NodeId,
        m: &Dense,
        budget: usize,
    ) -> Result<Dense, ExecError> {
        self.stats.ooc_nodes += 1;
        let pool = self.spill_pool(budget);
        let err = |e: PoolError| ooc_err(id, e);
        let pr = panel_rows_for(m.cols(), budget, crate::memory::OOC_PANEL_DENOM);
        let sa = BlockStore::from_dense(&pool, self.ooc_ids(1), m, pr).map_err(err)?;
        let out = ooc::crossprod(&sa, self.degree).map_err(err)?;
        sa.discard().map_err(err)?;
        Ok(out)
    }

    /// Column sums through the blocked reduction kernel.
    fn blocked_col_sums(
        &mut self,
        id: NodeId,
        m: &Dense,
        budget: usize,
    ) -> Result<Vec<f64>, ExecError> {
        self.stats.ooc_nodes += 1;
        let pool = self.spill_pool(budget);
        let err = |e: PoolError| ooc_err(id, e);
        let pr = panel_rows_for(m.cols(), budget, crate::memory::OOC_PANEL_DENOM);
        let sa = BlockStore::from_dense(&pool, self.ooc_ids(1), m, pr).map_err(err)?;
        let out = ooc::col_sums(&sa, self.degree).map_err(err)?;
        sa.discard().map_err(err)?;
        Ok(out)
    }

    /// Matrix ⊕ matrix through the blocked elementwise kernel.
    fn blocked_ewise(
        &mut self,
        id: NodeId,
        da: &Dense,
        db: &Dense,
        f: impl Fn(f64, f64) -> f64 + Sync,
        budget: usize,
    ) -> Result<Dense, ExecError> {
        self.stats.ooc_nodes += 1;
        let pool = self.spill_pool(budget);
        let err = |e: PoolError| ooc_err(id, e);
        let pr = panel_rows_for(da.cols(), budget, crate::memory::OOC_PANEL_DENOM);
        let base = self.ooc_ids(3);
        let sa = BlockStore::from_dense(&pool, base, da, pr).map_err(err)?;
        let sb = BlockStore::from_dense(&pool, base + 1, db, pr).map_err(err)?;
        let sout = ooc::ewise(&sa, &sb, f, base + 2, self.degree).map_err(err)?;
        let out = sout.to_dense().map_err(err)?;
        for s in [sa, sb, sout] {
            s.discard().map_err(err)?;
        }
        Ok(out)
    }

    /// Matrix-scalar / unary broadcast through the blocked map kernel.
    fn blocked_map(
        &mut self,
        id: NodeId,
        m: &Dense,
        f: impl Fn(f64) -> f64 + Sync,
        budget: usize,
    ) -> Result<Dense, ExecError> {
        self.stats.ooc_nodes += 1;
        let pool = self.spill_pool(budget);
        let err = |e: PoolError| ooc_err(id, e);
        let pr = panel_rows_for(m.cols(), budget, crate::memory::OOC_PANEL_DENOM);
        let base = self.ooc_ids(2);
        let sa = BlockStore::from_dense(&pool, base, m, pr).map_err(err)?;
        let sout = ooc::map(&sa, f, base + 1, self.degree).map_err(err)?;
        let out = sout.to_dense().map_err(err)?;
        sa.discard().map_err(err)?;
        sout.discard().map_err(err)?;
        Ok(out)
    }
}

impl Drop for Executor<'_> {
    fn drop(&mut self) {
        // Honor DMML_TRACE end-to-end: when the env var named a file at
        // construction, flush the collected events there so a plain
        // `DMML_TRACE=out.json cargo run ...` needs no explicit export call.
        if self.trace_to_env {
            if let Some(Err(e)) = trace::write_env_trace() {
                eprintln!("DMML_TRACE export failed: {e}");
            }
        }
        // Honor DMML_PROFILE_DIR end-to-end: merge-save this run's kernel
        // throughput samples so the next process's calibrated cost model
        // sees them. Failures warn and degrade — profiling must never take
        // an execution down.
        if self.profile_to_env {
            if let Some(dir) = dm_obs::profile::env_profile_dir() {
                let mut store = dm_obs::profile::ProfileStore::new();
                self.record_kernel_profiles(&mut store);
                if !store.is_empty() {
                    if let Err(e) = store.save(&dir) {
                        eprintln!("DMML_PROFILE_DIR save failed: {e}");
                    }
                }
            }
        }
    }
}

fn ooc_err(node: NodeId, e: PoolError) -> ExecError {
    ExecError::OutOfCore { node, message: e.to_string() }
}

fn min_of(m: &Matrix) -> f64 {
    match m {
        Matrix::Dense(d) => ops::min(d),
        Matrix::Sparse(s) => {
            let stored = s.iter().map(|(_, _, v)| v).fold(f64::NAN, f64::min);
            if s.nnz() < s.rows() * s.cols() {
                stored.min(0.0)
            } else {
                stored
            }
        }
    }
}

fn max_of(m: &Matrix) -> f64 {
    match m {
        Matrix::Dense(d) => ops::max(d),
        Matrix::Sparse(s) => {
            let stored = s.iter().map(|(_, _, v)| v).fold(f64::NAN, f64::max);
            if s.nnz() < s.rows() * s.cols() {
                stored.max(0.0)
            } else {
                stored
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::optimize;
    use crate::size::InputSizes;

    fn x() -> Dense {
        Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])
    }

    fn env() -> Env {
        let mut e = Env::new();
        e.bind("X", Matrix::Dense(x()));
        e.bind("v", Matrix::Dense(Dense::column(&[1.0, -1.0])));
        e
    }

    #[test]
    fn basic_matmul_and_sum() {
        let mut g = Graph::new();
        let xi = g.input("X");
        let vi = g.input("v");
        let xv = g.matmul(xi, vi);
        let s = g.agg(AggOp::Sum, xv);
        let mut ex = Executor::new(&g);
        let out = ex.eval(s, &env()).unwrap();
        // X*v = [-1, -1, -1], sum = -3
        assert_eq!(out.as_scalar().unwrap(), -3.0);
    }

    #[test]
    fn memoization_counts() {
        let mut g = Graph::new();
        let xi = g.input("X");
        let t = g.transpose(xi);
        let a = g.matmul(t, xi);
        let b = g.matmul(t, xi); // distinct node, same structure (no CSE here)
        let s = g.ewise(EwiseOp::Add, a, b);
        let mut ex = Executor::new(&g);
        ex.eval(s, &env()).unwrap();
        let st = ex.stats();
        // t and xi each evaluated once but referenced twice.
        assert!(st.memo_hits >= 2, "{st:?}");
    }

    #[test]
    fn ewise_and_broadcast() {
        let mut g = Graph::new();
        let xi = g.input("X");
        let c = g.constant(10.0);
        let shifted = g.ewise(EwiseOp::Add, xi, c);
        let mx = g.agg(AggOp::Max, shifted);
        let mut ex = Executor::new(&g);
        assert_eq!(ex.eval(mx, &env()).unwrap().as_scalar().unwrap(), 16.0);
    }

    #[test]
    fn aggregates() {
        let mut g = Graph::new();
        let xi = g.input("X");
        let cs = g.agg(AggOp::ColSums, xi);
        let rs = g.agg(AggOp::RowSums, xi);
        let mn = g.agg(AggOp::Min, xi);
        let mut ex = Executor::new(&g);
        let e = env();
        assert_eq!(ex.eval(cs, &e).unwrap().as_dense().unwrap().row(0), &[9.0, 12.0]);
        assert_eq!(ex.eval(rs, &e).unwrap().as_dense().unwrap().col_vec(0), vec![3.0, 7.0, 11.0]);
        assert_eq!(ex.eval(mn, &e).unwrap().as_scalar().unwrap(), 1.0);
    }

    #[test]
    fn optimized_graph_same_result() {
        // sum(t(X) %*% X) with and without optimization.
        let mut g = Graph::new();
        let xi = g.input("X");
        let t = g.transpose(xi);
        let mm = g.matmul(t, xi);
        let s = g.agg(AggOp::Sum, mm);
        let mut plain = Executor::new(&g);
        let expect = plain.eval(s, &env()).unwrap().as_scalar().unwrap();

        let mut sizes = InputSizes::new();
        sizes.declare("X", 3, 2, 1.0);
        let (og, root, stats) = optimize(&g, s, &sizes).unwrap();
        assert!(stats.crossprod_fused == 1);
        let mut opt = Executor::new(&og);
        let got = opt.eval(root, &env()).unwrap().as_scalar().unwrap();
        assert!((got - expect).abs() < 1e-9);
        // The fused plan does strictly fewer flops.
        assert!(
            opt.stats().flops < plain.stats().flops,
            "{:?} vs {:?}",
            opt.stats(),
            plain.stats()
        );
    }

    #[test]
    fn sparse_kernel_execution_matches_dense() {
        let sp = Dense::from_fn(50, 20, |r, c| if (r * 20 + c) % 23 == 0 { 1.5 } else { 0.0 });
        let mut g = Graph::new();
        let xi = g.input("S");
        let vi = g.input("v");
        let mm = g.matmul(xi, vi);
        let s = g.agg(AggOp::Sum, mm);

        let mut env = Env::new();
        env.bind("S", Matrix::Dense(sp.clone()));
        let v: Vec<f64> = (0..20).map(|i| i as f64 - 10.0).collect();
        env.bind("v", Matrix::Dense(Dense::column(&v)));

        let mut sizes = InputSizes::new();
        sizes.declare("S", 50, 20, 0.05);
        sizes.declare("v", 20, 1, 1.0);
        let plan = crate::physical::plan_with_inputs(&g, s, &sizes).unwrap();
        assert_eq!(plan.kernel(xi), Kernel::Sparse);
        let mut ex = Executor::with_plan(&g, plan);
        let got = ex.eval(s, &env).unwrap().as_scalar().unwrap();

        let expect: f64 = ops::gemv(&sp, &v).iter().sum();
        assert!((got - expect).abs() < 1e-9);
    }

    #[test]
    fn fused_ops_execute() {
        let mut g = Graph::new();
        let xi = g.input("X");
        let cp = g.push(Op::CrossProd(xi));
        let ss = g.push(Op::SumSq(xi));
        let mut ex = Executor::new(&g);
        let e = env();
        let cpv = ex.eval(cp, &e).unwrap().as_dense().unwrap();
        assert!(cpv.approx_eq(&ops::crossprod(&x()), 1e-9));
        assert_eq!(ex.eval(ss, &e).unwrap().as_scalar().unwrap(), ops::sum_sq(&x()));
    }

    #[test]
    fn tmv_executes() {
        let mut g = Graph::new();
        let xi = g.input("X");
        let ui = g.input("u");
        let tmv = g.push(Op::Tmv(xi, ui));
        let mut e = env();
        e.bind("u", Matrix::Dense(Dense::column(&[1.0, 0.0, 2.0])));
        let mut ex = Executor::new(&g);
        let got = ex.eval(tmv, &e).unwrap().as_dense().unwrap();
        assert_eq!(got.col_vec(0), vec![11.0, 14.0]);
    }

    #[test]
    fn errors() {
        let mut g = Graph::new();
        let a = g.input("missing");
        let mut ex = Executor::new(&g);
        assert_eq!(ex.eval(a, &Env::new()), Err(ExecError::UnboundInput("missing".into())));

        let mut g = Graph::new();
        let xi = g.input("X");
        let bad = g.matmul(xi, xi);
        let mut ex = Executor::new(&g);
        assert!(matches!(ex.eval(bad, &env()), Err(ExecError::Type { .. })));
    }

    #[test]
    fn profiled_executor_collects_node_stats() {
        let mut g = Graph::new();
        let xi = g.input("X");
        let t = g.transpose(xi);
        let mm = g.matmul(t, xi);
        let s = g.agg(AggOp::Sum, mm);
        let mut ex = Executor::new(&g).profiled();
        ex.eval(s, &env()).unwrap();
        let p = ex.profile().unwrap();
        let root = p.node(s).unwrap();
        assert_eq!(root.evals, 1);
        assert_eq!((root.out_rows, root.out_cols), (1, 1));
        let mm_stats = p.node(mm).unwrap();
        assert_eq!((mm_stats.out_rows, mm_stats.out_cols), (2, 2));
        assert_eq!(mm_stats.kernel, Some(KernelChoice::Dense));
        assert!((mm_stats.out_sparsity - 1.0).abs() < 1e-12);
        assert!(root.total_ns >= root.self_ns);
        assert!(p.total_self_ns() > 0);
    }

    #[test]
    fn profiled_executor_counts_memo_hits_per_node() {
        let mut g = Graph::new();
        let xi = g.input("X");
        let t = g.transpose(xi);
        let a = g.matmul(t, xi);
        let b = g.ewise(EwiseOp::Add, a, a);
        let mut ex = Executor::new(&g).profiled();
        ex.eval(b, &env()).unwrap();
        let p = ex.profile().unwrap();
        assert_eq!(p.node(a).unwrap().evals, 1);
        assert_eq!(p.node(a).unwrap().memo_hits, 1);
    }

    #[test]
    fn profiled_fused_and_sparse_kernels_classified() {
        let mut g = Graph::new();
        let xi = g.input("X");
        let cp = g.push(Op::CrossProd(xi));
        let mut ex = Executor::new(&g).profiled();
        ex.eval(cp, &env()).unwrap();
        assert_eq!(ex.profile().unwrap().node(cp).unwrap().kernel, Some(KernelChoice::Fused));

        let sp = Dense::from_fn(50, 20, |r, c| if (r * 20 + c) % 23 == 0 { 1.5 } else { 0.0 });
        let mut g = Graph::new();
        let si = g.input("S");
        let tr = g.transpose(si);
        let mut sizes = InputSizes::new();
        sizes.declare("S", 50, 20, 0.05);
        let plan = crate::physical::plan_with_inputs(&g, tr, &sizes).unwrap();
        let mut env = Env::new();
        env.bind("S", Matrix::Dense(sp));
        let mut ex = Executor::with_plan(&g, plan).profiled();
        ex.eval(tr, &env).unwrap();
        assert_eq!(ex.profile().unwrap().node(tr).unwrap().kernel, Some(KernelChoice::Sparse));
    }

    #[test]
    fn record_stats_forwards_to_recorder() {
        use dm_obs::StatsRegistry;
        let mut g = Graph::new();
        let xi = g.input("X");
        let s = g.agg(AggOp::Sum, xi);
        let mut ex = Executor::new(&g).profiled();
        ex.eval(s, &env()).unwrap();
        let reg = StatsRegistry::new();
        ex.record_stats(&reg);
        let rep = reg.report();
        assert_eq!(rep.counter("lang.exec.nodes_evaluated"), Some(2));
        assert!(rep.duration("lang.exec.eval_wall").is_some());
        // A disabled recorder is a single branch.
        ex.record_stats(&dm_obs::NoopRecorder);
    }

    #[test]
    fn parallel_plan_execution_bit_identical_to_serial() {
        // 400x300 crossprod (7.2e7 flops) and X*B (400x300 * 300x400,
        // 9.6e7 flops) both clear the parallel threshold.
        let x = Dense::from_fn(400, 300, |r, c| ((r * 13 + c * 7) % 17) as f64 * 0.3 - 1.0);
        let b = Dense::from_fn(300, 400, |r, c| ((r + c * 3) % 11) as f64 * 0.5 - 2.0);
        let mut g = Graph::new();
        let xi = g.input("X");
        let bi = g.input("B");
        let mm = g.matmul(xi, bi);
        let cp = g.push(Op::CrossProd(xi));
        let ss = g.push(Op::SumSq(xi));
        let cs = g.agg(AggOp::ColSums, xi);
        let all = {
            let mmsum = g.agg(AggOp::Sum, mm);
            let cssum = g.agg(AggOp::Sum, cs);
            let cpsum = g.agg(AggOp::Sum, cp);
            let a = g.ewise(EwiseOp::Add, mmsum, cssum);
            let b2 = g.ewise(EwiseOp::Add, cpsum, ss);
            g.ewise(EwiseOp::Add, a, b2)
        };
        let mut env = Env::new();
        env.bind("X", Matrix::Dense(x));
        env.bind("B", Matrix::Dense(b));
        let mut sizes = InputSizes::new();
        sizes.declare("X", 400, 300, 1.0);
        sizes.declare("B", 300, 400, 1.0);

        let mut serial = Executor::new(&g);
        let expect = serial.eval(all, &env).unwrap();
        let plan = crate::physical::plan_with_inputs_degree(&g, all, &sizes, 4).unwrap();
        assert_eq!(plan.kernel(mm), Kernel::Parallel);
        assert_eq!(plan.kernel(cp), Kernel::Parallel);
        let mut par_ex = Executor::with_plan(&g, plan);
        assert_eq!(par_ex.degree(), 4);
        let got = par_ex.eval(all, &env).unwrap();
        // Parallel kernels are bit-identical to serial, so Val equality is exact.
        assert_eq!(got, expect);
        assert!(par_ex.stats().par_nodes >= 2, "{:?}", par_ex.stats());
        assert_eq!(serial.stats().par_nodes, 0);
    }

    #[test]
    fn parallel_dispatch_recorded_in_stats_and_profile() {
        use dm_obs::StatsRegistry;
        let x = Dense::from_fn(400, 300, |r, c| ((r + c) % 5) as f64);
        let mut g = Graph::new();
        let xi = g.input("X");
        let cp = g.push(Op::CrossProd(xi));
        let mut env = Env::new();
        env.bind("X", Matrix::Dense(x));
        let mut sizes = InputSizes::new();
        sizes.declare("X", 400, 300, 1.0);
        let plan = crate::physical::plan_with_inputs_degree(&g, cp, &sizes, 2).unwrap();
        let mut ex = Executor::with_plan(&g, plan).profiled();
        ex.eval(cp, &env).unwrap();
        assert_eq!(ex.profile().unwrap().node(cp).unwrap().kernel, Some(KernelChoice::Parallel));
        let reg = StatsRegistry::new();
        ex.record_stats(&reg);
        let rep = reg.report();
        assert_eq!(rep.counter("lang.exec.par_nodes"), Some(1));
        assert_eq!(rep.gauge("lang.exec.par_degree").map(|(cur, _)| cur), Some(2));
        assert!(rep.duration("lang.exec.kernel.parallel").is_some());
    }

    #[test]
    fn with_degree_overrides_plan_degree() {
        let g = {
            let mut g = Graph::new();
            g.input("X");
            g
        };
        let ex = Executor::new(&g).with_degree(6);
        assert_eq!(ex.degree(), 6);
        let ex = Executor::new(&g).with_degree(0);
        assert_eq!(ex.degree(), 1);
    }

    #[test]
    fn sparse_min_max_account_for_implicit_zeros() {
        let d = Dense::from_rows(&[&[0.0, 5.0], &[0.0, 0.0]]);
        let m = Matrix::Sparse(Csr::from_dense(&d));
        assert_eq!(min_of(&m), 0.0);
        assert_eq!(max_of(&m), 5.0);
        let neg = Dense::from_rows(&[&[0.0, -5.0], &[0.0, 0.0]]);
        let m = Matrix::Sparse(Csr::from_dense(&neg));
        assert_eq!(min_of(&m), -5.0);
        assert_eq!(max_of(&m), 0.0);
    }
}
