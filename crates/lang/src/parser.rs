//! Recursive-descent parser for the R-like surface syntax.
//!
//! Grammar (precedence low to high):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor (('*' | '/' | '%*%') factor)*
//! factor  := number | ident | call | '(' expr ')'
//! call    := ('t' | 'sum' | 'colSums' | 'rowSums' | 'min' | 'max') '(' expr ')'
//! ```
//!
//! `%*%` binds at the same level as `*` (left-associative), matching how such
//! scripts are conventionally read.

use crate::expr::{AggOp, EwiseOp, Graph, NodeId, UnaryOp};
use std::fmt;

/// Parse errors with character positions.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    MatMul,
    LParen,
    RParen,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                out.push((i, Tok::Plus));
                i += 1;
            }
            '-' => {
                out.push((i, Tok::Minus));
                i += 1;
            }
            '*' => {
                out.push((i, Tok::Star));
                i += 1;
            }
            '/' => {
                out.push((i, Tok::Slash));
                i += 1;
            }
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            '%' => {
                if src[i..].starts_with("%*%") {
                    out.push((i, Tok::MatMul));
                    i += 3;
                } else {
                    return Err(ParseError { position: i, message: "expected %*%".into() });
                }
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || (i > start
                            && (bytes[i] == b'+' || bytes[i] == b'-')
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &src[start..i];
                let v: f64 = text.parse().map_err(|_| ParseError {
                    position: start,
                    message: format!("bad number {text:?}"),
                })?;
                out.push((start, Tok::Num(v)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push((start, Tok::Ident(src[start..i].to_owned())));
            }
            other => {
                return Err(ParseError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    toks: &'a [(usize, Tok)],
    pos: usize,
    graph: Graph,
    src_len: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map_or(self.src_len, |(p, _)| *p)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        let pos = self.here();
        match self.bump() {
            Some(t) if t == tok => Ok(()),
            other => Err(ParseError {
                position: pos,
                message: format!("expected {tok:?}, found {other:?}"),
            }),
        }
    }

    fn expr(&mut self) -> Result<NodeId, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = self.graph.ewise(EwiseOp::Add, lhs, rhs);
                }
                Some(Tok::Minus) => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = self.graph.ewise(EwiseOp::Sub, lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<NodeId, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.bump();
                    let rhs = self.factor()?;
                    lhs = self.graph.ewise(EwiseOp::Mul, lhs, rhs);
                }
                Some(Tok::Slash) => {
                    self.bump();
                    let rhs = self.factor()?;
                    lhs = self.graph.ewise(EwiseOp::Div, lhs, rhs);
                }
                Some(Tok::MatMul) => {
                    self.bump();
                    let rhs = self.factor()?;
                    lhs = self.graph.matmul(lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<NodeId, ParseError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Num(v)) => Ok(self.graph.constant(v)),
            Some(Tok::Minus) => {
                // Unary minus: 0 - factor.
                let inner = self.factor()?;
                let zero = self.graph.constant(0.0);
                Ok(self.graph.ewise(EwiseOp::Sub, zero, inner))
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    let arg = self.expr()?;
                    self.expect(Tok::RParen)?;
                    match name.as_str() {
                        "t" => Ok(self.graph.transpose(arg)),
                        "sum" => Ok(self.graph.agg(AggOp::Sum, arg)),
                        "colSums" => Ok(self.graph.agg(AggOp::ColSums, arg)),
                        "rowSums" => Ok(self.graph.agg(AggOp::RowSums, arg)),
                        "min" => Ok(self.graph.agg(AggOp::Min, arg)),
                        "max" => Ok(self.graph.agg(AggOp::Max, arg)),
                        "exp" => Ok(self.graph.unary(UnaryOp::Exp, arg)),
                        "log" => Ok(self.graph.unary(UnaryOp::Log, arg)),
                        "sqrt" => Ok(self.graph.unary(UnaryOp::Sqrt, arg)),
                        "abs" => Ok(self.graph.unary(UnaryOp::Abs, arg)),
                        other => Err(ParseError {
                            position: pos,
                            message: format!("unknown function {other}"),
                        }),
                    }
                } else {
                    Ok(self.graph.input(&name))
                }
            }
            other => {
                Err(ParseError { position: pos, message: format!("unexpected token {other:?}") })
            }
        }
    }
}

/// Parse a source string into a fresh graph; returns the graph and root node.
pub fn parse(src: &str) -> Result<(Graph, NodeId), ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks: &toks, pos: 0, graph: Graph::new(), src_len: src.len() };
    let root = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(ParseError { position: p.here(), message: "trailing input".into() });
    }
    Ok((p.graph, root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Env, Executor};
    use dm_matrix::{Dense, Matrix};

    fn eval(src: &str, env: &Env) -> f64 {
        let (g, root) = parse(src).unwrap();
        let mut ex = Executor::new(&g);
        ex.eval(root, env).unwrap().as_scalar().unwrap()
    }

    fn env() -> Env {
        let mut e = Env::new();
        e.bind("X", Matrix::Dense(Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])));
        e.bind("v", Matrix::Dense(Dense::column(&[1.0, 1.0])));
        e
    }

    #[test]
    fn scalar_arithmetic() {
        let e = Env::new();
        assert_eq!(eval("1 + 2 * 3", &e), 7.0);
        assert_eq!(eval("(1 + 2) * 3", &e), 9.0);
        assert_eq!(eval("10 / 4", &e), 2.5);
        assert_eq!(eval("-3 + 1", &e), -2.0);
        assert_eq!(eval("2e2 + 0.5", &e), 200.5);
    }

    #[test]
    fn matrix_expressions() {
        let e = env();
        assert_eq!(eval("sum(X)", &e), 10.0);
        assert_eq!(eval("sum(X %*% v)", &e), 10.0);
        // t(X)%*%X = [[10,14],[14,20]], sum = 58.
        assert_eq!(eval("sum(t(X) %*% X)", &e), 58.0);
        assert_eq!(eval("max(X) - min(X)", &e), 3.0);
        assert_eq!(eval("sum(X * X)", &e), 30.0);
        assert_eq!(eval("sum(colSums(X))", &e), 10.0);
        assert_eq!(eval("sum(rowSums(X))", &e), 10.0);
    }

    #[test]
    fn matmul_is_left_associative() {
        let (g, root) = parse("A %*% B %*% C").unwrap();
        assert_eq!(g.render(root), "((A %*% B) %*% C)");
    }

    #[test]
    fn precedence_of_add_vs_mul() {
        let (g, root) = parse("A + B %*% C").unwrap();
        assert_eq!(g.render(root), "(A + (B %*% C))");
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("sum(X").unwrap_err();
        assert!(err.message.contains("expected RParen"), "{err}");
        let err = parse("1 ^ 2").unwrap_err();
        assert_eq!(err.position, 2);
        let err = parse("foo(X)").unwrap_err();
        assert!(err.message.contains("unknown function foo"));
        let err = parse("1 2").unwrap_err();
        assert!(err.message.contains("trailing input"));
        let err = parse("X %+% Y").unwrap_err();
        assert!(err.message.contains("%*%"));
        assert!(parse("").is_err());
    }

    #[test]
    fn round_trip_with_optimizer() {
        use crate::rewrite::optimize;
        use crate::size::InputSizes;
        let (g, root) = parse("sum(t(X) %*% X) + sum(X * X)").unwrap();
        let mut sizes = InputSizes::new();
        sizes.declare("X", 2, 2, 1.0);
        let (og, oroot, stats) = optimize(&g, root, &sizes).unwrap();
        assert_eq!(stats.crossprod_fused, 1);
        assert_eq!(stats.sumsq_fused, 1);
        let mut ex = Executor::new(&og);
        let got = ex.eval(oroot, &env()).unwrap().as_scalar().unwrap();
        assert_eq!(got, 58.0 + 30.0);
    }
}
