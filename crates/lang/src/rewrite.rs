//! The logical rewrite engine: CSE, algebraic simplifications, fused-operator
//! patterns, constant folding, and matrix-chain reordering.

use crate::expr::{AggOp, EwiseOp, Graph, NodeId, Op, UnaryOp};
use crate::size::{propagate, InputSizes, Shape, SizeError};
use dm_obs::{elapsed_ns, Recorder};
use std::collections::HashMap;
use std::time::Instant;

/// What the optimizer did, for explainability and the E5 ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Nodes merged by common-subexpression elimination.
    pub cse_merged: usize,
    /// `t(t(X))` pairs removed.
    pub double_transpose: usize,
    /// `t(X) %*% X` fused into `CrossProd`.
    pub crossprod_fused: usize,
    /// `t(X) %*% v` fused into `Tmv`.
    pub tmv_fused: usize,
    /// `sum(X * X)` fused into `SumSq`.
    pub sumsq_fused: usize,
    /// Scalar subexpressions folded to constants.
    pub constants_folded: usize,
    /// Algebraic identities applied (`X*1`, `X+0`, `X-0`, `X/1`).
    pub identities: usize,
    /// Matrix chains whose association order changed.
    pub chains_reordered: usize,
}

impl RewriteStats {
    /// Total number of rewrites applied.
    pub fn total(&self) -> usize {
        self.cse_merged
            + self.double_transpose
            + self.crossprod_fused
            + self.tmv_fused
            + self.sumsq_fused
            + self.constants_folded
            + self.identities
            + self.chains_reordered
    }
}

/// A canonical key for hash-consing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Input(String),
    Const(u64),
    MatMul(NodeId, NodeId),
    Transpose(NodeId),
    Ewise(EwiseOp, NodeId, NodeId),
    Unary(UnaryOp, NodeId),
    Agg(AggOp, NodeId),
    CrossProd(NodeId),
    Tmv(NodeId, NodeId),
    SumSq(NodeId),
}

fn key_of(op: &Op) -> Key {
    match op {
        Op::Input(n) => Key::Input(n.clone()),
        Op::Const(v) => Key::Const(v.to_bits()),
        Op::MatMul(a, b) => Key::MatMul(*a, *b),
        Op::Transpose(a) => Key::Transpose(*a),
        Op::Ewise(e, a, b) => {
            // Commutative ops canonicalize operand order for better CSE.
            match e {
                EwiseOp::Add | EwiseOp::Mul => Key::Ewise(*e, (*a).min(*b), (*a).max(*b)),
                _ => Key::Ewise(*e, *a, *b),
            }
        }
        Op::Unary(u, a) => Key::Unary(*u, *a),
        Op::Agg(a, x) => Key::Agg(*a, *x),
        Op::CrossProd(a) => Key::CrossProd(*a),
        Op::Tmv(a, b) => Key::Tmv(*a, *b),
        Op::SumSq(a) => Key::SumSq(*a),
    }
}

/// Rebuilds a graph bottom-up, interning nodes (CSE) and applying local
/// rewrite rules at construction time.
struct Builder<'a> {
    graph: Graph,
    interned: HashMap<Key, NodeId>,
    sizes: &'a InputSizes,
    stats: RewriteStats,
}

impl Builder<'_> {
    fn intern(&mut self, op: Op) -> NodeId {
        let key = key_of(&op);
        if let Some(&id) = self.interned.get(&key) {
            self.stats.cse_merged += 1;
            return id;
        }
        let id = self.graph.push(op);
        self.interned.insert(key, id);
        id
    }

    /// Add an op with rewrite rules applied.
    fn add(&mut self, op: Op) -> NodeId {
        // Constant folding for scalar-only subtrees.
        if let Some(v) = self.try_fold(&op) {
            self.stats.constants_folded += 1;
            return self.intern(Op::Const(v));
        }
        // Shape-preserving algebraic identities.
        if let Op::Ewise(e, a, b) = op {
            let is_const =
                |id: NodeId, v: f64| matches!(self.graph.op(id), Op::Const(c) if *c == v);
            let simplified = match e {
                EwiseOp::Mul if is_const(b, 1.0) => Some(a),
                EwiseOp::Mul if is_const(a, 1.0) => Some(b),
                EwiseOp::Add if is_const(b, 0.0) => Some(a),
                EwiseOp::Add if is_const(a, 0.0) => Some(b),
                EwiseOp::Sub if is_const(b, 0.0) => Some(a),
                EwiseOp::Div if is_const(b, 1.0) => Some(a),
                _ => None,
            };
            if let Some(id) = simplified {
                self.stats.identities += 1;
                return id;
            }
        }
        match op {
            // t(t(X)) -> X
            Op::Transpose(a) => {
                if let Op::Transpose(inner) = self.graph.op(a) {
                    self.stats.double_transpose += 1;
                    return *inner;
                }
                self.intern(Op::Transpose(a))
            }
            Op::MatMul(a, b) => {
                // t(X) %*% X -> CrossProd(X); t(X) %*% v -> Tmv(X, v)
                if let Op::Transpose(inner) = self.graph.op(a) {
                    let inner = *inner;
                    if inner == b {
                        self.stats.crossprod_fused += 1;
                        return self.intern(Op::CrossProd(inner));
                    }
                    if self.is_column_vector(b) {
                        self.stats.tmv_fused += 1;
                        return self.intern(Op::Tmv(inner, b));
                    }
                }
                self.intern(Op::MatMul(a, b))
            }
            // sum(X * X) -> SumSq(X)
            Op::Agg(AggOp::Sum, x) => {
                if let Op::Ewise(EwiseOp::Mul, p, q) = self.graph.op(x) {
                    if p == q {
                        let p = *p;
                        self.stats.sumsq_fused += 1;
                        return self.intern(Op::SumSq(p));
                    }
                }
                self.intern(Op::Agg(AggOp::Sum, x))
            }
            other => self.intern(other),
        }
    }

    fn try_fold(&self, op: &Op) -> Option<f64> {
        let val = |id: NodeId| match self.graph.op(id) {
            Op::Const(v) => Some(*v),
            _ => None,
        };
        match op {
            Op::Ewise(e, a, b) => {
                let (x, y) = (val(*a)?, val(*b)?);
                Some(match e {
                    EwiseOp::Add => x + y,
                    EwiseOp::Sub => x - y,
                    EwiseOp::Mul => x * y,
                    EwiseOp::Div => x / y,
                })
            }
            Op::Agg(_, a) => val(*a),
            Op::Transpose(a) => val(*a),
            Op::Unary(u, a) => {
                let x = val(*a)?;
                Some(match u {
                    UnaryOp::Exp => x.exp(),
                    UnaryOp::Log => x.ln(),
                    UnaryOp::Sqrt => x.sqrt(),
                    UnaryOp::Abs => x.abs(),
                })
            }
            _ => None,
        }
    }

    /// Best-effort column-vector check against declared input sizes.
    fn is_column_vector(&self, id: NodeId) -> bool {
        // Propagate sizes for just this subgraph; absence of declarations
        // simply disables the Tmv fusion.
        match propagate(&self.graph, id, self.sizes) {
            Ok(sizes) => matches!(sizes[&id].shape, Shape::Matrix { cols: 1, .. }),
            Err(_) => false,
        }
    }
}

/// Optimize the DAG rooted at `root`: returns the rewritten graph, new root,
/// and rewrite statistics. `sizes` drives size-dependent rules (Tmv fusion,
/// chain reordering); pass an empty [`InputSizes`] to apply only
/// size-oblivious rules.
pub fn optimize(
    graph: &Graph,
    root: NodeId,
    sizes: &InputSizes,
) -> Result<(Graph, NodeId, RewriteStats), SizeError> {
    // Pass 1: bottom-up rebuild with local rules + CSE.
    let mut b = Builder {
        graph: Graph::new(),
        interned: HashMap::new(),
        sizes,
        stats: RewriteStats::default(),
    };
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    for id in graph.reachable(root) {
        let children: Vec<NodeId> = graph.op(id).children().iter().map(|c| remap[c]).collect();
        let new_id = b.add(graph.op(id).with_children(&children));
        remap.insert(id, new_id);
    }
    let mut new_root = remap[&root];
    let mut g = b.graph;
    let mut stats = b.stats;

    // Pass 2: matrix-chain reordering (needs sizes; silently skipped when
    // inputs are undeclared).
    if let Ok(all_sizes) = propagate(&g, new_root, sizes) {
        let shape_of = |id: NodeId| all_sizes.get(&id).map(|s| s.shape);
        let (g2, root2, reordered) = reorder_chains(&g, new_root, &shape_of);
        g = g2;
        new_root = root2;
        stats.chains_reordered += reordered;
    }

    // In debug builds, every optimize call checks its own output against the
    // rewrite-safety contract; a violation here is an optimizer bug.
    #[cfg(debug_assertions)]
    if let Err(violation) = crate::analyze::verify_rewrite(graph, root, &g, new_root, sizes) {
        panic!(
            "rewrite-safety violation: {violation}\n  original: {}\n  rewritten: {}",
            graph.render(root),
            g.render(new_root)
        );
    }

    Ok((g, new_root, stats))
}

/// Statically estimated execution cost (approximate flops) of the DAG rooted
/// at `root`, using the same sparsity-aware accounting the interpreter
/// applies at runtime. This is the "cost estimate" side of the optimizer
/// trace: compare the figure before and after [`optimize`] to see what a
/// rewrite bought.
pub fn estimated_cost(graph: &Graph, root: NodeId, sizes: &InputSizes) -> Result<u128, SizeError> {
    let infos = propagate(graph, root, sizes)?;
    // Per-node flop estimates live in `physical::node_flops` so the physical
    // planner's serial-vs-parallel threshold uses the same cost model.
    let mut total: u128 = 0;
    for id in graph.reachable(root) {
        total += crate::physical::node_flops(graph, id, &infos);
    }
    Ok(total)
}

/// What one [`optimize_traced`] call did: the per-rule counts, the estimated
/// cost before and after (when sizes permit estimation), and the wall time
/// the optimizer itself spent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteTrace {
    /// Per-rule fire counts.
    pub stats: RewriteStats,
    /// Estimated flops of the DAG as written (None if sizes were undeclared).
    pub cost_before: Option<u128>,
    /// Estimated flops after rewriting.
    pub cost_after: Option<u128>,
    /// Calibrated cost (ns) of the DAG as written, when
    /// [`optimize_traced_calibrated`] ran with a loaded
    /// [`CostModel`](crate::cost::CostModel).
    pub calibrated_before_ns: Option<u128>,
    /// Calibrated cost (ns) after rewriting.
    pub calibrated_after_ns: Option<u128>,
    /// Wall time spent inside the optimizer.
    pub wall_ns: u64,
}

impl RewriteTrace {
    /// Estimated cost ratio `after / before`, when both are known (1.0 means
    /// the rewrites bought nothing by this model).
    pub fn cost_ratio(&self) -> Option<f64> {
        match (self.cost_before, self.cost_after) {
            (Some(b), Some(a)) if b > 0 => Some(a as f64 / b as f64),
            _ => None,
        }
    }

    /// Calibrated cost ratio `after / before` in observed nanoseconds, when
    /// [`optimize_traced_calibrated`] priced both sides. Where this and
    /// [`cost_ratio`](Self::cost_ratio) disagree, the machine disagrees with
    /// the flop model about what the rewrites bought.
    pub fn calibrated_ratio(&self) -> Option<f64> {
        match (self.calibrated_before_ns, self.calibrated_after_ns) {
            (Some(b), Some(a)) if b > 0 => Some(a as f64 / b as f64),
            _ => None,
        }
    }

    /// Push the trace into a [`Recorder`] under the `lang.rewrite.*` sites.
    pub fn record(&self, rec: &dyn Recorder) {
        if !rec.is_enabled() {
            return;
        }
        rec.add("lang.rewrite.cse_merged", self.stats.cse_merged as u64);
        rec.add("lang.rewrite.double_transpose", self.stats.double_transpose as u64);
        rec.add("lang.rewrite.crossprod_fused", self.stats.crossprod_fused as u64);
        rec.add("lang.rewrite.tmv_fused", self.stats.tmv_fused as u64);
        rec.add("lang.rewrite.sumsq_fused", self.stats.sumsq_fused as u64);
        rec.add("lang.rewrite.constants_folded", self.stats.constants_folded as u64);
        rec.add("lang.rewrite.identities", self.stats.identities as u64);
        rec.add("lang.rewrite.chains_reordered", self.stats.chains_reordered as u64);
        if let Some(b) = self.cost_before {
            rec.gauge_set("lang.rewrite.est_cost_before", b.min(u64::MAX as u128) as u64);
        }
        if let Some(a) = self.cost_after {
            rec.gauge_set("lang.rewrite.est_cost_after", a.min(u64::MAX as u128) as u64);
        }
        if let Some(b) = self.calibrated_before_ns {
            rec.gauge_set("lang.rewrite.cal_cost_before_ns", b.min(u64::MAX as u128) as u64);
        }
        if let Some(a) = self.calibrated_after_ns {
            rec.gauge_set("lang.rewrite.cal_cost_after_ns", a.min(u64::MAX as u128) as u64);
        }
        rec.record_duration_ns("lang.rewrite.wall", self.wall_ns);
    }
}

/// [`optimize`], plus a [`RewriteTrace`] carrying before/after cost estimates
/// and the optimizer's own wall time. Cost estimation failure (undeclared
/// inputs) degrades to `None` costs rather than failing the optimization.
pub fn optimize_traced(
    graph: &Graph,
    root: NodeId,
    sizes: &InputSizes,
) -> Result<(Graph, NodeId, RewriteTrace), SizeError> {
    let t0 = Instant::now();
    let cost_before = estimated_cost(graph, root, sizes).ok();
    let (g, new_root, stats) = optimize(graph, root, sizes)?;
    let cost_after = estimated_cost(&g, new_root, sizes).ok();
    let trace = RewriteTrace {
        stats,
        cost_before,
        cost_after,
        calibrated_before_ns: None,
        calibrated_after_ns: None,
        wall_ns: elapsed_ns(t0),
    };
    Ok((g, new_root, trace))
}

/// [`optimize_traced`], additionally pricing the before/after DAGs with a
/// calibrated [`CostModel`](crate::cost::CostModel): the trace's
/// `calibrated_before_ns`/`calibrated_after_ns` carry measured-throughput
/// nanosecond estimates (serial plans at the model's observed GFLOP/s),
/// alongside the static flop figures. Calibration failure degrades to `None`
/// exactly as static cost estimation does.
pub fn optimize_traced_calibrated(
    graph: &Graph,
    root: NodeId,
    sizes: &InputSizes,
    model: &crate::cost::CostModel,
) -> Result<(Graph, NodeId, RewriteTrace), SizeError> {
    let (g, new_root, mut trace) = optimize_traced(graph, root, sizes)?;
    let price = |gr: &Graph, rt: NodeId| -> Option<u128> {
        let plan = crate::physical::plan_with_inputs(gr, rt, sizes).ok()?;
        crate::cost::calibrated_cost(gr, rt, sizes, &plan, model).ok()
    };
    trace.calibrated_before_ns = price(graph, root);
    trace.calibrated_after_ns = price(&g, new_root);
    Ok((g, new_root, trace))
}

/// Leaves of the maximal multiplication chain rooted at `id`, left to right.
pub(crate) fn collect_chain_leaves(graph: &Graph, id: NodeId) -> Vec<NodeId> {
    fn walk(graph: &Graph, id: NodeId, leaves: &mut Vec<NodeId>) {
        match graph.op(id) {
            Op::MatMul(a, b) => {
                walk(graph, *a, leaves);
                walk(graph, *b, leaves);
            }
            _ => leaves.push(id),
        }
    }
    let mut leaves = Vec::new();
    walk(graph, id, &mut leaves);
    leaves
}

/// Find maximal `MatMul` chains and re-associate them with the classic
/// matrix-chain-order dynamic program over propagated shapes.
fn reorder_chains(
    graph: &Graph,
    root: NodeId,
    shape_of: &dyn Fn(NodeId) -> Option<Shape>,
) -> (Graph, NodeId, usize) {
    let mut g = Graph::new();
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut reordered = 0usize;

    // Nodes that are chain-internal MatMuls reachable only within a chain are
    // re-emitted by the DP; everything else copies over.
    let order = graph.reachable(root);
    let mut is_chain_internal = vec![false; graph.len()];
    for &id in &order {
        if let Op::MatMul(a, b) = graph.op(id) {
            for &c in &[*a, *b] {
                if matches!(graph.op(c), Op::MatMul(_, _)) {
                    is_chain_internal[c] = true;
                }
            }
        }
    }

    for &id in &order {
        if remap.contains_key(&id) {
            continue;
        }
        match graph.op(id) {
            Op::MatMul(_, _) if !is_chain_internal[id] => {
                // Root of a maximal chain.
                let leaves = collect_chain_leaves(graph, id);
                // All leaves are already remapped (children-first order).
                let mapped: Vec<NodeId> = leaves.iter().map(|l| remap[l]).collect();
                let dims: Option<Vec<(usize, usize)>> = leaves
                    .iter()
                    .map(|&l| match shape_of(l) {
                        Some(Shape::Matrix { rows, cols }) => Some((rows, cols)),
                        _ => None,
                    })
                    .collect();
                let new_id = match dims {
                    Some(dims) if mapped.len() > 2 => {
                        let orig_cost = original_chain_cost(graph, id, shape_of);
                        let (node, dp_cost) = emit_optimal_chain(&mut g, &mapped, &dims);
                        if orig_cost.is_some_and(|oc| dp_cost < oc) {
                            reordered += 1;
                        }
                        node
                    }
                    _ => {
                        // Two leaves or unknown shapes: left-deep as written.
                        let mut acc = mapped[0];
                        for &m in &mapped[1..] {
                            acc = g.push(Op::MatMul(acc, m));
                        }
                        acc
                    }
                };
                remap.insert(id, new_id);
            }
            Op::MatMul(_, _) => {
                // Chain-internal: handled by the chain root; emit nothing now,
                // but record a placeholder mapping in case another consumer
                // references it (possible in DAGs). Rebuild it literally.
                let ch: Vec<NodeId> = graph.op(id).children().iter().map(|c| remap[c]).collect();
                let new_id = g.push(graph.op(id).with_children(&ch));
                remap.insert(id, new_id);
            }
            _ => {
                let ch: Vec<NodeId> = graph.op(id).children().iter().map(|c| remap[c]).collect();
                let new_id = g.push(graph.op(id).with_children(&ch));
                remap.insert(id, new_id);
            }
        }
    }
    (g, remap[&root], reordered)
}

/// Multiplication cost (scalar multiplies) of a chain exactly as written.
pub(crate) fn original_chain_cost(
    graph: &Graph,
    id: NodeId,
    shape_of: &dyn Fn(NodeId) -> Option<Shape>,
) -> Option<u128> {
    fn walk(
        graph: &Graph,
        id: NodeId,
        shape_of: &dyn Fn(NodeId) -> Option<Shape>,
    ) -> Option<(u128, usize, usize)> {
        match graph.op(id) {
            Op::MatMul(a, b) => {
                let (ca, ra, ka) = walk(graph, *a, shape_of)?;
                let (cb, kb, cb_cols) = walk(graph, *b, shape_of)?;
                debug_assert_eq!(ka, kb, "shape propagation validated this earlier");
                Some((ca + cb + (ra as u128) * (ka as u128) * (cb_cols as u128), ra, cb_cols))
            }
            _ => match shape_of(id)? {
                Shape::Matrix { rows, cols } => Some((0, rows, cols)),
                Shape::Scalar => None,
            },
        }
    }
    walk(graph, id, shape_of).map(|(c, _, _)| c)
}

/// Matrix-chain-order DP over leaf dimensions: minimal multiply cost and the
/// split table needed to rebuild the optimal parenthesization.
fn chain_dp(dims: &[(usize, usize)]) -> (u128, Vec<Vec<usize>>) {
    let n = dims.len();
    // p[i] = rows of matrix i; p[n] = cols of the last.
    let mut p = Vec::with_capacity(n + 1);
    p.push(dims[0].0);
    for d in dims {
        p.push(d.1);
    }
    let mut cost = vec![vec![0u128; n]; n];
    let mut split = vec![vec![0usize; n]; n];
    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            cost[i][j] = u128::MAX;
            for k in i..j {
                let c = cost[i][k]
                    + cost[k + 1][j]
                    + (p[i] as u128) * (p[k + 1] as u128) * (p[j + 1] as u128);
                if c < cost[i][j] {
                    cost[i][j] = c;
                    split[i][j] = k;
                }
            }
        }
    }
    (cost[0][n - 1], split)
}

/// DP-optimal multiplication cost for a chain with the given leaf dimensions.
pub(crate) fn optimal_chain_cost(dims: &[(usize, usize)]) -> u128 {
    if dims.len() < 2 {
        return 0;
    }
    chain_dp(dims).0
}

/// Matrix-chain-order DP; emits the optimal parenthesization into `g`.
/// Returns the root node and the DP-optimal multiplication cost.
fn emit_optimal_chain(g: &mut Graph, leaves: &[NodeId], dims: &[(usize, usize)]) -> (NodeId, u128) {
    let n = leaves.len();
    let (best, split) = chain_dp(dims);
    fn build(g: &mut Graph, leaves: &[NodeId], split: &[Vec<usize>], i: usize, j: usize) -> NodeId {
        if i == j {
            return leaves[i];
        }
        let k = split[i][j];
        let a = build(g, leaves, split, i, k);
        let b = build(g, leaves, split, k + 1, j);
        g.push(Op::MatMul(a, b))
    }
    let node = build(g, leaves, &split, 0, n - 1);
    (node, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes() -> InputSizes {
        let mut s = InputSizes::new();
        s.declare("X", 1000, 20, 1.0);
        s.declare("Y", 20, 1000, 1.0);
        s.declare("v", 20, 1, 1.0);
        s.declare("u", 1000, 1, 1.0);
        s
    }

    #[test]
    fn cse_merges_shared_subtrees() {
        let mut g = Graph::new();
        let x1 = g.input("X");
        let x2 = g.input("X"); // duplicate
        let t1 = g.transpose(x1);
        let t2 = g.transpose(x2); // duplicate after x merge
        let s = g.ewise(EwiseOp::Add, t1, t2);
        let (og, root, stats) = optimize(&g, s, &sizes()).unwrap();
        assert!(stats.cse_merged >= 2);
        // (t(X) + t(X)): both operands are the same node after CSE.
        if let Op::Ewise(EwiseOp::Add, a, b) = og.op(root) {
            assert_eq!(a, b);
        } else {
            panic!("unexpected root {:?}", og.op(root));
        }
    }

    #[test]
    fn double_transpose_eliminated() {
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let tt = g.transpose(t);
        let (og, root, stats) = optimize(&g, tt, &sizes()).unwrap();
        assert_eq!(stats.double_transpose, 1);
        assert_eq!(og.op(root), &Op::Input("X".into()));
    }

    #[test]
    fn crossprod_fusion() {
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let mm = g.matmul(t, x);
        let (og, root, stats) = optimize(&g, mm, &sizes()).unwrap();
        assert_eq!(stats.crossprod_fused, 1);
        assert!(matches!(og.op(root), Op::CrossProd(_)));
    }

    #[test]
    fn tmv_fusion_requires_vector() {
        // t(X) %*% u where u is 1000x1.
        let mut g = Graph::new();
        let x = g.input("X");
        let u = g.input("u");
        let t = g.transpose(x);
        let mm = g.matmul(t, u);
        let (og, root, stats) = optimize(&g, mm, &sizes()).unwrap();
        assert_eq!(stats.tmv_fused, 1);
        assert!(matches!(og.op(root), Op::Tmv(_, _)));

        // t(X) %*% Y with matrix Y must NOT fuse.
        let mut g = Graph::new();
        let x = g.input("X");
        let y = g.input("Y");
        let t = g.transpose(x);
        let mm = g.matmul(t, y);
        let (og, root, stats) = optimize(&g, mm, &sizes()).unwrap();
        assert_eq!(stats.tmv_fused, 0);
        assert!(matches!(og.op(root), Op::MatMul(_, _)));
    }

    #[test]
    fn sumsq_fusion() {
        let mut g = Graph::new();
        let x = g.input("X");
        let sq = g.ewise(EwiseOp::Mul, x, x);
        let s = g.agg(AggOp::Sum, sq);
        let (og, root, stats) = optimize(&g, s, &sizes()).unwrap();
        assert_eq!(stats.sumsq_fused, 1);
        assert!(matches!(og.op(root), Op::SumSq(_)));
    }

    #[test]
    fn sumsq_fusion_via_cse() {
        // sum(X * X) written with two distinct X nodes still fuses after CSE.
        let mut g = Graph::new();
        let x1 = g.input("X");
        let x2 = g.input("X");
        let sq = g.ewise(EwiseOp::Mul, x1, x2);
        let s = g.agg(AggOp::Sum, sq);
        let (og, root, stats) = optimize(&g, s, &sizes()).unwrap();
        assert_eq!(stats.sumsq_fused, 1);
        assert!(matches!(og.op(root), Op::SumSq(_)));
    }

    #[test]
    fn constant_folding() {
        let mut g = Graph::new();
        let a = g.constant(2.0);
        let b = g.constant(3.0);
        let c = g.ewise(EwiseOp::Mul, a, b);
        let d = g.constant(1.0);
        let e = g.ewise(EwiseOp::Add, c, d);
        let (og, root, stats) = optimize(&g, e, &sizes()).unwrap();
        assert_eq!(stats.constants_folded, 2);
        assert_eq!(og.op(root), &Op::Const(7.0));
    }

    #[test]
    fn chain_reordering_picks_cheap_order() {
        // X (1000x20) %*% Y (20x1000) %*% v... build ((X %*% Y) %*% u)
        // with u 1000x1: left-deep costs 1000*20*1000 + 1000*1000*1 = 21M;
        // right-assoc costs 20*1000*1 + 1000*20*1 = 40K.
        let mut g = Graph::new();
        let x = g.input("X");
        let y = g.input("Y");
        let u = g.input("u");
        let xy = g.matmul(x, y);
        let root = g.matmul(xy, u);
        let (og, new_root, stats) = optimize(&g, root, &sizes()).unwrap();
        assert_eq!(stats.chains_reordered, 1);
        // New root should be X %*% (Y %*% u).
        if let Op::MatMul(a, b) = og.op(new_root) {
            assert!(matches!(og.op(*a), Op::Input(n) if n == "X"));
            assert!(matches!(og.op(*b), Op::MatMul(_, _)));
        } else {
            panic!("expected matmul root");
        }
    }

    #[test]
    fn already_optimal_chain_untouched() {
        let mut g = Graph::new();
        let x = g.input("X");
        let y = g.input("Y");
        let u = g.input("u");
        let yu = g.matmul(y, u);
        let root = g.matmul(x, yu);
        let (_, _, stats) = optimize(&g, root, &sizes()).unwrap();
        assert_eq!(stats.chains_reordered, 0);
    }

    #[test]
    fn optimize_without_sizes_still_applies_local_rules() {
        let mut g = Graph::new();
        let x = g.input("Unknown");
        let t = g.transpose(x);
        let tt = g.transpose(t);
        let (og, root, stats) = optimize(&g, tt, &InputSizes::new()).unwrap();
        assert_eq!(stats.double_transpose, 1);
        assert!(matches!(og.op(root), Op::Input(_)));
    }

    #[test]
    fn traced_optimize_reports_cost_win() {
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let mm = g.matmul(t, x);
        let s = g.agg(AggOp::Sum, mm);
        let (_, _, trace) = optimize_traced(&g, s, &sizes()).unwrap();
        assert_eq!(trace.stats.crossprod_fused, 1);
        let (before, after) = (trace.cost_before.unwrap(), trace.cost_after.unwrap());
        assert!(after < before, "expected fused plan cheaper: {after} vs {before}");
        assert!(trace.cost_ratio().unwrap() < 1.0);
    }

    #[test]
    fn traced_optimize_degrades_to_unknown_costs_without_sizes() {
        let mut g = Graph::new();
        let x = g.input("Undeclared");
        let t = g.transpose(x);
        let tt = g.transpose(t);
        let (_, _, trace) = optimize_traced(&g, tt, &InputSizes::new()).unwrap();
        assert_eq!(trace.stats.double_transpose, 1);
        assert_eq!(trace.cost_before, None);
        assert_eq!(trace.cost_ratio(), None);
    }

    #[test]
    fn trace_records_into_registry() {
        use dm_obs::StatsRegistry;
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let mm = g.matmul(t, x);
        let (_, _, trace) = optimize_traced(&g, mm, &sizes()).unwrap();
        let reg = StatsRegistry::new();
        trace.record(&reg);
        let rep = reg.report();
        assert_eq!(rep.counter("lang.rewrite.crossprod_fused"), Some(1));
        assert!(rep.gauge("lang.rewrite.est_cost_before").is_some());
        assert!(rep.duration("lang.rewrite.wall").is_some());
        // Disabled recorder: nothing to assert, just must not panic.
        trace.record(&dm_obs::NoopRecorder);
    }

    #[test]
    fn estimated_cost_tracks_sparsity() {
        // A 50% sparse input should cost about half the dense estimate.
        let mut dense_sizes = InputSizes::new();
        dense_sizes.declare("X", 100, 100, 1.0);
        let mut sparse_sizes = InputSizes::new();
        sparse_sizes.declare("X", 100, 100, 0.5);
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let mm = g.matmul(t, x);
        let dense = estimated_cost(&g, mm, &dense_sizes).unwrap();
        let sparse = estimated_cost(&g, mm, &sparse_sizes).unwrap();
        assert!(sparse < dense, "{sparse} vs {dense}");
    }

    #[test]
    fn render_stability_after_optimize() {
        let mut g = Graph::new();
        let x = g.input("X");
        let t = g.transpose(x);
        let mm = g.matmul(t, x);
        let s = g.agg(AggOp::Sum, mm);
        let (og, root, _) = optimize(&g, s, &sizes()).unwrap();
        assert_eq!(og.render(root), "sum(crossprod(X))");
    }
}
