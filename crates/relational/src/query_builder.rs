//! A fluent query pipeline: scan → filter → join → project → sort → limit,
//! assembled declaratively and executed as one plan.
//!
//! This is the thin "query layer" that the featurization and factorized-ML
//! components sit on — operators are recorded first and run in order, so the
//! whole plan is inspectable (and, in a bigger system, optimizable).

use crate::join::{hash_join, JoinKind};
use crate::predicate::{filter_where, Predicate};
use crate::sort::{sort_by, SortOrder};
use crate::table::Table;
use crate::RelError;

/// One logical operator in a query plan.
enum Step {
    Filter(Predicate),
    Project(Vec<String>),
    Join { right: Table, left_key: String, right_key: String, kind: JoinKind },
    Sort(Vec<(String, SortOrder)>),
    Distinct,
    Limit(usize),
}

impl std::fmt::Debug for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Filter(p) => write!(f, "Filter({p:?})"),
            Step::Project(cols) => write!(f, "Project({cols:?})"),
            Step::Join { right, left_key, right_key, kind } => {
                write!(f, "Join({} on {left_key}={right_key}, {kind:?})", right.name())
            }
            Step::Sort(keys) => write!(f, "Sort({keys:?})"),
            Step::Distinct => write!(f, "Distinct"),
            Step::Limit(n) => write!(f, "Limit({n})"),
        }
    }
}

/// A composable query over a base table.
///
/// ```
/// use dm_rel::{Query, Predicate, Table};
/// let mut t = Table::builder("r").int64("k").float64("v").build();
/// for i in 0..10 {
///     t.push_row(vec![(i % 3).into(), (i as f64).into()]).unwrap();
/// }
/// let out = Query::scan(t)
///     .filter(Predicate::gt("v", 2.0))
///     .project(&["k"])
///     .distinct()
///     .run()
///     .unwrap();
/// assert_eq!(out.num_rows(), 3);
/// ```
#[derive(Debug)]
pub struct Query {
    base: Table,
    steps: Vec<Step>,
}

impl Query {
    /// Start from a base table.
    pub fn scan(base: Table) -> Query {
        Query { base, steps: Vec::new() }
    }

    /// Keep rows matching the predicate.
    pub fn filter(mut self, pred: Predicate) -> Query {
        self.steps.push(Step::Filter(pred));
        self
    }

    /// Project onto the named columns.
    pub fn project(mut self, cols: &[&str]) -> Query {
        self.steps.push(Step::Project(cols.iter().map(|s| (*s).to_owned()).collect()));
        self
    }

    /// Hash-join with another table.
    pub fn join(mut self, right: Table, left_key: &str, right_key: &str, kind: JoinKind) -> Query {
        self.steps.push(Step::Join {
            right,
            left_key: left_key.to_owned(),
            right_key: right_key.to_owned(),
            kind,
        });
        self
    }

    /// Sort by keys.
    pub fn sort(mut self, keys: &[(&str, SortOrder)]) -> Query {
        self.steps.push(Step::Sort(keys.iter().map(|(k, o)| ((*k).to_owned(), *o)).collect()));
        self
    }

    /// Remove duplicate rows.
    pub fn distinct(mut self) -> Query {
        self.steps.push(Step::Distinct);
        self
    }

    /// Keep only the first `n` rows.
    pub fn limit(mut self, n: usize) -> Query {
        self.steps.push(Step::Limit(n));
        self
    }

    /// Render the plan, one operator per line (for debugging/EXPLAIN-style
    /// output).
    pub fn explain(&self) -> String {
        let mut out = format!("Scan({})", self.base.name());
        for s in &self.steps {
            out.push_str(&format!("\n  -> {s:?}"));
        }
        out
    }

    /// Execute the plan.
    pub fn run(self) -> Result<Table, RelError> {
        let mut cur = self.base;
        for step in self.steps {
            cur = match step {
                Step::Filter(p) => filter_where(&cur, &p)?,
                Step::Project(cols) => {
                    let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                    cur.project(&refs)?
                }
                Step::Join { right, left_key, right_key, kind } => {
                    hash_join(&cur, &right, &left_key, &right_key, kind)?
                }
                Step::Sort(keys) => {
                    let refs: Vec<(&str, SortOrder)> =
                        keys.iter().map(|(k, o)| (k.as_str(), *o)).collect();
                    sort_by(&cur, &refs)?
                }
                Step::Distinct => crate::sort::distinct(&cur),
                Step::Limit(n) => {
                    let keep: Vec<usize> = (0..cur.num_rows().min(n)).collect();
                    cur.gather(&keep)
                }
            };
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn orders() -> Table {
        let mut t = Table::builder("orders").int64("oid").int64("cust").float64("amount").build();
        let rows = [
            (1, 10, 25.0),
            (2, 11, 8.0),
            (3, 10, 12.0),
            (4, 12, 40.0),
            (5, 11, 33.0),
            (6, 10, 5.0),
        ];
        for (o, c, a) in rows {
            t.push_row(vec![o.into(), c.into(), a.into()]).unwrap();
        }
        t
    }

    fn customers() -> Table {
        let mut t = Table::builder("cust").int64("id").string("city").build();
        t.push_row(vec![10.into(), "paris".into()]).unwrap();
        t.push_row(vec![11.into(), "lyon".into()]).unwrap();
        t.push_row(vec![12.into(), "paris".into()]).unwrap();
        t
    }

    #[test]
    fn full_pipeline() {
        let out = Query::scan(orders())
            .filter(Predicate::gt("amount", 10.0))
            .join(customers(), "cust", "id", JoinKind::Inner)
            .filter(Predicate::eq("city", "paris"))
            .sort(&[("amount", SortOrder::Desc)])
            .project(&["oid", "amount", "city"])
            .run()
            .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.schema().names(), vec!["oid", "amount", "city"]);
        assert_eq!(out.row(0).get("oid"), Value::Int64(4)); // amount 40
        assert_eq!(out.row(1).get("oid"), Value::Int64(1)); // amount 25
        assert_eq!(out.row(2).get("oid"), Value::Int64(3)); // amount 12
    }

    #[test]
    fn limit_and_distinct() {
        let out = Query::scan(orders()).project(&["cust"]).distinct().run().unwrap();
        assert_eq!(out.num_rows(), 3);
        let out = Query::scan(orders()).limit(2).run().unwrap();
        assert_eq!(out.num_rows(), 2);
        let out = Query::scan(orders()).limit(100).run().unwrap();
        assert_eq!(out.num_rows(), 6);
    }

    #[test]
    fn explain_renders_plan() {
        let q =
            Query::scan(orders()).filter(Predicate::gt("amount", 10.0)).project(&["oid"]).limit(1);
        let plan = q.explain();
        assert!(plan.starts_with("Scan(orders)"));
        assert!(plan.contains("Filter"));
        assert!(plan.contains("Project([\"oid\"])"));
        assert!(plan.contains("Limit(1)"));
    }

    #[test]
    fn errors_surface_from_any_step() {
        assert!(Query::scan(orders()).project(&["ghost"]).run().is_err());
        assert!(Query::scan(orders()).filter(Predicate::eq("ghost", 1i64)).run().is_err());
        assert!(Query::scan(orders())
            .join(customers(), "ghost", "id", JoinKind::Inner)
            .run()
            .is_err());
    }

    #[test]
    fn left_join_through_builder() {
        let mut extra = orders();
        extra.push_row(vec![7.into(), 99.into(), 1.0.into()]).unwrap();
        let out = Query::scan(extra).join(customers(), "cust", "id", JoinKind::Left).run().unwrap();
        assert_eq!(out.num_rows(), 7);
        let unmatched = out.iter_rows().filter(|r| r.get("city").is_null()).count();
        assert_eq!(unmatched, 1);
    }
}
