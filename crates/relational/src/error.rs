//! Error type for the relational engine.

use crate::schema::DataType;
use std::fmt;

/// Errors surfaced by `dm-rel` operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RelError {
    /// Referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        /// Column whose type was violated.
        column: String,
        /// Declared type.
        expected: DataType,
        /// Supplied value's type name.
        actual: &'static str,
    },
    /// A row has the wrong number of values.
    Arity {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// Two schemas that must agree do not.
    SchemaMismatch(String),
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line number of the failure.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// I/O failure, carried as a string to keep the error `Clone + PartialEq`.
    Io(String),
    /// A duplicate column name was declared.
    DuplicateColumn(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            RelError::TypeMismatch { column, expected, actual } => {
                write!(f, "type mismatch in column {column}: expected {expected:?}, got {actual}")
            }
            RelError::Arity { expected, actual } => {
                write!(f, "row arity mismatch: expected {expected} values, got {actual}")
            }
            RelError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            RelError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            RelError::Io(msg) => write!(f, "io error: {msg}"),
            RelError::DuplicateColumn(name) => write!(f, "duplicate column name: {name}"),
        }
    }
}

impl std::error::Error for RelError {}

impl From<std::io::Error> for RelError {
    fn from(e: std::io::Error) -> Self {
        RelError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RelError::UnknownColumn("x".into()).to_string().contains("unknown column: x"));
        assert!(RelError::Arity { expected: 3, actual: 2 }.to_string().contains("expected 3"));
        assert!(RelError::Csv { line: 7, message: "bad quote".into() }
            .to_string()
            .contains("line 7"));
        let e =
            RelError::TypeMismatch { column: "a".into(), expected: DataType::Int64, actual: "Str" };
        assert!(e.to_string().contains("Int64"));
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: RelError = io.into();
        assert!(matches!(e, RelError::Io(_)));
    }
}
