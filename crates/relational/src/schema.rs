//! Schemas and column types.

use crate::RelError;

/// Logical column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit float.
    Float64,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

/// A named, typed column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype }
    }
}

/// An ordered collection of fields with unique names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Self, RelError> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(RelError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Index of the column, as a `Result` for `?`-friendly call sites.
    pub fn require(&self, name: &str) -> Result<usize, RelError> {
        self.index_of(name).ok_or_else(|| RelError::UnknownColumn(name.to_owned()))
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// A new schema containing the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema, RelError> {
        let mut fields = Vec::with_capacity(names.len());
        for &n in names {
            let i = self.require(n)?;
            fields.push(self.fields[i].clone());
        }
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Str),
            Field::new("score", DataType::Float64),
        ])
        .unwrap()
    }

    #[test]
    fn lookup() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.require("score").unwrap(), 2);
        assert!(matches!(s.require("nope"), Err(RelError::UnknownColumn(_))));
        assert_eq!(s.names(), vec!["id", "name", "score"]);
        assert_eq!(s.field(0).dtype, DataType::Int64);
    }

    #[test]
    fn duplicate_rejected() {
        let r = Schema::new(vec![Field::new("a", DataType::Int64), Field::new("a", DataType::Str)]);
        assert_eq!(r.unwrap_err(), RelError::DuplicateColumn("a".into()));
    }

    #[test]
    fn projection() {
        let s = schema();
        let p = s.project(&["score", "id"]).unwrap();
        assert_eq!(p.names(), vec!["score", "id"]);
        assert!(s.project(&["missing"]).is_err());
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]).unwrap();
        assert!(s.is_empty());
    }
}
