//! Group-by aggregation.

use crate::schema::{DataType, Field, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::RelError;
use std::collections::HashMap;

/// Aggregate functions over a numeric column (NULLs are skipped, SQL-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Row count of the group (ignores the column's NULLs: `COUNT(col)`).
    Count,
    /// Sum of non-NULL values.
    Sum,
    /// Mean of non-NULL values.
    Mean,
    /// Minimum non-NULL value.
    Min,
    /// Maximum non-NULL value.
    Max,
}

impl Agg {
    fn result_name(&self, col: &str) -> String {
        let f = match self {
            Agg::Count => "count",
            Agg::Sum => "sum",
            Agg::Mean => "mean",
            Agg::Min => "min",
            Agg::Max => "max",
        };
        format!("{f}_{col}")
    }
}

/// Streaming aggregate state for one (group, aggregate) pair.
#[derive(Debug, Clone, Copy)]
struct AggState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl AggState {
    fn new() -> Self {
        AggState { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    fn update(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn finish(&self, agg: Agg) -> Value {
        if self.count == 0 {
            return match agg {
                Agg::Count => Value::Int64(0),
                _ => Value::Null,
            };
        }
        match agg {
            Agg::Count => Value::Int64(self.count as i64),
            Agg::Sum => Value::Float64(self.sum),
            Agg::Mean => Value::Float64(self.sum / self.count as f64),
            Agg::Min => Value::Float64(self.min),
            Agg::Max => Value::Float64(self.max),
        }
    }
}

/// A group-by aggregation plan: key column plus `(column, aggregate)` pairs.
///
/// ```
/// use dm_rel::{Table, Agg, GroupBy};
/// let mut t = Table::builder("sales").string("region").float64("amount").build();
/// t.push_row(vec!["eu".into(), 10.0.into()]).unwrap();
/// t.push_row(vec!["eu".into(), 20.0.into()]).unwrap();
/// t.push_row(vec!["us".into(), 5.0.into()]).unwrap();
/// let out = GroupBy::new("region").agg("amount", Agg::Sum).run(&t).unwrap();
/// assert_eq!(out.num_rows(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GroupBy {
    key: String,
    aggs: Vec<(String, Agg)>,
}

impl GroupBy {
    /// Group by the named key column.
    pub fn new(key: &str) -> Self {
        GroupBy { key: key.to_owned(), aggs: Vec::new() }
    }

    /// Add an aggregate over a numeric column.
    pub fn agg(mut self, column: &str, agg: Agg) -> Self {
        self.aggs.push((column.to_owned(), agg));
        self
    }

    /// Execute against a table. Groups appear in first-seen order.
    pub fn run(&self, t: &Table) -> Result<Table, RelError> {
        let key_idx = t.schema().require(&self.key)?;
        let mut agg_idx = Vec::with_capacity(self.aggs.len());
        for (col, _) in &self.aggs {
            let i = t.schema().require(col)?;
            if t.schema().field(i).dtype == DataType::Str {
                return Err(RelError::TypeMismatch {
                    column: col.clone(),
                    expected: DataType::Float64,
                    actual: "Str",
                });
            }
            agg_idx.push(i);
        }

        // Group keys are rendered through Value's display for hashing;
        // first-seen order is preserved for deterministic output.
        let mut order: Vec<Value> = Vec::new();
        let mut groups: HashMap<String, usize> = HashMap::new();
        let mut states: Vec<Vec<AggState>> = Vec::new();

        for r in 0..t.num_rows() {
            let kv = t.column(key_idx).get(r);
            let kstr = format!("{}|{kv}", kv.type_name());
            let gi = *groups.entry(kstr).or_insert_with(|| {
                order.push(kv.clone());
                states.push(vec![AggState::new(); self.aggs.len()]);
                states.len() - 1
            });
            for (slot, &ci) in states[gi].iter_mut().zip(&agg_idx) {
                if let Some(v) = t.column(ci).get_f64(r) {
                    slot.update(v);
                }
            }
        }

        // Assemble output table.
        let mut fields = vec![Field::new(&self.key, t.schema().field(key_idx).dtype)];
        for (col, agg) in &self.aggs {
            let dtype = if *agg == Agg::Count { DataType::Int64 } else { DataType::Float64 };
            fields.push(Field::new(agg.result_name(col), dtype));
        }
        let schema = Schema::new(fields)?;
        let mut out = Table::empty(format!("{}_by_{}", t.name(), self.key), schema);
        for (gi, kv) in order.into_iter().enumerate() {
            let mut row = vec![kv];
            for (slot, (_, agg)) in states[gi].iter().zip(&self.aggs) {
                row.push(slot.finish(*agg));
            }
            out.push_row(row)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> Table {
        let mut t = Table::builder("sales").string("region").float64("amount").int64("qty").build();
        t.push_row(vec!["eu".into(), 10.0.into(), 1.into()]).unwrap();
        t.push_row(vec!["us".into(), 5.0.into(), 2.into()]).unwrap();
        t.push_row(vec!["eu".into(), 20.0.into(), 3.into()]).unwrap();
        t.push_row(vec!["eu".into(), Value::Null, 4.into()]).unwrap();
        t
    }

    #[test]
    fn sum_mean_count() {
        let out = GroupBy::new("region")
            .agg("amount", Agg::Sum)
            .agg("amount", Agg::Mean)
            .agg("amount", Agg::Count)
            .run(&sales())
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        // First-seen order: eu then us.
        assert_eq!(out.row(0).get("region"), Value::from("eu"));
        assert_eq!(out.row(0).get("sum_amount"), Value::Float64(30.0));
        assert_eq!(out.row(0).get("mean_amount"), Value::Float64(15.0));
        // NULL amount not counted.
        assert_eq!(out.row(0).get("count_amount"), Value::Int64(2));
        assert_eq!(out.row(1).get("sum_amount"), Value::Float64(5.0));
    }

    #[test]
    fn min_max() {
        let out =
            GroupBy::new("region").agg("qty", Agg::Min).agg("qty", Agg::Max).run(&sales()).unwrap();
        assert_eq!(out.row(0).get("min_qty"), Value::Float64(1.0));
        assert_eq!(out.row(0).get("max_qty"), Value::Float64(4.0));
    }

    #[test]
    fn all_null_group_yields_null_aggregates() {
        let mut t = Table::builder("t").string("k").float64("x").build();
        t.push_row(vec!["a".into(), Value::Null]).unwrap();
        let out = GroupBy::new("k").agg("x", Agg::Sum).agg("x", Agg::Count).run(&t).unwrap();
        assert_eq!(out.row(0).get("sum_x"), Value::Null);
        assert_eq!(out.row(0).get("count_x"), Value::Int64(0));
    }

    #[test]
    fn int_key_grouping() {
        let mut t = Table::builder("t").int64("k").float64("x").build();
        t.push_row(vec![1.into(), 2.0.into()]).unwrap();
        t.push_row(vec![1.into(), 3.0.into()]).unwrap();
        t.push_row(vec![2.into(), 4.0.into()]).unwrap();
        let out = GroupBy::new("k").agg("x", Agg::Sum).run(&t).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.row(0).get("sum_x"), Value::Float64(5.0));
    }

    #[test]
    fn string_agg_column_rejected() {
        let mut t = Table::builder("t").string("k").string("s").build();
        t.push_row(vec!["a".into(), "b".into()]).unwrap();
        assert!(GroupBy::new("k").agg("s", Agg::Sum).run(&t).is_err());
    }

    #[test]
    fn unknown_columns_rejected() {
        let t = sales();
        assert!(GroupBy::new("ghost").agg("amount", Agg::Sum).run(&t).is_err());
        assert!(GroupBy::new("region").agg("ghost", Agg::Sum).run(&t).is_err());
    }

    #[test]
    fn empty_table() {
        let t = Table::builder("t").string("k").float64("x").build();
        let out = GroupBy::new("k").agg("x", Agg::Sum).run(&t).unwrap();
        assert_eq!(out.num_rows(), 0);
    }
}
