//! Sorting and duplicate elimination.

use crate::table::Table;
use crate::value::Value;
use crate::RelError;
use std::cmp::Ordering;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (NULLs first).
    Asc,
    /// Descending (NULLs last).
    Desc,
}

/// Total order over cell values for sorting: NULL < Bool < Int/Float
/// (numerically merged) < Str.
fn cmp_values(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int64(_) | Value::Float64(_) => 2,
            Value::Str(_) => 3,
        }
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
            _ => rank(a).cmp(&rank(b)),
        },
    }
}

/// Sort a table by the given `(column, order)` keys (stable sort, so earlier
/// keys dominate and input order breaks remaining ties).
pub fn sort_by(t: &Table, keys: &[(&str, SortOrder)]) -> Result<Table, RelError> {
    let mut cols = Vec::with_capacity(keys.len());
    for (name, ord) in keys {
        cols.push((t.schema().require(name)?, *ord));
    }
    let mut idx: Vec<usize> = (0..t.num_rows()).collect();
    idx.sort_by(|&a, &b| {
        for &(c, ord) in &cols {
            let va = t.column(c).get(a);
            let vb = t.column(c).get(b);
            let o = cmp_values(&va, &vb);
            let o = if ord == SortOrder::Desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    });
    Ok(t.gather(&idx))
}

/// Remove duplicate rows (considering every column), keeping first
/// occurrences in input order.
pub fn distinct(t: &Table) -> Table {
    let mut seen = std::collections::HashSet::new();
    let mut keep = Vec::new();
    for r in 0..t.num_rows() {
        // Render a stable key; Display is injective enough here because the
        // type tag is included per cell.
        let key: String = (0..t.num_cols())
            .map(|c| {
                let v = t.column(c).get(r);
                format!("{}\u{1}{v}\u{2}", v.type_name())
            })
            .collect();
        if seen.insert(key) {
            keep.push(r);
        }
    }
    t.gather(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        let mut t = Table::builder("t").string("name").float64("score").int64("grade").build();
        t.push_row(vec!["carol".into(), 7.0.into(), 2.into()]).unwrap();
        t.push_row(vec!["ada".into(), 9.5.into(), 1.into()]).unwrap();
        t.push_row(vec!["bob".into(), Value::Null, 2.into()]).unwrap();
        t.push_row(vec!["dan".into(), 7.0.into(), 1.into()]).unwrap();
        t
    }

    #[test]
    fn single_key_asc_nulls_first() {
        let s = sort_by(&t(), &[("score", SortOrder::Asc)]).unwrap();
        let names: Vec<Value> = s.iter_rows().map(|r| r.get("name")).collect();
        assert_eq!(names, vec!["bob".into(), "carol".into(), "dan".into(), "ada".into()]);
    }

    #[test]
    fn single_key_desc_nulls_last() {
        let s = sort_by(&t(), &[("score", SortOrder::Desc)]).unwrap();
        let names: Vec<Value> = s.iter_rows().map(|r| r.get("name")).collect();
        assert_eq!(names, vec!["ada".into(), "carol".into(), "dan".into(), "bob".into()]);
    }

    #[test]
    fn multi_key_sort() {
        let s = sort_by(&t(), &[("grade", SortOrder::Asc), ("score", SortOrder::Desc)]).unwrap();
        let names: Vec<Value> = s.iter_rows().map(|r| r.get("name")).collect();
        // grade 1: ada (9.5), dan (7.0); grade 2: carol (7.0), bob (null last).
        assert_eq!(names, vec!["ada".into(), "dan".into(), "carol".into(), "bob".into()]);
    }

    #[test]
    fn stable_on_ties() {
        let s = sort_by(&t(), &[("grade", SortOrder::Asc)]).unwrap();
        let names: Vec<Value> = s.iter_rows().map(|r| r.get("name")).collect();
        // Within grade 1 and grade 2, input order preserved.
        assert_eq!(names, vec!["ada".into(), "dan".into(), "carol".into(), "bob".into()]);
    }

    #[test]
    fn string_sort() {
        let s = sort_by(&t(), &[("name", SortOrder::Asc)]).unwrap();
        assert_eq!(s.row(0).get("name"), Value::from("ada"));
        assert_eq!(s.row(3).get("name"), Value::from("dan"));
    }

    #[test]
    fn unknown_key_rejected() {
        assert!(sort_by(&t(), &[("ghost", SortOrder::Asc)]).is_err());
    }

    #[test]
    fn int_float_compared_numerically() {
        let mut t = Table::builder("t").float64("x").build();
        t.push_row(vec![Value::Int64(3)]).unwrap();
        t.push_row(vec![Value::Float64(2.5)]).unwrap();
        t.push_row(vec![Value::Int64(1)]).unwrap();
        let s = sort_by(&t, &[("x", SortOrder::Asc)]).unwrap();
        assert_eq!(s.column(0).get_f64(0), Some(1.0));
        assert_eq!(s.column(0).get_f64(1), Some(2.5));
        assert_eq!(s.column(0).get_f64(2), Some(3.0));
    }

    #[test]
    fn distinct_removes_exact_duplicates() {
        let mut t = Table::builder("t").string("a").int64("b").build();
        t.push_row(vec!["x".into(), 1.into()]).unwrap();
        t.push_row(vec!["x".into(), 1.into()]).unwrap();
        t.push_row(vec!["x".into(), 2.into()]).unwrap();
        t.push_row(vec!["y".into(), 1.into()]).unwrap();
        t.push_row(vec!["x".into(), 1.into()]).unwrap();
        let d = distinct(&t);
        assert_eq!(d.num_rows(), 3);
        assert_eq!(d.row(0).get("a"), Value::from("x"));
        assert_eq!(d.row(0).get("b"), Value::Int64(1));
    }

    #[test]
    fn distinct_distinguishes_null_from_empty_string() {
        let mut t = Table::builder("t").string("a").build();
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec!["".into()]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        let d = distinct(&t);
        assert_eq!(d.num_rows(), 2, "NULL and empty string are different values");
    }

    #[test]
    fn distinct_distinguishes_int_from_equal_float() {
        let mut ti = Table::builder("t").float64("a").build();
        ti.push_row(vec![Value::Int64(1)]).unwrap(); // widened to 1.0
        ti.push_row(vec![Value::Float64(1.0)]).unwrap();
        // Both stored as Float64(1.0) in a float column: duplicates.
        assert_eq!(distinct(&ti).num_rows(), 1);
    }
}
