//! Hash equi-joins.

use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::RelError;
use std::collections::HashMap;

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only matching pairs.
    Inner,
    /// Keep every left row; unmatched right columns become NULL.
    Left,
}

/// Key wrapper making join keys hashable (`f64` keys are compared by bit
/// pattern, which is exact for keys that originate from the same column).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Null,
    Int(i64),
    Str(String),
    Bool(bool),
    FloatBits(u64),
}

impl Key {
    fn from_value(v: &Value) -> Key {
        match v {
            Value::Null => Key::Null,
            Value::Int64(x) => Key::Int(*x),
            Value::Str(s) => Key::Str(s.clone()),
            Value::Bool(b) => Key::Bool(*b),
            Value::Float64(x) => Key::FloatBits(x.to_bits()),
        }
    }
}

/// Hash equi-join of `left` and `right` on `left_key = right_key`.
///
/// The output schema is the left schema followed by the right schema minus the
/// right key column; colliding names from the right side get a
/// `<right_table>_` prefix. NULL keys never match (SQL semantics).
///
/// The build side is the right table; probe is a single pass over the left,
/// so an N-row left table joining a small dimension table stays O(N).
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
    kind: JoinKind,
) -> Result<Table, RelError> {
    let lk = left.schema().require(left_key)?;
    let rk = right.schema().require(right_key)?;

    // Build: right key -> row indices.
    let mut build: HashMap<Key, Vec<usize>> = HashMap::with_capacity(right.num_rows());
    for i in 0..right.num_rows() {
        let v = right.column(rk).get(i);
        if v.is_null() {
            continue;
        }
        build.entry(Key::from_value(&v)).or_default().push(i);
    }

    // Probe: collect matching (left_row, Option<right_row>) pairs.
    let mut lrows: Vec<usize> = Vec::new();
    let mut rrows: Vec<Option<usize>> = Vec::new();
    for i in 0..left.num_rows() {
        let v = left.column(lk).get(i);
        let matches = if v.is_null() { None } else { build.get(&Key::from_value(&v)) };
        match matches {
            Some(rs) => {
                for &r in rs {
                    lrows.push(i);
                    rrows.push(Some(r));
                }
            }
            None => {
                if kind == JoinKind::Left {
                    lrows.push(i);
                    rrows.push(None);
                }
            }
        }
    }

    // Output schema: left columns + right columns minus the right key.
    let mut fields: Vec<Field> = left.schema().fields().to_vec();
    let mut right_cols: Vec<usize> = Vec::new();
    for (j, f) in right.schema().fields().iter().enumerate() {
        if j == rk {
            continue;
        }
        right_cols.push(j);
        let name = if left.schema().index_of(&f.name).is_some() {
            format!("{}_{}", right.name(), f.name)
        } else {
            f.name.clone()
        };
        fields.push(Field::new(name, f.dtype));
    }
    let schema = Schema::new(fields)?;
    let mut out = Table::empty(format!("{}_join_{}", left.name(), right.name()), schema);

    for (li, ri) in lrows.iter().zip(&rrows) {
        let mut row: Vec<Value> = left.row(*li).to_vec();
        match ri {
            Some(r) => {
                for &j in &right_cols {
                    row.push(right.column(j).get(*r));
                }
            }
            None => {
                for _ in &right_cols {
                    row.push(Value::Null);
                }
            }
        }
        out.push_row(row)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders() -> Table {
        let mut t = Table::builder("orders").int64("oid").int64("cid").float64("amount").build();
        t.push_row(vec![100.into(), 1.into(), 25.0.into()]).unwrap();
        t.push_row(vec![101.into(), 2.into(), 10.0.into()]).unwrap();
        t.push_row(vec![102.into(), 1.into(), 5.0.into()]).unwrap();
        t.push_row(vec![103.into(), 9.into(), 1.0.into()]).unwrap();
        t.push_row(vec![104.into(), Value::Null, 3.0.into()]).unwrap();
        t
    }

    fn customers() -> Table {
        let mut t = Table::builder("customers").int64("cid").string("city").build();
        t.push_row(vec![1.into(), "paris".into()]).unwrap();
        t.push_row(vec![2.into(), "lyon".into()]).unwrap();
        t.push_row(vec![3.into(), "nice".into()]).unwrap();
        t
    }

    #[test]
    fn inner_join_basic() {
        let j = hash_join(&orders(), &customers(), "cid", "cid", JoinKind::Inner).unwrap();
        assert_eq!(j.num_rows(), 3);
        assert_eq!(j.schema().names(), vec!["oid", "cid", "amount", "city"]);
        // Order 100 (cid 1) -> paris.
        assert_eq!(j.row(0).get("city"), Value::from("paris"));
        // Order 103 (cid 9 unmatched) dropped; NULL cid dropped.
        for r in j.iter_rows() {
            assert_ne!(r.get("oid"), Value::Int64(103));
            assert_ne!(r.get("oid"), Value::Int64(104));
        }
    }

    #[test]
    fn left_join_pads_nulls() {
        let j = hash_join(&orders(), &customers(), "cid", "cid", JoinKind::Left).unwrap();
        assert_eq!(j.num_rows(), 5);
        let unmatched: Vec<_> =
            j.iter_rows().filter(|r| r.get("city").is_null()).map(|r| r.get("oid")).collect();
        assert_eq!(unmatched, vec![Value::Int64(103), Value::Int64(104)]);
    }

    #[test]
    fn duplicate_build_keys_multiply() {
        let mut dup = Table::builder("dup").int64("cid").string("tag").build();
        dup.push_row(vec![1.into(), "a".into()]).unwrap();
        dup.push_row(vec![1.into(), "b".into()]).unwrap();
        let j = hash_join(&orders(), &dup, "cid", "cid", JoinKind::Inner).unwrap();
        // Orders 100 and 102 have cid 1, each matching 2 build rows.
        assert_eq!(j.num_rows(), 4);
    }

    #[test]
    fn name_collision_prefixed() {
        let mut right = Table::builder("dim").int64("k").float64("amount").build();
        right.push_row(vec![1.into(), 9.0.into()]).unwrap();
        let j = hash_join(&orders(), &right, "cid", "k", JoinKind::Inner).unwrap();
        assert!(j.schema().index_of("dim_amount").is_some());
    }

    #[test]
    fn string_keys() {
        let mut l = Table::builder("l").string("k").build();
        l.push_row(vec!["x".into()]).unwrap();
        l.push_row(vec!["y".into()]).unwrap();
        let mut r = Table::builder("r").string("k").int64("v").build();
        r.push_row(vec!["y".into(), 7.into()]).unwrap();
        let j = hash_join(&l, &r, "k", "k", JoinKind::Inner).unwrap();
        assert_eq!(j.num_rows(), 1);
        assert_eq!(j.row(0).get("v"), Value::Int64(7));
    }

    #[test]
    fn unknown_key_errors() {
        assert!(hash_join(&orders(), &customers(), "nope", "cid", JoinKind::Inner).is_err());
        assert!(hash_join(&orders(), &customers(), "cid", "nope", JoinKind::Inner).is_err());
    }

    #[test]
    fn join_with_empty_right() {
        let empty = Table::builder("e").int64("cid").string("c").build();
        let inner = hash_join(&orders(), &empty, "cid", "cid", JoinKind::Inner).unwrap();
        assert_eq!(inner.num_rows(), 0);
        let left = hash_join(&orders(), &empty, "cid", "cid", JoinKind::Left).unwrap();
        assert_eq!(left.num_rows(), orders().num_rows());
    }
}
