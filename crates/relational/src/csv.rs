//! CSV import/export with type inference (RFC 4180 quoting subset).

use crate::schema::{DataType, Field, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::RelError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Split one CSV record into fields, honoring double-quote escaping.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>, RelError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' => {
                    if cur.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(RelError::Csv {
                            line: line_no,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                }
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(RelError::Csv { line: line_no, message: "unterminated quoted field".into() });
    }
    fields.push(cur);
    Ok(fields)
}

/// Infer the narrowest type that parses every non-empty sample in a column:
/// `Int64 -> Float64 -> Bool -> Str`. Columns that are entirely empty fall back
/// to `Str`.
fn infer_type(samples: &[&str]) -> DataType {
    let mut any = false;
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    for s in samples {
        if s.is_empty() {
            continue;
        }
        any = true;
        if s.parse::<i64>().is_err() {
            all_int = false;
        }
        if s.parse::<f64>().is_err() {
            all_float = false;
        }
        if !matches!(*s, "true" | "false" | "TRUE" | "FALSE" | "True" | "False") {
            all_bool = false;
        }
    }
    if !any {
        DataType::Str
    } else if all_int {
        DataType::Int64
    } else if all_float {
        DataType::Float64
    } else if all_bool {
        DataType::Bool
    } else {
        DataType::Str
    }
}

fn parse_cell(s: &str, dtype: DataType, line: usize, column: &str) -> Result<Value, RelError> {
    if s.is_empty() {
        return Ok(Value::Null);
    }
    let err = |msg: String| RelError::Csv { line, message: format!("column {column}: {msg}") };
    Ok(match dtype {
        DataType::Int64 => Value::Int64(s.parse().map_err(|_| err(format!("bad int {s:?}")))?),
        DataType::Float64 => {
            Value::Float64(s.parse().map_err(|_| err(format!("bad float {s:?}")))?)
        }
        DataType::Bool => match s {
            "true" | "TRUE" | "True" => Value::Bool(true),
            "false" | "FALSE" | "False" => Value::Bool(false),
            _ => return Err(err(format!("bad bool {s:?}"))),
        },
        DataType::Str => Value::Str(s.to_owned()),
    })
}

/// Read a CSV document (header row required) with type inference over the
/// whole column. Empty cells become NULL.
pub fn read_csv(reader: impl Read, table_name: &str) -> Result<Table, RelError> {
    let buf = BufReader::new(reader);
    let mut lines = Vec::new();
    for line in buf.lines() {
        lines.push(line?);
    }
    let mut it = lines.iter();
    let header = it.next().ok_or(RelError::Csv { line: 1, message: "missing header".into() })?;
    let names = split_record(header, 1)?;
    let ncols = names.len();

    // Parse all records up front so inference sees the full column.
    let mut records: Vec<Vec<String>> = Vec::with_capacity(lines.len().saturating_sub(1));
    for (i, line) in it.enumerate() {
        if line.is_empty() {
            continue;
        }
        let rec = split_record(line, i + 2)?;
        if rec.len() != ncols {
            return Err(RelError::Csv {
                line: i + 2,
                message: format!("expected {ncols} fields, got {}", rec.len()),
            });
        }
        records.push(rec);
    }

    let mut fields = Vec::with_capacity(ncols);
    for (c, name) in names.iter().enumerate() {
        let samples: Vec<&str> = records.iter().map(|r| r[c].as_str()).collect();
        fields.push(Field::new(name.clone(), infer_type(&samples)));
    }
    let schema = Schema::new(fields)?;
    let mut table = Table::empty(table_name, schema);
    for (i, rec) in records.into_iter().enumerate() {
        let mut row = Vec::with_capacity(ncols);
        for (c, cell) in rec.into_iter().enumerate() {
            let f = table.schema().field(c);
            row.push(parse_cell(&cell, f.dtype, i + 2, &f.name.clone())?);
        }
        table.push_row(row)?;
    }
    Ok(table)
}

/// Read a CSV file from disk.
pub fn read_csv_path(path: impl AsRef<Path>) -> Result<Table, RelError> {
    let path = path.as_ref();
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table").to_owned();
    let file = std::fs::File::open(path)?;
    read_csv(file, &name)
}

fn quote_if_needed(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Write a table as CSV (header included, NULLs as empty cells).
pub fn write_csv(table: &Table, mut w: impl Write) -> Result<(), RelError> {
    let header: Vec<String> = table.schema().names().iter().map(|n| quote_if_needed(n)).collect();
    writeln!(w, "{}", header.join(","))?;
    for r in table.iter_rows() {
        let cells: Vec<String> = (0..table.num_cols())
            .map(|c| match r.get_at(c) {
                Value::Str(s) => quote_if_needed(&s),
                other => other.to_string(),
            })
            .collect();
        writeln!(w, "{}", cells.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_inference() {
        let data = "id,name,score,flag\n1,ada,9.5,true\n2,bob,7,false\n3,carol,,\n";
        let t = read_csv(data.as_bytes(), "t").unwrap();
        assert_eq!(t.num_rows(), 3);
        let s = t.schema();
        assert_eq!(s.field(0).dtype, DataType::Int64);
        assert_eq!(s.field(1).dtype, DataType::Str);
        assert_eq!(s.field(2).dtype, DataType::Float64);
        assert_eq!(s.field(3).dtype, DataType::Bool);
        assert_eq!(t.row(2).get("score"), Value::Null);
        assert_eq!(t.row(0).get("flag"), Value::Bool(true));
    }

    #[test]
    fn int_column_with_decimal_becomes_float() {
        let data = "x\n1\n2.5\n";
        let t = read_csv(data.as_bytes(), "t").unwrap();
        assert_eq!(t.schema().field(0).dtype, DataType::Float64);
        assert_eq!(t.row(0).get("x"), Value::Float64(1.0));
    }

    #[test]
    fn quoted_fields() {
        let data = "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\nplain,2\n";
        let t = read_csv(data.as_bytes(), "t").unwrap();
        assert_eq!(t.row(0).get("a"), Value::from("hello, world"));
        assert_eq!(t.row(0).get("b"), Value::from("say \"hi\""));
        // Mixed column (string + int) infers Str.
        assert_eq!(t.schema().field(1).dtype, DataType::Str);
    }

    #[test]
    fn arity_mismatch_reports_line() {
        let data = "a,b\n1,2\n3\n";
        let err = read_csv(data.as_bytes(), "t").unwrap_err();
        assert_eq!(err, RelError::Csv { line: 3, message: "expected 2 fields, got 1".into() });
    }

    #[test]
    fn unterminated_quote_rejected() {
        let data = "a\n\"oops\n";
        assert!(matches!(read_csv(data.as_bytes(), "t"), Err(RelError::Csv { .. })));
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(read_csv("".as_bytes(), "t"), Err(RelError::Csv { line: 1, .. })));
    }

    #[test]
    fn all_empty_column_is_str() {
        let data = "a,b\n1,\n2,\n";
        let t = read_csv(data.as_bytes(), "t").unwrap();
        assert_eq!(t.schema().field(1).dtype, DataType::Str);
        assert!(t.row(0).get("b").is_null());
    }

    #[test]
    fn round_trip() {
        let data = "id,name,score\n1,\"a,b\",1.5\n2,plain,\n";
        let t = read_csv(data.as_bytes(), "t").unwrap();
        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        let t2 = read_csv(out.as_slice(), "t").unwrap();
        assert_eq!(t.num_rows(), t2.num_rows());
        assert_eq!(t.row(0).get("name"), t2.row(0).get("name"));
        assert_eq!(t2.row(1).get("score"), Value::Null);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("dmml_csv_test.csv");
        let mut t = Table::builder("x").int64("k").float64("v").build();
        t.push_row(vec![1.into(), 0.5.into()]).unwrap();
        let mut f = std::fs::File::create(&path).unwrap();
        write_csv(&t, &mut f).unwrap();
        drop(f);
        let back = read_csv_path(&path).unwrap();
        assert_eq!(back.num_rows(), 1);
        assert_eq!(back.name(), "dmml_csv_test");
        std::fs::remove_file(&path).ok();
    }
}
