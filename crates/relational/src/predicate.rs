//! Declarative predicates over rows: a small expression language that can be
//! inspected, validated against a schema, and evaluated without user closures
//! — the form a query planner can reason about.

use crate::schema::DataType;
use crate::table::Table;
use crate::value::Value;
use crate::RelError;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A boolean predicate over one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Compare a column against a literal. NULL comparisons are false
    /// (SQL three-valued logic collapsed to false at the top level).
    Compare {
        /// Column name.
        column: String,
        /// Operator.
        op: Cmp,
        /// Literal to compare against.
        value: Value,
    },
    /// Column IS NULL.
    IsNull(String),
    /// Column IS NOT NULL.
    IsNotNull(String),
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column op value` comparison.
    pub fn cmp(column: &str, op: Cmp, value: impl Into<Value>) -> Predicate {
        Predicate::Compare { column: column.to_owned(), op, value: value.into() }
    }

    /// Shorthand for equality.
    pub fn eq(column: &str, value: impl Into<Value>) -> Predicate {
        Predicate::cmp(column, Cmp::Eq, value)
    }

    /// Shorthand for `>`.
    pub fn gt(column: &str, value: impl Into<Value>) -> Predicate {
        Predicate::cmp(column, Cmp::Gt, value)
    }

    /// Shorthand for `<`.
    pub fn lt(column: &str, value: impl Into<Value>) -> Predicate {
        Predicate::cmp(column, Cmp::Lt, value)
    }

    /// Conjunction.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Validate against a schema: every referenced column must exist, and
    /// comparison literals must be type-compatible with their column.
    pub fn validate(&self, table: &Table) -> Result<(), RelError> {
        match self {
            Predicate::Compare { column, value, .. } => {
                let i = table.schema().require(column)?;
                let dtype = table.schema().field(i).dtype;
                let compatible = matches!(
                    (dtype, value),
                    (_, Value::Null)
                        | (DataType::Int64, Value::Int64(_))
                        | (DataType::Float64, Value::Float64(_))
                        | (DataType::Float64, Value::Int64(_))
                        | (DataType::Int64, Value::Float64(_))
                        | (DataType::Str, Value::Str(_))
                        | (DataType::Bool, Value::Bool(_))
                );
                if !compatible {
                    return Err(RelError::TypeMismatch {
                        column: column.clone(),
                        expected: dtype,
                        actual: value.type_name(),
                    });
                }
                Ok(())
            }
            Predicate::IsNull(c) | Predicate::IsNotNull(c) => table.schema().require(c).map(|_| ()),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.validate(table)?;
                b.validate(table)
            }
            Predicate::Not(a) => a.validate(table),
        }
    }

    /// Evaluate on row `r` of `table`. Comparisons involving NULL evaluate
    /// to false (and their negation to true — collapsed three-valued logic).
    pub fn eval(&self, table: &Table, r: usize) -> bool {
        match self {
            Predicate::Compare { column, op, value } => {
                let cell = match table.schema().index_of(column) {
                    Some(i) => table.column(i).get(r),
                    None => return false,
                };
                if cell.is_null() || value.is_null() {
                    return false;
                }
                let ord = match (&cell, value) {
                    (Value::Str(a), Value::Str(b)) => a.cmp(b),
                    (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
                    _ => match (cell.as_f64(), value.as_f64()) {
                        (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Less),
                        _ => return false,
                    },
                };
                match op {
                    Cmp::Eq => ord.is_eq(),
                    Cmp::Ne => ord.is_ne(),
                    Cmp::Lt => ord.is_lt(),
                    Cmp::Le => ord.is_le(),
                    Cmp::Gt => ord.is_gt(),
                    Cmp::Ge => ord.is_ge(),
                }
            }
            Predicate::IsNull(c) => {
                table.schema().index_of(c).is_some_and(|i| table.column(i).is_null(r))
            }
            Predicate::IsNotNull(c) => {
                table.schema().index_of(c).is_some_and(|i| !table.column(i).is_null(r))
            }
            Predicate::And(a, b) => a.eval(table, r) && b.eval(table, r),
            Predicate::Or(a, b) => a.eval(table, r) || b.eval(table, r),
            Predicate::Not(a) => !a.eval(table, r),
        }
    }
}

/// Filter a table with a validated predicate.
pub fn filter_where(table: &Table, pred: &Predicate) -> Result<Table, RelError> {
    pred.validate(table)?;
    let keep: Vec<usize> = (0..table.num_rows()).filter(|&r| pred.eval(table, r)).collect();
    Ok(table.gather(&keep))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::builder("p").string("name").float64("score").int64("age").build();
        t.push_row(vec!["ada".into(), 9.5.into(), 36.into()]).unwrap();
        t.push_row(vec!["bob".into(), 7.0.into(), 41.into()]).unwrap();
        t.push_row(vec!["carol".into(), Value::Null, 29.into()]).unwrap();
        t.push_row(vec!["dan".into(), 8.0.into(), 36.into()]).unwrap();
        t
    }

    #[test]
    fn comparisons() {
        let t = people();
        let f = filter_where(&t, &Predicate::gt("score", 7.5)).unwrap();
        assert_eq!(f.num_rows(), 2);
        let f = filter_where(&t, &Predicate::eq("age", 36i64)).unwrap();
        assert_eq!(f.num_rows(), 2);
        let f = filter_where(&t, &Predicate::cmp("name", Cmp::Ge, "c")).unwrap();
        assert_eq!(f.num_rows(), 2); // carol, dan
        let f = filter_where(&t, &Predicate::cmp("age", Cmp::Le, 36i64)).unwrap();
        assert_eq!(f.num_rows(), 3);
    }

    #[test]
    fn null_comparisons_are_false() {
        let t = people();
        // carol's NULL score matches neither the predicate nor its negation's
        // comparison...
        let f = filter_where(&t, &Predicate::gt("score", 0.0)).unwrap();
        assert_eq!(f.num_rows(), 3);
        // ...but NOT(score > 0) is true for her under collapsed logic.
        let f = filter_where(&t, &Predicate::gt("score", 0.0).not()).unwrap();
        assert_eq!(f.num_rows(), 1);
        assert_eq!(f.row(0).get("name"), Value::from("carol"));
    }

    #[test]
    fn is_null_predicates() {
        let t = people();
        let f = filter_where(&t, &Predicate::IsNull("score".into())).unwrap();
        assert_eq!(f.num_rows(), 1);
        let f = filter_where(&t, &Predicate::IsNotNull("score".into())).unwrap();
        assert_eq!(f.num_rows(), 3);
    }

    #[test]
    fn boolean_combinators() {
        let t = people();
        let p = Predicate::gt("score", 7.5).and(Predicate::eq("age", 36i64));
        assert_eq!(filter_where(&t, &p).unwrap().num_rows(), 2); // ada, dan
        let p = Predicate::eq("name", "bob").or(Predicate::eq("name", "carol"));
        assert_eq!(filter_where(&t, &p).unwrap().num_rows(), 2);
        let p = Predicate::gt("age", 100i64).or(Predicate::lt("age", 30i64));
        assert_eq!(filter_where(&t, &p).unwrap().num_rows(), 1);
    }

    #[test]
    fn validation_catches_bad_references() {
        let t = people();
        assert!(matches!(
            filter_where(&t, &Predicate::gt("ghost", 1.0)),
            Err(RelError::UnknownColumn(_))
        ));
        assert!(matches!(
            filter_where(&t, &Predicate::eq("name", 5i64)),
            Err(RelError::TypeMismatch { .. })
        ));
        // Validation recurses into combinators.
        let p = Predicate::gt("score", 0.0).and(Predicate::eq("ghost", 1i64));
        assert!(filter_where(&t, &p).is_err());
    }

    #[test]
    fn numeric_cross_type_comparison() {
        let t = people();
        // Int literal against float column and vice versa.
        let f = filter_where(&t, &Predicate::cmp("score", Cmp::Ge, 8i64)).unwrap();
        assert_eq!(f.num_rows(), 2);
        let f = filter_where(&t, &Predicate::cmp("age", Cmp::Gt, 36.5)).unwrap();
        assert_eq!(f.num_rows(), 1);
    }

    #[test]
    fn matches_closure_filter() {
        let t = people();
        let via_pred = filter_where(&t, &Predicate::gt("score", 7.5)).unwrap();
        let via_closure = t.filter(|r| r.get("score").as_f64().is_some_and(|s| s > 7.5));
        assert_eq!(via_pred, via_closure);
    }
}
