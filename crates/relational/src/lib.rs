//! # dm-rel
//!
//! A minimal columnar relational engine: the data-system substrate the
//! tutorial's "ML over relational data" pillar assumes.
//!
//! The engine provides typed columnar tables ([`Table`]), schemas
//! ([`Schema`]/[`Field`]), scans with predicates, projections, hash
//! equi-joins, group-by aggregation, and CSV import/export with type
//! inference. `dm-factorized` builds factorized learning on top of it and
//! `dm-pipeline` uses it as the raw-data side of feature pipelines.
//!
//! ```
//! use dm_rel::{Table, Value};
//!
//! let mut t = Table::builder("people")
//!     .int64("id")
//!     .string("name")
//!     .float64("score")
//!     .build();
//! t.push_row(vec![Value::Int64(1), Value::from("ada"), Value::Float64(9.5)]).unwrap();
//! t.push_row(vec![Value::Int64(2), Value::from("bob"), Value::Float64(7.0)]).unwrap();
//! let high = t.filter(|row| row.get("score").as_f64().unwrap_or(0.0) > 8.0);
//! assert_eq!(high.num_rows(), 1);
//! ```

#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod error;
pub mod join;
pub mod predicate;
pub mod query;
pub mod query_builder;
pub mod schema;
pub mod sort;
pub mod table;
pub mod value;

pub use column::Column;
pub use error::RelError;
pub use join::{hash_join, JoinKind};
pub use predicate::{filter_where, Cmp, Predicate};
pub use query::{Agg, GroupBy};
pub use query_builder::Query;
pub use schema::{DataType, Field, Schema};
pub use sort::{distinct, sort_by, SortOrder};
pub use table::{RowRef, Table, TableBuilder};
pub use value::Value;
