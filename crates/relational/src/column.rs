//! Typed columnar storage with null tracking.

use crate::schema::DataType;
use crate::value::Value;
use crate::RelError;

/// A typed column: contiguous values plus a validity mask.
///
/// `nulls[i] == true` marks row `i` as NULL; the corresponding slot in the
/// value vector holds a type-default placeholder that must never be read.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int64 {
        /// Stored values (placeholder 0 at null slots).
        values: Vec<i64>,
        /// Validity: true marks NULL.
        nulls: Vec<bool>,
    },
    /// 64-bit floats.
    Float64 {
        /// Stored values (placeholder 0.0 at null slots).
        values: Vec<f64>,
        /// Validity: true marks NULL.
        nulls: Vec<bool>,
    },
    /// UTF-8 strings.
    Str {
        /// Stored values (placeholder "" at null slots).
        values: Vec<String>,
        /// Validity: true marks NULL.
        nulls: Vec<bool>,
    },
    /// Booleans.
    Bool {
        /// Stored values (placeholder false at null slots).
        values: Vec<bool>,
        /// Validity: true marks NULL.
        nulls: Vec<bool>,
    },
}

impl Column {
    /// Create an empty column of the given type.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int64 => Column::Int64 { values: Vec::new(), nulls: Vec::new() },
            DataType::Float64 => Column::Float64 { values: Vec::new(), nulls: Vec::new() },
            DataType::Str => Column::Str { values: Vec::new(), nulls: Vec::new() },
            DataType::Bool => Column::Bool { values: Vec::new(), nulls: Vec::new() },
        }
    }

    /// The column's logical type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int64 { .. } => DataType::Int64,
            Column::Float64 { .. } => DataType::Float64,
            Column::Str { .. } => DataType::Str,
            Column::Bool { .. } => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { values, .. } => values.len(),
            Column::Float64 { values, .. } => values.len(),
            Column::Str { values, .. } => values.len(),
            Column::Bool { values, .. } => values.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.nulls().iter().filter(|&&n| n).count()
    }

    fn nulls(&self) -> &[bool] {
        match self {
            Column::Int64 { nulls, .. } => nulls,
            Column::Float64 { nulls, .. } => nulls,
            Column::Str { nulls, .. } => nulls,
            Column::Bool { nulls, .. } => nulls,
        }
    }

    /// True when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls()[i]
    }

    /// Append a value, coercing `Int64 -> Float64` for float columns.
    ///
    /// Returns [`RelError::TypeMismatch`] (with a generic column name filled in
    /// by the caller) when the value does not fit the column type.
    pub fn push(&mut self, v: Value) -> Result<(), &'static str> {
        match (self, v) {
            (Column::Int64 { values, nulls }, Value::Int64(x)) => {
                values.push(x);
                nulls.push(false);
            }
            (Column::Int64 { values, nulls }, Value::Null) => {
                values.push(0);
                nulls.push(true);
            }
            (Column::Float64 { values, nulls }, Value::Float64(x)) => {
                values.push(x);
                nulls.push(false);
            }
            (Column::Float64 { values, nulls }, Value::Int64(x)) => {
                values.push(x as f64);
                nulls.push(false);
            }
            (Column::Float64 { values, nulls }, Value::Null) => {
                values.push(0.0);
                nulls.push(true);
            }
            (Column::Str { values, nulls }, Value::Str(x)) => {
                values.push(x);
                nulls.push(false);
            }
            (Column::Str { values, nulls }, Value::Null) => {
                values.push(String::new());
                nulls.push(true);
            }
            (Column::Bool { values, nulls }, Value::Bool(x)) => {
                values.push(x);
                nulls.push(false);
            }
            (Column::Bool { values, nulls }, Value::Null) => {
                values.push(false);
                nulls.push(true);
            }
            (_, v) => return Err(v.type_name()),
        }
        Ok(())
    }

    /// Read row `i` as a [`Value`] (NULL slots yield [`Value::Null`]).
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match self {
            Column::Int64 { values, .. } => Value::Int64(values[i]),
            Column::Float64 { values, .. } => Value::Float64(values[i]),
            Column::Str { values, .. } => Value::Str(values[i].clone()),
            Column::Bool { values, .. } => Value::Bool(values[i]),
        }
    }

    /// Read row `i` as `f64` with numeric widening; NULL and non-numeric yield `None`.
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        if self.is_null(i) {
            return None;
        }
        match self {
            Column::Int64 { values, .. } => Some(values[i] as f64),
            Column::Float64 { values, .. } => Some(values[i]),
            Column::Bool { values, .. } => Some(values[i] as i64 as f64),
            Column::Str { .. } => None,
        }
    }

    /// Read row `i` as `&str`; NULL and non-string yield `None`.
    pub fn get_str(&self, i: usize) -> Option<&str> {
        if self.is_null(i) {
            return None;
        }
        match self {
            Column::Str { values, .. } => Some(values[i].as_str()),
            _ => None,
        }
    }

    /// Read row `i` as `i64`; NULL and non-integer yield `None`.
    pub fn get_i64(&self, i: usize) -> Option<i64> {
        if self.is_null(i) {
            return None;
        }
        match self {
            Column::Int64 { values, .. } => Some(values[i]),
            Column::Bool { values, .. } => Some(values[i] as i64),
            _ => None,
        }
    }

    /// Gather the given row indices into a new column.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather(&self, idx: &[usize]) -> Column {
        match self {
            Column::Int64 { values, nulls } => Column::Int64 {
                values: idx.iter().map(|&i| values[i]).collect(),
                nulls: idx.iter().map(|&i| nulls[i]).collect(),
            },
            Column::Float64 { values, nulls } => Column::Float64 {
                values: idx.iter().map(|&i| values[i]).collect(),
                nulls: idx.iter().map(|&i| nulls[i]).collect(),
            },
            Column::Str { values, nulls } => Column::Str {
                values: idx.iter().map(|&i| values[i].clone()).collect(),
                nulls: idx.iter().map(|&i| nulls[i]).collect(),
            },
            Column::Bool { values, nulls } => Column::Bool {
                values: idx.iter().map(|&i| values[i]).collect(),
                nulls: idx.iter().map(|&i| nulls[i]).collect(),
            },
        }
    }

    /// Append all rows of `other`, which must have the same type.
    pub fn extend_from(&mut self, other: &Column) -> Result<(), RelError> {
        if self.dtype() != other.dtype() {
            return Err(RelError::SchemaMismatch(format!(
                "cannot extend {:?} column with {:?} column",
                self.dtype(),
                other.dtype()
            )));
        }
        match (self, other) {
            (Column::Int64 { values, nulls }, Column::Int64 { values: v2, nulls: n2 }) => {
                values.extend_from_slice(v2);
                nulls.extend_from_slice(n2);
            }
            (Column::Float64 { values, nulls }, Column::Float64 { values: v2, nulls: n2 }) => {
                values.extend_from_slice(v2);
                nulls.extend_from_slice(n2);
            }
            (Column::Str { values, nulls }, Column::Str { values: v2, nulls: n2 }) => {
                values.extend_from_slice(v2);
                nulls.extend_from_slice(n2);
            }
            (Column::Bool { values, nulls }, Column::Bool { values: v2, nulls: n2 }) => {
                values.extend_from_slice(v2);
                nulls.extend_from_slice(n2);
            }
            _ => unreachable!("dtype equality checked above"),
        }
        Ok(())
    }

    /// Materialize the whole column as `f64` values, mapping NULL to `None`.
    pub fn to_f64_vec(&self) -> Vec<Option<f64>> {
        (0..self.len()).map(|i| self.get_f64(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = Column::empty(DataType::Int64);
        c.push(Value::Int64(5)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0), Value::Int64(5));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get_i64(0), Some(5));
        assert_eq!(c.get_i64(1), None);
    }

    #[test]
    fn float_column_widens_ints() {
        let mut c = Column::empty(DataType::Float64);
        c.push(Value::Int64(2)).unwrap();
        c.push(Value::Float64(0.5)).unwrap();
        assert_eq!(c.get_f64(0), Some(2.0));
        assert_eq!(c.get_f64(1), Some(0.5));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::empty(DataType::Int64);
        assert_eq!(c.push(Value::Str("x".into())), Err("Str"));
        let mut s = Column::empty(DataType::Str);
        assert_eq!(s.push(Value::Bool(true)), Err("Bool"));
    }

    #[test]
    fn gather_reorders() {
        let mut c = Column::empty(DataType::Str);
        for s in ["a", "b", "c"] {
            c.push(Value::from(s)).unwrap();
        }
        let g = c.gather(&[2, 0, 2]);
        assert_eq!(g.get_str(0), Some("c"));
        assert_eq!(g.get_str(1), Some("a"));
        assert_eq!(g.get_str(2), Some("c"));
    }

    #[test]
    fn extend_type_checked() {
        let mut a = Column::empty(DataType::Bool);
        a.push(Value::Bool(true)).unwrap();
        let mut b = Column::empty(DataType::Bool);
        b.push(Value::Null).unwrap();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.is_null(1));
        let c = Column::empty(DataType::Int64);
        assert!(a.extend_from(&c).is_err());
    }

    #[test]
    fn to_f64_vec_handles_nulls_and_strings() {
        let mut c = Column::empty(DataType::Float64);
        c.push(Value::Float64(1.5)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.to_f64_vec(), vec![Some(1.5), None]);
        let mut s = Column::empty(DataType::Str);
        s.push(Value::from("x")).unwrap();
        assert_eq!(s.to_f64_vec(), vec![None]);
    }

    #[test]
    fn bool_numeric_views() {
        let mut c = Column::empty(DataType::Bool);
        c.push(Value::Bool(true)).unwrap();
        assert_eq!(c.get_f64(0), Some(1.0));
        assert_eq!(c.get_i64(0), Some(1));
    }
}
