//! Tables: a schema plus typed columns, with scans and projections.

use crate::column::Column;
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;
use crate::RelError;

/// A named columnar table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
}

/// Fluent builder for declaring a table's schema.
///
/// ```
/// use dm_rel::Table;
/// let t = Table::builder("r").int64("k").float64("x").build();
/// assert_eq!(t.schema().names(), vec!["k", "x"]);
/// ```
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    fields: Vec<Field>,
}

impl TableBuilder {
    /// Declare an `Int64` column.
    pub fn int64(mut self, name: &str) -> Self {
        self.fields.push(Field::new(name, DataType::Int64));
        self
    }

    /// Declare a `Float64` column.
    pub fn float64(mut self, name: &str) -> Self {
        self.fields.push(Field::new(name, DataType::Float64));
        self
    }

    /// Declare a `Str` column.
    pub fn string(mut self, name: &str) -> Self {
        self.fields.push(Field::new(name, DataType::Str));
        self
    }

    /// Declare a `Bool` column.
    pub fn boolean(mut self, name: &str) -> Self {
        self.fields.push(Field::new(name, DataType::Bool));
        self
    }

    /// Finish, panicking on duplicate column names (a static schema is code,
    /// not data). Use [`TableBuilder::try_build`] for dynamic schemas.
    pub fn build(self) -> Table {
        self.try_build().expect("invalid schema in Table::builder")
    }

    /// Finish, returning an error on duplicate column names.
    pub fn try_build(self) -> Result<Table, RelError> {
        let schema = Schema::new(self.fields)?;
        Ok(Table::empty(self.name, schema))
    }
}

/// A borrowed view of one row, resolving column names through the schema.
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    table: &'a Table,
    row: usize,
}

impl<'a> RowRef<'a> {
    /// Row position within the table.
    pub fn index(&self) -> usize {
        self.row
    }

    /// Cell by column name.
    ///
    /// # Panics
    /// Panics when the column does not exist (scans are written against a
    /// known schema).
    pub fn get(&self, column: &str) -> Value {
        let i = self
            .table
            .schema
            .index_of(column)
            .unwrap_or_else(|| panic!("unknown column in row access: {column}"));
        self.table.columns[i].get(self.row)
    }

    /// Cell by column position.
    pub fn get_at(&self, i: usize) -> Value {
        self.table.columns[i].get(self.row)
    }

    /// Materialize the row as owned values.
    pub fn to_vec(&self) -> Vec<Value> {
        (0..self.table.schema.len()).map(|i| self.get_at(i)).collect()
    }
}

impl Table {
    /// Start building a table schema.
    pub fn builder(name: &str) -> TableBuilder {
        TableBuilder { name: name.to_owned(), fields: Vec::new() }
    }

    /// An empty table with the given schema.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema.fields().iter().map(|f| Column::empty(f.dtype)).collect();
        Table { name: name.into(), schema, columns }
    }

    /// Construct directly from columns (lengths must agree with each other).
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
    ) -> Result<Self, RelError> {
        if schema.len() != columns.len() {
            return Err(RelError::Arity { expected: schema.len(), actual: columns.len() });
        }
        let mut len = None;
        for (f, c) in schema.fields().iter().zip(&columns) {
            if f.dtype != c.dtype() {
                return Err(RelError::TypeMismatch {
                    column: f.name.clone(),
                    expected: f.dtype,
                    actual: "column of different type",
                });
            }
            match len {
                None => len = Some(c.len()),
                Some(l) if l != c.len() => {
                    return Err(RelError::SchemaMismatch(format!(
                        "column {} has {} rows, expected {l}",
                        f.name,
                        c.len()
                    )))
                }
                _ => {}
            }
        }
        Ok(Table { name: name.into(), schema, columns })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// Borrow a column by position.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Borrow a column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, RelError> {
        Ok(&self.columns[self.schema.require(name)?])
    }

    /// Append one row, type-checking every cell.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), RelError> {
        if row.len() != self.schema.len() {
            return Err(RelError::Arity { expected: self.schema.len(), actual: row.len() });
        }
        // Validate first so a failed push leaves the table unchanged.
        for (f, v) in self.schema.fields().iter().zip(&row) {
            let ok = matches!(
                (f.dtype, v),
                (_, Value::Null)
                    | (DataType::Int64, Value::Int64(_))
                    | (DataType::Float64, Value::Float64(_))
                    | (DataType::Float64, Value::Int64(_))
                    | (DataType::Str, Value::Str(_))
                    | (DataType::Bool, Value::Bool(_))
            );
            if !ok {
                return Err(RelError::TypeMismatch {
                    column: f.name.clone(),
                    expected: f.dtype,
                    actual: v.type_name(),
                });
            }
        }
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push(v).expect("validated above");
        }
        Ok(())
    }

    /// Borrow row `i`.
    pub fn row(&self, i: usize) -> RowRef<'_> {
        assert!(i < self.num_rows(), "row {i} out of bounds for {} rows", self.num_rows());
        RowRef { table: self, row: i }
    }

    /// Iterate over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = RowRef<'_>> {
        (0..self.num_rows()).map(move |i| RowRef { table: self, row: i })
    }

    /// Keep rows where `pred` returns true.
    pub fn filter(&self, pred: impl Fn(RowRef<'_>) -> bool) -> Table {
        let keep: Vec<usize> = self.iter_rows().filter(|r| pred(*r)).map(|r| r.index()).collect();
        self.gather(&keep)
    }

    /// Gather the given row indices into a new table (allows repeats).
    pub fn gather(&self, idx: &[usize]) -> Table {
        let columns = self.columns.iter().map(|c| c.gather(idx)).collect();
        Table { name: self.name.clone(), schema: self.schema.clone(), columns }
    }

    /// Project onto the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Table, RelError> {
        let schema = self.schema.project(names)?;
        let mut columns = Vec::with_capacity(names.len());
        for &n in names {
            columns.push(self.columns[self.schema.require(n)?].clone());
        }
        Ok(Table { name: self.name.clone(), schema, columns })
    }

    /// Append all rows of `other` (schemas must be identical).
    pub fn union_all(&mut self, other: &Table) -> Result<(), RelError> {
        if self.schema != other.schema {
            return Err(RelError::SchemaMismatch(format!(
                "union_all requires identical schemas ({} vs {})",
                self.name, other.name
            )));
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.extend_from(b)?;
        }
        Ok(())
    }

    /// Extract the named numeric columns as a row-major `dm-matrix` [`dm_matrix::Dense`],
    /// mapping NULLs to `f64::NAN` (pipelines impute them downstream).
    pub fn to_dense(&self, names: &[&str]) -> Result<dm_matrix::Dense, RelError> {
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            let c = self.column_by_name(n)?;
            if c.dtype() == DataType::Str {
                return Err(RelError::TypeMismatch {
                    column: n.to_owned(),
                    expected: DataType::Float64,
                    actual: "Str",
                });
            }
            cols.push(c);
        }
        let n = self.num_rows();
        let mut m = dm_matrix::Dense::zeros(n, names.len());
        for r in 0..n {
            let row = m.row_mut(r);
            for (j, c) in cols.iter().enumerate() {
                row[j] = c.get_f64(r).unwrap_or(f64::NAN);
            }
        }
        Ok(m)
    }

    /// Rename the table (used by joins to disambiguate provenance).
    pub fn renamed(mut self, name: impl Into<String>) -> Table {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::builder("people").int64("id").string("name").float64("score").build();
        t.push_row(vec![1.into(), "ada".into(), 9.5.into()]).unwrap();
        t.push_row(vec![2.into(), "bob".into(), 7.0.into()]).unwrap();
        t.push_row(vec![3.into(), "carol".into(), Value::Null]).unwrap();
        t
    }

    #[test]
    fn build_and_push() {
        let t = people();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 3);
        assert_eq!(t.row(0).get("name"), Value::from("ada"));
        assert_eq!(t.row(2).get("score"), Value::Null);
    }

    #[test]
    fn push_row_atomic_on_error() {
        let mut t = people();
        let err = t.push_row(vec![4.into(), 5.into(), 1.0.into()]).unwrap_err();
        assert!(matches!(err, RelError::TypeMismatch { .. }));
        assert_eq!(t.num_rows(), 3, "failed push must not partially mutate");
        assert!(t.push_row(vec![1.into()]).is_err());
    }

    #[test]
    fn int_widens_to_float_on_push() {
        let mut t = Table::builder("t").float64("x").build();
        t.push_row(vec![Value::Int64(2)]).unwrap();
        assert_eq!(t.row(0).get("x"), Value::Float64(2.0));
    }

    #[test]
    fn filter_and_gather() {
        let t = people();
        let f = t.filter(|r| r.get("score").as_f64().is_some_and(|s| s > 8.0));
        assert_eq!(f.num_rows(), 1);
        assert_eq!(f.row(0).get("name"), Value::from("ada"));

        let g = t.gather(&[2, 2, 0]);
        assert_eq!(g.num_rows(), 3);
        assert_eq!(g.row(1).get("id"), Value::Int64(3));
    }

    #[test]
    fn project_reorders() {
        let t = people();
        let p = t.project(&["score", "id"]).unwrap();
        assert_eq!(p.schema().names(), vec!["score", "id"]);
        assert_eq!(p.row(1).get_at(1), Value::Int64(2));
        assert!(t.project(&["ghost"]).is_err());
    }

    #[test]
    fn union_all_checks_schema() {
        let mut a = people();
        let b = people();
        a.union_all(&b).unwrap();
        assert_eq!(a.num_rows(), 6);
        let c = Table::builder("c").int64("id").build();
        assert!(a.union_all(&c).is_err());
    }

    #[test]
    fn to_dense_with_nan_for_null() {
        let t = people();
        let m = t.to_dense(&["id", "score"]).unwrap();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 9.5);
        assert!(m.get(2, 1).is_nan());
        assert!(t.to_dense(&["name"]).is_err());
    }

    #[test]
    fn from_columns_validation() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int64)]).unwrap();
        let mut col = Column::empty(DataType::Int64);
        col.push(Value::Int64(1)).unwrap();
        assert!(Table::from_columns("t", schema.clone(), vec![col.clone()]).is_ok());
        // Wrong arity.
        assert!(Table::from_columns("t", schema.clone(), vec![]).is_err());
        // Wrong type.
        let bad = Column::empty(DataType::Str);
        assert!(Table::from_columns("t", schema, vec![bad]).is_err());
        // Ragged lengths.
        let schema2 =
            Schema::new(vec![Field::new("a", DataType::Int64), Field::new("b", DataType::Int64)])
                .unwrap();
        let empty = Column::empty(DataType::Int64);
        assert!(Table::from_columns("t", schema2, vec![col, empty]).is_err());
    }

    #[test]
    fn row_to_vec() {
        let t = people();
        assert_eq!(t.row(1).to_vec(), vec![2.into(), "bob".into(), 7.0.into()]);
    }

    #[test]
    #[should_panic(expected = "unknown column in row access")]
    fn row_unknown_column_panics() {
        people().row(0).get("ghost");
    }
}
