//! Scalar values flowing through the relational engine.

use std::fmt;

/// A dynamically-typed scalar cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Name of the value's runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int64(_) => "Int64",
            Value::Float64(_) => "Float64",
            Value::Str(_) => "Str",
            Value::Bool(_) => "Bool",
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as `i64` when possible (`Int64` directly, `Bool` as 0/1).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Interpret as `f64` when possible (numeric widening from `Int64`/`Bool`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float64(v) => Some(*v),
            Value::Int64(v) => Some(*v as f64),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// Borrow as `&str` when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret as `bool` when the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from(2.5).as_i64(), None);
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(true).as_f64(), Some(1.0));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn display_and_type_name() {
        assert_eq!(Value::Int64(7).to_string(), "7");
        assert_eq!(Value::Str("a b".into()).to_string(), "a b");
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Float64(1.5).type_name(), "Float64");
    }
}
