//! Property-based tests for the relational engine: joins and aggregates are
//! checked against brute-force reference implementations.

use dm_rel::{hash_join, sort_by, Agg, GroupBy, JoinKind, SortOrder, Table, Value};
use proptest::prelude::*;

/// Strategy: a small table with int keys and float values.
fn kv_table(name: &'static str, max_rows: usize, key_range: i64) -> impl Strategy<Value = Table> {
    proptest::collection::vec((0..key_range, -100i64..100), 0..max_rows).prop_map(move |rows| {
        let mut t = Table::builder(name).int64("k").float64("v").build();
        for (k, v) in rows {
            t.push_row(vec![Value::Int64(k), Value::Float64(v as f64)]).unwrap();
        }
        t
    })
}

/// Brute-force nested-loop inner join row count.
fn nested_loop_count(l: &Table, r: &Table) -> usize {
    let mut n = 0;
    for i in 0..l.num_rows() {
        let lk = l.row(i).get("k");
        if lk.is_null() {
            continue;
        }
        for j in 0..r.num_rows() {
            if r.row(j).get("k") == lk {
                n += 1;
            }
        }
    }
    n
}

proptest! {
    #[test]
    fn hash_join_matches_nested_loop(l in kv_table("l", 30, 6), r in kv_table("r", 30, 6)) {
        let j = hash_join(&l, &r, "k", "k", JoinKind::Inner).unwrap();
        prop_assert_eq!(j.num_rows(), nested_loop_count(&l, &r));
    }

    #[test]
    fn left_join_row_count_identity(l in kv_table("l", 25, 5), r in kv_table("r", 25, 5)) {
        // Left join rows = inner rows + unmatched left rows.
        let inner = hash_join(&l, &r, "k", "k", JoinKind::Inner).unwrap();
        let left = hash_join(&l, &r, "k", "k", JoinKind::Left).unwrap();
        let matched_left: std::collections::HashSet<i64> = (0..r.num_rows())
            .filter_map(|j| r.row(j).get("k").as_i64())
            .collect();
        let unmatched = (0..l.num_rows())
            .filter(|&i| {
                l.row(i).get("k").as_i64().is_none_or(|k| !matched_left.contains(&k))
            })
            .count();
        prop_assert_eq!(left.num_rows(), inner.num_rows() + unmatched);
        prop_assert!(left.num_rows() >= l.num_rows());
    }

    #[test]
    fn group_by_sums_match_reference(t in kv_table("t", 40, 8)) {
        let out = GroupBy::new("k").agg("v", Agg::Sum).agg("v", Agg::Count).run(&t).unwrap();
        // Reference: HashMap accumulation.
        let mut sums: std::collections::HashMap<i64, (f64, i64)> = std::collections::HashMap::new();
        for i in 0..t.num_rows() {
            let k = t.row(i).get("k").as_i64().unwrap();
            let v = t.row(i).get("v").as_f64().unwrap();
            let e = sums.entry(k).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        }
        prop_assert_eq!(out.num_rows(), sums.len());
        for i in 0..out.num_rows() {
            let k = out.row(i).get("k").as_i64().unwrap();
            let (s, c) = sums[&k];
            prop_assert!((out.row(i).get("sum_v").as_f64().unwrap() - s).abs() < 1e-9);
            prop_assert_eq!(out.row(i).get("count_v").as_i64().unwrap(), c);
        }
    }

    #[test]
    fn sort_produces_ordered_permutation(t in kv_table("t", 40, 10)) {
        let s = sort_by(&t, &[("v", SortOrder::Asc)]).unwrap();
        prop_assert_eq!(s.num_rows(), t.num_rows());
        // Ordered.
        for i in 1..s.num_rows() {
            let a = s.row(i - 1).get("v").as_f64().unwrap();
            let b = s.row(i).get("v").as_f64().unwrap();
            prop_assert!(a <= b);
        }
        // Permutation: multiset of values preserved.
        let mut orig: Vec<i64> = (0..t.num_rows()).map(|i| t.row(i).get("v").as_f64().unwrap() as i64).collect();
        let mut sorted: Vec<i64> = (0..s.num_rows()).map(|i| s.row(i).get("v").as_f64().unwrap() as i64).collect();
        orig.sort_unstable();
        sorted.sort_unstable();
        prop_assert_eq!(orig, sorted);
    }

    #[test]
    fn distinct_is_idempotent(t in kv_table("t", 30, 4)) {
        let d1 = dm_rel::distinct(&t);
        let d2 = dm_rel::distinct(&d1);
        prop_assert_eq!(&d1, &d2);
        prop_assert!(d1.num_rows() <= t.num_rows());
    }

    #[test]
    fn csv_round_trip_preserves_data(t in kv_table("t", 25, 5)) {
        let mut buf = Vec::new();
        dm_rel::csv::write_csv(&t, &mut buf).unwrap();
        let back = dm_rel::csv::read_csv(buf.as_slice(), "t").unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        for i in 0..t.num_rows() {
            prop_assert_eq!(back.row(i).get("k").as_i64(), t.row(i).get("k").as_i64());
            let a = back.row(i).get("v").as_f64().unwrap();
            let b = t.row(i).get("v").as_f64().unwrap();
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn filter_then_union_partitions(t in kv_table("t", 30, 6)) {
        let pos = t.filter(|r| r.get("v").as_f64().unwrap() >= 0.0);
        let neg = t.filter(|r| r.get("v").as_f64().unwrap() < 0.0);
        prop_assert_eq!(pos.num_rows() + neg.num_rows(), t.num_rows());
        let mut both = pos.clone();
        both.union_all(&neg).unwrap();
        prop_assert_eq!(both.num_rows(), t.num_rows());
    }
}
