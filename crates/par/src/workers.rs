//! A long-lived worker pool for server workloads.
//!
//! The scoped primitives in [`pool`](crate::pool) fork and join around one
//! kernel invocation: the caller blocks until every worker finishes, which
//! is exactly right for data-parallel kernels and exactly wrong for a
//! server that must keep accepting connections while earlier requests are
//! still executing. [`WorkerPool`] fills that gap with the smallest useful
//! shape: `n` named OS threads draining one shared FIFO of boxed jobs
//! (`std::sync::mpsc` behind a mutex — the stdlib receiver is not `Sync`).
//!
//! Jobs are `'static` closures: unlike the scoped primitives they cannot
//! borrow the caller's stack, so a server moves per-connection state into
//! the job. Panics in a job are caught and counted rather than poisoning
//! the worker, because one malformed request must not take a thread (and
//! eventually the whole pool) down with it.
//!
//! Dropping the pool is a graceful shutdown: the queue is closed, already
//! submitted jobs drain, and every worker is joined.
//!
//! ```
//! use dm_par::WorkerPool;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let mut pool = WorkerPool::new(4, "doc");
//! let done = Arc::new(AtomicUsize::new(0));
//! for _ in 0..100 {
//!     let done = Arc::clone(&done);
//!     pool.submit(move || {
//!         done.fetch_add(1, Ordering::SeqCst);
//!     });
//! }
//! pool.join();
//! assert_eq!(done.load(Ordering::SeqCst), 100);
//! ```

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters shared between the pool handle and its workers.
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    panicked: AtomicU64,
}

/// A fixed-size pool of long-lived worker threads draining a shared FIFO.
///
/// See the [module docs](self) for the contrast with the scoped
/// fork-join primitives.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one) named `<name>-worker-<i>`.
    pub fn new(workers: usize, name: &str) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let counters = Arc::new(Counters::default());
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let counters = Arc::clone(&counters);
                std::thread::Builder::new()
                    .name(format!("{name}-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &counters))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { tx: Some(tx), workers: handles, counters }
    }

    /// Enqueue a job. Jobs run in FIFO submission order across the pool
    /// (each idle worker takes the oldest pending job); jobs on different
    /// workers run concurrently.
    ///
    /// # Panics
    /// Panics if called after [`join`](Self::join) closed the queue.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.tx.as_ref().expect("pool already joined").send(Box::new(job)).expect("workers alive");
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.counters.submitted.load(Ordering::Relaxed)
    }

    /// Jobs that ran to completion (including ones that panicked).
    pub fn completed(&self) -> u64 {
        self.counters.completed.load(Ordering::Relaxed)
    }

    /// Jobs whose closure panicked (caught; the worker survived).
    pub fn panicked(&self) -> u64 {
        self.counters.panicked.load(Ordering::Relaxed)
    }

    /// Close the queue, drain the remaining jobs, and join every worker.
    /// Idempotent; also runs on drop.
    pub fn join(&mut self) {
        self.tx.take(); // closing the channel ends each worker's loop
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.join();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, counters: &Counters) {
    loop {
        // Hold the lock only while *taking* a job, never while running one.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling panicked inside recv(); bail out
        };
        let Ok(job) = job else { return }; // queue closed: graceful shutdown
        if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
            counters.panicked.fetch_add(1, Ordering::Relaxed);
        }
        counters.completed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = WorkerPool::new(4, "t");
        assert_eq!(pool.workers(), 4);
        let sum = Arc::new(AtomicUsize::new(0));
        for i in 0..200 {
            let sum = Arc::clone(&sum);
            pool.submit(move || {
                sum.fetch_add(i, Ordering::SeqCst);
            });
        }
        drop(pool); // drains and joins
        assert_eq!(sum.load(Ordering::SeqCst), (0..200).sum());
    }

    #[test]
    fn join_is_idempotent_and_counts_jobs() {
        let mut pool = WorkerPool::new(2, "t");
        for _ in 0..10 {
            pool.submit(|| {});
        }
        pool.join();
        pool.join();
        assert_eq!(pool.submitted(), 10);
        assert_eq!(pool.completed(), 10);
        assert_eq!(pool.panicked(), 0);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0, "t");
        assert_eq!(pool.workers(), 1);
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ran);
        pool.submit(move || {
            r2.fetch_add(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, "t");
        pool.submit(|| panic!("boom"));
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ran);
        pool.submit(move || {
            r2.fetch_add(1, Ordering::SeqCst);
        });
        // Give the single worker time to hit both jobs, then join.
        let mut pool = pool;
        pool.join();
        assert_eq!(ran.load(Ordering::SeqCst), 1, "worker survived the panic");
        assert_eq!(pool.panicked(), 1);
        assert_eq!(pool.completed(), 2);
    }

    #[test]
    fn concurrent_jobs_overlap() {
        // Two workers, two jobs that each wait for the other: only possible
        // if they actually run concurrently.
        let pool = WorkerPool::new(2, "t");
        let barrier = Arc::new(std::sync::Barrier::new(2));
        for _ in 0..2 {
            let b = Arc::clone(&barrier);
            pool.submit(move || {
                b.wait();
            });
        }
        // If the jobs serialized, this would deadlock; bound the test with a
        // watchdog drop on another thread instead of hanging forever.
        let (tx, rx) = channel();
        std::thread::spawn(move || {
            drop(pool); // joins both workers
            let _ = tx.send(());
        });
        rx.recv_timeout(Duration::from_secs(10)).expect("jobs overlapped and pool drained");
    }
}
