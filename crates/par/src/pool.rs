//! Scoped worker pool primitives over [`std::thread::scope`].
//!
//! Every helper takes an explicit `degree` (number of workers). Workers are
//! scoped: they borrow from the caller's stack and are joined before the
//! primitive returns, so no `'static` bounds or channels are needed. The
//! caller's own thread always executes the first chunk, which means
//! `degree <= 1` (and tiny inputs) never spawn at all — the serial fallback
//! is the same code path minus the spawns.

use dm_obs::trace;
use std::ops::Range;
use std::thread;
use std::time::Instant;

/// Run one worker's chunk under a `par.task` span linked to the span that was
/// current on the *spawning* thread, and charge the elapsed wall time to the
/// worker's busy counter. When tracing is disabled this is a plain call.
fn traced_chunk<R>(
    parent: Option<trace::SpanHandle>,
    worker: usize,
    items: Range<usize>,
    f: impl FnOnce() -> R,
) -> R {
    if !trace::is_enabled() {
        return f();
    }
    let t0 = Instant::now();
    let mut span = trace::Span::child_of(parent, "par.task", "par");
    span.arg("worker", worker);
    span.arg("items", format!("{}..{}", items.start, items.end));
    let v = f();
    drop(span);
    trace::worker_busy_add(worker, t0.elapsed().as_nanos() as u64);
    v
}

/// Environment variable controlling the default degree of parallelism.
pub const THREADS_ENV: &str = "DMML_THREADS";

/// The workspace-wide default degree of parallelism: `DMML_THREADS` when set
/// to a positive integer, otherwise [`std::thread::available_parallelism`]
/// (1 when even that is unavailable).
///
/// The environment is consulted on every call — it is a handful of
/// nanoseconds against kernels that cross the parallelism threshold, and it
/// keeps tests free to vary the variable per process.
pub fn default_degree() -> usize {
    if let Ok(s) = std::env::var(THREADS_ENV) {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Split `0..n` into at most `parts` contiguous, non-empty, balanced ranges.
///
/// The first `n % parts` ranges are one element longer, so range lengths
/// differ by at most one. Fewer than `parts` ranges are returned when
/// `n < parts`; an empty vector when `n == 0`.
pub fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(n);
    if parts == 0 {
        return Vec::new();
    }
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Run `f` over `0..n` split into at most `degree` contiguous ranges, one per
/// worker. The caller's thread runs the first range; the rest run on scoped
/// threads. With `degree <= 1` no thread is spawned.
pub fn parallel_for<F>(n: usize, degree: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let ranges = split_ranges(n, degree);
    match ranges.len() {
        0 => {}
        1 => f(0..n),
        _ => {
            let parent = trace::current();
            thread::scope(|s| {
                let f = &f;
                let mut iter = ranges.into_iter();
                let first = iter.next().expect("at least two ranges");
                for (w, r) in iter.enumerate() {
                    s.spawn(move || traced_chunk(parent, w + 1, r.clone(), || f(r)));
                }
                traced_chunk(parent, 0, first.clone(), || f(first));
            });
        }
    }
}

/// Partition a mutable buffer of `items * stride` elements into contiguous
/// per-worker item ranges and run `f(item_range, chunk)` on each, where
/// `chunk` is the sub-slice holding exactly those items.
///
/// This is the write side of the row-partitioned kernels: each worker owns a
/// disjoint slice of the output, so no synchronization (and no change to
/// per-element computation order) is involved.
///
/// # Panics
/// Panics if `stride == 0` or `out.len()` is not a multiple of `stride`.
pub fn for_each_slice_mut<T, F>(out: &mut [T], stride: usize, degree: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    assert!(stride > 0, "stride must be positive");
    assert_eq!(
        out.len() % stride,
        0,
        "buffer length {} not a multiple of stride {stride}",
        out.len()
    );
    let items = out.len() / stride;
    let ranges = split_ranges(items, degree);
    match ranges.len() {
        0 => {}
        1 => f(0..items, out),
        _ => {
            let parent = trace::current();
            thread::scope(|s| {
                let f = &f;
                let mut rest = out;
                let mut first = None;
                for (i, r) in ranges.into_iter().enumerate() {
                    let (chunk, tail) = rest.split_at_mut(r.len() * stride);
                    rest = tail;
                    if i == 0 {
                        first = Some((r, chunk));
                    } else {
                        s.spawn(move || traced_chunk(parent, i, r.clone(), move || f(r, chunk)));
                    }
                }
                let (r, chunk) = first.expect("at least two ranges");
                traced_chunk(parent, 0, r.clone(), move || f(r, chunk));
            });
        }
    }
}

/// Evaluate `f(0), .., f(n-1)` across `degree` workers and return the results
/// **in index order**. Each worker fills a disjoint contiguous slice of the
/// result buffer, so ordering is positional, not completion-based.
pub fn map_collect<T, F>(n: usize, degree: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    for_each_slice_mut(&mut slots, 1, degree, |range, chunk| {
        for (slot, i) in chunk.iter_mut().zip(range) {
            *slot = Some(f(i));
        }
    });
    slots.into_iter().map(|s| s.expect("worker filled every slot")).collect()
}

/// Deterministic chunked map-reduce: split `0..n` into fixed-size blocks of
/// `block` items (the last may be short), `map` each block on the pool, then
/// left-fold the partials **in block order** on the caller's thread.
///
/// Because block boundaries depend only on `block` (never on `degree`) and
/// the fold order is fixed, the result is bit-identical for every degree —
/// including 1, which is how the serial kernels in `dm-matrix` execute the
/// very same decomposition. Returns `None` when `n == 0`.
///
/// # Panics
/// Panics if `block == 0`.
pub fn reduce_blocks<T, M, F>(n: usize, block: usize, degree: usize, map: M, fold: F) -> Option<T>
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    F: FnMut(T, T) -> T,
{
    assert!(block > 0, "block size must be positive");
    if n == 0 {
        return None;
    }
    let nblocks = n.div_ceil(block);
    let partials = map_collect(nblocks, degree, |b| {
        let start = b * block;
        map(start..(start + block).min(n))
    });
    partials.into_iter().reduce(fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn default_degree_is_positive() {
        assert!(default_degree() >= 1);
    }

    #[test]
    fn split_ranges_covers_exactly() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 1000] {
                let ranges = split_ranges(n, parts);
                assert!(ranges.len() <= parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "non-empty");
                    next = r.end;
                }
                assert_eq!(next, n, "covers 0..{n} with {parts} parts");
                if let (Some(min), Some(max)) =
                    (ranges.iter().map(Range::len).min(), ranges.iter().map(Range::len).max())
                {
                    assert!(max - min <= 1, "balanced");
                }
            }
        }
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        for degree in [1usize, 2, 3, 8] {
            let n = 1000;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(n, degree, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "degree {degree}");
        }
    }

    #[test]
    fn parallel_for_empty_and_unit() {
        parallel_for(0, 4, |_| panic!("no work for n == 0"));
        let count = AtomicUsize::new(0);
        parallel_for(1, 4, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn for_each_slice_mut_partitions_disjointly() {
        for degree in [1usize, 2, 5] {
            let mut buf = vec![0u64; 12 * 3];
            for_each_slice_mut(&mut buf, 3, degree, |range, chunk| {
                assert_eq!(chunk.len(), range.len() * 3);
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = (range.start * 3 + k) as u64;
                }
            });
            let expect: Vec<u64> = (0..36).collect();
            assert_eq!(buf, expect, "degree {degree}");
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple of stride")]
    fn for_each_slice_mut_checks_stride() {
        for_each_slice_mut(&mut [0u8; 5], 2, 1, |_, _| {});
    }

    #[test]
    fn map_collect_preserves_index_order() {
        for degree in [1usize, 2, 4, 16] {
            let got = map_collect(257, degree, |i| i * i);
            let expect: Vec<usize> = (0..257).map(|i| i * i).collect();
            assert_eq!(got, expect, "degree {degree}");
        }
    }

    #[test]
    fn reduce_blocks_is_degree_invariant() {
        // Floating-point sum: identical bits at every degree because the
        // block decomposition and fold order are fixed.
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.37).sin() * 1e3).collect();
        let sum_at = |degree: usize| {
            reduce_blocks(data.len(), 64, degree, |r| data[r].iter().sum::<f64>(), |a, b| a + b)
                .unwrap()
        };
        let d1 = sum_at(1);
        for degree in [2usize, 3, 8, 32] {
            assert_eq!(d1.to_bits(), sum_at(degree).to_bits(), "degree {degree}");
        }
    }

    #[test]
    fn reduce_blocks_empty_is_none() {
        assert_eq!(reduce_blocks(0, 8, 4, |_| 1u32, |a, b| a + b), None);
    }

    #[test]
    fn parallel_tasks_emit_linked_spans() {
        trace::set_enabled(true);
        let root_handle = {
            let root = trace::Span::enter("test.par.root", "test");
            let h = root.handle().expect("tracing enabled");
            parallel_for(64, 4, |r| {
                std::hint::black_box(r.len());
            });
            h
        };
        trace::set_enabled(false);
        let events = trace::take_events();
        // Other tests may trace concurrently; filter to our own trace id.
        let tasks: Vec<_> = events
            .iter()
            .filter(|e| e.trace == root_handle.trace && e.name == "par.task")
            .collect();
        assert_eq!(tasks.len(), 4, "one task span per worker chunk");
        assert!(tasks.iter().all(|e| e.parent == root_handle.span), "linked to spawning span");
        let mut workers: Vec<usize> =
            tasks.iter().map(|e| e.arg("worker").unwrap().parse().unwrap()).collect();
        workers.sort_unstable();
        assert_eq!(workers, vec![0, 1, 2, 3]);
        assert!(!trace::worker_busy_snapshot().is_empty(), "busy time charged");
    }

    #[test]
    fn stress_concurrent_invocations() {
        // Many threads each drive their own nested parallel_for over a shared
        // accumulator: exercises heavy scoped-spawn churn under contention.
        let total = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        parallel_for(100, 4, |r| {
                            let local: u64 = r.map(|i| i as u64).sum();
                            total.fetch_add(local, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        let per_pass: u64 = (0..100u64).sum();
        assert_eq!(total.load(Ordering::Relaxed), 8 * 50 * per_pass);
    }
}
