//! # dm-par
//!
//! The workspace's multi-threaded execution substrate: a *scoped* worker pool
//! over [`std::thread::scope`] (no crates.io dependencies, matching the
//! offline build environment) with the two primitives every parallel kernel
//! in the workspace is built from:
//!
//! * [`parallel_for`] / [`for_each_slice_mut`] — partition an index range (or
//!   a mutable output buffer) into contiguous per-worker chunks. Used by the
//!   row-partitioned dense kernels, where output elements are disjoint and
//!   each element is computed exactly as the serial kernel would, so parallel
//!   results are bit-identical to serial by construction.
//! * [`map_collect`] / [`reduce_blocks`] — evaluate independent tasks and
//!   combine their results **in task order**. Reductions over floating-point
//!   data are not associative, so kernels that reduce (column sums, sum of
//!   squares, crossprod) decompose into *fixed-size* blocks whose boundaries
//!   never depend on the degree of parallelism; partial results are folded
//!   left-to-right in block order. A serial caller (`degree == 1`) walks the
//!   same blocks in the same order, which is what makes parallel and serial
//!   results bit-identical at every degree.
//!
//! For workloads that must *not* fork-join — a server keeping requests in
//! flight while accepting new ones — [`workers::WorkerPool`] provides
//! long-lived named worker threads draining a shared FIFO of `'static`
//! jobs, with graceful drain-and-join shutdown on drop.
//!
//! The default degree of parallelism comes from the `DMML_THREADS`
//! environment variable when set (clamped to at least 1), otherwise from
//! [`std::thread::available_parallelism`]. All primitives also accept an
//! explicit degree so planners and benchmarks can pin it.
//!
//! ```
//! use dm_par::{for_each_slice_mut, reduce_blocks};
//!
//! // Disjoint output chunks: each worker fills its own slice of elements.
//! let mut squares = vec![0u64; 100];
//! for_each_slice_mut(&mut squares, 1, 4, |range, chunk| {
//!     for (v, i) in chunk.iter_mut().zip(range) {
//!         *v = (i as u64) * (i as u64);
//!     }
//! });
//! assert_eq!(squares[9], 81);
//!
//! // Ordered block reduction: partials fold left-to-right in block order,
//! // so the result is bit-identical at every degree.
//! let sum = |b: std::ops::Range<usize>| squares[b].iter().sum::<u64>();
//! let d1 = reduce_blocks(100, 10, 1, &sum, |a, b| a + b);
//! let d4 = reduce_blocks(100, 10, 4, &sum, |a, b| a + b);
//! assert_eq!(d1, d4);
//! ```

#![warn(missing_docs)]

pub mod pool;
pub mod workers;

pub use pool::{
    default_degree, for_each_slice_mut, map_collect, parallel_for, reduce_blocks, split_ranges,
    THREADS_ENV,
};
pub use workers::WorkerPool;
