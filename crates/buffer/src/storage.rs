//! Backing stores the buffer pool spills evicted blocks to.

use crate::pool::PageKey;
use bytes::Bytes;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;

/// A key-value store of serialized blocks.
pub trait Storage: Send {
    /// Read the bytes for a key, if present.
    fn read(&self, key: PageKey) -> io::Result<Option<Bytes>>;
    /// Write (or overwrite) the bytes for a key.
    fn write(&mut self, key: PageKey, data: Bytes) -> io::Result<()>;
    /// Remove a key, if present.
    fn remove(&mut self, key: PageKey) -> io::Result<()>;
    /// Number of stored keys (for tests and accounting).
    fn len(&self) -> usize;
    /// True when no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// A boxed store is itself a store, so callers that pick MemStore vs FileStore
// at runtime (the executor's spill pool) can use `BufferPool<Box<dyn Storage>>`.
impl Storage for Box<dyn Storage> {
    fn read(&self, key: PageKey) -> io::Result<Option<Bytes>> {
        (**self).read(key)
    }

    fn write(&mut self, key: PageKey, data: Bytes) -> io::Result<()> {
        (**self).write(key, data)
    }

    fn remove(&mut self, key: PageKey) -> io::Result<()> {
        (**self).remove(key)
    }

    fn len(&self) -> usize {
        (**self).len()
    }
}

/// In-memory backing store (default for tests and benchmarks).
#[derive(Debug, Default)]
pub struct MemStore {
    map: HashMap<PageKey, Bytes>,
}

impl Storage for MemStore {
    fn read(&self, key: PageKey) -> io::Result<Option<Bytes>> {
        Ok(self.map.get(&key).cloned())
    }

    fn write(&mut self, key: PageKey, data: Bytes) -> io::Result<()> {
        self.map.insert(key, data);
        Ok(())
    }

    fn remove(&mut self, key: PageKey) -> io::Result<()> {
        self.map.remove(&key);
        Ok(())
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// On-disk backing store: one file per block under a directory.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    keys: std::collections::HashSet<PageKey>,
}

impl FileStore {
    /// Create (or reuse) a spill directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileStore { dir, keys: std::collections::HashSet::new() })
    }

    fn path(&self, key: PageKey) -> PathBuf {
        self.dir.join(format!("m{}_b{}_{}.blk", key.matrix, key.block_row, key.block_col))
    }
}

impl Storage for FileStore {
    fn read(&self, key: PageKey) -> io::Result<Option<Bytes>> {
        if !self.keys.contains(&key) {
            return Ok(None);
        }
        let data = std::fs::read(self.path(key))?;
        Ok(Some(Bytes::from(data)))
    }

    fn write(&mut self, key: PageKey, data: Bytes) -> io::Result<()> {
        std::fs::write(self.path(key), &data)?;
        self.keys.insert(key);
        Ok(())
    }

    fn remove(&mut self, key: PageKey) -> io::Result<()> {
        if self.keys.remove(&key) {
            std::fs::remove_file(self.path(key)).ok();
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        // Best-effort cleanup of spill files; the directory may be shared.
        let keys: Vec<PageKey> = self.keys.iter().copied().collect();
        for k in keys {
            let _ = self.remove(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> PageKey {
        PageKey::new(7, i, 0)
    }

    #[test]
    fn mem_store_round_trip() {
        let mut s = MemStore::default();
        assert!(s.is_empty());
        s.write(key(1), Bytes::from_static(b"abc")).unwrap();
        assert_eq!(s.read(key(1)).unwrap().unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(s.read(key(2)).unwrap(), None);
        assert_eq!(s.len(), 1);
        s.remove(key(1)).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn file_store_round_trip() {
        let dir = std::env::temp_dir().join("dmml_filestore_test");
        let mut s = FileStore::new(&dir).unwrap();
        s.write(key(3), Bytes::from_static(b"hello")).unwrap();
        assert_eq!(s.read(key(3)).unwrap().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.read(key(4)).unwrap(), None);
        s.remove(key(3)).unwrap();
        assert_eq!(s.read(key(3)).unwrap(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn file_store_overwrite() {
        let dir = std::env::temp_dir().join("dmml_filestore_test2");
        let mut s = FileStore::new(&dir).unwrap();
        s.write(key(1), Bytes::from_static(b"v1")).unwrap();
        s.write(key(1), Bytes::from_static(b"v2")).unwrap();
        assert_eq!(s.read(key(1)).unwrap().unwrap(), Bytes::from_static(b"v2"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn file_store_cleans_up_on_drop() {
        let dir = std::env::temp_dir().join("dmml_filestore_drop");
        {
            let mut s = FileStore::new(&dir).unwrap();
            s.write(key(9), Bytes::from_static(b"temp")).unwrap();
        }
        let residual = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(residual, 0, "spill files must be removed on drop");
    }
}
