//! Session-level memory admission over a shared budget.
//!
//! The buffer pool bounds what is *resident*; it cannot stop ten requests
//! from each materializing a budget-sized working set at once. A server
//! sharing one memory budget across tenants therefore needs admission
//! control one level up: before a request executes, it charges its
//! certified peak bytes (from `certify_plan`) against a [`SessionLedger`].
//! If the charge fits alongside the requests already in flight it is
//! admitted immediately; otherwise the caller **blocks** until enough
//! in-flight work retires — requests queue rather than OOMing neighbors.
//!
//! Requests certified *larger than the whole capacity* are deliberately
//! not rejected: the planner has already degraded them to blocked
//! (out-of-core) kernels that stream through a spill pool, so the ledger
//! admits them once they can run **alone** (no other in-flight work).
//! That is the "queue or run blocked instead of OOMing" policy from the
//! serving design.
//!
//! Admission returns an RAII [`AdmitGuard`]; dropping it releases the
//! bytes and wakes queued waiters. Per-session usage (in-flight bytes,
//! peak, counts) is tracked for the metrics endpoint.
//!
//! ```
//! use dm_buffer::session::SessionLedger;
//! use std::sync::Arc;
//!
//! let ledger = Arc::new(SessionLedger::new(1 << 20));
//! let a = ledger.admit("tenant-a", 600 << 10); // fits
//! assert_eq!(ledger.in_flight_bytes(), 600 << 10);
//! drop(a); // releases, wakes waiters
//! assert_eq!(ledger.in_flight_bytes(), 0);
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Per-session (tenant) usage counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionUsage {
    /// Bytes currently admitted for this session.
    pub in_flight_bytes: usize,
    /// High-water mark of `in_flight_bytes`.
    pub peak_bytes: usize,
    /// Requests admitted (immediately or after queueing).
    pub admitted: u64,
    /// Admissions that had to wait for capacity at least once.
    pub queued: u64,
}

#[derive(Debug, Default)]
struct LedgerState {
    in_flight: usize,
    active: usize,
    waiting: usize,
    sessions: HashMap<String, SessionUsage>,
}

/// A shared admission ledger over one byte capacity. See the
/// [module docs](self) for the admission policy.
#[derive(Debug)]
pub struct SessionLedger {
    capacity: usize,
    state: Mutex<LedgerState>,
    retired: Condvar,
}

impl SessionLedger {
    /// A ledger admitting up to `capacity` certified bytes concurrently
    /// (at least 1 byte, so a zero capacity degrades to run-alone).
    pub fn new(capacity: usize) -> Self {
        SessionLedger {
            capacity: capacity.max(1),
            state: Mutex::new(LedgerState::default()),
            retired: Condvar::new(),
        }
    }

    /// The ledger's byte capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admit `bytes` of certified peak memory for `session`, blocking
    /// while the charge does not fit alongside in-flight work.
    ///
    /// An oversized request (`bytes > capacity`) is admitted once nothing
    /// else is in flight — it was planned with blocked kernels and runs
    /// alone under the spill pool rather than being rejected.
    pub fn admit(self: &Arc<Self>, session: &str, bytes: usize) -> AdmitGuard {
        let mut st = self.state.lock().expect("ledger poisoned");
        let mut waited = false;
        while !Self::fits(self.capacity, &st, bytes) {
            if !waited {
                waited = true;
                st.waiting += 1;
            }
            st = self.retired.wait(st).expect("ledger poisoned");
        }
        if waited {
            st.waiting -= 1;
        }
        st.in_flight += bytes;
        st.active += 1;
        let u = st.sessions.entry(session.to_owned()).or_default();
        u.in_flight_bytes += bytes;
        u.peak_bytes = u.peak_bytes.max(u.in_flight_bytes);
        u.admitted += 1;
        if waited {
            u.queued += 1;
        }
        AdmitGuard { ledger: Arc::clone(self), session: session.to_owned(), bytes }
    }

    /// Try to admit without blocking; `None` when the request would queue.
    pub fn try_admit(self: &Arc<Self>, session: &str, bytes: usize) -> Option<AdmitGuard> {
        let mut st = self.state.lock().expect("ledger poisoned");
        if !Self::fits(self.capacity, &st, bytes) {
            return None;
        }
        st.in_flight += bytes;
        st.active += 1;
        let u = st.sessions.entry(session.to_owned()).or_default();
        u.in_flight_bytes += bytes;
        u.peak_bytes = u.peak_bytes.max(u.in_flight_bytes);
        u.admitted += 1;
        Some(AdmitGuard { ledger: Arc::clone(self), session: session.to_owned(), bytes })
    }

    fn fits(capacity: usize, st: &LedgerState, bytes: usize) -> bool {
        if bytes > capacity {
            // Oversized: certified peak exceeds the whole budget. The plan
            // already degraded to blocked kernels; run it alone.
            st.active == 0
        } else {
            st.in_flight + bytes <= capacity
        }
    }

    /// Total certified bytes currently admitted.
    pub fn in_flight_bytes(&self) -> usize {
        self.state.lock().expect("ledger poisoned").in_flight
    }

    /// Number of admitted (executing) requests.
    pub fn active(&self) -> usize {
        self.state.lock().expect("ledger poisoned").active
    }

    /// Number of requests currently blocked waiting for capacity.
    pub fn waiting(&self) -> usize {
        self.state.lock().expect("ledger poisoned").waiting
    }

    /// Usage counters for one session, if it was ever admitted.
    pub fn session_usage(&self, session: &str) -> Option<SessionUsage> {
        self.state.lock().expect("ledger poisoned").sessions.get(session).cloned()
    }

    /// Snapshot of every session's usage, sorted by session name.
    pub fn usage_snapshot(&self) -> Vec<(String, SessionUsage)> {
        let st = self.state.lock().expect("ledger poisoned");
        let mut v: Vec<_> = st.sessions.iter().map(|(k, u)| (k.clone(), u.clone())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    fn release(&self, session: &str, bytes: usize) {
        let mut st = self.state.lock().expect("ledger poisoned");
        st.in_flight = st.in_flight.saturating_sub(bytes);
        st.active = st.active.saturating_sub(1);
        if let Some(u) = st.sessions.get_mut(session) {
            u.in_flight_bytes = u.in_flight_bytes.saturating_sub(bytes);
        }
        drop(st);
        self.retired.notify_all();
    }
}

/// RAII admission: holds `bytes` charged against the ledger until dropped.
#[derive(Debug)]
pub struct AdmitGuard {
    ledger: Arc<SessionLedger>,
    session: String,
    bytes: usize,
}

impl AdmitGuard {
    /// The certified bytes this admission charged.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The session the admission was charged to.
    pub fn session(&self) -> &str {
        &self.session
    }
}

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.ledger.release(&self.session, self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn admits_within_capacity_without_queueing() {
        let l = Arc::new(SessionLedger::new(100));
        let a = l.admit("a", 40);
        let b = l.admit("b", 60);
        assert_eq!(l.in_flight_bytes(), 100);
        assert_eq!(l.active(), 2);
        drop(a);
        drop(b);
        assert_eq!(l.in_flight_bytes(), 0);
        let ua = l.session_usage("a").unwrap();
        assert_eq!(ua.admitted, 1);
        assert_eq!(ua.queued, 0);
        assert_eq!(ua.peak_bytes, 40);
        assert_eq!(ua.in_flight_bytes, 0);
    }

    #[test]
    fn over_capacity_request_queues_until_release() {
        let l = Arc::new(SessionLedger::new(100));
        let first = l.admit("a", 80);
        assert!(l.try_admit("b", 40).is_none(), "would overflow: must queue");

        let (tx, rx) = channel();
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            let g = l2.admit("b", 40); // blocks until `first` drops
            tx.send(g.bytes()).unwrap();
        });
        // The waiter must actually be queued, not admitted.
        while l.waiting() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(rx.try_recv().is_err());
        drop(first);
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 40);
        t.join().unwrap();
        assert_eq!(l.session_usage("b").unwrap().queued, 1);
    }

    #[test]
    fn oversized_request_runs_alone_not_rejected() {
        let l = Arc::new(SessionLedger::new(100));
        // Alone, an oversized charge is admitted immediately.
        let big = l.admit("big", 1000);
        assert_eq!(l.in_flight_bytes(), 1000);
        // And while it runs, nothing else gets in.
        assert!(l.try_admit("small", 1).is_none());
        drop(big);
        assert!(l.try_admit("small", 1).is_some());
    }

    #[test]
    fn oversized_waits_for_in_flight_work() {
        let l = Arc::new(SessionLedger::new(100));
        let small = l.admit("small", 10);
        assert!(l.try_admit("big", 1000).is_none(), "oversized must wait to run alone");
        let (tx, rx) = channel();
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            let _g = l2.admit("big", 1000);
            tx.send(()).unwrap();
        });
        while l.waiting() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(small);
        rx.recv_timeout(Duration::from_secs(10)).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn ledger_never_overcommits_under_contention() {
        let l = Arc::new(SessionLedger::new(50));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..8 {
            let l = Arc::clone(&l);
            let peak = Arc::clone(&peak);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    let _g = l.admit(&format!("t{i}"), 20);
                    let now = l.in_flight_bytes();
                    peak.fetch_max(now, Ordering::SeqCst);
                    assert!(now <= 50, "overcommitted: {now}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 50);
        assert_eq!(l.in_flight_bytes(), 0);
        assert_eq!(l.active(), 0);
    }

    #[test]
    fn usage_snapshot_is_sorted_by_session() {
        let l = Arc::new(SessionLedger::new(100));
        let _a = l.admit("zeta", 10);
        let _b = l.admit("alpha", 10);
        let snap = l.usage_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "alpha");
        assert_eq!(snap[1].0, "zeta");
    }
}
