//! Binary serialization of dense blocks using the `bytes` crate.
//!
//! Layout: `rows: u64 LE | cols: u64 LE | data: rows*cols f64 LE`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dm_matrix::Dense;

/// Serialize a dense block.
pub fn encode_dense(m: &Dense) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + m.data().len() * 8);
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for &v in m.data() {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Deserialize a dense block; `None` on malformed input.
pub fn decode_dense(mut bytes: Bytes) -> Option<Dense> {
    if bytes.remaining() < 16 {
        return None;
    }
    let rows = bytes.get_u64_le() as usize;
    let cols = bytes.get_u64_le() as usize;
    let n = rows.checked_mul(cols)?;
    if bytes.remaining() != n * 8 {
        return None;
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(bytes.get_f64_le());
    }
    Dense::from_vec(rows, cols, data).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let m = Dense::from_fn(5, 7, |r, c| (r as f64) * 10.0 + c as f64 + 0.25);
        let enc = encode_dense(&m);
        assert_eq!(enc.len(), 16 + 35 * 8);
        let back = decode_dense(enc).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn empty_matrix_round_trip() {
        let m = Dense::zeros(0, 3);
        let back = decode_dense(encode_dense(&m)).unwrap();
        assert_eq!(back.shape(), (0, 3));
    }

    #[test]
    fn special_values_preserved() {
        let m = Dense::from_rows(&[&[f64::INFINITY, f64::NEG_INFINITY, -0.0]]);
        let back = decode_dense(encode_dense(&m)).unwrap();
        assert_eq!(back.get(0, 0), f64::INFINITY);
        assert_eq!(back.get(0, 2).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn nan_preserved_bitwise() {
        let m = Dense::from_rows(&[&[f64::NAN]]);
        let back = decode_dense(encode_dense(&m)).unwrap();
        assert!(back.get(0, 0).is_nan());
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(decode_dense(Bytes::from_static(b"short")).is_none());
        // Header claims more data than present.
        let mut buf = bytes::BytesMut::new();
        buf.put_u64_le(10);
        buf.put_u64_le(10);
        buf.put_f64_le(1.0);
        assert!(decode_dense(buf.freeze()).is_none());
        // Trailing garbage also rejected.
        let m = Dense::zeros(1, 1);
        let mut enc = bytes::BytesMut::from(&encode_dense(&m)[..]);
        enc.put_u8(0xFF);
        assert!(decode_dense(enc.freeze()).is_none());
    }

    #[test]
    fn overflow_dimensions_rejected() {
        let mut buf = bytes::BytesMut::new();
        buf.put_u64_le(u64::MAX);
        buf.put_u64_le(u64::MAX);
        assert!(decode_dense(buf.freeze()).is_none());
    }
}
