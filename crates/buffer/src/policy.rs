//! Eviction policies over page keys.
//!
//! The pool reports page lifecycle events (`admit`, `touch`, `remove`) and
//! asks the policy for a `victim` among evictable pages. Policies are
//! deliberately unaware of pinning — the pool passes an `evictable` predicate.

use crate::pool::PageKey;
use std::collections::VecDeque;
use std::fmt;

/// Which eviction policy a pool uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least recently used.
    Lru,
    /// First in, first out (insertion order, access-agnostic).
    Fifo,
    /// Clock (second chance): cheap LRU approximation.
    Clock,
    /// Least frequently used, with admission-order tie breaking.
    Lfu,
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Clock => "clock",
            PolicyKind::Lfu => "lfu",
        })
    }
}

/// Common interface for eviction policies.
pub trait Policy: Send {
    /// A page entered the pool.
    fn admit(&mut self, key: PageKey);
    /// A page was accessed.
    fn touch(&mut self, key: PageKey);
    /// A page left the pool (evicted or explicitly dropped).
    fn remove(&mut self, key: PageKey);
    /// Choose a victim among pages for which `evictable` returns true.
    fn victim(&mut self, evictable: &dyn Fn(PageKey) -> bool) -> Option<PageKey>;
    /// Every page the policy currently tracks, in no particular order. Used
    /// by [`crate::audit`] to cross-check policy state against the frame
    /// table: the two must always hold exactly the same key set.
    fn keys(&self) -> Vec<PageKey>;
}

/// Build a policy by kind.
pub fn make_policy(kind: PolicyKind) -> Box<dyn Policy> {
    match kind {
        PolicyKind::Lru => Box::new(LruPolicy::default()),
        PolicyKind::Fifo => Box::new(FifoPolicy::default()),
        PolicyKind::Clock => Box::new(ClockPolicy::default()),
        PolicyKind::Lfu => Box::new(LfuPolicy::default()),
    }
}

/// LFU: evict the page with the fewest accesses since admission; ties break
/// toward the earliest-admitted page. Frequency counters die with the page
/// (no ghost history), which is the classic in-memory variant.
#[derive(Debug, Default)]
pub struct LfuPolicy {
    /// `(key, frequency, admission_sequence)` per resident page.
    entries: Vec<(PageKey, u64, u64)>,
    next_seq: u64,
}

impl Policy for LfuPolicy {
    fn admit(&mut self, key: PageKey) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((key, 0, seq));
    }

    fn touch(&mut self, key: PageKey) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _, _)| *k == key) {
            e.1 += 1;
        }
    }

    fn remove(&mut self, key: PageKey) {
        if let Some(pos) = self.entries.iter().position(|(k, _, _)| *k == key) {
            self.entries.remove(pos);
        }
    }

    fn victim(&mut self, evictable: &dyn Fn(PageKey) -> bool) -> Option<PageKey> {
        self.entries
            .iter()
            .filter(|(k, _, _)| evictable(*k))
            .min_by_key(|(_, freq, seq)| (*freq, *seq))
            .map(|(k, _, _)| *k)
    }

    fn keys(&self) -> Vec<PageKey> {
        self.entries.iter().map(|(k, _, _)| *k).collect()
    }
}

/// Exact LRU via a recency-ordered list (front = coldest).
///
/// `touch`/`remove` are O(n) over resident pages; pool sizes here are small
/// (hundreds of frames), so clarity wins over an intrusive linked list.
#[derive(Debug, Default)]
pub struct LruPolicy {
    order: VecDeque<PageKey>,
}

impl Policy for LruPolicy {
    fn admit(&mut self, key: PageKey) {
        self.order.push_back(key);
    }

    fn touch(&mut self, key: PageKey) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push_back(key);
        }
    }

    fn remove(&mut self, key: PageKey) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
    }

    fn victim(&mut self, evictable: &dyn Fn(PageKey) -> bool) -> Option<PageKey> {
        self.order.iter().copied().find(|&k| evictable(k))
    }

    fn keys(&self) -> Vec<PageKey> {
        self.order.iter().copied().collect()
    }
}

/// FIFO: evict in admission order regardless of accesses.
#[derive(Debug, Default)]
pub struct FifoPolicy {
    order: VecDeque<PageKey>,
}

impl Policy for FifoPolicy {
    fn admit(&mut self, key: PageKey) {
        self.order.push_back(key);
    }

    fn touch(&mut self, _key: PageKey) {}

    fn remove(&mut self, key: PageKey) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
    }

    fn victim(&mut self, evictable: &dyn Fn(PageKey) -> bool) -> Option<PageKey> {
        self.order.iter().copied().find(|&k| evictable(k))
    }

    fn keys(&self) -> Vec<PageKey> {
        self.order.iter().copied().collect()
    }
}

/// Clock / second chance: a circular sweep clearing reference bits.
#[derive(Debug, Default)]
pub struct ClockPolicy {
    ring: Vec<(PageKey, bool)>,
    hand: usize,
}

impl Policy for ClockPolicy {
    fn admit(&mut self, key: PageKey) {
        self.ring.push((key, true));
    }

    fn touch(&mut self, key: PageKey) {
        if let Some(e) = self.ring.iter_mut().find(|(k, _)| *k == key) {
            e.1 = true;
        }
    }

    fn remove(&mut self, key: PageKey) {
        if let Some(pos) = self.ring.iter().position(|(k, _)| *k == key) {
            self.ring.remove(pos);
            if self.hand > pos {
                self.hand -= 1;
            }
            if !self.ring.is_empty() {
                self.hand %= self.ring.len();
            } else {
                self.hand = 0;
            }
        }
    }

    fn victim(&mut self, evictable: &dyn Fn(PageKey) -> bool) -> Option<PageKey> {
        if self.ring.is_empty() {
            return None;
        }
        // Two full sweeps suffice: the first clears reference bits, the second
        // must find an unreferenced evictable page if one exists.
        for _ in 0..2 * self.ring.len() {
            let idx = self.hand % self.ring.len();
            let (key, referenced) = self.ring[idx];
            if !evictable(key) {
                self.hand = (idx + 1) % self.ring.len();
                continue;
            }
            if referenced {
                self.ring[idx].1 = false;
                self.hand = (idx + 1) % self.ring.len();
            } else {
                self.hand = (idx + 1) % self.ring.len();
                return Some(key);
            }
        }
        // Every evictable page kept its reference bit set across sweeps
        // (possible only when non-evictable pages interleave oddly): fall
        // back to the first evictable page.
        self.ring.iter().map(|&(k, _)| k).find(|&k| evictable(k))
    }

    fn keys(&self) -> Vec<PageKey> {
        self.ring.iter().map(|&(k, _)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u64) -> PageKey {
        PageKey::new(0, i as u32, 0)
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut p = LruPolicy::default();
        p.admit(k(1));
        p.admit(k(2));
        p.admit(k(3));
        p.touch(k(1)); // 1 becomes hottest
        assert_eq!(p.victim(&|_| true), Some(k(2)));
        p.remove(k(2));
        assert_eq!(p.victim(&|_| true), Some(k(3)));
    }

    #[test]
    fn lru_respects_evictable_predicate() {
        let mut p = LruPolicy::default();
        p.admit(k(1));
        p.admit(k(2));
        assert_eq!(p.victim(&|key| key != k(1)), Some(k(2)));
        assert_eq!(p.victim(&|_| false), None);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut p = FifoPolicy::default();
        p.admit(k(1));
        p.admit(k(2));
        p.touch(k(1));
        p.touch(k(1));
        assert_eq!(p.victim(&|_| true), Some(k(1)), "FIFO evicts oldest regardless of access");
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut p = ClockPolicy::default();
        p.admit(k(1));
        p.admit(k(2));
        p.admit(k(3));
        // All referenced: first sweep clears bits, victim is the first page.
        assert_eq!(p.victim(&|_| true), Some(k(1)));
        // Touch 2; next victim should skip it on the first pass.
        p.remove(k(1));
        p.touch(k(2));
        p.touch(k(3));
        let v = p.victim(&|_| true).unwrap();
        assert!(v == k(2) || v == k(3));
    }

    #[test]
    fn clock_remove_keeps_hand_valid() {
        let mut p = ClockPolicy::default();
        for i in 0..5 {
            p.admit(k(i));
        }
        let _ = p.victim(&|_| true);
        p.remove(k(4));
        p.remove(k(0));
        p.remove(k(1));
        p.remove(k(2));
        p.remove(k(3));
        assert_eq!(p.victim(&|_| true), None);
        // Re-admission after emptying works.
        p.admit(k(9));
        assert_eq!(p.victim(&|_| true), Some(k(9)));
    }

    #[test]
    fn clock_skips_unevictable() {
        let mut p = ClockPolicy::default();
        p.admit(k(1));
        p.admit(k(2));
        let v = p.victim(&|key| key == k(2));
        assert_eq!(v, Some(k(2)));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut p = LfuPolicy::default();
        p.admit(k(1));
        p.admit(k(2));
        p.admit(k(3));
        p.touch(k(1));
        p.touch(k(1));
        p.touch(k(3));
        // Frequencies: 1 -> 2, 2 -> 0, 3 -> 1.
        assert_eq!(p.victim(&|_| true), Some(k(2)));
        p.remove(k(2));
        assert_eq!(p.victim(&|_| true), Some(k(3)));
    }

    #[test]
    fn lfu_ties_break_by_admission_order() {
        let mut p = LfuPolicy::default();
        p.admit(k(5));
        p.admit(k(6));
        assert_eq!(p.victim(&|_| true), Some(k(5)), "earliest-admitted loses ties");
    }

    #[test]
    fn lfu_respects_evictable_predicate() {
        let mut p = LfuPolicy::default();
        p.admit(k(1));
        p.admit(k(2));
        assert_eq!(p.victim(&|key| key != k(1)), Some(k(2)));
        assert_eq!(p.victim(&|_| false), None);
    }

    #[test]
    fn policies_handle_unknown_keys() {
        for kind in [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Clock, PolicyKind::Lfu] {
            let mut p = make_policy(kind);
            p.touch(k(99));
            p.remove(k(99));
            assert_eq!(p.victim(&|_| true), None);
        }
    }
}
