//! Out-of-core matrix handles: full-width row panels resident in a pool.
//!
//! A [`BlockStore`] names a matrix whose data lives in a [`SharedBufferPool`]
//! rather than in an owned allocation. The matrix is tiled into **row
//! panels** — `panel_rows` consecutive full-width rows per tile — because the
//! serial kernels in `dm_matrix::ops` consume whole rows (the unrolled `dot`,
//! the per-row accumulations), and keeping rows intact is what lets the
//! blocked kernels in [`crate::ooc`] reproduce the in-memory results
//! bit-for-bit. Tiles use `PageKey { matrix, block_row: panel, block_col: 0 }`.
//!
//! The access protocol per tile is pin → compute → unpin: kernels hold a
//! [`PinGuard`] for the one or two panels they are reading, so the pool can
//! spill everything else when the byte budget is tight.

use crate::pool::{PageKey, PinGuard, PoolError, SharedBufferPool};
use crate::storage::Storage;
use dm_matrix::Dense;
use std::ops::Range;

/// A matrix handle whose row panels live in a [`SharedBufferPool`].
pub struct BlockStore<S: Storage> {
    pool: SharedBufferPool<S>,
    matrix: u64,
    rows: usize,
    cols: usize,
    panel_rows: usize,
}

impl<S: Storage> BlockStore<S> {
    /// Tile `m` into row panels of `panel_rows` rows and insert them into
    /// `pool` under matrix id `matrix`.
    ///
    /// Inserting a panel may evict (and spill) earlier panels — loading a
    /// matrix larger than the pool budget is the normal case, not an error.
    /// Fails with [`PoolError::BlockTooLarge`] when a single panel exceeds
    /// the budget.
    ///
    /// # Panics
    /// Panics if `panel_rows == 0`.
    pub fn from_dense(
        pool: &SharedBufferPool<S>,
        matrix: u64,
        m: &Dense,
        panel_rows: usize,
    ) -> Result<Self, PoolError> {
        let store = Self::new_empty(pool, matrix, m.rows(), m.cols(), panel_rows);
        for p in 0..store.num_panels() {
            let r = store.panel_range(p);
            store.put_panel(p, m.slice(r.start, r.end, 0, m.cols()))?;
        }
        Ok(store)
    }

    /// Describe a store without inserting any tiles; panels are written later
    /// with [`put_panel`](Self::put_panel) (how blocked kernels produce their
    /// outputs).
    ///
    /// # Panics
    /// Panics if `panel_rows == 0`.
    pub fn new_empty(
        pool: &SharedBufferPool<S>,
        matrix: u64,
        rows: usize,
        cols: usize,
        panel_rows: usize,
    ) -> Self {
        assert!(panel_rows > 0, "panel_rows must be positive");
        BlockStore { pool: pool.clone(), matrix, rows, cols, panel_rows }
    }

    /// Number of rows of the full matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the full matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows per panel (the last panel may be shorter).
    pub fn panel_rows(&self) -> usize {
        self.panel_rows
    }

    /// Number of row panels.
    pub fn num_panels(&self) -> usize {
        self.rows.div_ceil(self.panel_rows)
    }

    /// The global row range covered by panel `p`.
    pub fn panel_range(&self, p: usize) -> Range<usize> {
        let start = p * self.panel_rows;
        start..(start + self.panel_rows).min(self.rows)
    }

    /// The pool key of panel `p`.
    pub fn key(&self, p: usize) -> PageKey {
        PageKey::new(self.matrix, p as u32, 0)
    }

    /// The pool this store's tiles live in.
    pub fn pool(&self) -> &SharedBufferPool<S> {
        &self.pool
    }

    /// Write (or replace) panel `p`.
    ///
    /// # Panics
    /// Panics if the panel's shape does not match
    /// [`panel_range`](Self::panel_range) × [`cols`](Self::cols).
    pub fn put_panel(&self, p: usize, panel: Dense) -> Result<(), PoolError> {
        let r = self.panel_range(p);
        assert_eq!(
            panel.shape(),
            (r.len(), self.cols),
            "panel {p} shape mismatch: expected {}x{}",
            r.len(),
            self.cols
        );
        self.pool.put(self.key(p), panel)
    }

    /// Pin panel `p` for reading; the pin is released when the guard drops.
    ///
    /// A missing panel (never written, or discarded) is
    /// [`PoolError::Absent`].
    pub fn pin_panel(&self, p: usize) -> Result<PinGuard<S>, PoolError> {
        self.pool.pin(self.key(p))?.ok_or(PoolError::Absent(self.key(p)))
    }

    /// Materialize the full matrix (for results that fit in memory; streams
    /// one panel at a time).
    pub fn to_dense(&self) -> Result<Dense, PoolError> {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for p in 0..self.num_panels() {
            let g = self.pin_panel(p)?;
            data.extend_from_slice(g.data());
        }
        Ok(Dense::from_vec(self.rows, self.cols, data).expect("panels cover the matrix"))
    }

    /// Drop every tile from the pool and the backing store, freeing budget
    /// and spill space. Fails with [`PoolError::Pinned`] if a tile is still
    /// pinned.
    pub fn discard(self) -> Result<(), PoolError> {
        for p in 0..self.num_panels() {
            self.pool.discard(self.key(p))?;
        }
        Ok(())
    }
}

/// Pick a panel height so one panel is roughly `budget / denom` bytes: small
/// enough that several panels (inputs, output, pins across workers) coexist
/// under the budget, large enough to amortize per-tile pool traffic. Always
/// at least one row.
pub fn panel_rows_for(cols: usize, budget: usize, denom: usize) -> usize {
    let row_bytes = cols.max(1) * 8;
    (budget / denom.max(1) / row_bytes).max(1)
}

/// Per-frame bookkeeping bytes the pool charges on top of a panel's cell
/// data (see `block_bytes` in the pool: `rows*cols*8 + FRAME_OVERHEAD`).
pub const FRAME_OVERHEAD: usize = 16;

/// Pool bytes of a single panel of `panel_rows` x `cols` cells, including
/// the per-frame overhead. This is exactly what the pool charges for the
/// frame, so static analyses summing it stay an upper bound on `used`.
pub fn panel_bytes(panel_rows: usize, cols: usize) -> usize {
    panel_rows.saturating_mul(cols).saturating_mul(8).saturating_add(FRAME_OVERHEAD)
}

/// Total pool footprint of a `rows` x `cols` matrix tiled into panels of
/// `panel_rows` rows: the dense cell bytes plus [`FRAME_OVERHEAD`] for each
/// of the `ceil(rows / panel_rows)` frames. Zero-row matrices have no
/// panels and cost nothing.
///
/// Plan-time certifiers use this to bound what a [`BlockStore::from_dense`]
/// of the same shape will charge the pool.
pub fn store_bytes(rows: usize, cols: usize, panel_rows: usize) -> usize {
    if rows == 0 {
        return 0;
    }
    let num_panels = rows.div_ceil(panel_rows.max(1));
    rows.saturating_mul(cols)
        .saturating_mul(8)
        .saturating_add(num_panels.saturating_mul(FRAME_OVERHEAD))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::storage::MemStore;
    use crate::BufferPool;

    fn shared(capacity: usize) -> SharedBufferPool<MemStore> {
        SharedBufferPool::new(BufferPool::new(capacity, PolicyKind::Lru, MemStore::default()))
    }

    fn sample(rows: usize, cols: usize) -> Dense {
        Dense::from_fn(rows, cols, |r, c| (r * 31 + c * 7) as f64 * 0.25 - 3.0)
    }

    #[test]
    fn round_trips_through_tight_pool() {
        let m = sample(37, 5);
        // Budget fits ~2 panels of 8 rows: loading spills earlier panels.
        let pool = shared(2 * (8 * 5 * 8 + 16));
        let store = BlockStore::from_dense(&pool, 1, &m, 8).unwrap();
        assert_eq!(store.num_panels(), 5);
        assert_eq!(store.panel_range(4), 32..37);
        assert!(pool.stats().evictions > 0, "working set exceeds budget");
        assert_eq!(store.to_dense().unwrap(), m);
        pool.audit_quiescent().unwrap();
    }

    #[test]
    fn pin_panel_guards_and_reports_absent() {
        let m = sample(10, 3);
        let pool = shared(1 << 16);
        let store = BlockStore::from_dense(&pool, 2, &m, 4).unwrap();
        {
            let g = store.pin_panel(1).unwrap();
            assert_eq!(g.row(0), m.row(4));
        }
        pool.audit_quiescent().unwrap();
        let ghost = BlockStore::new_empty(&pool, 9, 4, 4, 2);
        assert!(matches!(ghost.pin_panel(0), Err(PoolError::Absent(_))));
    }

    #[test]
    fn discard_clears_pool_and_storage() {
        let m = sample(32, 4);
        let pool = shared(2 * (4 * 4 * 8 + 16));
        let store = BlockStore::from_dense(&pool, 3, &m, 4).unwrap();
        assert!(pool.resident() > 0);
        store.discard().unwrap();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.used(), 0);
        let mut absent = 0;
        let probe = BlockStore::new_empty(&pool, 3, 32, 4, 4);
        for p in 0..probe.num_panels() {
            if pool.get(probe.key(p)).unwrap().is_none() {
                absent += 1;
            }
        }
        assert_eq!(absent, 8, "no tile survives in pool or storage");
    }

    #[test]
    fn panel_sizing_is_sane() {
        assert_eq!(panel_rows_for(100, 8 * 100 * 8 * 8, 8), 8);
        assert_eq!(panel_rows_for(1_000_000, 1024, 8), 1, "never below one row");
        assert!(panel_rows_for(0, 1 << 20, 8) >= 1);
    }

    #[test]
    fn store_bytes_matches_what_from_dense_charges() {
        // Load a matrix into an ample pool and compare the static formula
        // against the pool's own accounting.
        let m = sample(37, 5);
        let pool = shared(1 << 20);
        let store = BlockStore::from_dense(&pool, 1, &m, 8).unwrap();
        assert_eq!(store_bytes(37, 5, 8), pool.used());
        assert_eq!(store_bytes(37, 5, 8), 37 * 5 * 8 + 5 * FRAME_OVERHEAD);
        store.discard().unwrap();
        assert_eq!(store_bytes(0, 5, 8), 0, "no rows, no panels");
        assert_eq!(panel_bytes(8, 5), 8 * 5 * 8 + FRAME_OVERHEAD);
    }

    #[test]
    #[should_panic(expected = "panel 0 shape mismatch")]
    fn put_panel_checks_shape() {
        let pool = shared(1 << 16);
        let store = BlockStore::new_empty(&pool, 1, 10, 4, 5);
        store.put_panel(0, Dense::zeros(3, 4)).unwrap();
    }
}
