//! The buffer pool proper: a byte-budgeted frame table over a backing store.

use crate::audit::{AuditError, AuditReport};
use crate::codec;
use crate::policy::{make_policy, Policy, PolicyKind};
use crate::storage::Storage;
use dm_matrix::Dense;
use dm_obs::{trace, Recorder};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifies one block: owning matrix id plus tile coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Owning matrix identifier.
    pub matrix: u64,
    /// Tile row.
    pub block_row: u32,
    /// Tile column.
    pub block_col: u32,
}

impl PageKey {
    /// Construct a key.
    pub fn new(matrix: u64, block_row: u32, block_col: u32) -> Self {
        PageKey { matrix, block_row, block_col }
    }
}

/// Pool failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolError {
    /// A single block exceeds the pool's byte budget.
    BlockTooLarge {
        /// Size of the offending block.
        block_bytes: usize,
        /// Pool capacity.
        capacity: usize,
    },
    /// Every resident block is pinned; nothing can be evicted.
    AllPinned,
    /// Unpin called on a page that is not pinned.
    NotPinned(PageKey),
    /// Backing-store I/O failed.
    Io(String),
    /// A spilled block failed to deserialize (corrupt store).
    Corrupt(PageKey),
    /// The page is pinned and cannot be discarded.
    Pinned(PageKey),
    /// The page is known to neither the pool nor the backing store.
    Absent(PageKey),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::BlockTooLarge { block_bytes, capacity } => {
                write!(f, "block of {block_bytes} bytes exceeds pool capacity {capacity}")
            }
            PoolError::AllPinned => write!(f, "cannot evict: all resident blocks are pinned"),
            PoolError::NotPinned(k) => write!(f, "page {k:?} is not pinned"),
            PoolError::Io(msg) => write!(f, "storage io error: {msg}"),
            PoolError::Corrupt(k) => write!(f, "spilled page {k:?} failed to deserialize"),
            PoolError::Pinned(k) => write!(f, "page {k:?} is pinned and cannot be discarded"),
            PoolError::Absent(k) => write!(f, "page {k:?} is neither resident nor spilled"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Counters exposed for the E10 experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` found the block resident.
    pub hits: u64,
    /// `get` had to fault the block in from storage.
    pub misses: u64,
    /// Blocks evicted to storage.
    pub evictions: u64,
    /// `get` found the block neither resident nor spilled.
    pub absent: u64,
    /// Successful `pin` calls.
    pub pins: u64,
    /// High-water mark of resident bytes.
    pub peak_used: usize,
    /// Serialized bytes written to storage (evictions of dirty blocks plus
    /// explicit flushes).
    pub spilled_bytes: u64,
    /// Serialized bytes read back from storage on faults.
    pub faulted_bytes: u64,
}

impl PoolStats {
    /// Hit rate over all lookups that could have hit (`hits / (hits + misses)`).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    block: Arc<Dense>,
    bytes: usize,
    pins: u32,
    dirty: bool,
}

// Pre-formatted recorder site names, so mirroring an event is one atomic
// add with no per-event allocation.
struct RecorderSites {
    hit: String,
    miss: String,
    eviction: String,
    absent: String,
    pin: String,
    used: String,
    spill_bytes: String,
    fault_bytes: String,
}

impl RecorderSites {
    fn new(kind: PolicyKind) -> Self {
        let p = format!("buffer.pool.{kind}");
        RecorderSites {
            hit: format!("{p}.hit"),
            miss: format!("{p}.miss"),
            eviction: format!("{p}.eviction"),
            absent: format!("{p}.absent"),
            pin: format!("{p}.pin"),
            used: format!("{p}.used_bytes"),
            spill_bytes: format!("{p}.spill_bytes"),
            fault_bytes: format!("{p}.fault_bytes"),
        }
    }
}

/// A byte-budgeted cache of dense blocks over a backing store.
pub struct BufferPool<S: Storage> {
    capacity: usize,
    used: usize,
    frames: HashMap<PageKey, Frame>,
    policy: Box<dyn Policy>,
    kind: PolicyKind,
    storage: S,
    stats: PoolStats,
    recorder: Option<(Box<dyn Recorder>, RecorderSites)>,
}

fn block_bytes(b: &Dense) -> usize {
    b.rows() * b.cols() * 8 + crate::store::FRAME_OVERHEAD
}

impl<S: Storage> BufferPool<S> {
    /// Create a pool with the given byte capacity, policy, and backing store.
    pub fn new(capacity: usize, kind: PolicyKind, storage: S) -> Self {
        BufferPool {
            capacity,
            used: 0,
            frames: HashMap::new(),
            policy: make_policy(kind),
            kind,
            storage,
            stats: PoolStats::default(),
            recorder: None,
        }
    }

    /// Mirror pool events into `rec` under `buffer.pool.<policy>.*` sites
    /// (hit, miss, eviction, absent, pin, used_bytes). A disabled recorder is
    /// dropped here, so the hot path stays untouched when observability is
    /// off.
    pub fn with_recorder(mut self, rec: Box<dyn Recorder>) -> Self {
        self.recorder =
            if rec.is_enabled() { Some((rec, RecorderSites::new(self.kind))) } else { None };
        self
    }

    /// The eviction policy this pool was built with.
    pub fn policy_kind(&self) -> PolicyKind {
        self.kind
    }

    // Point-in-time trace events for pool transitions, so spill/fault
    // activity lines up with executor spans on the Chrome trace timeline.
    // The enabled check gates the page-label formatting, not just the push.
    fn trace_page(name: &'static str, key: PageKey) {
        if trace::is_enabled() {
            trace::instant(
                name,
                &[("page", format!("{}/{},{}", key.matrix, key.block_row, key.block_col).into())],
            );
        }
    }

    fn trace_page_bytes(name: &'static str, key: PageKey, bytes: usize) {
        if trace::is_enabled() {
            trace::instant(
                name,
                &[
                    ("page", format!("{}/{},{}", key.matrix, key.block_row, key.block_col).into()),
                    ("bytes", bytes.into()),
                ],
            );
        }
    }

    fn record(&self, site: impl Fn(&RecorderSites) -> &str) {
        if let Some((rec, sites)) = &self.recorder {
            rec.add(site(sites), 1);
        }
    }

    // Track the resident-bytes high-water mark; call after every change to
    // `used`.
    fn note_used(&mut self) {
        self.stats.peak_used = self.stats.peak_used.max(self.used);
        if let Some((rec, sites)) = &self.recorder {
            rec.gauge_set(&sites.used, self.used as u64);
        }
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently used by resident frames.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Access the counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Reset the counters (between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    fn evict_one(&mut self) -> Result<(), PoolError> {
        let frames = &self.frames;
        let victim = self
            .policy
            .victim(&|k| frames.get(&k).is_some_and(|f| f.pins == 0))
            .ok_or(PoolError::AllPinned)?;
        let frame = self.frames.remove(&victim).expect("victim must be resident");
        self.policy.remove(victim);
        self.used -= frame.bytes;
        self.stats.evictions += 1;
        self.record(|s| &s.eviction);
        Self::trace_page("buffer.evict", victim);
        if frame.dirty {
            let data = codec::encode_dense(&frame.block);
            self.stats.spilled_bytes += data.len() as u64;
            if let Some((rec, sites)) = &self.recorder {
                rec.add(&sites.spill_bytes, data.len() as u64);
            }
            Self::trace_page_bytes("buffer.spill", victim, data.len());
            self.storage.write(victim, data).map_err(|e| PoolError::Io(e.to_string()))?;
        }
        Ok(())
    }

    fn make_room(&mut self, needed: usize) -> Result<(), PoolError> {
        if needed > self.capacity {
            return Err(PoolError::BlockTooLarge { block_bytes: needed, capacity: self.capacity });
        }
        while self.used + needed > self.capacity {
            self.evict_one()?;
        }
        Ok(())
    }

    /// Insert (or replace) a block. The new block is dirty: it will be spilled
    /// on eviction.
    pub fn put(&mut self, key: PageKey, block: Dense) -> Result<(), PoolError> {
        let bytes = block_bytes(&block);
        if let Some(old) = self.frames.remove(&key) {
            self.used -= old.bytes;
            self.policy.remove(key);
        }
        self.make_room(bytes)?;
        self.frames.insert(key, Frame { block: Arc::new(block), bytes, pins: 0, dirty: true });
        self.policy.admit(key);
        self.used += bytes;
        self.note_used();
        Ok(())
    }

    /// Fetch a block: resident hit, fault-in from storage, or `Ok(None)` when
    /// the key is unknown to both.
    pub fn get(&mut self, key: PageKey) -> Result<Option<Arc<Dense>>, PoolError> {
        if let Some(frame) = self.frames.get(&key) {
            self.stats.hits += 1;
            self.record(|s| &s.hit);
            let block = Arc::clone(&frame.block);
            self.policy.touch(key);
            return Ok(Some(block));
        }
        match self.storage.read(key).map_err(|e| PoolError::Io(e.to_string()))? {
            Some(bytes) => {
                self.stats.misses += 1;
                self.record(|s| &s.miss);
                self.stats.faulted_bytes += bytes.len() as u64;
                if let Some((rec, sites)) = &self.recorder {
                    rec.add(&sites.fault_bytes, bytes.len() as u64);
                }
                Self::trace_page_bytes("buffer.fault", key, bytes.len());
                let block = codec::decode_dense(bytes).ok_or(PoolError::Corrupt(key))?;
                let nbytes = block_bytes(&block);
                self.make_room(nbytes)?;
                let arc = Arc::new(block);
                self.frames.insert(
                    key,
                    // Clean: an identical copy lives in storage.
                    Frame { block: Arc::clone(&arc), bytes: nbytes, pins: 0, dirty: false },
                );
                self.policy.admit(key);
                self.used += nbytes;
                self.note_used();
                Ok(Some(arc))
            }
            None => {
                self.stats.absent += 1;
                self.record(|s| &s.absent);
                Ok(None)
            }
        }
    }

    /// Pin a page so it cannot be evicted; faults it in first if spilled.
    /// Returns `Ok(None)` for unknown keys.
    pub fn pin(&mut self, key: PageKey) -> Result<Option<Arc<Dense>>, PoolError> {
        let block = self.get(key)?;
        if block.is_some() {
            self.frames.get_mut(&key).expect("resident after get").pins += 1;
            self.stats.pins += 1;
            self.record(|s| &s.pin);
            Self::trace_page("buffer.pin", key);
        }
        Ok(block)
    }

    /// Release one pin.
    pub fn unpin(&mut self, key: PageKey) -> Result<(), PoolError> {
        match self.frames.get_mut(&key) {
            Some(f) if f.pins > 0 => {
                f.pins -= 1;
                Self::trace_page("buffer.unpin", key);
                Ok(())
            }
            _ => Err(PoolError::NotPinned(key)),
        }
    }

    /// Flush every dirty resident block to storage (without evicting).
    pub fn flush(&mut self) -> Result<(), PoolError> {
        let keys: Vec<PageKey> = self.frames.keys().copied().collect();
        for key in keys {
            let frame = self.frames.get_mut(&key).expect("key just listed");
            if frame.dirty {
                let data = codec::encode_dense(&frame.block);
                self.stats.spilled_bytes += data.len() as u64;
                self.storage.write(key, data).map_err(|e| PoolError::Io(e.to_string()))?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Drop a page from the pool *and* the backing store, freeing its budget.
    ///
    /// Out-of-core kernels call this when an intermediate's tiles are dead, so
    /// spill space does not grow with the number of executed operators.
    /// Discarding an unknown key is a no-op; discarding a pinned page is an
    /// error ([`PoolError::Pinned`]).
    pub fn discard(&mut self, key: PageKey) -> Result<(), PoolError> {
        if let Some(frame) = self.frames.get(&key) {
            if frame.pins > 0 {
                return Err(PoolError::Pinned(key));
            }
            let frame = self.frames.remove(&key).expect("frame just found");
            self.policy.remove(key);
            self.used -= frame.bytes;
        }
        self.storage.remove(key).map_err(|e| PoolError::Io(e.to_string()))
    }

    /// Borrow the backing store (tests and experiments).
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Recompute the pool's internal state from first principles and check it
    /// against the recorded state; see [`crate::audit`]. Passing returns a
    /// snapshot including every outstanding pin.
    pub fn audit(&self) -> Result<AuditReport, AuditError> {
        let actual: usize = self.frames.values().map(|f| f.bytes).sum();
        if actual != self.used {
            return Err(AuditError::ByteAccountingMismatch { recorded: self.used, actual });
        }
        if self.used > self.capacity {
            return Err(AuditError::OverCapacity { used: self.used, capacity: self.capacity });
        }
        let mut tracked: std::collections::HashSet<PageKey> = std::collections::HashSet::new();
        for key in self.policy.keys() {
            if !tracked.insert(key) {
                return Err(AuditError::PolicyDuplicateKey { key });
            }
            if !self.frames.contains_key(&key) {
                return Err(AuditError::PolicyGhostKey { key });
            }
        }
        for key in self.frames.keys() {
            if !tracked.contains(key) {
                return Err(AuditError::PolicyUntrackedFrame { key: *key });
            }
        }
        let mut pinned: Vec<(PageKey, u32)> =
            self.frames.iter().filter(|(_, f)| f.pins > 0).map(|(k, f)| (*k, f.pins)).collect();
        pinned.sort_unstable_by_key(|&(k, _)| k);
        Ok(AuditReport {
            resident: self.frames.len(),
            used: self.used,
            capacity: self.capacity,
            pinned,
        })
    }

    /// [`audit`](Self::audit), plus the requirement that no page holds a pin:
    /// the right check at points where every user has released its blocks,
    /// where an outstanding pin can only be a leak.
    pub fn audit_quiescent(&self) -> Result<AuditReport, AuditError> {
        let report = self.audit()?;
        if let Some(&(key, pins)) = report.pinned.first() {
            return Err(AuditError::PinLeak { key, pins });
        }
        Ok(report)
    }
}

/// A thread-safe handle around a pool, for concurrent producers/consumers.
pub struct SharedBufferPool<S: Storage> {
    inner: Arc<Mutex<BufferPool<S>>>,
}

impl<S: Storage> Clone for SharedBufferPool<S> {
    fn clone(&self) -> Self {
        SharedBufferPool { inner: Arc::clone(&self.inner) }
    }
}

impl<S: Storage> SharedBufferPool<S> {
    /// Wrap a pool.
    pub fn new(pool: BufferPool<S>) -> Self {
        SharedBufferPool { inner: Arc::new(Mutex::new(pool)) }
    }

    /// Insert a block.
    pub fn put(&self, key: PageKey, block: Dense) -> Result<(), PoolError> {
        self.inner.lock().put(key, block)
    }

    /// Fetch a block.
    pub fn get(&self, key: PageKey) -> Result<Option<Arc<Dense>>, PoolError> {
        self.inner.lock().get(key)
    }

    /// Pin a page and return an RAII guard that releases the pin on drop.
    ///
    /// The guard is how out-of-core kernels hold tiles: a worker pins the
    /// tile it is computing on, dereferences the guard to the block, and the
    /// pin is released when the guard leaves scope — even on early return or
    /// panic, so pins can never leak across an operator. Returns
    /// `Ok(None)` for unknown keys.
    pub fn pin(&self, key: PageKey) -> Result<Option<PinGuard<S>>, PoolError> {
        let block = self.inner.lock().pin(key)?;
        Ok(block.map(|block| PinGuard { pool: self.clone(), key, block }))
    }

    /// Release one pin on a page (prefer letting a [`PinGuard`] drop).
    pub fn unpin(&self, key: PageKey) -> Result<(), PoolError> {
        self.inner.lock().unpin(key)
    }

    /// Drop a page from the pool and the backing store; see
    /// [`BufferPool::discard`].
    pub fn discard(&self, key: PageKey) -> Result<(), PoolError> {
        self.inner.lock().discard(key)
    }

    /// Flush every dirty resident block to storage.
    pub fn flush(&self) -> Result<(), PoolError> {
        self.inner.lock().flush()
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity()
    }

    /// Bytes currently used by resident frames.
    pub fn used(&self) -> usize {
        self.inner.lock().used()
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.inner.lock().resident()
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats()
    }

    /// Reset the counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.inner.lock().reset_stats()
    }

    /// Run the pool's consistency audit; see [`BufferPool::audit`].
    pub fn audit(&self) -> Result<AuditReport, AuditError> {
        self.inner.lock().audit()
    }

    /// [`audit`](Self::audit) plus the no-outstanding-pins requirement; see
    /// [`BufferPool::audit_quiescent`].
    pub fn audit_quiescent(&self) -> Result<AuditReport, AuditError> {
        self.inner.lock().audit_quiescent()
    }
}

/// An RAII pin on one page of a [`SharedBufferPool`]: dereferences to the
/// pinned block and releases the pin when dropped.
pub struct PinGuard<S: Storage> {
    pool: SharedBufferPool<S>,
    key: PageKey,
    block: Arc<Dense>,
}

impl<S: Storage> PinGuard<S> {
    /// The pinned page's key.
    pub fn key(&self) -> PageKey {
        self.key
    }

    /// The pinned block.
    pub fn block(&self) -> &Dense {
        &self.block
    }
}

impl<S: Storage> std::ops::Deref for PinGuard<S> {
    type Target = Dense;

    fn deref(&self) -> &Dense {
        &self.block
    }
}

impl<S: Storage> Drop for PinGuard<S> {
    fn drop(&mut self) {
        // The pin was counted when the guard was created; releasing it cannot
        // fail unless the pool was mutated behind our back, in which case the
        // audit (not this destructor) is the place that reports it.
        let _ = self.pool.unpin(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStore;

    fn block(v: f64) -> Dense {
        Dense::filled(4, 4, v) // 4*4*8 + 16 = 144 bytes
    }

    fn key(i: u32) -> PageKey {
        PageKey::new(1, i, 0)
    }

    fn pool(capacity_blocks: usize, kind: PolicyKind) -> BufferPool<MemStore> {
        BufferPool::new(capacity_blocks * 144, kind, MemStore::default())
    }

    #[test]
    fn put_get_hit() {
        let mut p = pool(4, PolicyKind::Lru);
        p.put(key(1), block(1.0)).unwrap();
        let b = p.get(key(1)).unwrap().unwrap();
        assert_eq!(b.get(0, 0), 1.0);
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 0);
    }

    #[test]
    fn eviction_spills_and_faults_back() {
        let mut p = pool(2, PolicyKind::Lru);
        p.put(key(1), block(1.0)).unwrap();
        p.put(key(2), block(2.0)).unwrap();
        p.put(key(3), block(3.0)).unwrap(); // evicts key 1
        assert_eq!(p.resident(), 2);
        assert_eq!(p.stats().evictions, 1);
        assert_eq!(p.storage().len(), 1, "dirty victim spilled");
        // Fault key 1 back in: miss, and evicts another block.
        let b = p.get(key(1)).unwrap().unwrap();
        assert_eq!(b.get(0, 0), 1.0);
        assert_eq!(p.stats().misses, 1);
        assert_eq!(p.stats().evictions, 2);
    }

    #[test]
    fn lru_evicts_cold_page() {
        let mut p = pool(2, PolicyKind::Lru);
        p.put(key(1), block(1.0)).unwrap();
        p.put(key(2), block(2.0)).unwrap();
        p.get(key(1)).unwrap(); // heat key 1
        p.put(key(3), block(3.0)).unwrap(); // should evict key 2
        assert!(p.frames.contains_key(&key(1)));
        assert!(!p.frames.contains_key(&key(2)));
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let mut p = pool(2, PolicyKind::Lru);
        p.put(key(1), block(1.0)).unwrap();
        p.pin(key(1)).unwrap().unwrap();
        p.put(key(2), block(2.0)).unwrap();
        p.put(key(3), block(3.0)).unwrap(); // must evict key 2, not pinned key 1
        assert!(p.frames.contains_key(&key(1)));
        p.unpin(key(1)).unwrap();
        assert!(p.unpin(key(1)).is_err(), "double unpin rejected");
    }

    #[test]
    fn all_pinned_errors() {
        let mut p = pool(2, PolicyKind::Lru);
        p.put(key(1), block(1.0)).unwrap();
        p.put(key(2), block(2.0)).unwrap();
        p.pin(key(1)).unwrap();
        p.pin(key(2)).unwrap();
        assert_eq!(p.put(key(3), block(3.0)), Err(PoolError::AllPinned));
    }

    #[test]
    fn block_too_large_rejected() {
        let mut p = pool(1, PolicyKind::Lru);
        let huge = Dense::zeros(100, 100);
        assert!(matches!(p.put(key(1), huge), Err(PoolError::BlockTooLarge { .. })));
    }

    #[test]
    fn clean_faulted_pages_not_rewritten() {
        let mut p = pool(1, PolicyKind::Fifo);
        p.put(key(1), block(1.0)).unwrap();
        p.put(key(2), block(2.0)).unwrap(); // spills 1 (dirty write #1)
        p.get(key(1)).unwrap(); // faults 1 back (clean), evicts 2 (dirty write #2)
        assert_eq!(p.storage().len(), 2);
        p.put(key(3), block(3.0)).unwrap(); // evicts clean 1: no rewrite needed
        assert_eq!(p.stats().evictions, 3);
    }

    #[test]
    fn replace_existing_key_updates_bytes() {
        let mut p = pool(4, PolicyKind::Lru);
        p.put(key(1), block(1.0)).unwrap();
        let used = p.used();
        p.put(key(1), Dense::filled(2, 2, 9.0)).unwrap();
        assert!(p.used() < used);
        assert_eq!(p.get(key(1)).unwrap().unwrap().get(0, 0), 9.0);
    }

    #[test]
    fn absent_key_counted() {
        let mut p = pool(2, PolicyKind::Lru);
        assert!(p.get(key(42)).unwrap().is_none());
        assert_eq!(p.stats().absent, 1);
    }

    #[test]
    fn flush_writes_dirty_blocks() {
        let mut p = pool(4, PolicyKind::Lru);
        p.put(key(1), block(1.0)).unwrap();
        p.put(key(2), block(2.0)).unwrap();
        p.flush().unwrap();
        assert_eq!(p.storage().len(), 2);
        // Second flush is a no-op (all clean now) — still 2 entries.
        p.flush().unwrap();
        assert_eq!(p.storage().len(), 2);
    }

    #[test]
    fn hit_rate_math() {
        let s = PoolStats { hits: 3, misses: 1, absent: 5, ..PoolStats::default() };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(PoolStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn pins_and_peak_bytes_tracked() {
        let mut p = pool(2, PolicyKind::Lru);
        p.put(key(1), block(1.0)).unwrap();
        assert_eq!(p.stats().peak_used, 144);
        p.put(key(2), block(2.0)).unwrap();
        assert_eq!(p.stats().peak_used, 288);
        p.put(key(3), block(3.0)).unwrap(); // evicts one; peak unchanged
        assert_eq!(p.stats().peak_used, 288);
        p.pin(key(3)).unwrap().unwrap();
        p.unpin(key(3)).unwrap();
        assert_eq!(p.stats().pins, 1);
        // Pinning an absent key records no pin.
        assert!(p.pin(key(99)).unwrap().is_none());
        assert_eq!(p.stats().pins, 1);
    }

    #[test]
    fn recorder_mirrors_pool_events() {
        use dm_obs::StatsRegistry;
        let reg = Arc::new(StatsRegistry::new());
        let mut p = pool(2, PolicyKind::Lru).with_recorder(Box::new(Arc::clone(&reg)));
        p.put(key(1), block(1.0)).unwrap();
        p.put(key(2), block(2.0)).unwrap();
        p.put(key(3), block(3.0)).unwrap(); // eviction
        p.get(key(2)).unwrap(); // hit
        p.get(key(1)).unwrap(); // miss (faults back, evicts again)
        p.get(key(42)).unwrap(); // absent
        p.pin(key(1)).unwrap().unwrap();
        p.unpin(key(1)).unwrap();
        let rep = reg.report();
        // Two hits: the explicit get(2) plus pin(1)'s internal get.
        assert_eq!(rep.counter("buffer.pool.lru.hit"), Some(2));
        assert_eq!(rep.counter("buffer.pool.lru.miss"), Some(1), "{rep}");
        assert_eq!(rep.counter("buffer.pool.lru.eviction"), Some(2));
        assert_eq!(rep.counter("buffer.pool.lru.absent"), Some(1));
        assert_eq!(rep.counter("buffer.pool.lru.pin"), Some(1));
        assert_eq!(rep.gauge("buffer.pool.lru.used_bytes").map(|(_, peak)| peak), Some(288));
    }

    #[test]
    fn disabled_recorder_is_dropped() {
        let p = pool(2, PolicyKind::Lru).with_recorder(Box::new(dm_obs::NoopRecorder));
        assert!(p.recorder.is_none());
    }

    #[test]
    fn audit_passes_through_churn() {
        let mut p = pool(2, PolicyKind::Lru);
        for i in 0..10u32 {
            p.put(key(i), block(i as f64)).unwrap();
            p.get(key(i.saturating_sub(1))).unwrap();
            p.audit().unwrap();
        }
        let report = p.audit_quiescent().unwrap();
        assert_eq!(report.resident, 2);
        assert!(report.pinned.is_empty());
        assert_eq!(report.used, p.used());
    }

    #[test]
    fn audit_reports_outstanding_pins() {
        let mut p = pool(4, PolicyKind::Lfu);
        p.put(key(1), block(1.0)).unwrap();
        p.pin(key(1)).unwrap().unwrap();
        p.pin(key(1)).unwrap().unwrap();
        let report = p.audit().unwrap();
        assert_eq!(report.pinned, vec![(key(1), 2)]);
        assert_eq!(report.total_pins(), 2);
        assert_eq!(
            p.audit_quiescent(),
            Err(crate::audit::AuditError::PinLeak { key: key(1), pins: 2 })
        );
        p.unpin(key(1)).unwrap();
        p.unpin(key(1)).unwrap();
        p.audit_quiescent().unwrap();
    }

    #[test]
    fn audit_detects_policy_desync() {
        let mut p = pool(4, PolicyKind::Clock);
        p.put(key(1), block(1.0)).unwrap();
        p.put(key(2), block(2.0)).unwrap();
        // Simulate a lost remove notification: the policy keeps a ghost.
        p.frames.remove(&key(2)).unwrap();
        p.used -= 144;
        assert_eq!(p.audit(), Err(crate::audit::AuditError::PolicyGhostKey { key: key(2) }));
        // And the converse: a frame the policy never saw.
        let mut p = pool(4, PolicyKind::Fifo);
        p.put(key(1), block(1.0)).unwrap();
        p.policy.remove(key(1));
        assert_eq!(p.audit(), Err(crate::audit::AuditError::PolicyUntrackedFrame { key: key(1) }));
    }

    #[test]
    fn audit_detects_byte_accounting_drift() {
        let mut p = pool(4, PolicyKind::Lru);
        p.put(key(1), block(1.0)).unwrap();
        p.used += 8; // simulate a lost decrement
        assert_eq!(
            p.audit(),
            Err(crate::audit::AuditError::ByteAccountingMismatch { recorded: 152, actual: 144 })
        );
    }

    #[test]
    fn spill_and_fault_bytes_counted() {
        let mut p = pool(2, PolicyKind::Lru);
        p.put(key(1), block(1.0)).unwrap();
        p.put(key(2), block(2.0)).unwrap();
        p.put(key(3), block(3.0)).unwrap(); // evicts dirty key 1: one spill write
        let encoded = codec::encode_dense(&block(1.0)).len() as u64;
        assert_eq!(p.stats().spilled_bytes, encoded);
        assert_eq!(p.stats().faulted_bytes, 0);
        p.get(key(1)).unwrap(); // faults key 1 back, evicting another dirty block
        assert_eq!(p.stats().faulted_bytes, encoded);
        assert_eq!(p.stats().spilled_bytes, 2 * encoded);
    }

    #[test]
    fn discard_frees_budget_and_storage() {
        let mut p = pool(2, PolicyKind::Lru);
        p.put(key(1), block(1.0)).unwrap();
        p.put(key(2), block(2.0)).unwrap();
        p.put(key(3), block(3.0)).unwrap(); // key 1 spilled
        assert_eq!(p.storage().len(), 1);
        p.discard(key(1)).unwrap(); // spilled-only page: storage entry dropped
        assert_eq!(p.storage().len(), 0);
        p.discard(key(2)).unwrap(); // resident page: frame dropped
        assert_eq!(p.resident(), 1);
        assert_eq!(p.used(), 144);
        p.discard(key(42)).unwrap(); // unknown key: no-op
        p.pin(key(3)).unwrap().unwrap();
        assert_eq!(p.discard(key(3)), Err(PoolError::Pinned(key(3))));
        p.unpin(key(3)).unwrap();
        p.audit_quiescent().unwrap();
    }

    #[test]
    fn pin_guard_releases_on_drop() {
        let shared = SharedBufferPool::new(pool(4, PolicyKind::Lru));
        shared.put(key(1), block(7.0)).unwrap();
        {
            let g = shared.pin(key(1)).unwrap().expect("present");
            assert_eq!(g.get(0, 0), 7.0);
            assert_eq!(g.key(), key(1));
            assert_eq!(shared.audit().unwrap().total_pins(), 1);
        }
        shared.audit_quiescent().unwrap();
        assert!(shared.pin(key(99)).unwrap().is_none(), "absent key pins nothing");
    }

    #[test]
    fn shared_pool_concurrent_access() {
        let shared = SharedBufferPool::new(pool(8, PolicyKind::Clock));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..20u32 {
                    let k = PageKey::new(2, t, i % 4);
                    s.put(k, Dense::filled(2, 2, (t * 100 + i) as f64)).unwrap();
                    let got = s.get(k).unwrap();
                    assert!(got.is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(shared.stats().hits >= 80 - 32, "most gets should hit");
    }
}
