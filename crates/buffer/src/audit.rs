//! Structural self-checking for the buffer pool.
//!
//! The pool maintains three pieces of state that must stay mutually
//! consistent: the frame table, the byte accounting (`used`), and the
//! eviction policy's view of which pages are resident. A desynchronization —
//! a policy tracking an evicted page, a frame the policy never learned about,
//! a stale byte count — would not fail fast; it would silently skew eviction
//! decisions or the byte budget. [`BufferPool::audit`](crate::BufferPool::audit)
//! recomputes everything from first principles and reports the first
//! violation found.
//!
//! Pin-count leaks get the same treatment: a pin without a matching unpin
//! permanently shields a frame from eviction and eventually starves the pool
//! into [`PoolError::AllPinned`](crate::PoolError::AllPinned). The audit
//! report lists every outstanding pin, and
//! [`audit_quiescent`](crate::BufferPool::audit_quiescent) turns any
//! outstanding pin into an error — the right check at points where all users
//! have released their references.

use crate::pool::PageKey;
use std::fmt;

/// An internal-consistency violation found by an audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// `used` disagrees with the sum of resident frame sizes.
    ByteAccountingMismatch {
        /// The pool's `used` counter.
        recorded: usize,
        /// Sum of resident frame sizes recomputed from the frame table.
        actual: usize,
    },
    /// Resident bytes exceed the configured capacity.
    OverCapacity {
        /// Bytes resident.
        used: usize,
        /// Configured budget.
        capacity: usize,
    },
    /// The policy tracks a page that is not resident.
    PolicyGhostKey {
        /// The stale key.
        key: PageKey,
    },
    /// The policy tracks the same page twice.
    PolicyDuplicateKey {
        /// The doubly-tracked key.
        key: PageKey,
    },
    /// A resident frame is unknown to the policy (it could never be chosen
    /// for eviction, leaking memory under pressure).
    PolicyUntrackedFrame {
        /// The untracked key.
        key: PageKey,
    },
    /// A page still holds pins at a point declared quiescent.
    PinLeak {
        /// The pinned page.
        key: PageKey,
        /// Outstanding pin count.
        pins: u32,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::ByteAccountingMismatch { recorded, actual } => {
                write!(f, "pool records {recorded} bytes used but resident frames total {actual}")
            }
            AuditError::OverCapacity { used, capacity } => {
                write!(f, "pool holds {used} bytes against a capacity of {capacity}")
            }
            AuditError::PolicyGhostKey { key } => {
                write!(f, "eviction policy tracks non-resident page {key:?}")
            }
            AuditError::PolicyDuplicateKey { key } => {
                write!(f, "eviction policy tracks page {key:?} twice")
            }
            AuditError::PolicyUntrackedFrame { key } => {
                write!(f, "resident page {key:?} is unknown to the eviction policy")
            }
            AuditError::PinLeak { key, pins } => {
                write!(f, "page {key:?} still holds {pins} pin(s) at a quiescent point")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Snapshot of pool state produced by a passing audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Number of resident frames.
    pub resident: usize,
    /// Bytes resident (verified against the frame table).
    pub used: usize,
    /// Configured byte budget.
    pub capacity: usize,
    /// Every page with an outstanding pin, with its pin count, sorted by key.
    pub pinned: Vec<(PageKey, u32)>,
}

impl AuditReport {
    /// Total outstanding pins across all pages.
    pub fn total_pins(&self) -> u64 {
        self.pinned.iter().map(|&(_, p)| p as u64).sum()
    }
}
