//! # dm-buffer
//!
//! A buffer pool for matrix blocks, modeled on the block caching layer of
//! declarative ML systems: a fixed byte budget of in-memory frames over a
//! backing store, with pin/unpin semantics and pluggable eviction policies
//! (LRU / FIFO / Clock / LFU).
//!
//! Blocks are dense tiles; on eviction a dirty block is serialized (via the
//! [`codec`]) and written to the [`storage::Storage`] backend (in-memory or
//! on-disk). Faulting a block back in deserializes it.
//!
//! ```
//! use dm_buffer::{BufferPool, PageKey, policy::PolicyKind, storage::MemStore};
//! use dm_matrix::Dense;
//!
//! let mut pool = BufferPool::new(1 << 16, PolicyKind::Lru, MemStore::default());
//! let key = PageKey::new(0, 0, 0);
//! pool.put(key, Dense::identity(4)).unwrap();
//! let block = pool.get(key).unwrap().expect("present");
//! assert_eq!(block.get(3, 3), 1.0);
//! assert_eq!(pool.stats().hits, 1);
//! ```
//!
//! On top of the pool sits the out-of-core layer: [`store::BlockStore`]
//! handles matrices as pool-resident row panels, and the [`ooc`] kernels
//! (gemv / gemm / crossprod / col_sums / elementwise) stream those panels
//! under the byte budget while staying **bit-identical** to the in-memory
//! kernels of `dm_matrix` — see the [`ooc`] module docs for the construction
//! and a runnable example.

#![warn(missing_docs)]

pub mod audit;
pub mod codec;
pub mod ooc;
pub mod policy;
pub mod pool;
pub mod session;
pub mod storage;
pub mod store;

pub use audit::{AuditError, AuditReport};
pub use pool::{BufferPool, PageKey, PinGuard, PoolError, PoolStats, SharedBufferPool};
pub use session::{AdmitGuard, SessionLedger, SessionUsage};
pub use store::{panel_bytes, panel_rows_for, store_bytes, BlockStore, FRAME_OVERHEAD};
