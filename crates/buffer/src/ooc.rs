//! Blocked (out-of-core) kernels over [`BlockStore`] handles.
//!
//! Each kernel streams row panels through the pool — pin → compute → unpin —
//! so the resident set stays under the pool's byte budget no matter how large
//! the operands are. Every kernel is **bit-identical to its in-memory
//! counterpart in `dm_matrix::ops`**, by the same two constructions the
//! parallel kernels use:
//!
//! * [`gemv`] and [`gemm`] keep rows whole (panels are full-width) and
//!   accumulate each output element in the same strictly-increasing-`k`
//!   order as the serial kernels — no floating-point operation is
//!   reordered. Gemm streams each pinned `B` panel through the packed
//!   register-tiled kernel of [`dm_matrix::pack`] when the panel is finite
//!   (where dropping the `a[i][k] == 0` skip is bit-exact — see that
//!   module's equivalence argument), and falls back to the reference
//!   skip-loop for panels holding `NaN`/`inf`.
//! * [`col_sums`] and [`crossprod`] decompose into the *global* fixed row
//!   blocks of [`dm_matrix::par::ROW_BLOCK`] — independent of the panel
//!   height — and fold partials in block order, which is exactly the serial
//!   reduction tree.
//!
//! Parallel workers (`degree > 1`) own disjoint panels or disjoint global
//! blocks and hold at most one panel pin per operand at a time; the degree is
//! clamped so the sum of per-worker pins always fits the budget, which is
//! what rules out pin-wait deadlocks by construction.
//!
//! ```
//! use dm_buffer::{ooc, BlockStore, BufferPool, SharedBufferPool};
//! use dm_buffer::{policy::PolicyKind, storage::MemStore};
//! use dm_matrix::{ops, Dense};
//!
//! let a = Dense::from_fn(64, 24, |r, c| (r * 7 + c) as f64 * 0.5 - 3.0);
//! let b = Dense::from_fn(24, 16, |r, c| (r + c * 5) as f64 * 0.25 - 2.0);
//! // A pool far smaller than the 64x24 * 24x16 working set: tiles spill.
//! let pool = SharedBufferPool::new(BufferPool::new(4096, PolicyKind::Lru, MemStore::default()));
//! let sa = BlockStore::from_dense(&pool, 1, &a, 8).unwrap();
//! let sb = BlockStore::from_dense(&pool, 2, &b, 8).unwrap();
//! let product = ooc::gemm(&sa, &sb, 3, 1).unwrap().to_dense().unwrap();
//! assert_eq!(product, ops::gemm(&a, &b)); // bit-identical, not approximate
//! assert!(pool.stats().evictions > 0, "it really ran out-of-core");
//! pool.audit_quiescent().unwrap();
//! ```

use crate::pool::PoolError;
use crate::storage::Storage;
use crate::store::BlockStore;
use dm_matrix::ops::dot;
use dm_matrix::pack;
use dm_matrix::par::ROW_BLOCK;
use dm_matrix::Dense;
use dm_par::{map_collect, reduce_blocks};

// Cap the worker count so that concurrent per-worker pins (plus one panel of
// slack for the output `put`) always fit the budget: workers then never wait
// on each other's pins, and `AllPinned` is reserved for budgets genuinely
// too small for one worker's tiles.
fn clamp_degree(degree: usize, capacity: usize, bytes_per_worker: usize) -> usize {
    degree.clamp(1, (capacity / bytes_per_worker.max(1)).max(1))
}

fn panel_bytes<S: Storage>(s: &BlockStore<S>) -> usize {
    s.panel_rows().min(s.rows().max(1)) * s.cols() * 8 + 16
}

fn join<T>(results: Vec<Result<T, PoolError>>) -> Result<Vec<T>, PoolError> {
    results.into_iter().collect()
}

/// Out-of-core matrix-vector product `a * v`.
///
/// Workers own disjoint panels; each row is dotted whole (panels are
/// full-width), so the bits match `dm_matrix::ops::gemv` exactly.
///
/// # Panics
/// Panics if `v.len() != a.cols()`.
pub fn gemv<S: Storage>(
    a: &BlockStore<S>,
    v: &[f64],
    degree: usize,
) -> Result<Vec<f64>, PoolError> {
    assert_eq!(
        v.len(),
        a.cols(),
        "gemv dimension mismatch: vector {} vs cols {}",
        v.len(),
        a.cols()
    );
    let degree = clamp_degree(degree, a.pool().capacity(), panel_bytes(a));
    let parts = join(map_collect(a.num_panels(), degree, |p| {
        let g = a.pin_panel(p)?;
        let mut out = Vec::with_capacity(g.rows());
        for r in 0..g.rows() {
            out.push(dot(g.row(r), v));
        }
        Ok(out)
    }))?;
    Ok(parts.concat())
}

/// Out-of-core matrix-matrix product `a * b`, writing the result's panels
/// into `a`'s pool under matrix id `out_matrix`.
///
/// Each worker owns one output panel: it pins the matching `a` panel, then
/// streams `b`'s panels in increasing-`k` order, accumulating into a local
/// buffer with the serial kernel's per-element order (strictly increasing
/// `k`) — bit-identical to `dm_matrix::ops::gemm`. Finite `B` panels run
/// the packed register-tiled kernel ([`dm_matrix::pack`]); panels with
/// `NaN`/`inf` take the reference loop with the `a[i][k] == 0` skip, whose
/// semantics are only observable there. The per-panel choice is safe
/// because the two kernels agree bit-for-bit on finite panels.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn gemm<S: Storage>(
    a: &BlockStore<S>,
    b: &BlockStore<S>,
    out_matrix: u64,
    degree: usize,
) -> Result<BlockStore<S>, PoolError> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let n = b.cols();
    let out = BlockStore::new_empty(a.pool(), out_matrix, a.rows(), n, a.panel_rows());
    let per_worker = panel_bytes(a) + panel_bytes(b) + panel_bytes(&out);
    let degree = clamp_degree(degree, a.pool().capacity(), per_worker);
    join(map_collect(a.num_panels(), degree, |p| {
        let rows = a.panel_range(p);
        let mut acc = vec![0.0; rows.len() * n];
        {
            let ap = a.pin_panel(p)?;
            let mut bpack = pack::PackedB::default();
            let mut apack = Vec::new();
            for kb in 0..b.num_panels() {
                let bp = b.pin_panel(kb)?;
                let kr = b.panel_range(kb);
                if pack::all_finite(bp.data()) {
                    // Packed path: KC sub-slabs of the panel in increasing
                    // k, so the per-element order across panels stays the
                    // serial one.
                    for jc in (0..n).step_by(pack::NC) {
                        let j1 = (jc + pack::NC).min(n);
                        for pc in (0..kr.len()).step_by(pack::KC) {
                            let p1 = (pc + pack::KC).min(kr.len());
                            bpack.pack(bp.data(), n, pc..p1, jc..j1);
                            let view = pack::AView {
                                data: ap.data(),
                                stride: a.cols(),
                                rows: 0..rows.len(),
                                kcols: kr.start + pc..kr.start + p1,
                            };
                            pack::gemm_packed_rows(&view, &bpack, &mut acc, n, &mut apack);
                        }
                    }
                } else {
                    for oi in 0..rows.len() {
                        let arow = &ap.row(oi)[kr.start..kr.end];
                        let orow = &mut acc[oi * n..(oi + 1) * n];
                        for (kk, &aik) in arow.iter().enumerate() {
                            if aik == 0.0 {
                                continue;
                            }
                            let brow = bp.row(kk);
                            for (o, &bkj) in orow.iter_mut().zip(brow) {
                                *o += aik * bkj;
                            }
                        }
                    }
                }
            }
        }
        // Both pins are released before the put, so the output panel can
        // reclaim their frames under a tight budget.
        out.put_panel(p, Dense::from_vec(rows.len(), n, acc).expect("panel shape"))
    }))?;
    Ok(out)
}

// Walk the panels overlapping global rows `rows` in order, handing each
// (global row, row slice) to `f` — the pin-scope pattern shared by the
// reduction kernels.
fn for_rows<S: Storage>(
    a: &BlockStore<S>,
    rows: std::ops::Range<usize>,
    mut f: impl FnMut(usize, &[f64]),
) -> Result<(), PoolError> {
    let mut p = rows.start / a.panel_rows();
    while p < a.num_panels() && a.panel_range(p).start < rows.end {
        let g = a.pin_panel(p)?;
        let pr = a.panel_range(p);
        for r in rows.start.max(pr.start)..rows.end.min(pr.end) {
            f(r, g.row(r - pr.start));
        }
        p += 1;
    }
    Ok(())
}

/// Out-of-core column sums, as the same fixed-[`ROW_BLOCK`] reduction the
/// in-memory kernel runs: partials are flushed at *global* block boundaries
/// regardless of the panel height, so the fold tree — and every bit —
/// matches `dm_matrix::ops::col_sums`.
pub fn col_sums<S: Storage>(a: &BlockStore<S>, degree: usize) -> Result<Vec<f64>, PoolError> {
    let degree = clamp_degree(degree, a.pool().capacity(), panel_bytes(a));
    reduce_blocks(
        a.rows(),
        ROW_BLOCK,
        degree,
        |rows| {
            let mut part = vec![0.0; a.cols()];
            for_rows(a, rows, |_, row| {
                for (o, &v) in part.iter_mut().zip(row) {
                    *o += v;
                }
            })?;
            Ok(part)
        },
        |acc, part| {
            let (mut acc, part) = (acc?, part?);
            for (o, p) in acc.iter_mut().zip(part) {
                *o += p;
            }
            Ok(acc)
        },
    )
    .unwrap_or_else(|| Ok(vec![0.0; a.cols()]))
}

/// Out-of-core self-transpose product `a^T * a` (the fused `t(X)%*%X`),
/// as the fixed-[`ROW_BLOCK`] reduction of `dm_matrix::par::crossprod` with
/// panels streamed through the pool; bit-identical to
/// `dm_matrix::ops::crossprod`. The `d x d` result is returned in memory —
/// physical selection only picks the blocked kernel when the *input* is the
/// oversized operand.
pub fn crossprod<S: Storage>(a: &BlockStore<S>, degree: usize) -> Result<Dense, PoolError> {
    let d = a.cols();
    let degree = clamp_degree(degree, a.pool().capacity(), panel_bytes(a));
    let mut out = reduce_blocks(
        a.rows(),
        ROW_BLOCK,
        degree,
        |rows| {
            let mut part = Dense::zeros(d, d);
            for_rows(a, rows, |_, row| {
                for (i, &vi) in row.iter().enumerate() {
                    if vi == 0.0 {
                        continue;
                    }
                    // Same slice-zip restructure as dm_matrix::par::crossprod:
                    // identical adds in identical order, unit-stride.
                    let prow = &mut part.data_mut()[i * d + i..(i + 1) * d];
                    for (o, &vj) in prow.iter_mut().zip(&row[i..]) {
                        *o += vi * vj;
                    }
                }
            })?;
            Ok(part)
        },
        |acc, part| {
            let (mut acc, part) = (acc?, part?);
            for (o, &p) in acc.data_mut().iter_mut().zip(part.data()) {
                *o += p;
            }
            Ok(acc)
        },
    )
    .unwrap_or_else(|| Ok(Dense::zeros(d, d)))?;
    for i in 0..d {
        for j in (i + 1)..d {
            let v = out.get(i, j);
            out.set(j, i, v);
        }
    }
    Ok(out)
}

/// Out-of-core elementwise combination `f(a, b)`, writing result panels under
/// `out_matrix` in `a`'s pool. Trivially bit-identical — elementwise ops have
/// no reduction order.
///
/// # Panics
/// Panics if shapes differ or the stores use different panel heights.
pub fn ewise<S: Storage>(
    a: &BlockStore<S>,
    b: &BlockStore<S>,
    f: impl Fn(f64, f64) -> f64 + Sync,
    out_matrix: u64,
    degree: usize,
) -> Result<BlockStore<S>, PoolError> {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "elementwise shape mismatch: {:?} vs {:?}",
        (a.rows(), a.cols()),
        (b.rows(), b.cols())
    );
    assert_eq!(a.panel_rows(), b.panel_rows(), "elementwise panel height mismatch");
    let out = BlockStore::new_empty(a.pool(), out_matrix, a.rows(), a.cols(), a.panel_rows());
    let per_worker = 3 * panel_bytes(a);
    let degree = clamp_degree(degree, a.pool().capacity(), per_worker);
    join(map_collect(a.num_panels(), degree, |p| {
        let rows = a.panel_range(p);
        let data = {
            let (ga, gb) = (a.pin_panel(p)?, b.pin_panel(p)?);
            ga.data().iter().zip(gb.data()).map(|(&x, &y)| f(x, y)).collect()
        };
        out.put_panel(p, Dense::from_vec(rows.len(), a.cols(), data).expect("panel shape"))
    }))?;
    Ok(out)
}

/// Out-of-core elementwise map `f(a)` (scalar broadcasts, unary ops),
/// writing result panels under `out_matrix` in `a`'s pool.
pub fn map<S: Storage>(
    a: &BlockStore<S>,
    f: impl Fn(f64) -> f64 + Sync,
    out_matrix: u64,
    degree: usize,
) -> Result<BlockStore<S>, PoolError> {
    let out = BlockStore::new_empty(a.pool(), out_matrix, a.rows(), a.cols(), a.panel_rows());
    let degree = clamp_degree(degree, a.pool().capacity(), 2 * panel_bytes(a));
    join(map_collect(a.num_panels(), degree, |p| {
        let rows = a.panel_range(p);
        let data = {
            let g = a.pin_panel(p)?;
            g.data().iter().map(|&x| f(x)).collect()
        };
        out.put_panel(p, Dense::from_vec(rows.len(), a.cols(), data).expect("panel shape"))
    }))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::storage::MemStore;
    use crate::{BufferPool, SharedBufferPool};
    use dm_matrix::ops;

    fn shared(capacity: usize) -> SharedBufferPool<MemStore> {
        SharedBufferPool::new(BufferPool::new(capacity, PolicyKind::Lru, MemStore::default()))
    }

    fn sample(rows: usize, cols: usize) -> Dense {
        // Includes exact zeros so the `aik == 0.0` skip paths are exercised.
        Dense::from_fn(rows, cols, |r, c| {
            let v = ((r * 31 + c * 17) % 23) as f64 * 0.37 - 3.0;
            if (r + c) % 11 == 0 {
                0.0
            } else {
                v
            }
        })
    }

    const DEGREES: [usize; 3] = [1, 2, 4];

    #[test]
    fn gemv_bit_identical_under_pressure() {
        let m = sample(1500, 9);
        let v: Vec<f64> = (0..9).map(|i| i as f64 * 0.21 - 1.0).collect();
        let expect = ops::gemv(&m, &v);
        // ~4 panels of 100 rows fit out of 15: constant spilling.
        let pool = shared(4 * (100 * 9 * 8 + 16));
        let store = BlockStore::from_dense(&pool, 1, &m, 100).unwrap();
        for deg in DEGREES {
            assert_eq!(gemv(&store, &v, deg).unwrap(), expect, "degree {deg}");
        }
        assert!(pool.stats().evictions > 0);
        pool.audit_quiescent().unwrap();
    }

    #[test]
    fn gemm_bit_identical_under_pressure() {
        let a = sample(300, 150);
        let b = sample(150, 170);
        let expect = ops::gemm(&a, &b);
        for deg in DEGREES {
            let pool = shared((300 * 170 * 8) / 2); // ~half the output size
            let sa = BlockStore::from_dense(&pool, 1, &a, 32).unwrap();
            let sb = BlockStore::from_dense(&pool, 2, &b, 32).unwrap();
            let got = gemm(&sa, &sb, 3, deg).unwrap();
            assert_eq!(got.to_dense().unwrap(), expect, "degree {deg}");
            assert!(pool.stats().evictions > 0, "degree {deg}");
            pool.audit_quiescent().unwrap();
        }
    }

    #[test]
    fn reductions_bit_identical_across_panel_heights() {
        // Panel heights that divide ROW_BLOCK, exceed it, and straddle it:
        // partials must flush at the same global 1024-row boundaries in all
        // three cases.
        let m = sample(3000, 7);
        for panel_rows in [128usize, 1024, 1500, 700] {
            let pool = shared(6 * (panel_rows * 7 * 8 + 16));
            let store = BlockStore::from_dense(&pool, 1, &m, panel_rows).unwrap();
            for deg in DEGREES {
                assert_eq!(
                    col_sums(&store, deg).unwrap(),
                    ops::col_sums(&m),
                    "col_sums panel {panel_rows} degree {deg}"
                );
                assert_eq!(
                    crossprod(&store, deg).unwrap(),
                    ops::crossprod(&m),
                    "crossprod panel {panel_rows} degree {deg}"
                );
            }
            pool.audit_quiescent().unwrap();
        }
    }

    #[test]
    fn ewise_and_map_match_in_memory() {
        let a = sample(500, 11);
        let b = sample(500, 11);
        let pool = shared(5 * (64 * 11 * 8 + 16));
        let sa = BlockStore::from_dense(&pool, 1, &a, 64).unwrap();
        let sb = BlockStore::from_dense(&pool, 2, &b, 64).unwrap();
        for deg in DEGREES {
            let sum = ewise(&sa, &sb, |x, y| x + y, 10 + deg as u64, deg).unwrap();
            assert_eq!(sum.to_dense().unwrap(), ops::add(&a, &b), "degree {deg}");
            sum.discard().unwrap();
            let scaled = map(&sa, |x| x * 2.5, 20 + deg as u64, deg).unwrap();
            assert_eq!(scaled.to_dense().unwrap(), ops::scale(&a, 2.5), "degree {deg}");
            scaled.discard().unwrap();
        }
        pool.audit_quiescent().unwrap();
    }

    #[test]
    fn edge_shapes() {
        let pool = shared(1 << 16);
        for (id, (r, c)) in
            [(0usize, 3usize), (1, 3), (3, 1), (0, 0), (1, 1)].into_iter().enumerate()
        {
            let m = sample(r, c);
            let v = vec![0.5; c];
            let s = BlockStore::from_dense(&pool, id as u64 * 10, &m, 2).unwrap();
            assert_eq!(gemv(&s, &v, 2).unwrap(), ops::gemv(&m, &v), "{r}x{c}");
            assert_eq!(col_sums(&s, 2).unwrap(), ops::col_sums(&m), "{r}x{c}");
            assert_eq!(crossprod(&s, 2).unwrap(), ops::crossprod(&m), "{r}x{c}");
            let b = sample(c, 2);
            let sb = BlockStore::from_dense(&pool, id as u64 * 10 + 1, &b, 2).unwrap();
            let got = gemm(&s, &sb, id as u64 * 10 + 2, 2).unwrap();
            assert_eq!(got.to_dense().unwrap(), ops::gemm(&m, &b), "{r}x{c}");
        }
        pool.audit_quiescent().unwrap();
    }

    #[test]
    fn budget_smaller_than_one_panel_errors_cleanly() {
        let pool = shared(100); // one 16x8 panel needs 16*8*8 + 16 = 1040 bytes
        let m = sample(64, 8);
        let err = BlockStore::from_dense(&pool, 1, &m, 16).err().expect("must fail");
        assert!(
            matches!(err, PoolError::BlockTooLarge { .. }),
            "expected BlockTooLarge, got {err:?}"
        );
    }

    #[test]
    fn gemm_mixed_finite_and_non_finite_panels() {
        // One B panel holds inf/NaN (reference skip-loop), the rest are
        // finite (packed kernel): the per-panel dispatch must still match
        // the in-memory product bit-for-bit.
        let a = sample(60, 96); // exact zeros present -> skip is exercised
        let mut b = sample(96, 40);
        b.set(50, 7, f64::INFINITY); // lands in the second 32-row panel
        b.set(52, 9, f64::NAN);
        let expect = ops::gemm(&a, &b);
        let pool = shared(60 * 96 * 8 * 4);
        let sa = BlockStore::from_dense(&pool, 1, &a, 32).unwrap();
        let sb = BlockStore::from_dense(&pool, 2, &b, 32).unwrap();
        for deg in DEGREES {
            let got = gemm(&sa, &sb, 100 + deg as u64, deg).unwrap().to_dense().unwrap();
            assert_eq!(got.shape(), expect.shape(), "degree {deg}");
            for (i, (g, w)) in got.data().iter().zip(expect.data()).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "degree {deg} elem {i}: {g} vs {w}");
            }
        }
        pool.audit_quiescent().unwrap();
    }

    #[test]
    fn special_values_survive_the_round_trip() {
        // NaN / -0.0 / infinities must stream through spill-and-fault intact.
        let mut m = sample(40, 4);
        m.set(0, 0, f64::NAN);
        m.set(1, 1, -0.0);
        m.set(2, 2, f64::INFINITY);
        m.set(3, 3, f64::NEG_INFINITY);
        let pool = shared(2 * (8 * 4 * 8 + 16));
        let store = BlockStore::from_dense(&pool, 1, &m, 8).unwrap();
        assert!(pool.stats().evictions > 0, "blocks actually spilled");
        let back = store.to_dense().unwrap();
        for (a, b) in back.data().iter().zip(m.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "bitwise round trip");
        }
    }
}
