//! Out-of-core edge cases against the on-disk backing store: the exact
//! conditions the executor's spill pool hits in production.

use dm_buffer::policy::PolicyKind;
use dm_buffer::storage::FileStore;
use dm_buffer::{ooc, BlockStore, BufferPool, PageKey, PoolError, SharedBufferPool};
use dm_matrix::{ops, Dense};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dmml_ooc_disk_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn disk_pool(capacity: usize, tag: &str) -> SharedBufferPool<FileStore> {
    let store = FileStore::new(temp_dir(tag)).expect("spill dir");
    SharedBufferPool::new(BufferPool::new(capacity, PolicyKind::Lru, store))
}

fn awkward(rows: usize, cols: usize) -> Dense {
    // Values chosen to be non-representable in low precision plus the full
    // set of special values, so "bit-identical" means something.
    let mut m = Dense::from_fn(rows, cols, |r, c| ((r * 37 + c * 13) as f64).sin() * 1e3);
    if rows > 3 && cols > 3 {
        m.set(0, 0, f64::NAN);
        m.set(1, 1, -0.0);
        m.set(2, 2, f64::INFINITY);
        m.set(3, 3, f64::MIN_POSITIVE / 2.0); // subnormal
    }
    m
}

#[test]
fn budget_smaller_than_one_tile_errors_cleanly() {
    // A budget below a single tile must fail fast with BlockTooLarge — not
    // loop evicting, not panic.
    let pool = disk_pool(64, "tiny");
    let err =
        pool.put(PageKey::new(1, 0, 0), Dense::zeros(8, 8)).map(|_| ()).expect_err("must fail");
    assert!(matches!(err, PoolError::BlockTooLarge { block_bytes: 528, capacity: 64 }));
    // Same through the BlockStore loader.
    let m = awkward(32, 8);
    assert!(matches!(
        BlockStore::from_dense(&pool, 2, &m, 8).map(|_| ()).expect_err("must fail"),
        PoolError::BlockTooLarge { .. }
    ));
    pool.audit_quiescent().expect("failed put leaves a consistent pool");
}

#[test]
fn pinned_then_unpinned_dirty_block_round_trips_through_disk() {
    // Pin protects a dirty block from eviction; after unpin it becomes a
    // victim, spills to disk, and must fault back with identical bits.
    let pool = disk_pool(2 * (8 * 4 * 8 + 16), "pin_cycle");
    let victim = awkward(8, 4);
    let k = |i| PageKey::new(1, i, 0);
    pool.put(k(0), victim.clone()).unwrap();
    {
        let g = pool.pin(k(0)).unwrap().expect("resident");
        assert_eq!(g.get(0, 0).to_bits(), victim.get(0, 0).to_bits());
        // Pressure while pinned: the pin must hold, other blocks evict.
        pool.put(k(1), awkward(8, 4)).unwrap();
        pool.put(k(2), awkward(8, 4)).unwrap();
        let resident_victim = pool.get(k(0)).unwrap().expect("pinned block still resident");
        assert_eq!(resident_victim.data().len(), victim.data().len());
    }
    // Unpinned now: push it out for real.
    pool.put(k(3), awkward(8, 4)).unwrap();
    pool.put(k(4), awkward(8, 4)).unwrap();
    assert!(pool.stats().evictions > 0);
    let back = pool.get(k(0)).unwrap().expect("faulted back from disk");
    for (a, b) in back.data().iter().zip(victim.data()) {
        assert_eq!(a.to_bits(), b.to_bits(), "bitwise disk round trip (incl. NaN/-0/subnormal)");
    }
    assert!(pool.stats().faulted_bytes > 0);
    pool.audit_quiescent().unwrap();
}

#[test]
fn audit_stays_clean_after_full_out_of_core_gemm() {
    let a = awkward(96, 40);
    let b = awkward(40, 32);
    // Budget ~= a quarter of the working set (a + b + out).
    let ws = (96 * 40 + 40 * 32 + 96 * 32) * 8;
    let pool = disk_pool(ws / 4, "gemm");
    let sa = BlockStore::from_dense(&pool, 1, &a, 8).unwrap();
    let sb = BlockStore::from_dense(&pool, 2, &b, 8).unwrap();
    let out = ooc::gemm(&sa, &sb, 3, 4).unwrap();
    let got = out.to_dense().unwrap();
    let expect = ops::gemm(&a, &b);
    for (x, y) in got.data().iter().zip(expect.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "gemm bit-identical through disk spill");
    }
    assert!(pool.stats().evictions > 0, "working set 4x budget must spill");
    assert!(pool.stats().spilled_bytes > 0);
    let report = pool.audit_quiescent().expect("no leaks, no desync after gemm");
    assert!(report.pinned.is_empty());
    // Intermediates can be dropped without disturbing consistency.
    out.discard().unwrap();
    sa.discard().unwrap();
    sb.discard().unwrap();
    pool.audit_quiescent().unwrap();
    assert_eq!(pool.resident(), 0);
}
