//! Property-based tests for the buffer pool: under arbitrary put/get
//! sequences the pool must never lose data, never exceed its byte budget,
//! and always return exactly what was last stored per key.

use dm_buffer::{policy::PolicyKind, storage::MemStore, BufferPool, PageKey};
use dm_matrix::Dense;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Action {
    Put(u32, f64),
    Get(u32),
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..12, -100.0..100.0f64).prop_map(|(k, v)| Action::Put(k, v)),
            (0u32..12).prop_map(Action::Get),
        ],
        1..120,
    )
}

fn policies() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Fifo),
        Just(PolicyKind::Clock),
        Just(PolicyKind::Lfu),
    ]
}

proptest! {
    #[test]
    fn pool_is_a_faithful_kv_store(ops in actions(), kind in policies(), cap_blocks in 1usize..6) {
        // 2x2 blocks: 2*2*8 + 16 = 48 bytes each.
        let block_bytes = 48;
        let mut pool = BufferPool::new(cap_blocks * block_bytes, kind, MemStore::default());
        let mut model: HashMap<u32, f64> = HashMap::new();
        for op in ops {
            match op {
                Action::Put(k, v) => {
                    pool.put(PageKey::new(0, k, 0), Dense::filled(2, 2, v)).unwrap();
                    model.insert(k, v);
                }
                Action::Get(k) => {
                    let got = pool.get(PageKey::new(0, k, 0)).unwrap();
                    match model.get(&k) {
                        Some(&v) => {
                            let b = got.expect("stored key must be retrievable");
                            prop_assert_eq!(b.get(0, 0), v, "stale value for key {}", k);
                        }
                        None => prop_assert!(got.is_none(), "ghost value for key {}", k),
                    }
                }
            }
            prop_assert!(pool.used() <= pool.capacity(), "byte budget violated");
            prop_assert!(pool.resident() <= cap_blocks, "frame budget violated");
            // Frame table, byte accounting, and policy state stay in sync
            // after every operation; no action here pins, so quiescent holds.
            let audit = pool.audit_quiescent();
            prop_assert!(audit.is_ok(), "pool audit failed: {:?}", audit);
        }
        // Post-condition: every key the model knows is still retrievable.
        for (k, v) in model {
            let b = pool.get(PageKey::new(0, k, 0)).unwrap().expect("durable");
            prop_assert_eq!(b.get(0, 0), v);
        }
    }

    #[test]
    fn pins_never_evicted(kind in policies()) {
        let block_bytes = 48;
        let mut pool = BufferPool::new(2 * block_bytes, kind, MemStore::default());
        pool.put(PageKey::new(0, 0, 0), Dense::filled(2, 2, 7.0)).unwrap();
        pool.pin(PageKey::new(0, 0, 0)).unwrap().unwrap();
        // Hammer the pool with other blocks.
        for k in 1..20u32 {
            pool.put(PageKey::new(0, k, 0), Dense::filled(2, 2, k as f64)).unwrap();
        }
        // The pinned block is still resident (a get is a hit, not a fault).
        let before = pool.stats().hits;
        pool.get(PageKey::new(0, 0, 0)).unwrap().unwrap();
        prop_assert_eq!(pool.stats().hits, before + 1);
        // The audit sees the outstanding pin, and sees it released.
        let report = pool.audit().expect("pool consistent");
        prop_assert_eq!(report.pinned, vec![(PageKey::new(0, 0, 0), 1)]);
        pool.unpin(PageKey::new(0, 0, 0)).unwrap();
        prop_assert!(pool.audit_quiescent().is_ok(), "pin leak after release");
    }

    #[test]
    fn codec_round_trips_arbitrary_blocks(
        rows in 0usize..10,
        cols in 0usize..10,
        seed_vals in proptest::collection::vec(-1e6..1e6f64, 0..100),
    ) {
        let n = rows * cols;
        if seed_vals.len() < n { return Ok(()); }
        let m = Dense::from_vec(rows, cols, seed_vals[..n].to_vec()).unwrap();
        let enc = dm_buffer::codec::encode_dense(&m);
        let dec = dm_buffer::codec::decode_dense(enc).unwrap();
        prop_assert_eq!(dec, m);
    }
}
