//! A minimal blocking client for the scoring protocol.
//!
//! One [`ScoringClient`] holds one TCP connection and can issue any
//! number of requests over it (the server answers frames in order). It is
//! the Rust counterpart of `scripts/loadgen.py` and the building block of
//! the examples and end-to-end tests.

use crate::protocol::{
    decode_response, encode_request, read_frame, response_rid, write_frame, Request, Response,
    ScoreResult,
};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to a [`ScoringServer`](crate::server::ScoringServer).
pub struct ScoringClient {
    stream: TcpStream,
}

impl ScoringClient {
    /// Connect to a server address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Latency over throughput: frames are small and request/response.
        let _ = stream.set_nodelay(true);
        Ok(ScoringClient { stream })
    }

    /// Send one request and wait for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, String> {
        self.request_with_rid(req).map(|(resp, _)| resp)
    }

    /// Send one request and also surface the server-assigned request id —
    /// the handle into the server's flight recorder (`/debug/requests`,
    /// `/debug/trace?id=`). `None` when talking to a server predating ids.
    pub fn request_with_rid(&mut self, req: &Request) -> Result<(Response, Option<u64>), String> {
        write_frame(&mut self.stream, &encode_request(req)).map_err(|e| format!("send: {e}"))?;
        let raw = read_frame(&mut self.stream)
            .map_err(|e| format!("recv: {e}"))?
            .ok_or("server closed the connection")?;
        Ok((decode_response(&raw)?, response_rid(&raw)))
    }

    /// Convenience: issue a `score` and unwrap the result value, turning
    /// protocol- and server-side errors into `Err`.
    pub fn score(&mut self, req: &Request) -> Result<ScoreResult, String> {
        match self.request(req)? {
            Response::Score { result, .. } => Ok(result),
            Response::Error { error } => Err(error),
            Response::Pong => Err("unexpected pong".to_owned()),
        }
    }

    /// Liveness round-trip.
    pub fn ping(&mut self, tenant: &str) -> Result<(), String> {
        match self.request(&Request::ping(tenant))? {
            Response::Pong => Ok(()),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }
}
