//! Micro-batching: coalesce concurrent scoring requests into one gemm.
//!
//! Scoring a single vector against a model matrix (`W %*% x`) is a gemv —
//! memory-bound and tiny. When many tenants score against the *same
//! cached plan* at once, stacking their vectors into the columns of one
//! `n x k` matrix turns k gemv calls into a single gemm that reuses `W`
//! across columns. The server trades a bounded latency deadline for that
//! throughput: the first eligible request becomes the **leader** of a
//! group and waits up to the deadline (or until the group is full) for
//! **followers**, then executes once and hands each participant its
//! column.
//!
//! Correctness guarantees, stated precisely:
//!
//! * **Isolation**: a group is only joinable when *everything except the
//!   batched vector* is identical. The group key is a hash of (plan key,
//!   shared-input bytes), and joining additionally verifies the full
//!   `guard` bytes against the leader's — a hash collision downgrades the
//!   request to solo execution instead of silently mixing models.
//! * **Column independence**: participant `j` receives exactly column `j`
//!   of the stacked gemm — no cross-column mixing, and the split is a
//!   pure copy (bit-exact).
//! * **Kernel honesty**: the stacked execution dispatches to the packed
//!   register-tiled gemm, while a solo `n x 1` scoring dispatches to the
//!   paired-row gemv. The two kernels accumulate partial products in
//!   different orders, so a batched result can differ from the solo
//!   result of the same request by ulps — same math, different
//!   floating-point summation tree. Requests that need bit-exact
//!   reproducibility across runs should not set `batch` (the solo path is
//!   bit-identical to direct [`Executor`](dm_lang::exec::Executor)
//!   evaluation); within one flushed group the results *are*
//!   deterministic for a given set of participants.
//!
//! The batcher itself is engine-agnostic: it coalesces `Vec<f64>` columns
//! and distributes `Vec<f64>` results; the server owns eligibility
//! analysis and the actual execution.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

type ColResult = Result<Vec<f64>, String>;

struct Group {
    guard: Vec<u8>,
    columns: Vec<Vec<f64>>,
    senders: Vec<Sender<ColResult>>,
}

#[derive(Default)]
struct State {
    groups: HashMap<u64, Group>,
}

/// How a request entered (or did not enter) a batch group. See the
/// [module docs](self) for the leader/follower protocol.
pub enum Joined {
    /// First in: caller must [`collect`](Batcher::collect) the group,
    /// execute it, and [`BatchJob::complete`] it. The receiver yields the
    /// caller's own column afterwards.
    Leader(LeaderToken, Receiver<ColResult>),
    /// Joined an open group: block on the receiver for the result column.
    Follower(Receiver<ColResult>),
    /// Could not join (group full, or guard-byte mismatch on a hash
    /// collision): caller executes individually.
    Solo(Vec<f64>),
}

/// Capability to collect a group this caller leads.
pub struct LeaderToken {
    key: u64,
    deadline_at: Instant,
}

/// A closed group ready to execute: the stacked columns plus the result
/// channels of every participant (leader included).
pub struct BatchJob {
    /// The participants' vectors, in join order (index 0 is the leader).
    pub columns: Vec<Vec<f64>>,
    senders: Vec<Sender<ColResult>>,
}

impl BatchJob {
    /// Number of coalesced requests.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the group held only the leader (no coalescing happened).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Distribute the batched execution's outcome: `Ok(result_columns)`
    /// sends participant `j` its column `j`; `Err` propagates the error to
    /// every participant.
    ///
    /// # Panics
    /// Panics if `Ok` carries a different number of columns than the group
    /// has participants — that is a server bug, not a client error.
    pub fn complete(self, outcome: Result<Vec<Vec<f64>>, String>) {
        match outcome {
            Ok(cols) => {
                assert_eq!(cols.len(), self.senders.len(), "result/participant mismatch");
                for (tx, col) in self.senders.into_iter().zip(cols) {
                    let _ = tx.send(Ok(col)); // receiver gone = client hung up; fine
                }
            }
            Err(e) => {
                for tx in self.senders {
                    let _ = tx.send(Err(e.clone()));
                }
            }
        }
    }
}

/// The group-commit coordinator: one per server.
pub struct Batcher {
    deadline: Duration,
    max: usize,
    state: Mutex<State>,
    arrived: Condvar,
}

impl Batcher {
    /// A batcher holding leaders for `deadline` and capping groups at
    /// `max` requests. `max <= 1` disables coalescing ([`join`](Self::join)
    /// always returns [`Joined::Solo`]).
    pub fn new(deadline: Duration, max: usize) -> Self {
        Batcher { deadline, max, state: Mutex::new(State::default()), arrived: Condvar::new() }
    }

    /// Whether coalescing is enabled at all.
    pub fn enabled(&self) -> bool {
        self.max > 1
    }

    /// The configured group deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Enter the group identified by `key`. `guard` must encode everything
    /// that has to be identical across the group (plan key + shared input
    /// bytes); `column` is this request's batched vector.
    pub fn join(&self, key: u64, guard: &[u8], column: Vec<f64>) -> Joined {
        if !self.enabled() {
            return Joined::Solo(column);
        }
        let mut st = self.state.lock().expect("batcher poisoned");
        match st.groups.get_mut(&key) {
            None => {
                let (tx, rx) = channel();
                st.groups.insert(
                    key,
                    Group { guard: guard.to_vec(), columns: vec![column], senders: vec![tx] },
                );
                Joined::Leader(LeaderToken { key, deadline_at: Instant::now() + self.deadline }, rx)
            }
            Some(g) => {
                if g.guard != guard || g.columns.len() >= self.max {
                    return Joined::Solo(column);
                }
                let (tx, rx) = channel();
                g.columns.push(column);
                g.senders.push(tx);
                self.arrived.notify_all();
                Joined::Follower(rx)
            }
        }
    }

    /// Close the led group: block until the deadline passes or the group
    /// fills, then remove it and return the job to execute.
    pub fn collect(&self, token: LeaderToken) -> BatchJob {
        let mut st = self.state.lock().expect("batcher poisoned");
        loop {
            let full =
                st.groups.get(&token.key).map(|g| g.columns.len() >= self.max).unwrap_or(true);
            let now = Instant::now();
            if full || now >= token.deadline_at {
                break;
            }
            let (guard, _) =
                self.arrived.wait_timeout(st, token.deadline_at - now).expect("batcher poisoned");
            st = guard;
        }
        let g = st.groups.remove(&token.key).expect("leader's group vanished");
        BatchJob { columns: g.columns, senders: g.senders }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn exec_double(job: BatchJob) {
        let out = job.columns.iter().map(|c| c.iter().map(|v| v * 2.0).collect()).collect();
        job.complete(Ok(out));
    }

    #[test]
    fn solo_when_disabled() {
        let b = Batcher::new(Duration::from_millis(50), 1);
        assert!(!b.enabled());
        match b.join(1, b"g", vec![1.0]) {
            Joined::Solo(col) => assert_eq!(col, vec![1.0]),
            _ => panic!("disabled batcher must return Solo"),
        }
    }

    #[test]
    fn leader_collects_followers_and_distributes_columns() {
        let b = Arc::new(Batcher::new(Duration::from_secs(5), 4));
        let Joined::Leader(tok, leader_rx) = b.join(7, b"g", vec![1.0]) else {
            panic!("first join must lead")
        };
        let mut followers = Vec::new();
        for i in 0..3u32 {
            let b = Arc::clone(&b);
            followers.push(std::thread::spawn(move || {
                match b.join(7, b"g", vec![f64::from(i) + 2.0]) {
                    Joined::Follower(rx) => rx.recv().unwrap().unwrap(),
                    _ => panic!("must follow"),
                }
            }));
        }
        let job = b.collect(tok); // fills to max=4, returns before deadline
        assert_eq!(job.len(), 4);
        exec_double(job);
        assert_eq!(leader_rx.recv().unwrap().unwrap(), vec![2.0]);
        let mut got: Vec<Vec<f64>> = followers.into_iter().map(|f| f.join().unwrap()).collect();
        got.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert_eq!(got, vec![vec![4.0], vec![6.0], vec![8.0]]);
    }

    #[test]
    fn deadline_flushes_a_lonely_leader() {
        let b = Batcher::new(Duration::from_millis(20), 8);
        let Joined::Leader(tok, rx) = b.join(1, b"g", vec![3.0]) else { panic!() };
        let start = Instant::now();
        let job = b.collect(tok);
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(job.len(), 1);
        exec_double(job);
        assert_eq!(rx.recv().unwrap().unwrap(), vec![6.0]);
    }

    #[test]
    fn guard_mismatch_downgrades_to_solo() {
        let b = Batcher::new(Duration::from_secs(5), 4);
        let Joined::Leader(tok, _rx) = b.join(7, b"model-a", vec![1.0]) else { panic!() };
        // Same key (hash collision), different guard bytes: must NOT join.
        match b.join(7, b"model-b", vec![9.0]) {
            Joined::Solo(col) => assert_eq!(col, vec![9.0]),
            _ => panic!("guard mismatch must downgrade to solo"),
        }
        b.collect(tok).complete(Ok(vec![vec![0.0]]));
    }

    #[test]
    fn errors_propagate_to_every_participant() {
        let b = Arc::new(Batcher::new(Duration::from_secs(5), 2));
        let Joined::Leader(tok, rx) = b.join(1, b"g", vec![1.0]) else { panic!() };
        let b2 = Arc::clone(&b);
        let f = std::thread::spawn(move || match b2.join(1, b"g", vec![2.0]) {
            Joined::Follower(rx) => rx.recv().unwrap(),
            _ => panic!(),
        });
        let job = b.collect(tok);
        job.complete(Err("boom".to_owned()));
        assert_eq!(rx.recv().unwrap().unwrap_err(), "boom");
        assert_eq!(f.join().unwrap().unwrap_err(), "boom");
    }

    #[test]
    fn full_group_turns_late_joiners_solo() {
        let b = Arc::new(Batcher::new(Duration::from_secs(5), 2));
        let Joined::Leader(tok, _rx) = b.join(1, b"g", vec![1.0]) else { panic!() };
        let b2 = Arc::clone(&b);
        let f = std::thread::spawn(move || match b2.join(1, b"g", vec![2.0]) {
            Joined::Follower(rx) => rx.recv().unwrap(),
            _ => panic!(),
        });
        // Wait until the follower is in, then a third join must go solo.
        loop {
            let full = {
                let st = b.state.lock().unwrap();
                st.groups.get(&1).map(|g| g.columns.len() >= 2).unwrap_or(false)
            };
            if full {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        match b.join(1, b"g", vec![3.0]) {
            Joined::Solo(_) => {}
            _ => panic!("full group must not accept more"),
        }
        b.collect(tok).complete(Ok(vec![vec![10.0], vec![20.0]]));
        assert_eq!(f.join().unwrap().unwrap(), vec![20.0]);
    }
}
