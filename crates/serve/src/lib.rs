//! # dm-serve
//!
//! The multi-tenant scoring server: the long-lived process that turns the
//! workspace's compile-once pipeline into the paper's "deploy to a
//! million users" story. Declarative DMML programs arrive over a
//! length-prefixed JSON protocol ([`protocol`]), compile **once** through
//! the full pipeline (parse → rewrite → size propagation → calibrated
//! physical selection → peak-memory certification), and land in a shared
//! plan cache ([`dm_lang::cache`]) keyed by (program hash, input size
//! classes, sparsity buckets) — identical workloads skip planning
//! entirely.
//!
//! Every tenant shares one set of managed resources, exactly like
//! sessions in a database:
//!
//! * one plan cache (LRU, hit/miss/eviction counters on `/metrics`),
//! * one memory budget, enforced by admission control
//!   ([`dm_buffer::session::SessionLedger`]): requests whose certified
//!   peak does not fit queue; over-budget requests run with blocked
//!   (out-of-core) kernels through one shared spill pool instead of
//!   OOMing neighbors,
//! * one stats registry and one kernel-profile store, so serving traffic
//!   keeps calibrating the cost model that plans serving traffic,
//! * one worker pool ([`dm_par::WorkerPool`]) serving connections.
//!
//! Small vector-scoring requests against the same cached plan can opt
//! into **micro-batching** ([`batch`]): stacked into the columns of a
//! single gemm under a configurable latency deadline. Each participant
//! gets exactly its own column back; see the [`batch`] docs for the
//! precise numeric guarantee (the gemm kernel's summation order can
//! differ from solo gemv by ulps).
//!
//! Operational details — every environment variable, metrics scraping,
//! the profile-store lifecycle, troubleshooting — live in
//! `docs/OPERATIONS.md`.

#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod protocol;
pub mod server;

pub use client::ScoringClient;
pub use protocol::{Cmd, InputValue, Request, Response, ScoreResult};
pub use server::{ScoringServer, ServeConfig};
