//! The scoring server: accept loop, worker pool, and the request path.
//!
//! One process hosts every tenant. The shared state is deliberately the
//! same set of objects a single-shot run uses — one
//! [`PlanCache`], one [`StatsRegistry`], one [`ProfileStore`], one
//! [`SessionLedger`], one spill pool — so multi-tenancy is resource
//! *sharing*, not resource duplication:
//!
//! 1. **accept** — a dedicated thread accepts TCP connections and hands
//!    each one to a [`dm_par::WorkerPool`] worker, which serves frames
//!    off that connection until the client hangs up.
//! 2. **parse** — the frame decodes to a [`Request`]; the program text
//!    parses to an expression DAG (cheap, linear in the text).
//! 3. **plan-cache probe** — the request's [`PlanKey`] (structural
//!    program hash + per-input size classes and sparsity buckets) probes
//!    the shared LRU. A hit skips rewriting, size propagation, physical
//!    selection, and certification entirely; a miss compiles and inserts.
//! 4. **certify / admit** — the plan's certified peak bytes are charged
//!    against the [`SessionLedger`]. Requests that do not fit next to
//!    in-flight work queue; requests certified over the whole budget were
//!    already planned with [`Kernel::Blocked`](dm_lang::physical::Kernel)
//!    kernels and are admitted to run alone, streaming through the shared
//!    spill pool instead of OOMing neighbors.
//! 5. **batch** — eligible vector-scoring requests (`... %*% x` against a
//!    cached plan) may coalesce into one gemm under the configured
//!    deadline (see [`crate::batch`]).
//! 6. **execute / respond** — a fresh [`Executor`] runs the cached plan;
//!    stats and kernel profiles flow into the shared registry and profile
//!    store; the result frames back to the client bit-exactly.

use crate::batch::{Batcher, Joined};
use crate::protocol::{
    decode_request, encode_response_with_rid, read_frame, write_frame, Cmd, InputValue, Request,
    Response, ScoreResult,
};
use dm_buffer::policy::PolicyKind;
use dm_buffer::session::SessionLedger;
use dm_buffer::storage::{FileStore, MemStore, Storage};
use dm_buffer::{BufferPool, SharedBufferPool};
use dm_lang::cache::{compile, program_hash, CompiledProgram, InputClass, PlanCache, PlanKey};
use dm_lang::cost::{CostModel, DRIFT_FACTOR};
use dm_lang::exec::{Env, Executor, Val};
use dm_lang::expr::Op;
use dm_lang::memory::MemoryBudget;
use dm_lang::parser;
use dm_lang::size::InputSizes;
use dm_matrix::{Dense, Matrix};
use dm_obs::flightrec::{FlightRecorder, Phase, RequestRecord};
use dm_obs::profile::ProfileStore;
use dm_obs::trace::{self, SpanHandle};
use dm_obs::{Recorder, StatsRegistry};
use dm_par::WorkerPool;
use std::collections::BTreeSet;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `DMML_SERVE_ADDR` — listen address (default `127.0.0.1:7878`; port 0
/// picks a free port).
pub const SERVE_ADDR_ENV: &str = "DMML_SERVE_ADDR";
/// `DMML_SERVE_WORKERS` — connection-worker threads; a connection is
/// sticky to its worker, so this caps concurrent tenant connections
/// (default: [`dm_par::default_degree`], floored at 8).
pub const SERVE_WORKERS_ENV: &str = "DMML_SERVE_WORKERS";
/// `DMML_SERVE_BATCH_DEADLINE_MS` — how long a micro-batch leader waits
/// for followers, in milliseconds (default 2).
pub const SERVE_BATCH_DEADLINE_ENV: &str = "DMML_SERVE_BATCH_DEADLINE_MS";
/// `DMML_SERVE_BATCH_MAX` — max requests coalesced into one gemm
/// (default 8; `1` disables micro-batching).
pub const SERVE_BATCH_MAX_ENV: &str = "DMML_SERVE_BATCH_MAX";
/// `DMML_SERVE_PLAN_CACHE` — plan-cache capacity in plans (default 64).
pub const SERVE_PLAN_CACHE_ENV: &str = "DMML_SERVE_PLAN_CACHE";
/// `DMML_SERVE_TENANT_SERIES` — max distinct tenants given their own
/// `serve.tenant.<id>.latency_ns` histogram (default 64). Registry entries
/// are never evicted, so without a cap any client minting fresh tenant
/// names would grow the registry and `/metrics` output without bound;
/// tenants past the cap share the `serve.tenant.other.latency_ns` bucket.
pub const SERVE_TENANT_SERIES_ENV: &str = "DMML_SERVE_TENANT_SERIES";
/// `DMML_SERVE_SLOW_MS` — explicit slow-request capture threshold in
/// milliseconds; unset enables the flight recorder's self-tuning p99-based
/// threshold (re-exported from [`dm_obs::flightrec::SLOW_MS_ENV`]).
pub const SERVE_SLOW_MS_ENV: &str = dm_obs::flightrec::SLOW_MS_ENV;
/// `DMML_SERVE_FLIGHT_CAP` — flight-recorder recent-ring capacity in
/// records (default [`dm_obs::flightrec::DEFAULT_FLIGHT_CAP`]).
pub const SERVE_FLIGHT_CAP_ENV: &str = dm_obs::flightrec::FLIGHT_CAP_ENV;

/// High bit marking per-request trace ids, so the ids the flight recorder
/// mints never collide with the trace ids auto-assigned to root spans
/// opened elsewhere in the process (which count up from 1).
const REQ_TRACE_BIT: u64 = 1 << 63;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// Server configuration; build with [`from_env`](Self::from_env) in
/// binaries and [`for_tests`](Self::for_tests) in tests.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 for ephemeral).
    pub addr: String,
    /// Connection-worker threads.
    pub workers: usize,
    /// Micro-batch leader deadline.
    pub batch_deadline: Duration,
    /// Max requests per micro-batch (`<= 1` disables batching).
    pub batch_max: usize,
    /// Plan-cache capacity in plans.
    pub plan_cache: usize,
    /// Max distinct tenants with their own latency histogram; the rest
    /// share the `other` bucket.
    pub tenant_series: usize,
    /// Shared memory budget for certification and admission.
    pub budget: MemoryBudget,
    /// Degree of parallelism plans are compiled for.
    pub degree: usize,
    /// Explicit slow-request capture threshold; `None` self-tunes to the
    /// observed p99 once enough requests have completed.
    pub slow_threshold: Option<Duration>,
    /// Flight-recorder recent-ring capacity in records.
    pub flight_capacity: usize,
}

impl ServeConfig {
    /// Read every `DMML_SERVE_*` knob (plus `DMML_MEM_BUDGET` and
    /// `DMML_THREADS`) from the environment.
    pub fn from_env() -> Self {
        ServeConfig {
            addr: std::env::var(SERVE_ADDR_ENV)
                .ok()
                .filter(|a| !a.trim().is_empty())
                .unwrap_or_else(|| "127.0.0.1:7878".to_owned()),
            // A connection is sticky to its worker, so the worker count caps
            // concurrent tenants. Handlers mostly block on socket reads, so
            // the floor is well above the compute degree even on small boxes.
            workers: env_usize(SERVE_WORKERS_ENV, dm_par::default_degree().max(8)).max(1),
            batch_deadline: Duration::from_millis(env_usize(SERVE_BATCH_DEADLINE_ENV, 2) as u64),
            batch_max: env_usize(SERVE_BATCH_MAX_ENV, 8),
            plan_cache: env_usize(SERVE_PLAN_CACHE_ENV, 64).max(1),
            tenant_series: env_usize(SERVE_TENANT_SERIES_ENV, 64).max(1),
            budget: MemoryBudget::from_env(),
            degree: dm_par::default_degree(),
            slow_threshold: std::env::var(SERVE_SLOW_MS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(Duration::from_millis),
            flight_capacity: env_usize(SERVE_FLIGHT_CAP_ENV, dm_obs::flightrec::DEFAULT_FLIGHT_CAP)
                .max(1),
        }
    }

    /// An ephemeral-port config suitable for tests: 4 workers, 5 ms batch
    /// deadline, unbounded budget, serial plans.
    pub fn for_tests() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            batch_deadline: Duration::from_millis(5),
            batch_max: 8,
            plan_cache: 64,
            tenant_series: 64,
            budget: MemoryBudget::unbounded(),
            degree: 1,
            slow_threshold: None,
            flight_capacity: 64,
        }
    }
}

/// State shared by every connection worker.
struct Shared {
    cfg: ServeConfig,
    registry: Arc<StatsRegistry>,
    cache: Mutex<PlanCache>,
    profiles: Mutex<ProfileStore>,
    ledger: Arc<SessionLedger>,
    spill: Option<SharedBufferPool<Box<dyn Storage>>>,
    batcher: Batcher,
    model: CostModel,
    spill_slots: SpillSlots,
    /// Tenants granted their own latency series, capped at
    /// `cfg.tenant_series`; later tenants share the `other` bucket.
    tenants: Mutex<BTreeSet<String>>,
    /// Per-request flight recorder: bounded ring of completed request
    /// records, served by the metrics endpoint under `/debug/*`.
    flight: Arc<FlightRecorder>,
    /// Histogram handles resolved once at startup — the request path
    /// records 8+ histogram samples, and a by-name registry lookup per
    /// sample is measurable at microsecond request latencies.
    phase_hists: [Arc<dm_obs::LogHistogram>; Phase::COUNT],
    latency_hist: Arc<dm_obs::LogHistogram>,
}

/// Everything the request path threads through its phases: the record
/// under construction, the span scratch (phase spans batch into one
/// buffer-lock at request end), and the request's root span handle that
/// phase spans parent under.
struct ReqCtx {
    rec: RequestRecord,
    spans: trace::LocalSpans,
    root: Option<SpanHandle>,
}

/// Allocator of disjoint spill-pool matrix-id namespaces for concurrent
/// executors sharing one pool (see [`Executor::with_spill_pool`]: ranges
/// **must never** alias). Each slot owns the 2^32-id range
/// `slot << 32 ..`, and slots return to a free list when their request
/// finishes, so a long-lived server reuses the handful of slots its
/// concurrency actually needs instead of marching a counter into wrap-
/// around after 2^32 requests. Reuse is safe: blocked kernels write every
/// panel they later read and discard their stores when done, so a slot's
/// keys are dead by the time it is released.
struct SpillSlots {
    free: Mutex<Vec<u64>>,
    next: AtomicU64,
}

impl SpillSlots {
    fn new() -> Self {
        SpillSlots { free: Mutex::new(Vec::new()), next: AtomicU64::new(0) }
    }

    /// Claim a slot; its id range is `slot << 32 .. (slot + 1) << 32`.
    fn acquire(&self) -> u64 {
        if let Some(slot) = self.free.lock().expect("slots poisoned").pop() {
            return slot;
        }
        let slot = self.next.fetch_add(1, Ordering::Relaxed);
        // Fresh slots are minted only up to peak concurrency (workers +
        // batch followers), which is nowhere near 2^32; the shift below
        // would silently alias ranges if that ever stopped being true.
        assert!(slot < u32::MAX as u64, "spill slot allocator exhausted");
        slot
    }

    fn release(&self, slot: u64) {
        self.free.lock().expect("slots poisoned").push(slot);
    }
}

/// RAII claim on a [`SpillSlots`] slot: releases on drop so error paths
/// and panics in kernel code still return the namespace to the free list.
struct SlotGuard<'a> {
    slots: &'a SpillSlots,
    slot: u64,
}

impl<'a> SlotGuard<'a> {
    fn acquire(slots: &'a SpillSlots) -> Self {
        let slot = slots.acquire();
        SlotGuard { slots, slot }
    }

    /// First matrix id of this slot's disjoint range.
    fn first_matrix_id(&self) -> u64 {
        self.slot << 32
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.slots.release(self.slot);
    }
}

/// The multi-tenant scoring server. Construct with [`start`](Self::start);
/// dropping it (or calling [`shutdown`](Self::shutdown)) stops the accept
/// loop, drains in-flight connections, and persists the kernel profile
/// store when `DMML_PROFILE_DIR` is set.
pub struct ScoringServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ScoringServer {
    /// Bind the configured address and start serving in the background.
    pub fn start(cfg: ServeConfig, registry: Arc<StatsRegistry>) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        // One bounded spill pool for every blocked kernel in the process,
        // sized off the shared budget. Unbounded budget ⇒ nothing is ever
        // planned blocked ⇒ no pool needed.
        let spill = cfg.budget.get().map(|budget| {
            let dir = std::env::temp_dir().join(format!("dmml_serve_spill_{}", std::process::id()));
            let storage: Box<dyn Storage> = match FileStore::new(dir) {
                Ok(fs) => Box::new(fs),
                Err(_) => Box::<MemStore>::default(),
            };
            SharedBufferPool::new(BufferPool::new(
                dm_lang::memory::spill_pool_capacity(budget),
                PolicyKind::Lru,
                storage,
            ))
        });
        // Seed the cost model from DMML_PROFILE_DIR when present so the
        // first compiles already use calibrated crossovers.
        let model = CostModel::from_env().unwrap_or_else(|| CostModel::new(ProfileStore::new()));
        // The flight recorder needs spans to exist to retain them, so
        // tracing is always on in a server process. The trace ring is
        // bounded (DMML_TRACE_MAX_EVENTS) and every completed request
        // drains its own events out of it, so steady-state occupancy is
        // just the requests currently in flight.
        trace::set_enabled(true);
        let shared = Arc::new(Shared {
            flight: Arc::new(FlightRecorder::new(cfg.flight_capacity, cfg.slow_threshold)),
            phase_hists: Phase::ALL.map(|p| registry.histogram(p.site())),
            latency_hist: registry.histogram("serve.latency_ns"),
            ledger: Arc::new(SessionLedger::new(cfg.budget.get().unwrap_or(usize::MAX))),
            cache: Mutex::new(PlanCache::new(cfg.plan_cache)),
            profiles: Mutex::new(ProfileStore::new()),
            batcher: Batcher::new(cfg.batch_deadline, cfg.batch_max),
            registry,
            spill,
            model,
            spill_slots: SpillSlots::new(),
            tenants: Mutex::new(BTreeSet::new()),
            cfg,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared, &stop))?
        };
        Ok(ScoringServer { addr, stop, accept: Some(accept), shared })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The banner line binaries print so scripts (`loadgen.py`) can
    /// discover the ephemeral port.
    pub fn banner(&self) -> String {
        format!("scoring listening on {}", self.addr)
    }

    /// The shared stats registry (for mounting a
    /// [`MetricsServer`](dm_obs::serve::MetricsServer) or asserting in
    /// tests).
    pub fn registry(&self) -> &Arc<StatsRegistry> {
        &self.shared.registry
    }

    /// The per-request flight recorder, for mounting on a
    /// [`MetricsServer`](dm_obs::serve::MetricsServer) (`/debug/*`) or
    /// asserting in tests.
    pub fn flight(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.flight)
    }

    /// Plan-cache counters: `(hits, misses, evictions)`.
    pub fn plan_cache_stats(&self) -> (u64, u64, u64) {
        let c = self.shared.cache.lock().expect("cache poisoned");
        (c.hits(), c.misses(), c.evictions())
    }

    /// The shared admission ledger.
    pub fn ledger(&self) -> &Arc<SessionLedger> {
        &self.shared.ledger
    }

    /// Stop accepting, drain workers, and persist profiles. Idempotent;
    /// also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(handle) = self.accept.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
        // Profile-store lifecycle: merge this process's kernel throughput
        // samples into DMML_PROFILE_DIR so the next start's cost model is
        // calibrated by real serving traffic.
        if let Some(dir) = dm_obs::profile::env_profile_dir() {
            let ps = self.shared.profiles.lock().expect("profiles poisoned");
            if !ps.is_empty() {
                if let Err(e) = ps.save(&dir) {
                    eprintln!("DMML_PROFILE_DIR save failed: {e}");
                }
            }
        }
    }
}

impl Drop for ScoringServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, stop: &AtomicBool) {
    let pool = WorkerPool::new(shared.cfg.workers, "serve");
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                // Transient errors (ECONNABORTED on a reset handshake,
                // EMFILE/ENFILE under fd pressure) must not kill the accept
                // thread while the process looks healthy: log, back off a
                // beat so fd exhaustion doesn't spin, and keep accepting.
                // Only the stop flag ends the loop.
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                shared.registry.add("serve.accept.errors", 1);
                eprintln!("serve: accept error (retrying): {e}");
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let shared = Arc::clone(shared);
        pool.submit(move || handle_connection(stream, &shared));
    }
    // WorkerPool drop drains connections already handed to workers.
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    // An idle or wedged client must not pin a worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
    // Scoring responses must not sit in Nagle's buffer waiting for ACKs.
    let _ = stream.set_nodelay(true);
    while let Ok(Some(raw)) = read_frame(&mut stream) {
        if serve_frame(shared, &mut stream, &raw).is_err() {
            break;
        }
    }
}

/// Run `f` as phase `p` of the request: its wall time accumulates into the
/// record's phase slot and a `serve.phase.<name>` span lands in the
/// request's trace. The span is batched in the context's scratch (one
/// buffer lock per request, not per phase) and its own clock reads supply
/// the phase duration.
fn time_phase<T>(ctx: &mut ReqCtx, p: Phase, f: impl FnOnce() -> T) -> T {
    let pending = ctx.spans.begin(ctx.root, p.site(), "serve");
    let t0 = if pending.is_none() { Some(Instant::now()) } else { None };
    let out = f();
    let ns = match pending {
        Some(pd) => ctx.spans.end(pd),
        None => t0.expect("timer set when span inert").elapsed().as_nanos() as u64,
    };
    ctx.rec.phase_ns[p.index()] += ns;
    out
}

/// Serve one framed request end to end: assign its id, open its root span,
/// handle it, encode + write the response (rid included), and deposit the
/// completed [`RequestRecord`] — phase breakdown, byte counts, and its
/// extracted span tree — into the flight recorder. The returned error is
/// the socket write failing (connection torn down); the request is recorded
/// either way, so even a request whose client vanished stays diagnosable.
fn serve_frame(shared: &Arc<Shared>, stream: &mut TcpStream, raw: &str) -> io::Result<()> {
    let started = Instant::now();
    let reg = shared.registry.as_ref();
    let rid = shared.flight.next_id();
    let trace_id = rid | REQ_TRACE_BIT;
    let mut ctx =
        ReqCtx { rec: RequestRecord::new(rid, ""), spans: trace::LocalSpans::new(), root: None };
    ctx.rec.bytes_in = raw.len() as u64;
    let write_res;
    {
        // Root span of this request's trace: opening as a child of the
        // synthetic handle (trace = rid | bit, parent span = 0) pins the
        // trace id to the request id, so the whole tree — including spans
        // opened by the executor and instants from leaf crates on this
        // thread — is extractable by rid when the request completes.
        let mut root = trace::Span::child_of(
            Some(SpanHandle { trace: trace_id, span: 0 }),
            "serve.request",
            "serve",
        );
        root.arg("rid", rid);
        ctx.root = root.handle();
        let resp = handle_request(shared, raw, &mut ctx);
        // `serve.latency_ns` keeps its pre-flight-recorder boundaries —
        // decode through scoring, excluding response encode and the socket
        // write — so dashboards and E17 stay comparable across versions.
        // The record's `total_ns` below is the full end-to-end time.
        let handling_ns = started.elapsed().as_nanos() as u64;
        shared.latency_hist.record(handling_ns);
        if !ctx.rec.tenant.is_empty() {
            reg.record_histogram(
                &format!("serve.tenant.{}.latency_ns", tenant_series(shared, &ctx.rec.tenant)),
                handling_ns,
            );
        }
        if let Response::Error { error } = &resp {
            ctx.rec.error = Some(error.clone());
        }
        root.arg("tenant", ctx.rec.tenant.clone());
        let payload = time_phase(&mut ctx, Phase::Encode, || encode_response_with_rid(&resp, rid));
        ctx.rec.bytes_out = payload.len() as u64;
        // The frame write counts as encode time too: a response stuck in a
        // slow client's socket shows up attributed, not as mystery gap.
        let t0 = Instant::now();
        write_res = write_frame(stream, &payload);
        ctx.rec.phase_ns[Phase::Encode.index()] += t0.elapsed().as_nanos() as u64;
    }
    let ReqCtx { mut rec, mut spans, .. } = ctx;
    spans.flush();
    rec.total_ns = started.elapsed().as_nanos() as u64;
    for p in Phase::ALL {
        let ns = rec.phase_ns[p.index()];
        if ns > 0 {
            shared.phase_hists[p.index()].record(ns);
        }
    }
    trace::record_dropped(reg);
    // The root span has dropped and the phase batch is flushed, so the full
    // tree is in the buffers; drain this request's slice into its record
    // (keeping the global ring lean).
    rec.events = trace::extract_trace(trace_id);
    shared.flight.record(rec);
    write_res
}

fn valid_tenant(t: &str) -> bool {
    !t.is_empty()
        && t.len() <= 64
        && t.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

fn handle_request(shared: &Arc<Shared>, raw: &str, ctx: &mut ReqCtx) -> Response {
    let reg = shared.registry.as_ref();
    reg.add("serve.requests", 1);
    let req = match time_phase(ctx, Phase::Decode, || decode_request(raw)) {
        Ok(r) => r,
        Err(e) => {
            reg.add("serve.errors", 1);
            return Response::Error { error: format!("bad request: {e}") };
        }
    };
    if !valid_tenant(&req.tenant) {
        reg.add("serve.errors", 1);
        return Response::Error { error: "invalid tenant name".to_owned() };
    }
    ctx.rec.tenant = req.tenant.clone();
    let resp = match req.cmd {
        Cmd::Ping => Response::Pong,
        Cmd::Score => handle_score(shared, &req, ctx),
    };
    if matches!(resp, Response::Error { .. }) {
        reg.add("serve.errors", 1);
    }
    resp
}

/// The metric label a tenant's latency records under. The first
/// `cfg.tenant_series` distinct tenants get their own series; anyone past
/// the cap shares `other`, so a client minting fresh 64-char tenant names
/// cannot grow the never-evicting registry (and `/metrics` output)
/// without bound.
fn tenant_series<'a>(shared: &Arc<Shared>, tenant: &'a str) -> &'a str {
    let mut tracked = shared.tenants.lock().expect("tenants poisoned");
    if admit_tenant_series(&mut tracked, shared.cfg.tenant_series, tenant) {
        tenant
    } else {
        shared.registry.add("serve.tenant_overflow", 1);
        "other"
    }
}

/// Whether `tenant` gets (or already has) its own metric series under the
/// cardinality cap; `false` means it records under the `other` bucket.
fn admit_tenant_series(tracked: &mut BTreeSet<String>, cap: usize, tenant: &str) -> bool {
    if tracked.contains(tenant) {
        return true;
    }
    if tracked.len() < cap {
        tracked.insert(tenant.to_owned());
        return true;
    }
    false
}

/// Measure a bound input's non-zero fraction for the sparsity bucket.
fn measured_sparsity(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    data.iter().filter(|v| **v != 0.0).count() as f64 / data.len() as f64
}

fn handle_score(shared: &Arc<Shared>, req: &Request, ctx: &mut ReqCtx) -> Response {
    let reg = shared.registry.as_ref();
    // Plan-cache lookup phase: classify the bound inputs, parse for the
    // structural hash (cheap, linear in the text), and probe the LRU —
    // everything a request pays whether it hits or misses.
    let mut sizes = InputSizes::new();
    let lookup = time_phase(ctx, Phase::CacheLookup, || {
        let mut classes = Vec::with_capacity(req.inputs.len());
        for (name, v) in &req.inputs {
            match v {
                InputValue::Matrix { rows, cols, data } => {
                    let sp = measured_sparsity(data);
                    sizes.declare(name, *rows, *cols, sp);
                    classes.push(InputClass::new(name, *rows, *cols, sp));
                }
                InputValue::Scalar(_) => {
                    sizes.declare_scalar(name);
                    // Sentinel classes keep a scalar binding from colliding
                    // with a 1x1 matrix binding of the same name.
                    classes.push(InputClass {
                        name: name.clone(),
                        rows_class: u32::MAX,
                        cols_class: u32::MAX,
                        sparsity: 0,
                    });
                }
            }
        }
        let (raw_graph, raw_root) = match parser::parse(&req.program) {
            Ok(p) => p,
            Err(e) => return Err(format!("parse error: {e}")),
        };
        let key = PlanKey::new(program_hash(&raw_graph, raw_root), classes);
        let cached = probe_cache(shared, &key);
        Ok((key, cached))
    });
    let (key, cached) = match lookup {
        Ok(k) => k,
        Err(error) => return Response::Error { error },
    };

    let (prog, cache_hit) = match cached {
        Some(p) => (p, true),
        None => {
            let compiled = time_phase(ctx, Phase::Compile, || {
                compile(&req.program, &sizes, shared.cfg.degree, shared.cfg.budget, &shared.model)
                    .map(Arc::new)
            });
            let compiled = match compiled {
                Ok(c) => c,
                Err(e) => return Response::Error { error: e.to_string() },
            };
            insert_cache(shared, key.clone(), Arc::clone(&compiled));
            (compiled, false)
        }
    };
    ctx.rec.plan_key = key.to_string();
    ctx.rec.cache_hit = cache_hit;
    ctx.rec.kernel_summary = prog.kernel_summary();
    ctx.rec.est_cost_ns = prog.est_cost_ns;
    ctx.rec.certified_peak = prog.certified_peak().unwrap_or(0) as u64;

    // Admission phase: charge the certified peak against the shared ledger.
    // Queue when it does not fit; oversized plans (already degraded to
    // blocked kernels) run alone. Time spent here is queueing behind other
    // tenants' in-flight work — the classic noisy-neighbor signature.
    let peak = prog.certified_peak().unwrap_or(0);
    let _admission =
        time_phase(ctx, Phase::Admission, || match shared.ledger.try_admit(&req.tenant, peak) {
            Some(g) => g,
            None => {
                reg.add("serve.admission.queued", 1);
                reg.gauge_set("serve.admission.waiting", shared.ledger.waiting() as u64 + 1);
                shared.ledger.admit(&req.tenant, peak)
            }
        });
    reg.gauge_set("serve.admission.waiting", shared.ledger.waiting() as u64);
    reg.gauge_set("serve.admission.in_flight_bytes", shared.ledger.in_flight_bytes() as u64);

    let (result, batched) = match try_batched(shared, req, &prog, &key, ctx) {
        Some(r) => r,
        None => {
            let out =
                time_phase(ctx, Phase::Execute, || execute(shared, &prog, build_env(&req.inputs)));
            match out {
                Ok(v) => (val_to_result(v), false),
                Err(e) => return Response::Error { error: e },
            }
        }
    };
    ctx.rec.batched = batched;
    record_cost_drift(reg, &ctx.rec, &prog);
    match result {
        Ok(result) => {
            Response::Score { result, cache_hit, batched, blocked_nodes: prog.blocked_nodes }
        }
        Err(e) => Response::Error { error: e },
    }
}

/// Compare this request's observed execute time against the plan's
/// compile-time calibrated estimate. Beyond [`DRIFT_FACTOR`] in either
/// direction counts as cost-model drift: bump `serve.cost_model.drift` and
/// drop an instant into the request's trace. The kernel-profile samples the
/// executor already feeds into the shared [`ProfileStore`] are what
/// re-calibrate the model (and drive the analyzer's H204 staleness hint) —
/// this counter is the per-request, per-plan-cache-entry visibility of the
/// same gap. Skipped for followers (their execute ns is the leader's) and
/// unpriced plans.
fn record_cost_drift(reg: &StatsRegistry, rec: &RequestRecord, prog: &CompiledProgram) {
    let exec_ns = rec.phase_ns[Phase::Execute.index()];
    if exec_ns == 0 || prog.est_cost_ns == 0 {
        return;
    }
    let ratio = exec_ns as f64 / prog.est_cost_ns as f64;
    if !(1.0 / DRIFT_FACTOR..=DRIFT_FACTOR).contains(&ratio) {
        reg.add("serve.cost_model.drift", 1);
        trace::instant(
            "serve.cost_drift",
            &[
                ("plan", rec.plan_key.clone().into()),
                ("est_ns", prog.est_cost_ns.into()),
                ("observed_ns", exec_ns.into()),
            ],
        );
    }
}

fn probe_cache(shared: &Arc<Shared>, key: &PlanKey) -> Option<Arc<CompiledProgram>> {
    let mut cache = shared.cache.lock().expect("cache poisoned");
    let hit = cache.get(key);
    let reg = shared.registry.as_ref();
    reg.add(if hit.is_some() { "serve.plan_cache.hit" } else { "serve.plan_cache.miss" }, 1);
    reg.gauge_set("serve.plan_cache.size", cache.len() as u64);
    hit
}

fn insert_cache(shared: &Arc<Shared>, key: PlanKey, prog: Arc<CompiledProgram>) {
    let mut cache = shared.cache.lock().expect("cache poisoned");
    let before = cache.evictions();
    cache.insert(key, prog);
    let evicted = cache.evictions() - before;
    let reg = shared.registry.as_ref();
    if evicted > 0 {
        reg.add("serve.plan_cache.evictions", evicted);
    }
    reg.gauge_set("serve.plan_cache.size", cache.len() as u64);
}

fn build_env(inputs: &[(String, InputValue)]) -> Env {
    let mut env = Env::new();
    for (name, v) in inputs {
        match v {
            InputValue::Matrix { rows, cols, data } => {
                let d = Dense::from_vec(*rows, *cols, data.clone())
                    .expect("length validated at decode");
                env.bind(name, Matrix::Dense(d));
            }
            InputValue::Scalar(x) => {
                env.bind_scalar(name, *x);
            }
        }
    }
    env
}

/// Run the compiled plan against `env` with the shared resources: a fresh
/// executor per request (hit and miss paths identical by construction),
/// stats into the shared registry, kernel profiles into the shared store,
/// and — when a budget is set — the process-wide spill pool with a
/// per-request matrix-id range so concurrent blocked kernels cannot alias
/// pages.
fn execute(shared: &Arc<Shared>, prog: &CompiledProgram, env: Env) -> Result<Val, String> {
    // `.traced()`: per-node `exec.<op>` spans (kernel, dims, flops) nest
    // under the request's execute-phase span, so `/debug/trace?id=` shows
    // which kernel the time went to.
    let mut ex =
        Executor::with_plan(&prog.graph, prog.plan.clone()).without_env_sinks().profiled().traced();
    // Held for the whole execution: the guard's id range is this request's
    // private spill namespace, returned to the free list on drop.
    let _slot = match &shared.spill {
        Some(pool) => {
            let guard = SlotGuard::acquire(&shared.spill_slots);
            ex = ex.with_spill_pool(pool.clone(), guard.first_matrix_id());
            Some(guard)
        }
        None => None,
    };
    let out = ex.eval(prog.root, &env).map_err(|e| e.to_string())?;
    ex.record_stats(shared.registry.as_ref());
    let mut profiles = shared.profiles.lock().expect("profiles poisoned");
    ex.record_kernel_profiles(&mut profiles);
    Ok(out)
}

fn val_to_result(v: Val) -> Result<ScoreResult, String> {
    Ok(match v {
        Val::Scalar(s) => ScoreResult::Scalar(s),
        Val::Matrix(m) => {
            let d = m.to_dense();
            ScoreResult::Matrix { rows: d.rows(), cols: d.cols(), data: d.data().to_vec() }
        }
    })
}

/// The batched input of an eligible program: the root is
/// `MatMul(_, Input(v))` and `v` is referenced exactly once (so stacking
/// its columns affects nothing else). Plans with blocked kernels are
/// excluded — batching multiplies the root's working set by the group
/// size, which the admission charge did not cover.
fn batchable_input(prog: &CompiledProgram) -> Option<String> {
    if prog.blocked_nodes > 0 {
        return None;
    }
    let Op::MatMul(_, rhs) = prog.graph.op(prog.root) else { return None };
    let Op::Input(name) = prog.graph.op(*rhs) else { return None };
    let uses: usize = prog
        .graph
        .reachable(prog.root)
        .iter()
        .map(|&id| prog.graph.op(id).children().iter().filter(|&&c| c == *rhs).count())
        .sum();
    (uses == 1).then(|| name.clone())
}

/// FNV-1a over the group guard bytes (the batcher verifies the full bytes
/// on join, so a collision only costs a solo execution).
fn guard_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Attempt the micro-batched path. `None` means "not eligible — execute
/// individually"; `Some((result, batched))` is a finished outcome.
///
/// Phase attribution: a follower's wait on the leader counts as
/// [`Phase::BatchWait`] even though it *contains* the leader's execution of
/// the fused gemm — from the follower's seat that time is indistinguishable
/// from waiting, and the leader's own record carries the execute time. The
/// leader's deadline wait ([`Batcher::collect`]) is its batch-wait.
#[allow(clippy::type_complexity)]
fn try_batched(
    shared: &Arc<Shared>,
    req: &Request,
    prog: &Arc<CompiledProgram>,
    key: &PlanKey,
    ctx: &mut ReqCtx,
) -> Option<(Result<ScoreResult, String>, bool)> {
    if !req.batch || !shared.batcher.enabled() {
        return None;
    }
    let bname = batchable_input(prog)?;
    // The batched input must be bound as a column vector.
    let (_, InputValue::Matrix { rows, cols: 1, data }) =
        req.inputs.iter().find(|(n, _)| *n == bname)?
    else {
        return None;
    };
    if *rows == 0 {
        return None;
    }
    // Guard bytes: plan identity + every shared (non-batch) input,
    // bit-exact. Only requests whose entire context matches may share a
    // gemm.
    let mut guard = Vec::new();
    guard.extend_from_slice(format!("{key}").as_bytes());
    guard.push(0);
    guard.extend_from_slice(bname.as_bytes());
    guard.extend_from_slice(&rows.to_le_bytes());
    let mut rest: Vec<&(String, InputValue)> =
        req.inputs.iter().filter(|(n, _)| *n != bname).collect();
    rest.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, v) in rest {
        guard.push(0xfe);
        guard.extend_from_slice(name.as_bytes());
        guard.push(0);
        match v {
            InputValue::Matrix { rows, cols, data } => {
                guard.extend_from_slice(&rows.to_le_bytes());
                guard.extend_from_slice(&cols.to_le_bytes());
                for x in data {
                    guard.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            InputValue::Scalar(x) => {
                guard.extend_from_slice(&[0xfd]);
                guard.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
    }
    let gkey = guard_hash(&guard);
    let m = *rows;
    let reg = shared.registry.as_ref();
    match shared.batcher.join(gkey, &guard, data.clone()) {
        Joined::Solo(col) => {
            // Group was full or guarded against us: run the same column
            // individually.
            let out = time_phase(ctx, Phase::Execute, || {
                let mut env = build_env(&req.inputs);
                env.bind(&bname, Matrix::Dense(Dense::from_vec(m, 1, col).expect("shape")));
                execute(shared, prog, env).and_then(val_to_result)
            });
            Some((out, false))
        }
        Joined::Follower(rx) => {
            let col = time_phase(ctx, Phase::BatchWait, || {
                rx.recv().map_err(|_| "batch leader died".to_owned()).and_then(|r| r)
            });
            Some((
                col.map(|c| {
                    let rows = c.len();
                    ScoreResult::Matrix { rows, cols: 1, data: c }
                }),
                true,
            ))
        }
        Joined::Leader(token, rx) => {
            // The deadline wait for followers is the leader's batch-wait.
            let job = time_phase(ctx, Phase::BatchWait, || shared.batcher.collect(token));
            let k = job.len();
            reg.add("serve.batch.flushes", 1);
            if k > 1 {
                reg.add("serve.batch.batched_requests", k as u64);
            }
            let outcome = time_phase(ctx, Phase::Execute, || {
                // Stack the k column vectors into one m x k input and run
                // the cached plan once.
                let mut stacked = vec![0.0; m * k];
                for (j, col) in job.columns.iter().enumerate() {
                    for (i, v) in col.iter().enumerate() {
                        stacked[i * k + j] = *v;
                    }
                }
                let mut env = build_env(&req.inputs);
                env.bind(&bname, Matrix::Dense(Dense::from_vec(m, k, stacked).expect("shape")));
                execute(shared, prog, env).and_then(|v| {
                    let Val::Matrix(mat) = v else {
                        return Err("batched program did not yield a matrix".to_owned());
                    };
                    let d = mat.to_dense();
                    if d.cols() != k {
                        return Err(format!(
                            "batched result has {} columns, expected {k}",
                            d.cols()
                        ));
                    }
                    // Column j is participant j's result, bit-for-bit.
                    Ok((0..k)
                        .map(|j| (0..d.rows()).map(|i| d.data()[i * k + j]).collect::<Vec<f64>>())
                        .collect::<Vec<_>>())
                })
            });
            job.complete(outcome);
            let col = rx.recv().map_err(|_| "batch result lost".to_owned()).and_then(|r| r);
            Some((
                col.map(|c| {
                    let rows = c.len();
                    ScoreResult::Matrix { rows, cols: 1, data: c }
                }),
                k > 1,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_validation() {
        assert!(valid_tenant("acme-1_B"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant("has space"));
        assert!(!valid_tenant(&"x".repeat(65)));
    }

    #[test]
    fn config_from_env_defaults() {
        // No DMML_SERVE_* set in the test environment by default.
        let cfg = ServeConfig::for_tests();
        assert!(cfg.workers >= 1);
        assert!(cfg.plan_cache >= 1);
    }

    #[test]
    fn batchable_input_analysis() {
        let model = CostModel::new(ProfileStore::new());
        let mut sizes = InputSizes::new();
        sizes.declare("W", 4, 4, 1.0);
        sizes.declare("x", 4, 1, 1.0);
        let p = compile("W %*% x", &sizes, 1, MemoryBudget::unbounded(), &model).unwrap();
        assert_eq!(batchable_input(&p).as_deref(), Some("x"));

        // Root is not a matmul: not batchable.
        let p = compile("sum(W %*% x)", &sizes, 1, MemoryBudget::unbounded(), &model).unwrap();
        assert_eq!(batchable_input(&p), None);

        // The vector is used twice: stacking would change the other use.
        let mut sizes2 = InputSizes::new();
        sizes2.declare("W", 4, 4, 1.0);
        sizes2.declare("x", 4, 4, 1.0);
        let p = compile("(W %*% x) + x", &sizes2, 1, MemoryBudget::unbounded(), &model).unwrap();
        assert_eq!(batchable_input(&p), None);
    }

    #[test]
    fn measured_sparsity_counts_nonzeros() {
        assert_eq!(measured_sparsity(&[0.0, 1.0, 0.0, 2.0]), 0.5);
        assert_eq!(measured_sparsity(&[]), 1.0);
    }

    #[test]
    fn tenant_series_cardinality_is_capped() {
        let mut tracked = BTreeSet::new();
        assert!(admit_tenant_series(&mut tracked, 2, "a"));
        assert!(admit_tenant_series(&mut tracked, 2, "b"));
        // Cap reached: a fresh tenant overflows to the shared bucket...
        assert!(!admit_tenant_series(&mut tracked, 2, "c"));
        // ...while already-tracked tenants keep their own series.
        assert!(admit_tenant_series(&mut tracked, 2, "a"));
        assert_eq!(tracked.len(), 2, "overflow tenants are not tracked");
    }

    #[test]
    fn spill_slots_reuse_released_ranges() {
        let slots = SpillSlots::new();
        let a = SlotGuard::acquire(&slots);
        let b = SlotGuard::acquire(&slots);
        let (ida, idb) = (a.first_matrix_id(), b.first_matrix_id());
        assert_ne!(ida, idb, "concurrent slots get disjoint ranges");
        assert_eq!(idb - ida, 1 << 32, "each slot owns a 2^32-id range");
        drop(a);
        // A released slot is reused instead of minting a fresh range, so
        // the namespace never marches toward wrap-around on a long-lived
        // server.
        let c = SlotGuard::acquire(&slots);
        assert_eq!(c.first_matrix_id(), ida);
        drop(b);
        drop(c);
        assert_eq!(slots.next.load(Ordering::Relaxed), 2, "only 2 slots ever minted");
    }
}
