//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one frame: a 4-byte
//! big-endian `u32` byte length followed by that many bytes of UTF-8
//! JSON (encoded and parsed with [`dm_obs::json`], so the server adds no
//! dependencies). Length-prefixing keeps framing trivial for clients in
//! any language: read 4 bytes, read N bytes, parse.
//!
//! Floating-point values round-trip **bit-exactly** for finite numbers:
//! Rust's `{}` formatting of `f64` prints the shortest decimal that
//! parses back to the same bits, and both ends parse with
//! `str::parse::<f64>`. This is what lets the end-to-end tests demand
//! bit-identical results between served and direct evaluation. Non-finite
//! values (which JSON cannot express as numbers) travel as the strings
//! `"NaN"`, `"Infinity"`, `"-Infinity"`.
//!
//! A scoring request:
//!
//! ```json
//! {"tenant": "acme", "cmd": "score", "program": "W %*% x",
//!  "inputs": {"W": {"rows": 2, "cols": 2, "data": [1, 0, 0, 1]},
//!             "x": {"rows": 2, "cols": 1, "data": [3, 4]}},
//!  "batch": true}
//! ```
//!
//! and its response:
//!
//! ```json
//! {"ok": true, "kind": "matrix", "rows": 2, "cols": 1, "data": [3, 4],
//!  "cache": "miss", "batched": false, "blocked_nodes": 0}
//! ```

use dm_obs::json::{escape_json, parse, Json};
use std::io::{self, Read, Write};

/// Hard cap on a frame's payload size (64 MiB) — a corrupt or hostile
/// length prefix must not make the server allocate unbounded memory.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    // One write for header + payload: two writes would put the 4-byte
    // header alone in a TCP segment and stall ~40 ms on Nagle's algorithm
    // colliding with the peer's delayed ACK.
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between requests); errors on truncation
/// mid-frame, oversized lengths, or invalid UTF-8.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    // Distinguish "no more frames" (EOF before the first length byte)
    // from "truncated frame" (EOF inside one).
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated frame length"));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length exceeds cap"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// One named input binding in a scoring request.
#[derive(Debug, Clone, PartialEq)]
pub enum InputValue {
    /// A row-major dense matrix.
    Matrix {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// Row-major values, `rows * cols` long.
        data: Vec<f64>,
    },
    /// A scalar binding.
    Scalar(f64),
}

/// The request verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmd {
    /// Compile (or hit the plan cache) and execute the program.
    Score,
    /// Liveness check; answered with `pong` without touching the engine.
    Ping,
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Tenant identifier (`[A-Za-z0-9_-]`, 1–64 chars); namespaces the
    /// per-tenant latency metrics and admission accounting.
    pub tenant: String,
    /// What to do.
    pub cmd: Cmd,
    /// DMML program text (empty for `ping`).
    pub program: String,
    /// Named input bindings.
    pub inputs: Vec<(String, InputValue)>,
    /// Opt in to micro-batching: the server may coalesce this request
    /// with concurrent identical-plan requests into one gemm under the
    /// configured latency deadline.
    pub batch: bool,
}

impl Request {
    /// A `score` request with no inputs bound yet.
    pub fn score(tenant: &str, program: &str) -> Self {
        Request {
            tenant: tenant.to_owned(),
            cmd: Cmd::Score,
            program: program.to_owned(),
            inputs: Vec::new(),
            batch: false,
        }
    }

    /// A `ping` request.
    pub fn ping(tenant: &str) -> Self {
        Request {
            tenant: tenant.to_owned(),
            cmd: Cmd::Ping,
            program: String::new(),
            inputs: Vec::new(),
            batch: false,
        }
    }

    /// Bind a row-major dense matrix input.
    pub fn matrix(mut self, name: &str, rows: usize, cols: usize, data: Vec<f64>) -> Self {
        self.inputs.push((name.to_owned(), InputValue::Matrix { rows, cols, data }));
        self
    }

    /// Bind a scalar input.
    pub fn scalar(mut self, name: &str, v: f64) -> Self {
        self.inputs.push((name.to_owned(), InputValue::Scalar(v)));
        self
    }

    /// Opt in to micro-batching.
    pub fn batched(mut self) -> Self {
        self.batch = true;
        self
    }
}

/// The value a successful `score` produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreResult {
    /// Scalar result.
    Scalar(f64),
    /// Dense matrix result (row-major).
    Matrix {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// Row-major values.
        data: Vec<f64>,
    },
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed; nothing was executed (or execution errored).
    Error {
        /// Human-readable cause.
        error: String,
    },
    /// Answer to [`Cmd::Ping`].
    Pong,
    /// Answer to [`Cmd::Score`].
    Score {
        /// The computed value.
        result: ScoreResult,
        /// Whether the physical plan came from the plan cache.
        cache_hit: bool,
        /// Whether this request was coalesced into a micro-batch with at
        /// least one other request.
        batched: bool,
        /// Nodes the plan runs out-of-core
        /// ([`Kernel::Blocked`](dm_lang::physical::Kernel::Blocked)) —
        /// non-zero means the request was over budget and admitted in
        /// degraded streaming mode rather than rejected.
        blocked_nodes: usize,
    },
}

/// Format an `f64` for the wire: shortest round-trip decimal for finite
/// values, quoted sentinel strings for non-finite ones.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        debug_assert_eq!(s.parse::<f64>().map(f64::to_bits), Ok(v.to_bits()));
        s
    } else if v.is_nan() {
        "\"NaN\"".to_owned()
    } else if v > 0.0 {
        "\"Infinity\"".to_owned()
    } else {
        "\"-Infinity\"".to_owned()
    }
}

fn fmt_data(data: &[f64]) -> String {
    let mut s = String::with_capacity(data.len() * 4 + 2);
    s.push('[');
    for (i, v) in data.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&fmt_f64(*v));
    }
    s.push(']');
    s
}

fn json_f64(j: &Json) -> Result<f64, String> {
    match j {
        Json::Num(n) => Ok(*n),
        Json::Str(s) => match s.as_str() {
            "NaN" => Ok(f64::NAN),
            "Infinity" => Ok(f64::INFINITY),
            "-Infinity" => Ok(f64::NEG_INFINITY),
            _ => Err(format!("not a number: {s:?}")),
        },
        _ => Err("not a number".to_owned()),
    }
}

fn json_data(j: &Json) -> Result<Vec<f64>, String> {
    j.as_arr().ok_or("data must be an array")?.iter().map(json_f64).collect()
}

fn json_usize(j: &Json, what: &str) -> Result<usize, String> {
    let n = j.as_f64().ok_or_else(|| format!("{what} must be a number"))?;
    if n < 0.0 || n.fract() != 0.0 || n > (1u64 << 53) as f64 {
        return Err(format!("{what} must be a non-negative integer"));
    }
    Ok(n as usize)
}

/// Encode a request to its JSON frame payload.
pub fn encode_request(req: &Request) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\"tenant\":\"{}\",\"cmd\":\"{}\"",
        escape_json(&req.tenant),
        match req.cmd {
            Cmd::Score => "score",
            Cmd::Ping => "ping",
        }
    ));
    if !req.program.is_empty() {
        s.push_str(&format!(",\"program\":\"{}\"", escape_json(&req.program)));
    }
    if !req.inputs.is_empty() {
        s.push_str(",\"inputs\":{");
        for (i, (name, v)) in req.inputs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match v {
                InputValue::Matrix { rows, cols, data } => s.push_str(&format!(
                    "\"{}\":{{\"rows\":{rows},\"cols\":{cols},\"data\":{}}}",
                    escape_json(name),
                    fmt_data(data)
                )),
                InputValue::Scalar(x) => {
                    s.push_str(&format!("\"{}\":{{\"scalar\":{}}}", escape_json(name), fmt_f64(*x)))
                }
            }
        }
        s.push('}');
    }
    if req.batch {
        s.push_str(",\"batch\":true");
    }
    s.push('}');
    s
}

/// Decode a request frame payload.
pub fn decode_request(raw: &str) -> Result<Request, String> {
    let j = parse(raw)?;
    let tenant = j.get("tenant").and_then(Json::as_str).ok_or("missing tenant")?.to_owned();
    let cmd = match j.get("cmd").and_then(Json::as_str) {
        Some("score") | None => Cmd::Score,
        Some("ping") => Cmd::Ping,
        Some(other) => return Err(format!("unknown cmd {other:?}")),
    };
    let program = j.get("program").and_then(Json::as_str).unwrap_or("").to_owned();
    let mut inputs = Vec::new();
    if let Some(obj) = j.get("inputs") {
        for (name, v) in obj.as_obj().ok_or("inputs must be an object")? {
            if let Some(s) = v.get("scalar") {
                inputs.push((name.clone(), InputValue::Scalar(json_f64(s)?)));
                continue;
            }
            let rows = json_usize(v.get("rows").ok_or("input missing rows")?, "rows")?;
            let cols = json_usize(v.get("cols").ok_or("input missing cols")?, "cols")?;
            let data = json_data(v.get("data").ok_or("input missing data")?)?;
            // checked_mul: claimed dims like 2^32 x 2^32 would wrap to 0 in
            // release builds and let an empty `data` impersonate a matrix
            // far larger than any frame could carry.
            let expected = rows
                .checked_mul(cols)
                .ok_or_else(|| format!("input {name:?}: rows*cols overflows ({rows} x {cols})"))?;
            if data.len() != expected {
                return Err(format!(
                    "input {name:?}: data length {} != rows*cols {expected}",
                    data.len(),
                ));
            }
            inputs.push((name.clone(), InputValue::Matrix { rows, cols, data }));
        }
    }
    let batch = matches!(j.get("batch"), Some(Json::Bool(true)));
    Ok(Request { tenant, cmd, program, inputs, batch })
}

/// Encode a response to its JSON frame payload.
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Error { error } => {
            format!("{{\"ok\":false,\"error\":\"{}\"}}", escape_json(error))
        }
        Response::Pong => "{\"ok\":true,\"kind\":\"pong\"}".to_owned(),
        Response::Score { result, cache_hit, batched, blocked_nodes } => {
            let body = match result {
                ScoreResult::Scalar(v) => {
                    format!("\"kind\":\"scalar\",\"value\":{}", fmt_f64(*v))
                }
                ScoreResult::Matrix { rows, cols, data } => format!(
                    "\"kind\":\"matrix\",\"rows\":{rows},\"cols\":{cols},\"data\":{}",
                    fmt_data(data)
                ),
            };
            format!(
                "{{\"ok\":true,{body},\"cache\":\"{}\",\"batched\":{batched},\"blocked_nodes\":{blocked_nodes}}}",
                if *cache_hit { "hit" } else { "miss" }
            )
        }
    }
}

/// Encode a response with the server-assigned request id appended as a
/// top-level `rid` field. The id is the handle into the server's flight
/// recorder (`/debug/requests`, `/debug/trace?id=`), so it rides on every
/// response — errors included, which is exactly when an operator needs it.
/// [`decode_response`] ignores the field; read it with [`response_rid`].
pub fn encode_response_with_rid(resp: &Response, rid: u64) -> String {
    let body = encode_response(resp);
    debug_assert!(body.ends_with('}'));
    format!("{},\"rid\":{rid}}}", &body[..body.len() - 1])
}

/// The server-assigned request id of a response frame payload, when present.
pub fn response_rid(raw: &str) -> Option<u64> {
    let n = parse(raw).ok()?.get("rid")?.as_f64()?;
    (n >= 0.0 && n.fract() == 0.0).then_some(n as u64)
}

/// Decode a response frame payload.
pub fn decode_response(raw: &str) -> Result<Response, String> {
    let j = parse(raw)?;
    match j.get("ok") {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => {
            let error = j.get("error").and_then(Json::as_str).unwrap_or("unknown error").to_owned();
            return Ok(Response::Error { error });
        }
        _ => return Err("missing ok field".to_owned()),
    }
    match j.get("kind").and_then(Json::as_str) {
        Some("pong") => Ok(Response::Pong),
        Some(kind @ ("scalar" | "matrix")) => {
            let result = if kind == "scalar" {
                ScoreResult::Scalar(json_f64(j.get("value").ok_or("missing value")?)?)
            } else {
                let rows = json_usize(j.get("rows").ok_or("missing rows")?, "rows")?;
                let cols = json_usize(j.get("cols").ok_or("missing cols")?, "cols")?;
                let data = json_data(j.get("data").ok_or("missing data")?)?;
                match rows.checked_mul(cols) {
                    Some(n) if n == data.len() => {}
                    _ => {
                        return Err(format!(
                            "result data length {} != rows*cols ({rows} x {cols})",
                            data.len()
                        ))
                    }
                }
                ScoreResult::Matrix { rows, cols, data }
            };
            Ok(Response::Score {
                result,
                cache_hit: j.get("cache").and_then(Json::as_str) == Some("hit"),
                batched: matches!(j.get("batched"), Some(Json::Bool(true))),
                blocked_nodes: j
                    .get("blocked_nodes")
                    .map(|b| json_usize(b, "blocked_nodes"))
                    .transpose()?
                    .unwrap_or(0),
            })
        }
        _ => Err("missing kind".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
        // Truncation inside the length prefix is also an error.
        let mut r = &[0u8, 0][..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"x");
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn request_round_trips_bit_exactly() {
        let req = Request::score("acme-1", "W %*% x")
            .matrix("W", 2, 2, vec![1.5, -0.25, 1e-300, 3.0])
            .matrix("x", 2, 1, vec![0.1, 0.2])
            .scalar("alpha", 0.3)
            .batched();
        let got = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(got, req);
        // 0.1 etc. survive bitwise.
        let (_, InputValue::Matrix { data, .. }) = &got.inputs[1] else { panic!() };
        assert_eq!(data[0].to_bits(), 0.1f64.to_bits());
    }

    #[test]
    fn ping_round_trips() {
        let req = Request::ping("t");
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        let resp = Response::Pong;
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Error { error: "bad \"quote\"".to_owned() },
            Response::Score {
                result: ScoreResult::Scalar(42.125),
                cache_hit: true,
                batched: false,
                blocked_nodes: 0,
            },
            Response::Score {
                result: ScoreResult::Matrix { rows: 1, cols: 3, data: vec![1.0, 2.5, -3.75] },
                cache_hit: false,
                batched: true,
                blocked_nodes: 2,
            },
        ] {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn rid_rides_on_responses_and_decodes_transparently() {
        for resp in [
            Response::Pong,
            Response::Error { error: "nope".to_owned() },
            Response::Score {
                result: ScoreResult::Scalar(1.5),
                cache_hit: false,
                batched: false,
                blocked_nodes: 0,
            },
        ] {
            let raw = encode_response_with_rid(&resp, 42);
            assert_eq!(response_rid(&raw), Some(42));
            // The rid is transparent to the typed decode.
            assert_eq!(decode_response(&raw).unwrap(), resp);
        }
        assert_eq!(response_rid(&encode_response(&Response::Pong)), None);
    }

    #[test]
    fn non_finite_values_survive_the_wire() {
        let resp = Response::Score {
            result: ScoreResult::Matrix {
                rows: 1,
                cols: 3,
                data: vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY],
            },
            cache_hit: false,
            batched: false,
            blocked_nodes: 0,
        };
        let got = decode_response(&encode_response(&resp)).unwrap();
        let Response::Score { result: ScoreResult::Matrix { data, .. }, .. } = got else {
            panic!()
        };
        assert!(data[0].is_nan());
        assert_eq!(data[1], f64::INFINITY);
        assert_eq!(data[2], f64::NEG_INFINITY);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(decode_request("{}").is_err(), "missing tenant");
        assert!(decode_request("{\"tenant\":\"t\",\"cmd\":\"nope\"}").is_err());
        assert!(decode_request(
            "{\"tenant\":\"t\",\"inputs\":{\"X\":{\"rows\":2,\"cols\":2,\"data\":[1]}}}"
        )
        .is_err());
    }

    #[test]
    fn overflowing_dims_are_rejected() {
        // 2^32 x 2^32 wraps to 0 in a release-build `rows * cols`; an empty
        // data array must NOT pass validation on that wrapped product.
        let raw = format!(
            "{{\"tenant\":\"t\",\"program\":\"X\",\"inputs\":{{\"X\":{{\"rows\":{n},\"cols\":{n},\"data\":[]}}}}}}",
            n = 1u64 << 32
        );
        assert!(decode_request(&raw).is_err());
        // Same guard on the response path: a lying server must not hand the
        // client a matrix whose claimed dims overflow or mismatch the data.
        let resp = format!(
            "{{\"ok\":true,\"kind\":\"matrix\",\"rows\":{n},\"cols\":{n},\"data\":[]}}",
            n = 1u64 << 32
        );
        assert!(decode_response(&resp).is_err());
        assert!(decode_response(
            "{\"ok\":true,\"kind\":\"matrix\",\"rows\":2,\"cols\":2,\"data\":[1]}"
        )
        .is_err());
    }
}
