//! Property-based tests: every normalized-matrix operator must agree with
//! its materialized counterpart for arbitrary star schemas.

use dm_factorized::{DimTable, NormalizedMatrix};
use dm_matrix::{ops, Dense};
use proptest::prelude::*;

/// Strategy: a random star schema with 1-2 dimension tables.
fn star() -> impl Strategy<Value = NormalizedMatrix> {
    (2usize..40, 0usize..3, 1usize..6, 1usize..4).prop_flat_map(|(n, ds, n1, d1)| {
        let fact_vals = proptest::collection::vec(-5.0..5.0f64, n * ds);
        let dim_vals = proptest::collection::vec(-5.0..5.0f64, n1 * d1);
        let fks = proptest::collection::vec(0usize..n1, n);
        (Just((n, ds, n1, d1)), fact_vals, dim_vals, fks).prop_map(
            |((n, ds, n1, d1), fv, dv, fk)| {
                let s = Dense::from_vec(n, ds, fv).unwrap();
                let r = Dense::from_vec(n1, d1, dv).unwrap();
                NormalizedMatrix::new(s, vec![DimTable::new(r, fk).unwrap()]).unwrap()
            },
        )
    })
}

proptest! {
    #[test]
    fn gemv_agrees(nm in star()) {
        let w: Vec<f64> = (0..nm.cols()).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let expect = ops::gemv(&nm.materialize(), &w);
        for (a, b) in nm.gemv(&w).iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn vecmat_agrees(nm in star()) {
        let v: Vec<f64> = (0..nm.rows()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let expect = ops::gevm(&v, &nm.materialize());
        for (a, b) in nm.vecmat(&v).iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn crossprod_agrees(nm in star()) {
        let expect = ops::crossprod(&nm.materialize());
        prop_assert!(nm.crossprod().approx_eq(&expect, 1e-7));
    }

    #[test]
    fn col_stats_agree(nm in star()) {
        let m = nm.materialize();
        for (a, b) in nm.col_sums().iter().zip(&ops::col_sums(&m)) {
            prop_assert!((a - b).abs() < 1e-8);
        }
        for (a, b) in nm.col_means().iter().zip(&ops::col_means(&m)) {
            prop_assert!((a - b).abs() < 1e-8);
        }
        for (a, b) in nm.col_vars().iter().zip(&ops::col_vars(&m)) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn row_sums_agree(nm in star()) {
        let expect = ops::row_sums(&nm.materialize());
        for (a, b) in nm.row_sums().iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn cell_accounting_identities(nm in star()) {
        // Exact accounting: physical = fact block + dim block + key column;
        // logical = n x total columns. (Normalized storage is *not* always
        // smaller — a dimension table bigger than its usage costs extra, and
        // redundancy_ratio() correctly reports < 1 in that case.)
        let n = nm.rows();
        let ds = nm.s.cols();
        let dim = &nm.tables[0];
        let expected_physical = n * ds + dim.features.rows() * dim.features.cols() + n;
        prop_assert_eq!(nm.physical_cells(), expected_physical);
        prop_assert_eq!(nm.logical_cells(), n * nm.cols());
        let ratio = nm.redundancy_ratio();
        prop_assert!((ratio - nm.logical_cells() as f64 / nm.physical_cells() as f64).abs() < 1e-12);
    }
}
