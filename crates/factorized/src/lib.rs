//! # dm-factorized
//!
//! ML over normalized relational data without materializing the join — the
//! tutorial's "ML inside data systems" pillar.
//!
//! Three techniques, each a module:
//!
//! * [`schema`] / [`morpheus`] — a **normalized matrix**: the feature matrix of
//!   a star-schema join kept as (fact-table features, per-dimension features,
//!   foreign-key maps). Linear-algebra operators (`gemv`, `vecmat`,
//!   `crossprod`) are rewritten to push computation through the join,
//!   touching each dimension row once instead of once per matching fact row.
//! * [`glm`] — **factorized GLM learning**: gradient-descent training of
//!   linear/logistic models whose per-epoch cost is
//!   `O(n·d_S + Σ n_k·d_k)` instead of `O(n·d)` over the materialized join.
//! * [`hamlet`] — **join avoidance**: decision rules for dropping a
//!   key-foreign-key join entirely when the foreign key itself carries the
//!   dimension features' signal.
//!
//! ```
//! use dm_matrix::Dense;
//! use dm_factorized::schema::{DimTable, NormalizedMatrix};
//!
//! // 4 fact rows joining a 2-row dimension table.
//! let s = Dense::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
//! let r = Dense::from_rows(&[&[10.0], &[20.0]]);
//! let nm = NormalizedMatrix::new(s, vec![DimTable::new(r, vec![0, 1, 0, 1]).unwrap()]).unwrap();
//! let w = [1.0, 1.0];
//! assert_eq!(nm.gemv(&w), dm_matrix::ops::gemv(&nm.materialize(), &w));
//! ```

#![warn(missing_docs)]

pub mod glm;
pub mod hamlet;
pub mod morpheus;
pub mod schema;

pub use schema::{DimTable, FactorizedError, NormalizedMatrix};
