#![allow(clippy::needless_range_loop)] // index loops mirror the math in numeric kernels
//! Rewritten linear-algebra operators over the normalized matrix.
//!
//! Each operator pushes computation through the join: dimension-table rows are
//! touched once each, with per-fact-row work reduced to gathers/scatters
//! through the foreign-key maps. The asymptotic win over the materialized
//! baseline grows with the redundancy ratio `n / n_k`.

use crate::schema::NormalizedMatrix;
use dm_matrix::{ops, Dense};

impl NormalizedMatrix {
    /// `X · w` without materializing `X`.
    ///
    /// Rewrite: `X w = S w_S + Σ_k gather(R_k w_k, fk_k)` — each dimension
    /// block performs an `n_k x d_k` product instead of `n x d_k`.
    ///
    /// # Panics
    /// Panics if `w.len() != self.cols()`.
    pub fn gemv(&self, w: &[f64]) -> Vec<f64> {
        assert_eq!(w.len(), self.cols(), "normalized gemv dimension mismatch");
        let n = self.rows();
        let ds = self.s.cols();
        let mut out = if ds > 0 { ops::gemv(&self.s, &w[..ds]) } else { vec![0.0; n] };
        let mut off = ds;
        for t in &self.tables {
            let dk = t.features.cols();
            let partial = ops::gemv(&t.features, &w[off..off + dk]);
            for (o, &g) in out.iter_mut().zip(&t.fk) {
                *o += partial[g];
            }
            off += dk;
        }
        out
    }

    /// `vᵀ · X` without materializing `X`.
    ///
    /// Rewrite: the fact block is a plain `vᵀ S`; for each dimension block,
    /// first aggregate `v` by foreign key (`n` adds), then one `n_k x d_k`
    /// vector-matrix product.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows(), "normalized vecmat dimension mismatch");
        let mut out = Vec::with_capacity(self.cols());
        if self.s.cols() > 0 {
            out.extend(ops::gevm(v, &self.s));
        }
        for t in &self.tables {
            let agg = aggregate_by_key(v, &t.fk, t.features.rows());
            out.extend(ops::gevm(&agg, &t.features));
        }
        out
    }

    /// Column sums of the logical matrix.
    ///
    /// Rewrite: fact block directly; dimension blocks weight each dimension
    /// row by its reference count.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.cols());
        out.extend(ops::col_sums(&self.s));
        for t in &self.tables {
            let counts = key_counts(&t.fk, t.features.rows());
            out.extend(ops::gevm(&counts, &t.features));
        }
        out
    }

    /// Gram matrix `Xᵀ X` computed block-wise through the join.
    ///
    /// Blocks:
    /// * `Sᵀ S` — ordinary crossprod, `O(n·d_S²)`.
    /// * `Sᵀ (K_k R_k) = A_kᵀ R_k` where `A_k` aggregates `S` rows by key —
    ///   `O(n·d_S + n_k·d_S·d_k)`.
    /// * `(K_k R_k)ᵀ (K_k R_k) = R_kᵀ diag(c_k) R_k` with reference counts
    ///   `c_k` — `O(n_k·d_k²)`.
    /// * Cross-table blocks `(K_k R_k)ᵀ (K_j R_j) = R_kᵀ B_{kj}` where
    ///   `B_{kj}` aggregates the gathered rows of table `j` by key `k` —
    ///   `O(n·d_j + n_k·d_k·d_j)`.
    pub fn crossprod(&self) -> Dense {
        let d = self.cols();
        let ds = self.s.cols();
        let mut out = Dense::zeros(d, d);

        // S^T S block.
        if ds > 0 {
            let sts = ops::crossprod(&self.s);
            for i in 0..ds {
                out.row_mut(i)[..ds].copy_from_slice(sts.row(i));
            }
        }

        // Precompute per-table offsets.
        let mut offsets = Vec::with_capacity(self.tables.len());
        let mut off = ds;
        for t in &self.tables {
            offsets.push(off);
            off += t.features.cols();
        }

        for (k, tk) in self.tables.iter().enumerate() {
            let ok = offsets[k];
            let dk = tk.features.cols();
            let nk = tk.features.rows();

            // S^T K_k R_k = A_k^T R_k, A_k = groupwise sums of S rows.
            if ds > 0 {
                let mut a = Dense::zeros(nk, ds);
                for (r, &g) in tk.fk.iter().enumerate() {
                    for (dst, &v) in a.row_mut(g).iter_mut().zip(self.s.row(r)) {
                        *dst += v;
                    }
                }
                let block = ops::gemm(&a.transpose(), &tk.features); // ds x dk
                for i in 0..ds {
                    for j in 0..dk {
                        let v = block.get(i, j);
                        out.set(i, ok + j, v);
                        out.set(ok + j, i, v);
                    }
                }
            }

            // Diagonal block: R_k^T diag(c) R_k.
            let counts = key_counts(&tk.fk, nk);
            for g in 0..nk {
                let c = counts[g];
                if c == 0.0 {
                    continue;
                }
                let row = tk.features.row(g);
                for i in 0..dk {
                    let ci = c * row[i];
                    for j in i..dk {
                        let v = out.get(ok + i, ok + j) + ci * row[j];
                        out.set(ok + i, ok + j, v);
                        if i != j {
                            out.set(ok + j, ok + i, v);
                        }
                    }
                }
            }

            // Cross-table blocks with every later table j.
            for (j_rel, tj) in self.tables.iter().enumerate().skip(k + 1) {
                let oj = offsets[j_rel];
                let dj = tj.features.cols();
                // B[g] = sum over fact rows with fk_k = g of R_j[fk_j[row]].
                let mut b = Dense::zeros(nk, dj);
                for (r, &g) in tk.fk.iter().enumerate() {
                    let src = tj.features.row(tj.fk[r]);
                    for (dst, &v) in b.row_mut(g).iter_mut().zip(src) {
                        *dst += v;
                    }
                }
                let block = ops::gemm(&tk.features.transpose(), &b); // dk x dj
                for i in 0..dk {
                    for jj in 0..dj {
                        let v = block.get(i, jj);
                        out.set(ok + i, oj + jj, v);
                        out.set(oj + jj, ok + i, v);
                    }
                }
            }
        }
        out
    }

    /// Column means of the logical matrix, pushed through the join
    /// (dimension rows weighted by reference counts).
    pub fn col_means(&self) -> Vec<f64> {
        let n = self.rows().max(1) as f64;
        self.col_sums().into_iter().map(|s| s / n).collect()
    }

    /// Column variances (population) of the logical matrix, computed from
    /// `E[x²] − E[x]²` with the squared sums also pushed through the join —
    /// standardization statistics without materializing anything.
    pub fn col_vars(&self) -> Vec<f64> {
        let n = self.rows().max(1) as f64;
        let means = self.col_means();
        // Sum of squares per column: fact block directly; each dimension
        // block weights its (squared) rows by reference count.
        let mut sq = Vec::with_capacity(self.cols());
        for c in 0..self.s.cols() {
            sq.push((0..self.s.rows()).map(|r| self.s.get(r, c).powi(2)).sum::<f64>());
        }
        for t in &self.tables {
            let counts = key_counts(&t.fk, t.features.rows());
            for c in 0..t.features.cols() {
                let mut acc = 0.0;
                for (g, &cnt) in counts.iter().enumerate() {
                    if cnt != 0.0 {
                        acc += cnt * t.features.get(g, c).powi(2);
                    }
                }
                sq.push(acc);
            }
        }
        sq.into_iter().zip(means).map(|(s, m)| (s / n - m * m).max(0.0)).collect()
    }

    /// Row sums of the logical matrix (per fact row), pushed through the join.
    pub fn row_sums(&self) -> Vec<f64> {
        let mut out = ops::row_sums(&self.s);
        if out.is_empty() {
            out = vec![0.0; self.rows()];
        }
        for t in &self.tables {
            let per_dim_row = ops::row_sums(&t.features);
            for (o, &g) in out.iter_mut().zip(&t.fk) {
                *o += per_dim_row[g];
            }
        }
        out
    }
}

/// Aggregate `v` by key: `out[g] = Σ_{i: fk[i] = g} v[i]`.
fn aggregate_by_key(v: &[f64], fk: &[usize], groups: usize) -> Vec<f64> {
    let mut out = vec![0.0; groups];
    for (&x, &g) in v.iter().zip(fk) {
        out[g] += x;
    }
    out
}

/// Reference count of each dimension row.
fn key_counts(fk: &[usize], groups: usize) -> Vec<f64> {
    let mut out = vec![0.0; groups];
    for &g in fk {
        out[g] += 1.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DimTable;

    /// n fact rows, two dimension tables of sizes n/5 and n/10.
    fn build(n: usize) -> NormalizedMatrix {
        let s = Dense::from_fn(n, 2, |r, c| ((r * 3 + c * 7) % 11) as f64 - 5.0);
        let n1 = (n / 5).max(1);
        let n2 = (n / 10).max(1);
        let r1 = Dense::from_fn(n1, 3, |r, c| ((r + c) % 6) as f64);
        let r2 = Dense::from_fn(n2, 2, |r, c| ((r * 2 + c) % 4) as f64 * 0.5);
        let fk1 = (0..n).map(|r| (r * 7) % n1).collect();
        let fk2 = (0..n).map(|r| (r * 13) % n2).collect();
        NormalizedMatrix::new(
            s,
            vec![DimTable::new(r1, fk1).unwrap(), DimTable::new(r2, fk2).unwrap()],
        )
        .unwrap()
    }

    #[test]
    fn gemv_matches_materialized() {
        let nm = build(200);
        let m = nm.materialize();
        let w: Vec<f64> = (0..nm.cols()).map(|i| i as f64 * 0.3 - 1.0).collect();
        let expect = ops::gemv(&m, &w);
        for (a, b) in nm.gemv(&w).iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn vecmat_matches_materialized() {
        let nm = build(200);
        let m = nm.materialize();
        let v: Vec<f64> = (0..200).map(|i| ((i % 9) as f64) - 4.0).collect();
        let expect = ops::gevm(&v, &m);
        for (a, b) in nm.vecmat(&v).iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn col_sums_match_materialized() {
        let nm = build(150);
        let expect = ops::col_sums(&nm.materialize());
        for (a, b) in nm.col_sums().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn row_sums_match_materialized() {
        let nm = build(150);
        let expect = ops::row_sums(&nm.materialize());
        for (a, b) in nm.row_sums().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn crossprod_matches_materialized() {
        let nm = build(120);
        let expect = ops::crossprod(&nm.materialize());
        let got = nm.crossprod();
        assert!(got.approx_eq(&expect, 1e-8), "max diff {}", got.max_abs_diff(&expect));
    }

    #[test]
    fn crossprod_single_table_no_fact_features() {
        let s = Dense::zeros(50, 0);
        let r = Dense::from_fn(5, 2, |g, c| (g * 2 + c) as f64);
        let fk = (0..50).map(|i| i % 5).collect();
        let nm = NormalizedMatrix { s, tables: vec![DimTable::new(r, fk).unwrap()] };
        let expect = ops::crossprod(&nm.materialize());
        assert!(nm.crossprod().approx_eq(&expect, 1e-9));
    }

    #[test]
    fn skewed_keys_still_correct() {
        // All fact rows reference dimension row 0 except one.
        let s = Dense::from_fn(40, 1, |r, _| r as f64);
        let r = Dense::from_rows(&[&[2.0], &[5.0]]);
        let mut fk = vec![0usize; 40];
        fk[39] = 1;
        let nm = NormalizedMatrix::new(s, vec![DimTable::new(r, fk).unwrap()]).unwrap();
        let m = nm.materialize();
        let w = [1.0, 1.0];
        assert_eq!(nm.gemv(&w), ops::gemv(&m, &w));
        let expect = ops::crossprod(&m);
        assert!(nm.crossprod().approx_eq(&expect, 1e-9));
    }

    #[test]
    fn col_means_and_vars_match_materialized() {
        let nm = build(180);
        let m = nm.materialize();
        let em = ops::col_means(&m);
        let ev = ops::col_vars(&m);
        for (a, b) in nm.col_means().iter().zip(&em) {
            assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in nm.col_vars().iter().zip(&ev) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn unreferenced_dimension_rows_ignored() {
        let s = Dense::from_rows(&[&[1.0], &[2.0]]);
        let r = Dense::from_rows(&[&[10.0], &[99.0], &[20.0]]); // row 1 never referenced
        let nm = NormalizedMatrix::new(s, vec![DimTable::new(r, vec![0, 2]).unwrap()]).unwrap();
        assert_eq!(nm.col_sums(), vec![3.0, 30.0]);
    }
}
